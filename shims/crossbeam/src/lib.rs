//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, providing the `channel` module surface used by the threaded
//! runtime: cloneable unbounded MPMC channels with `send` and
//! `recv_timeout`.
//!
//! The implementation is a mutex-protected queue with a condition variable —
//! not lock-free like the real crossbeam, but semantically equivalent for
//! the runtime's purposes (reliable FIFO delivery, multiple producers and
//! consumers, timeout-based receive).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable; sends never block.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable; receivers
    /// compete for messages (MPMC semantics).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    /// Error returned by [`Sender::send`]. The shim's channels are never
    /// disconnected (the queue lives as long as any endpoint), so this is
    /// only constructed for API compatibility.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected and the queue is empty.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates an unbounded channel, returning its two halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared { queue: Mutex::new(VecDeque::new()), ready: Condvar::new() });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues a message. Never blocks and, in this shim, never fails.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, waiting up to `timeout` for one to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .expect("channel mutex poisoned");
                queue = guard;
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().expect("channel mutex poisoned").pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn fifo_within_single_producer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(i));
        }
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Ok(v) = rx.recv_timeout(Duration::from_millis(50)) {
                got.push(v);
            }
        }
        handle.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx2.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
    }
}
