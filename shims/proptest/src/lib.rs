//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io/)
//! property-testing framework.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the proptest API its test suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges,
//! * [`collection::vec`] with exact, half-open or inclusive size ranges,
//! * [`test_runner::ProptestConfig`] (`with_cases`),
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted for a shim:
//! generation is a fixed-seed PRNG (fully deterministic across runs), there
//! is **no shrinking** (a failing case reports its inputs un-minimized), and
//! `prop_assume!` skips the case rather than drawing a replacement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy that applies `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return start + (rng.next_u64() as $t);
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = end.wrapping_sub(start) as u64;
                    if span == u64::MAX {
                        return start.wrapping_add(rng.next_u64() as $t);
                    }
                    start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*};
    }

    impl_signed_range_strategy!(isize, i64, i32, i16, i8);

    /// Strategy for `bool` values.
    impl Strategy for core::ops::RangeFull {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// An inclusive size bound for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { min: exact, max: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy generating a `Vec` whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Configuration and runtime support for generated test functions.
pub mod test_runner {
    /// Per-test configuration. Only the `cases` knob is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Returns a config that runs `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Error type property bodies may return with `?` or `return Err(..)`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The deterministic generator driving all strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test function; `case` distinguishes
        /// successive cases so each draws fresh values.
        pub fn deterministic(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index, so every
            // (test, case) pair explores a different region of the space but
            // reruns are bit-for-bit identical.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        /// Returns the next pseudo-random value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// item expands to a `#[test]` function that samples the strategies for a
/// configurable number of cases and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!("proptest case {} of {} failed: {}", case, config.cases, e);
                }
            }
        }
        $crate::__proptest_item! { @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property body, reporting the stringified
/// expression (or a custom formatted message) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            ::core::stringify!($left),
            ::core::stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            ::core::stringify!($left),
            ::core::stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Unlike real proptest, the skipped case counts as passed rather than
/// being replaced by a fresh draw.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds", 0);
        for _ in 0..1000 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u64..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size_forms() {
        let mut rng = TestRng::deterministic("vec_strategy", 0);
        for _ in 0..200 {
            assert_eq!(crate::collection::vec(0usize..5, 3).sample(&mut rng).len(), 3);
            let half_open = crate::collection::vec(0usize..5, 0..4).sample(&mut rng);
            assert!(half_open.len() < 4);
            let inclusive = crate::collection::vec(0usize..5, 1..=2).sample(&mut rng);
            assert!((1..=2).contains(&inclusive.len()));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::deterministic("prop_map", 0);
        let doubled = (1usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = |case| {
            let mut rng = TestRng::deterministic("stable", case);
            (0..10).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(4), draw(4));
        assert_ne!(draw(4), draw(5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires strategies, assume and assertions together.
        #[test]
        fn macro_end_to_end(
            a in 0usize..50,
            v in crate::collection::vec(0u64..10, 0..8),
        ) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_eq!(v.len(), v.iter().count());
            if a == usize::MAX {
                return Ok(());
            }
        }
    }

    // No `#[test]` meta on the inner item: the macro forwards any
    // attributes, and a nested `#[test]` would be unnameable anyway.
    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            fn inner_always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner_always_fails();
    }
}
