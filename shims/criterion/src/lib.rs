//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of the criterion API the `crates/bench` suite uses: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a short warm-up, then a timed
//! batch sized to roughly [`Criterion::measurement_budget`] — and reports
//! mean wall-clock time per iteration on stdout. It has no statistical
//! analysis, HTML reports, or comparison baselines; it exists so `cargo
//! bench` runs every benchmark and prints honest, order-of-magnitude
//! numbers. When a benchmark filter argument is given on the command line
//! (as `cargo bench -- <filter>` passes), only matching benchmarks run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// The benchmark driver handed to every registered bench function.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards extra args; honour the first
        // non-flag one the way real criterion does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.as_ref(), f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { budget: self.budget, report: None };
        f(&mut bencher);
        match bencher.report {
            Some(r) => println!(
                "bench: {id:<60} {:>12}/iter ({} iters)",
                format_duration(r.per_iter),
                r.iters
            ),
            None => println!("bench: {id:<60} (no measurement taken)"),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Accepts criterion's sample-count hint. The shim sizes its measured
    /// batch by time budget instead, so this only needs to exist.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finishes the group. (No-op in the shim; exists for API parity.)
    pub fn finish(self) {}
}

/// Identifies one parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

struct Measurement {
    per_iter: Duration,
    iters: u64,
}

/// Times the closure handed to it by a benchmark body.
pub struct Bencher {
    budget: Duration,
    report: Option<Measurement>,
}

impl Bencher {
    /// Measures `routine`, first warming up, then timing a batch sized to
    /// fit the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est = warmup_start.elapsed().checked_div(warmup_iters as u32).unwrap_or_default();
        let iters = if est.is_zero() {
            1_000_000
        } else {
            (self.budget.as_nanos() / est.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.report = Some(Measurement { per_iter: elapsed / iters as u32, iters });
    }
}

/// Re-export of [`std::hint::black_box`] for parity with real criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion { filter: None, budget: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("match-me".into()), budget: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("other", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran, "filtered-out benchmark must not execute");
        c.bench_function("match-me-exactly", |_b| {
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_names_compose() {
        let id = BenchmarkId::new("union", 128);
        assert_eq!(id.to_string(), "union/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }

    #[test]
    fn macros_generate_runnable_group() {
        demo_group();
    }
}
