//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this reproduction has no network access, so the
//! workspace vendors the minimal slice of the `rand` 0.9 API that the
//! protocol code and tests actually use:
//!
//! * [`SeedableRng::seed_from_u64`] and the deterministic [`rngs::SmallRng`],
//! * [`RngExt::random_range`] / [`RngExt::random_bool`],
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is deterministic given the seed — there is no entropy source —
//! which is exactly what the reproduction wants: every "random" topology,
//! schedule and DAG in the test suite is replayable from its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of pseudo-random 64-bit values.
pub trait Rng {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a small integer seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that values can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Convenience sampling methods, available on every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53 uniform mantissa bits, same construction as rand's `random::<f64>()`.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xorshift64* over a
    /// SplitMix64-initialised state), mirroring `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 step so that small/sequential seeds produce
            // well-mixed initial states (and state 0 is impossible).
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Extension trait adding random-order operations to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same = (0..100).all(|_| {
            SmallRng::seed_from_u64(7).random_range(0u64..u64::MAX)
                == c.random_range(0u64..u64::MAX)
        });
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
