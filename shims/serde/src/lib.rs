//! Offline stand-in for the [`serde`](https://serde.rs) framework.
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal serde data-model core that `asym_quorum::ProcessSet`'s
//! hand-written `Serialize`/`Deserialize` implementations need:
//!
//! * [`Serialize`] / [`Serializer`] with sequence support ([`ser::SerializeSeq`]),
//! * [`Deserialize`] / [`Deserializer`] with [`de::Visitor`] and
//!   [`de::SeqAccess`],
//! * [`de::value::SeqDeserializer`] so sequences can be deserialized from
//!   plain iterators in tests,
//! * primitive implementations for the integer types the reproduction
//!   serializes.
//!
//! The trait signatures match real serde, so swapping the real crate back in
//! requires only a manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

/// Serialization half of the data model.
pub mod ser {
    use core::fmt::Display;

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data structure that can be serialized into any serde data format.
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A data format that can serialize the serde data model.
    pub trait Serializer: Sized {
        /// Value produced on success.
        type Ok;
        /// Error produced on failure.
        type Error: Error;
        /// Sub-serializer for sequences.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

        /// Serializes a `u64`.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;

        /// Begins serializing a sequence of `len` elements (if known).
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    }

    /// Incremental serialization of a sequence.
    pub trait SerializeSeq {
        /// Value produced on success.
        type Ok;
        /// Error produced on failure.
        type Error: Error;

        /// Serializes one element.
        fn serialize_element<T: ?Sized + Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    macro_rules! impl_serialize_uint {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.serialize_u64(*self as u64)
                }
            }
        )*};
    }

    impl_serialize_uint!(u8, u16, u32, u64, usize);

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            (**self).serialize(serializer)
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            let mut seq = serializer.serialize_seq(Some(self.len()))?;
            for item in self {
                seq.serialize_element(item)?;
            }
            seq.end()
        }
    }
}

/// Deserialization half of the data model.
pub mod de {
    use core::fmt::{self, Display};
    use core::marker::PhantomData;

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data structure deserializable from any serde data format.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A data format that can deserialize the serde data model.
    pub trait Deserializer<'de>: Sized {
        /// Error produced on failure.
        type Error: Error;

        /// Deserializes a `u64`, driving the visitor.
        fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

        /// Deserializes a sequence, driving the visitor.
        fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    }

    /// Walks the structure of a deserialized value.
    pub trait Visitor<'de>: Sized {
        /// The value built by this visitor.
        type Value;

        /// Describes what this visitor expects, for error messages.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

        /// Visits an unsigned integer.
        fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
            let _ = v;
            Err(E::custom(format_args!("unexpected u64, expecting {}", Expected(&self))))
        }

        /// Visits a sequence.
        fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
            let _ = seq;
            Err(A::Error::custom(format_args!(
                "unexpected sequence, expecting {}",
                Expected(&self)
            )))
        }
    }

    struct Expected<'a, V>(&'a V);

    impl<'de, V: Visitor<'de>> Display for Expected<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }

    /// Provides the elements of a sequence one at a time.
    pub trait SeqAccess<'de> {
        /// Error produced on failure.
        type Error: Error;

        /// Returns the next element, or `None` at the end of the sequence.
        fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;
    }

    macro_rules! impl_deserialize_uint {
        ($($t:ty),*) => {$(
            impl<'de> Deserialize<'de> for $t {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct UintVisitor;
                    impl<'de> Visitor<'de> for UintVisitor {
                        type Value = $t;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(concat!("a ", stringify!($t)))
                        }
                        fn visit_u64<E: Error>(self, v: u64) -> Result<$t, E> {
                            <$t>::try_from(v).map_err(|_| {
                                E::custom(format_args!("{v} out of range for {}", stringify!($t)))
                            })
                        }
                    }
                    deserializer.deserialize_u64(UintVisitor)
                }
            }
        )*};
    }

    impl_deserialize_uint!(u8, u16, u32, u64, usize);

    impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            struct VecVisitor<T>(PhantomData<T>);
            impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
                type Value = Vec<T>;
                fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    f.write_str("a sequence")
                }
                fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                    let mut out = Vec::new();
                    while let Some(item) = seq.next_element::<T>()? {
                        out.push(item);
                    }
                    Ok(out)
                }
            }
            deserializer.deserialize_seq(VecVisitor(PhantomData))
        }
    }

    /// Ready-made deserializers over in-memory values.
    pub mod value {
        use super::*;

        /// A plain-string deserialization error.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct Error {
            msg: String,
        }

        impl Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.msg)
            }
        }

        impl std::error::Error for Error {}

        impl super::Error for Error {
            fn custom<T: Display>(msg: T) -> Self {
                Error { msg: msg.to_string() }
            }
        }

        impl crate::ser::Error for Error {
            fn custom<T: Display>(msg: T) -> Self {
                <Error as super::Error>::custom(msg)
            }
        }

        /// Conversion of an in-memory value into a [`Deserializer`].
        pub trait IntoDeserializer<'de, E: super::Error> {
            /// The deserializer produced.
            type Deserializer: Deserializer<'de, Error = E>;
            /// Converts `self` into a deserializer.
            fn into_deserializer(self) -> Self::Deserializer;
        }

        /// A [`Deserializer`] holding one unsigned integer.
        pub struct U64Deserializer<E> {
            value: u64,
            marker: PhantomData<E>,
        }

        impl<'de, E: super::Error> Deserializer<'de> for U64Deserializer<E> {
            type Error = E;

            fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u64(self.value)
            }

            fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                let _ = visitor;
                Err(E::custom("expected a sequence, found an integer"))
            }
        }

        macro_rules! impl_into_deserializer_uint {
            ($($t:ty),*) => {$(
                impl<'de, E: super::Error> IntoDeserializer<'de, E> for $t {
                    type Deserializer = U64Deserializer<E>;
                    fn into_deserializer(self) -> U64Deserializer<E> {
                        U64Deserializer { value: self as u64, marker: PhantomData }
                    }
                }
            )*};
        }

        impl_into_deserializer_uint!(u8, u16, u32, u64, usize);

        /// A [`Deserializer`] that yields a sequence from any iterator.
        pub struct SeqDeserializer<I, E> {
            iter: I,
            marker: PhantomData<E>,
        }

        impl<I, E> SeqDeserializer<I, E> {
            /// Wraps an iterator of in-memory values.
            pub fn new(iter: I) -> Self {
                SeqDeserializer { iter, marker: PhantomData }
            }
        }

        impl<'de, I, T, E> Deserializer<'de> for SeqDeserializer<I, E>
        where
            I: Iterator<Item = T>,
            T: IntoDeserializer<'de, E>,
            E: super::Error,
        {
            type Error = E;

            fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                let _ = visitor;
                Err(E::custom("expected an integer, found a sequence"))
            }

            fn deserialize_seq<V: Visitor<'de>>(mut self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_seq(SeqAccessImpl { de: &mut self })
            }
        }

        struct SeqAccessImpl<'a, I, E> {
            de: &'a mut SeqDeserializer<I, E>,
        }

        impl<'de, 'a, I, T, E> SeqAccess<'de> for SeqAccessImpl<'a, I, E>
        where
            I: Iterator<Item = T>,
            T: IntoDeserializer<'de, E>,
            E: super::Error,
        {
            type Error = E;

            fn next_element<U: Deserialize<'de>>(&mut self) -> Result<Option<U>, E> {
                match self.de.iter.next() {
                    Some(item) => U::deserialize(item.into_deserializer()).map(Some),
                    None => Ok(None),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::de::value::{Error as DeError, SeqDeserializer};
    use super::de::{Deserialize, SeqAccess, Visitor};
    use super::ser::{Serialize, SerializeSeq, Serializer};
    use core::fmt;

    /// A toy serializer that renders the serde data model as a string.
    struct TextSerializer;

    struct TextSeq {
        parts: Vec<String>,
    }

    impl Serializer for TextSerializer {
        type Ok = String;
        type Error = DeError;
        type SerializeSeq = TextSeq;

        fn serialize_u64(self, v: u64) -> Result<String, DeError> {
            Ok(v.to_string())
        }

        fn serialize_seq(self, _len: Option<usize>) -> Result<TextSeq, DeError> {
            Ok(TextSeq { parts: Vec::new() })
        }
    }

    impl SerializeSeq for TextSeq {
        type Ok = String;
        type Error = DeError;

        fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), DeError> {
            self.parts.push(value.serialize(TextSerializer)?);
            Ok(())
        }

        fn end(self) -> Result<String, DeError> {
            Ok(format!("[{}]", self.parts.join(",")))
        }
    }

    #[test]
    fn roundtrip_vec_u64() {
        let rendered = vec![3u64, 1, 4].serialize(TextSerializer).unwrap();
        assert_eq!(rendered, "[3,1,4]");

        let de: SeqDeserializer<_, DeError> = SeqDeserializer::new(vec![3u64, 1, 4].into_iter());
        let back = Vec::<u64>::deserialize(de).unwrap();
        assert_eq!(back, vec![3, 1, 4]);
    }

    #[test]
    fn out_of_range_integer_errors() {
        let de: SeqDeserializer<_, DeError> = SeqDeserializer::new(vec![300u64].into_iter());
        assert!(Vec::<u8>::deserialize(de).is_err());
    }

    impl<'de> Deserialize<'de> for VecU64 {
        fn deserialize<D: super::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
            struct V;
            impl<'de> Visitor<'de> for V {
                type Value = VecU64;
                fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    f.write_str("a sequence of u64")
                }
                fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<VecU64, A::Error> {
                    let mut out = Vec::new();
                    while let Some(v) = seq.next_element::<u64>()? {
                        out.push(v);
                    }
                    Ok(VecU64(out))
                }
            }
            d.deserialize_seq(V)
        }
    }

    struct VecU64(Vec<u64>);

    #[test]
    fn custom_visitor_drains_sequence() {
        let de: SeqDeserializer<_, DeError> =
            SeqDeserializer::new((0u64..5).collect::<Vec<_>>().into_iter());
        let v = VecU64::deserialize(de).unwrap();
        assert_eq!(v.0, vec![0, 1, 2, 3, 4]);
    }
}
