//! Workspace-wiring smoke test: every module re-exported by
//! [`asym_dag_rider::prelude`] (and the crate-level re-exports behind it)
//! must be importable, and a minimal 4-process symmetric configuration must
//! run a few waves end-to-end through the umbrella crate's `Cluster`
//! harness.
//!
//! This test exists to catch manifest mistakes — a dropped dependency edge,
//! a renamed crate, a module that stops being re-exported — before any
//! deeper protocol test would hit a compile error.

use asym_dag_rider::prelude::*;

/// Every name the prelude promises must resolve. (Uses, not just imports,
/// so an accidental re-export of a different type also fails.)
#[test]
fn prelude_names_resolve_and_construct() {
    // asym_quorum re-exports.
    let p: ProcessId = ProcessId::new(3);
    assert_eq!(p.index(), 3);
    let full: ProcessSet = ProcessSet::full(4);
    assert_eq!(full.len(), 4);
    let fps: FailProneSystem = FailProneSystem::threshold(4, 1);
    let afps: AsymFailProneSystem = AsymFailProneSystem::uniform(fps);
    assert!(afps.satisfies_b3());
    let aqs: AsymQuorumSystem = afps.canonical_quorums();
    assert!(aqs.validate(&afps).is_ok());
    let _qs: &QuorumSystem = aqs.of(p);
    let guild = maximal_guild(&afps, &aqs, &ProcessSet::new());
    assert_eq!(guild, Some(ProcessSet::full(4)));

    // topology module.
    let t = topology::uniform_threshold(4, 1);
    assert_eq!(t.n(), 4);

    // asym_sim re-exports: the scheduler module and fault plumbing.
    let _fifo = scheduler::Fifo;
    let _random = scheduler::Random::new(7);
    let _mode: FaultMode = FaultMode::CrashedFromStart;

    // asym_core re-exports.
    let block: Block = Block::new(vec![1, 2, 3]);
    assert_eq!(block.txs.len(), 3);
    let cfg: RiderConfig = RiderConfig::default();
    assert!(cfg.max_waves >= 1);
}

/// The umbrella crate's own re-exported crates are reachable as modules.
#[test]
fn umbrella_module_re_exports_are_wired() {
    assert_eq!(asym_dag_rider::quorum::ProcessId::new(1).index(), 1);
    let d = asym_dag_rider::crypto::sha256(b"wiring");
    assert_eq!(d, asym_dag_rider::crypto::sha256(b"wiring"));
    let _ = asym_dag_rider::sim::scheduler::Fifo;
    let v = asym_dag_rider::dag::VertexId::new(0, ProcessId::new(0));
    assert_eq!(v.round, 0);
    // broadcast, gather and core are exercised indirectly by the cluster
    // run below; here we only need their paths to resolve.
    use asym_dag_rider::broadcast as _;
    use asym_dag_rider::core as _;
    use asym_dag_rider::gather as _;
}

/// One 4-process symmetric (uniform-threshold) wave pipeline end-to-end:
/// build, run, quiesce, and order the same transactions everywhere.
#[test]
fn four_process_symmetric_wave_end_to_end() {
    let t = topology::uniform_threshold(4, 1);
    let report: ClusterReport = Cluster::new(t)
        .adversary(Adversary::Fifo)
        .waves(4)
        .blocks_per_process(1)
        .txs_per_block(2)
        .run_asymmetric();

    assert!(report.quiescent, "4-process symmetric run must quiesce");
    let members = ProcessSet::full(4);
    report.assert_total_order(&members);
    assert!(report.max_txs_ordered() > 0, "some transactions must be ordered");
    for p in &members {
        let delivered = report.delivered_txs(p);
        assert!(!delivered.is_empty(), "process {p} ordered nothing");
    }
}
