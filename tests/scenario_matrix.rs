//! Tier-1 scenario matrix: the curated topology × fault-plan × scheduler ×
//! seed sub-matrix, every cell audited by the full invariant-checker suite.
//!
//! The full sweep runs in CI (`cargo run -p asym-bench --bin
//! exp_scenarios`); this suite keeps a representative sub-matrix in
//! `cargo test` and pins the harness's own contract: a failing cell reports
//! a `(topology, fault plan, scheduler, seed)` tuple that reproduces the
//! run exactly.

use asym_scenarios::{
    checks, replay, ByzAttack, Fault, FaultPlan, Matrix, Scenario, ScenarioOutcome, SchedulerSpec,
    TopologySpec,
};

#[test]
fn curated_smoke_matrix_upholds_all_invariants() {
    let matrix = Matrix::smoke();
    // The acceptance floor: ≥3 topology families × ≥3 fault plans × ≥2
    // schedulers × multiple seeds, all under the standard checker suite.
    let families: std::collections::HashSet<_> =
        matrix.topologies.iter().map(|t| t.family()).collect();
    assert!(families.len() >= 3);
    assert!(matrix.fault_plans.len() >= 3);
    assert!(matrix.schedulers.len() >= 2);
    assert!(matrix.seeds.len() >= 2);

    let report = matrix.run();
    assert_eq!(report.unbuildable(), 0, "curated topologies must build:\n{}", report.render());
    assert_eq!(report.skipped_unfit, 0, "curated plans must fit every topology");
    report.assert_all_passed();
    assert_eq!(report.passed(), report.cells.len());
}

#[test]
fn adversarial_schedulers_and_combined_faults_cell() {
    // Axes the smoke matrix leaves to CI, pinned here once each: targeted
    // delay, a healing partition, and a two-kinds fault plan.
    let topology = TopologySpec::UniformThreshold { n: 7, f: 2 };
    let cells = [
        Scenario::new(
            topology,
            FaultPlan::none().with(5, Fault::CrashAfter(300)).with(6, Fault::Mute),
            SchedulerSpec::TargetedDelay { victims: vec![0] },
            4,
        ),
        Scenario::new(
            topology,
            FaultPlan::none(),
            SchedulerSpec::Partition {
                groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6]],
                heal_at: 800,
            },
            9,
        ),
    ];
    for scenario in cells {
        checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn all_byzantine_attacks_pass_on_two_families() {
    for attack in
        [ByzAttack::EquivocateVertices, ByzAttack::BogusStrongEdges, ByzAttack::ConfirmFlood]
    {
        for topology in [
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
        ] {
            let scenario = Scenario::new(
                topology,
                FaultPlan::none().with(3, Fault::Byzantine(attack)),
                SchedulerSpec::Random,
                6,
            );
            checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}

#[test]
fn restart_cells_recover_from_wal_without_double_delivery() {
    // The crash-recovery axis, pinned in tier 1 on two topology families
    // and two scheduler families. The standard suite already runs the
    // recovery checkers (restart_no_double_delivery,
    // restart_prefix_consistency, restart_liveness, wal_state_equivalence);
    // the explicit assertions below pin the observable recovery facts.
    let cells = [
        Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1200 }),
            SchedulerSpec::Random,
            3,
        ),
        Scenario::new(
            TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
            FaultPlan::none().with(6, Fault::Restart { crash_at: 400, recover_at: 6000 }),
            SchedulerSpec::Fifo,
            8,
        ),
    ];
    for scenario in cells {
        let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
        let restarted = outcome.restarted();
        assert_eq!(restarted.len(), 1);
        let i = restarted[0];
        assert!(outcome.recovered[i], "{}: restart never fired", scenario.cell());
        assert!(
            !outcome.outputs[i].is_empty(),
            "{}: restarted process delivered nothing",
            scenario.cell()
        );
        // The WAL really was exercised: events appended, replay clean.
        let stats = outcome.wal_stats[i].expect("restart processes carry a WAL");
        assert!(stats.records_appended > 0);
        let replay = outcome.wal_replays[i].as_ref().unwrap().as_ref().unwrap();
        assert!(replay.dag.len() > outcome.topology.n(), "replayed DAG beyond genesis");
        // Post-recovery prefix consistency with a fault-free process, and
        // no duplicates across the restart, asserted here once explicitly
        // (the checkers verified it already).
        let correct = outcome.correct.iter().next().unwrap();
        let a = &outcome.outputs[i];
        let b = &outcome.outputs[correct.index()];
        for k in 0..a.len().min(b.len()) {
            assert_eq!(a[k].id, b[k].id, "fork at {k}");
        }
        let mut seen = std::collections::HashSet::new();
        assert!(a.iter().all(|v| seen.insert(v.id)), "double delivery across restart");
    }
}

#[test]
fn multi_attacker_cells_hold_all_invariants() {
    // Two colluding equivocators on a 7-process threshold system (f = 2
    // tolerates both), under the targeted-delay scheduler — the
    // multi-attacker × adversarial-scheduler combination the ROADMAP
    // listed as uncovered.
    let two_equivocators = Scenario::new(
        TopologySpec::UniformThreshold { n: 7, f: 2 },
        FaultPlan::none()
            .with(5, Fault::Byzantine(ByzAttack::EquivocateVertices))
            .with(6, Fault::Byzantine(ByzAttack::EquivocateVertices)),
        SchedulerSpec::TargetedDelay { victims: vec![0] },
        5,
    );
    let outcome = checks::run_and_check_all(&two_equivocators).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(outcome.honest.len(), 5);
    assert!(outcome.guild.is_some(), "f=2 must survive two attackers");

    // An equivocator colluding with a mute process on the Stellar topology,
    // under a healing partition.
    let equivocator_plus_mute = Scenario::new(
        TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
        FaultPlan::none()
            .with(6, Fault::Mute)
            .with(7, Fault::Byzantine(ByzAttack::EquivocateVertices)),
        SchedulerSpec::Partition { groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], heal_at: 700 },
        2,
    );
    checks::run_and_check_all(&equivocator_plus_mute).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn forced_failure_reports_a_tuple_that_reproduces_the_run_exactly() {
    let scenario = Scenario::new(
        TopologySpec::RippleUnl { n: 10, unl: 8, f: 1 },
        FaultPlan::crash_from_start([4]),
        SchedulerSpec::Random,
        31,
    )
    .waves(5);

    // Force a failure with an impossible invariant; the harness must hand
    // back the scenario tuple.
    fn impossible(o: &ScenarioOutcome) -> Result<(), String> {
        Err(format!("forced failure after {} steps", o.steps))
    }
    let failure =
        checks::run_and_check(&scenario, &[("impossible", impossible)]).expect_err("forced");
    assert_eq!(failure.check, "impossible");
    assert_eq!(failure.scenario, scenario, "the reported tuple is the executed one");
    let report = failure.to_string();
    for needle in ["ripple(n=10,unl=8,f=1)", "crash(p4)", "random", "seed=31", "replay"] {
        assert!(report.contains(needle), "failure report missing {needle:?}:\n{report}");
    }

    // One function call on the reported tuple reproduces the run exactly.
    let original = scenario.run();
    let replayed = replay(&failure.scenario);
    assert_eq!(replayed.outputs, original.outputs);
    assert_eq!(replayed.commit_logs, original.commit_logs);
    assert_eq!(replayed.steps, original.steps);
    assert_eq!(replayed.time, original.time);
}

#[test]
fn guild_destroying_cells_are_safety_only_but_still_checked() {
    // Beyond-threshold crashes: no guild, no liveness promise — the checker
    // suite must still pass (safety is unconditional) and nothing commits.
    let scenario = Scenario::new(
        TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
        FaultPlan::crash_from_start([0, 1]),
        SchedulerSpec::Random,
        2,
    )
    .waves(4);
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.guild.is_none(), "two core crashes must destroy the guild");
}

#[test]
fn distinct_seeds_explore_distinct_schedules() {
    let mk = |seed| {
        Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            SchedulerSpec::Random,
            seed,
        )
        .run()
    };
    let (a, b) = (mk(1), mk(2));
    // Different seeds change both the schedule and the coin; identical full
    // traces would mean the seed is ignored.
    assert!(
        a.outputs != b.outputs || a.steps != b.steps,
        "seeds 1 and 2 produced identical executions"
    );
}
