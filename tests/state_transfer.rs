//! Tier-1 delivered-state-transfer cells: deep catch-up from pruned peers.
//!
//! The acceptance cells of the state-transfer PR: (a) an **all-pruned**
//! cell — every honest process prunes its delivered prefix, a deep laggard
//! recovers below everyone's floor and can only rejoin through
//! `StateOffer`/`StateRequest`/`StateChunk` — goes green under the full
//! checker suite with the laggard provably recovering *via transfer*;
//! (b) the forged-offer Byzantine variant of the same cell is rejected by
//! the kernel-matched install without costing the laggard its liveness.

use asym_scenarios::{
    checks, ByzAttack, Fault, FaultPlan, Scenario, ScenarioOutcome, SchedulerSpec, StorageSpec,
    TopologySpec, FORGED_TX,
};

/// The canonical all-pruned cell: every honest process carries a pruning
/// WAL at an aggressive cadence; process 1 crashes almost immediately and
/// recovers only at quiescence, by which point every peer's pruning floor
/// is far above the laggard's DAG.
fn all_pruned_cell(seed: u64) -> Scenario {
    Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(1, Fault::Restart { crash_at: 60, recover_at: 40_000_000 }),
        SchedulerSpec::Random,
        seed,
    )
    .snapshot_every(8)
    .wal_everywhere(true)
}

/// The laggard must have really recovered through the transfer path: a
/// plain-fetch recovery would leave every transfer counter at zero.
fn assert_recovered_via_transfer(outcome: &ScenarioOutcome, laggard: usize) {
    assert!(outcome.recovered[laggard], "{}: laggard never recovered", outcome.scenario.cell());
    let stats = outcome.transfers[laggard].expect("honest laggard has transfer counters");
    assert!(
        stats.waves_installed > 0,
        "{}: laggard recovered without installing transferred state (offers={}, requests={}, \
         segments={}) — the all-pruned cell exercised the plain fetch path instead",
        outcome.scenario.cell(),
        stats.offers_received,
        stats.requests_sent,
        stats.segments_received,
    );
    assert!(stats.deliveries_installed > 0, "installed waves must carry deliveries");
    assert!(
        !outcome.outputs[laggard].is_empty(),
        "{}: laggard delivered nothing",
        outcome.scenario.cell()
    );
    // Every peer pruned: the laggard's floor claim is real, not vacuous.
    for p in &outcome.honest {
        if p.index() == laggard {
            continue;
        }
        let replay = outcome.wal_replays[p.index()]
            .as_ref()
            .expect("all-pruned cells attach a WAL everywhere")
            .as_ref()
            .expect("peer WAL readable");
        assert!(
            replay.pruned_round > 0,
            "{}: peer {p} never pruned — the cell does not exercise deep catch-up",
            outcome.scenario.cell()
        );
    }
}

#[test]
fn deep_laggard_recovers_from_all_pruned_peers_via_state_transfer() {
    for seed in [1, 3] {
        let outcome =
            checks::run_and_check_all(&all_pruned_cell(seed)).unwrap_or_else(|e| panic!("{e}"));
        assert_recovered_via_transfer(&outcome, 1);
    }
}

#[test]
fn all_pruned_catchup_holds_on_asymmetric_topologies() {
    let cells = [
        Scenario::new(
            TopologySpec::RippleUnl { n: 7, unl: 6, f: 1 },
            FaultPlan::none().with(2, Fault::Restart { crash_at: 80, recover_at: 40_000_000 }),
            SchedulerSpec::Random,
            2,
        )
        .snapshot_every(8)
        .wal_everywhere(true),
        Scenario::new(
            TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
            FaultPlan::none().with(5, Fault::Restart { crash_at: 80, recover_at: 40_000_000 }),
            SchedulerSpec::Fifo,
            4,
        )
        .snapshot_every(8)
        .wal_everywhere(true),
    ];
    for cell in cells {
        let laggard = cell.faults.restarts().next().unwrap();
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        assert_recovered_via_transfer(&outcome, laggard);
    }
}

#[test]
fn forged_state_offer_is_rejected_and_the_laggard_still_converges() {
    // Acceptance cell (b): process 3 answers every Fetch with a forged
    // StateOffer and every StateRequest with forged chunks whose segments
    // name the *correct* coin leaders but deliver FORGED_TX blocks. A lone
    // liar can never corroborate a segment against the laggard's kernels,
    // so nothing forged is installed — and the honest offers still carry
    // the laggard to convergence. (n = 7, f = 2: the system keeps a quorum
    // while the laggard is down *and* the liar deviates, so the peers make
    // deep progress and really prune below the laggard's floor.)
    for seed in [1, 3] {
        let cell = Scenario::new(
            TopologySpec::UniformThreshold { n: 7, f: 2 },
            FaultPlan::none()
                .with(1, Fault::Restart { crash_at: 60, recover_at: 40_000_000 })
                .with(3, Fault::Byzantine(ByzAttack::ForgeStateOffers)),
            SchedulerSpec::Random,
            seed,
        )
        .snapshot_every(8)
        .wal_everywhere(true);
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        assert_recovered_via_transfer(&outcome, 1);
        let stats = outcome.transfers[1].unwrap();
        assert!(
            stats.segments_received > stats.waves_installed,
            "{}: the liar's segments never even reached the laggard",
            cell.cell()
        );
        // No forged transaction anywhere: not delivered, not stored.
        for p in &outcome.honest {
            for v in &outcome.outputs[p.index()] {
                assert!(!v.block.txs.contains(&FORGED_TX), "{p} delivered a forged block");
            }
            let dag = outcome.dags[p.index()].as_ref().unwrap();
            for r in 1..=dag.max_round().unwrap_or(0) {
                for v in dag.vertices_in_round(r) {
                    assert!(!v.block().txs.contains(&FORGED_TX), "{p} stores a forged vertex");
                }
            }
        }
    }
}

#[test]
fn transferred_prefix_is_bit_identical_with_an_honest_prefix() {
    // The state_transfer_consistency checker enforces this inside the
    // suite; pin the observable here too so a checker regression cannot
    // silently drop the claim: the laggard's outputs are a full-equality
    // prefix of the fault-free outputs (ids, blocks and ordering waves).
    let outcome = checks::run_and_check_all(&all_pruned_cell(1)).unwrap_or_else(|e| panic!("{e}"));
    let laggard = &outcome.outputs[1];
    let donor = &outcome.outputs[0];
    let common = laggard.len().min(donor.len());
    assert!(common > 0);
    assert_eq!(laggard[..common], donor[..common], "transferred prefix must match bit-for-bit");
}

#[test]
fn file_backed_all_pruned_cell_survives_the_round_trip() {
    // The same deep-catch-up flow with every WAL on a real tempdir
    // filesystem: transfer state (DeliveredBlock residue, wave tags) must
    // survive the file codec round-trip too.
    let cell = all_pruned_cell(3).storage(StorageSpec::File);
    let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
    assert_recovered_via_transfer(&outcome, 1);
}
