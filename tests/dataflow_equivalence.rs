//! Generalized MSG2: on *random* single-quorum-per-process systems (not just
//! Figure 1), the message-passing Algorithm 2 under the Appendix-A-style
//! schedule produces exactly the U sets the Listing-1 dataflow predicts.
//! This pins the protocol implementation to the paper's abstract model on a
//! whole family of systems.

use asym_scenarios::pid;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use asym_dag_rider::prelude::*;
use asym_gather::{dataflow, Lemma32Scheduler, NaiveGather, ValueSet};

/// Random single-quorum-per-process system with pairwise-intersecting
/// quorums (majority size), so every receiver can arb-deliver its quorum's
/// values under the filter.
fn random_single_quorum_system(n: usize, seed: u64) -> Option<(AsymQuorumSystem, Vec<ProcessSet>)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let q = n / 2 + 1;
    let choice: Vec<ProcessSet> = (0..n)
        .map(|_| {
            let mut ids: Vec<usize> = (0..n).collect();
            ids.shuffle(&mut rng);
            ids.into_iter().take(q).collect()
        })
        .collect();
    let systems: Result<Vec<QuorumSystem>, _> =
        choice.iter().map(|s| QuorumSystem::explicit(n, vec![s.clone()])).collect();
    let qs = AsymQuorumSystem::new(systems.ok()?).ok()?;
    Some((qs, choice))
}

/// Runs Algorithm 2 under the quorum-only schedule and returns the support
/// of each delivered U set.
fn protocol_u_sets(qs: &AsymQuorumSystem, choice: &[ProcessSet]) -> Vec<ProcessSet> {
    let n = choice.len();
    let procs: Vec<NaiveGather<u64>> =
        (0..n).map(|i| NaiveGather::new(pid(i), qs.clone())).collect();
    let mut sim = Simulation::new(procs, Lemma32Scheduler::new(choice.to_vec()));
    for i in 0..n {
        sim.input(pid(i), i as u64);
    }
    assert!(sim.run(50_000_000).quiescent);
    (0..n)
        .map(|i| {
            let out: &[ValueSet<u64>] = sim.outputs(pid(i));
            assert_eq!(out.len(), 1, "process {i} must deliver exactly once");
            out[0].keys().copied().collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn protocol_matches_dataflow_on_random_systems(
        n in 4usize..9,
        seed in 0u64..10_000,
    ) {
        let Some((qs, choice)) = random_single_quorum_system(n, seed) else {
            return Ok(());
        };
        let predicted = dataflow::three_rounds(&choice);
        let observed = protocol_u_sets(&qs, &choice);
        for i in 0..n {
            prop_assert_eq!(
                &observed[i],
                &predicted.u[i],
                "U set of p{} diverges from Listing-1 dataflow (n={}, seed={})",
                i, n, seed
            );
        }
        // And the paper's < 16 remark: these systems always reach a core.
        prop_assert!(dataflow::has_common_core(&choice));
    }
}

#[test]
fn protocol_matches_dataflow_on_shifted_window_systems() {
    // Deterministic structured family: windows of size ⌈n/2⌉+1 at stride 1.
    for n in [5usize, 8, 11] {
        let q = n / 2 + 1;
        let choice: Vec<ProcessSet> =
            (0..n).map(|i| (0..q).map(|k| (i + k) % n).collect()).collect();
        let systems: Vec<QuorumSystem> =
            choice.iter().map(|s| QuorumSystem::explicit(n, vec![s.clone()]).unwrap()).collect();
        let qs = AsymQuorumSystem::new(systems).unwrap();
        let predicted = dataflow::three_rounds(&choice);
        let observed = protocol_u_sets(&qs, &choice);
        assert_eq!(observed, predicted.u, "n={n}");
    }
}
