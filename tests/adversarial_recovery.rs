//! Tier-1 adversarial-recovery cells: recovery treated as an attack
//! surface. Each test pins one of the acceptance cells of the
//! adversarial-recovery PR: (a) a Byzantine peer lying *to* a recovering
//! process, (b) a Byzantine process lying during its *own* recovery,
//! (c) powerloss-injected `FileStorage` restarts, plus the snapshot-cadence
//! sweep (including the `0 = never` edge), WAL pruning equivalence and the
//! hard-starvation scheduler axis.

use asym_scenarios::{
    checks, Fault, FaultPlan, Scenario, SchedulerSpec, StorageSpec, TopologySpec, FORGED_TX,
};
use asym_scenarios::{ByzAttack, ScenarioOutcome};

fn forge_cell() -> Scenario {
    Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none()
            .with(1, Fault::Restart { crash_at: 150, recover_at: 1200 })
            .with(3, Fault::Byzantine(ByzAttack::ForgeFetchReplies)),
        SchedulerSpec::Random,
        3,
    )
}

/// No honest process may hold (in DAG or outputs) the forged transaction
/// the fetch-forger plants in vertices attributed to honest sources.
fn assert_no_forgery_stuck(outcome: &ScenarioOutcome) {
    for p in &outcome.honest {
        let dag = outcome.dags[p.index()].as_ref().unwrap();
        for r in 1..=dag.max_round().unwrap_or(0) {
            for v in dag.vertices_in_round(r) {
                assert!(
                    !v.block().txs.contains(&FORGED_TX),
                    "{p} stores forged vertex {} — the fetch defense failed",
                    v.id()
                );
            }
        }
        for v in &outcome.outputs[p.index()] {
            assert!(!v.block.txs.contains(&FORGED_TX), "{p} delivered a forged block");
        }
    }
}

#[test]
fn byzantine_peer_lying_to_a_recovering_process_changes_nothing() {
    // Acceptance cell (a): process 1 crashes and recovers through the
    // Fetch/FetchReply path while process 3 answers every Fetch with
    // forged vertices (attributed to honest processes, carrying FORGED_TX)
    // and false confirmed-wave claims. The kernel-matched acceptance must
    // keep every forgery out, and the recovering process must still regain
    // liveness.
    let outcome = checks::run_and_check_all(&forge_cell()).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.recovered[1], "the lied-to process must still recover");
    assert!(!outcome.outputs[1].is_empty(), "and still deliver (liveness despite the liar)");
    assert_no_forgery_stuck(&outcome);
}

#[test]
fn forged_fetch_replies_fail_under_every_tier1_scheduler() {
    for scheduler in
        [SchedulerSpec::Fifo, SchedulerSpec::Random, SchedulerSpec::Starve { victims: vec![0] }]
    {
        let mut cell = forge_cell();
        cell.scheduler = scheduler;
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        assert_no_forgery_stuck(&outcome);
    }
}

#[test]
fn byzantine_process_lying_during_its_own_recovery_is_contained() {
    // Acceptance cell (b): the attacker equivocates at start, crashes, and
    // on revival re-SENDs its round-1 copies *swapped* (every peer now
    // sees the copy it did not see before) plus false CONFIRM
    // re-announcements. Reliable broadcast + the cross-DAG checker must
    // keep at most one copy alive, identical everywhere.
    let cells = [
        Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(
                3,
                Fault::ByzantineRestart {
                    attack: ByzAttack::EquivocateVertices,
                    crash_at: 40,
                    recover_at: 600,
                },
            ),
            SchedulerSpec::Random,
            2,
        ),
        Scenario::new(
            TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
            FaultPlan::none().with(
                7,
                Fault::ByzantineRestart {
                    attack: ByzAttack::EquivocateVertices,
                    crash_at: 80,
                    recover_at: 2000,
                },
            ),
            SchedulerSpec::Fifo,
            5,
        ),
    ];
    for cell in cells {
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        let attacker = cell.faults.byz_restarts().next().unwrap().0;
        assert!(
            outcome.restart_fired[attacker],
            "{}: the attacker's restart window never opened — the recovery lie was not \
             exercised",
            cell.cell()
        );
        // At most one equivocated copy is ever ordered, and the same one
        // everywhere (prefix_consistency compares blocks too); here we pin
        // the visible half: nobody delivered both 666 and 999.
        for p in &outcome.honest {
            let txs: Vec<u64> =
                outcome.outputs[p.index()].iter().flat_map(|o| o.block.txs.clone()).collect();
            assert!(
                !(txs.contains(&666) && txs.contains(&999)),
                "{}: {p} delivered both equivocated copies",
                cell.cell()
            );
        }
    }
}

#[test]
fn honest_recovery_races_a_lying_recovery() {
    // Both at once: an honest process replays its WAL while the attacker
    // "recovers" by broadcasting forged fetch replies at everyone.
    let cell = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1300 }).with(
            3,
            Fault::ByzantineRestart {
                attack: ByzAttack::ForgeFetchReplies,
                crash_at: 100,
                recover_at: 1000,
            },
        ),
        SchedulerSpec::Random,
        7,
    );
    let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.recovered[1]);
    assert_no_forgery_stuck(&outcome);
}

#[test]
fn powerloss_file_storage_restart_recovers_a_consistent_prefix() {
    // Acceptance cell (c): a real-tempdir FileStorage WAL, damaged at the
    // crash by the deterministic powerloss injector (torn final append /
    // dropped unsynced suffix / reverted snapshot rename, respecting the
    // process's fsync barriers), must still recover into a state that
    // passes the whole suite — including WAL/state equivalence re-replayed
    // at the end of the run.
    for seed in [3, 8] {
        let cell = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1200 }),
            SchedulerSpec::Random,
            seed,
        )
        .storage(StorageSpec::PowerlossFile { seed: 13 });
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.recovered[1], "seed {seed}: powerloss restart must still recover");
        assert!(!outcome.outputs[1].is_empty(), "seed {seed}: and still deliver");
        let stats = outcome.wal_stats[1].expect("file WAL attached");
        assert!(stats.records_appended > 0);
    }
}

#[test]
fn torn_tail_repair_regression_from_the_full_sweep() {
    // Exact failing cell tuples from the first full sweep of this PR: the
    // powerloss left a torn tail, recovery read past it fine, but the
    // first post-recovery append fused with the torn bytes into a
    // checksum-mismatching frame — `wal_state_equivalence` reported "WAL
    // unreadable: corrupt record". Fixed by `Wal::repair_torn_tail` in
    // `restart_from_log`; these cells must now pass the whole suite.
    for seed in [1, 2] {
        let cell = Scenario::new(
            TopologySpec::RandomSlices { n: 9, slice: 7, f: 1, seed: 23 },
            FaultPlan::new([
                (1, Fault::Restart { crash_at: 200, recover_at: 1500 }),
                (3, Fault::Crash),
            ]),
            SchedulerSpec::TargetedDelay { victims: vec![0] },
            seed,
        )
        .waves(5)
        .storage(StorageSpec::PowerlossFile { seed: 13 });
        checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn snapshot_cadence_is_a_swept_axis_including_never() {
    // Satellite: the runner no longer hardcodes `with_snapshot_every(64)`.
    // The same restart cell under cadence 0 (never snapshot), 8
    // (aggressive) and 64 (default) must all pass; cadence 0 must produce
    // zero snapshots and no pruning, cadence 8 must produce both.
    let base = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1200 }),
        SchedulerSpec::Random,
        3,
    );
    let never = base.clone().snapshot_every(0);
    let outcome = checks::run_and_check_all(&never).unwrap_or_else(|e| panic!("{e}"));
    let stats = outcome.wal_stats[1].unwrap();
    assert_eq!(stats.snapshots_written, 0, "cadence 0 must never snapshot");
    let replay = outcome.wal_replays[1].as_ref().unwrap().as_ref().unwrap();
    assert_eq!(replay.pruned_round, 0, "no snapshot, no pruning");

    let aggressive = base.clone().snapshot_every(8);
    let outcome = checks::run_and_check_all(&aggressive).unwrap_or_else(|e| panic!("{e}"));
    let stats = outcome.wal_stats[1].unwrap();
    assert!(stats.snapshots_written > 0, "cadence 8 must compact");
    let replay = outcome.wal_replays[1].as_ref().unwrap().as_ref().unwrap();
    assert!(replay.pruned_round > 0, "pruning rides every snapshot");

    checks::run_and_check_all(&base).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn pruned_and_unpruned_cells_agree_on_what_fault_free_processes_deliver() {
    let base = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1200 }),
        SchedulerSpec::Random,
        3,
    )
    .snapshot_every(8);
    let pruned = checks::run_and_check_all(&base).unwrap_or_else(|e| panic!("{e}"));
    let unpruned =
        checks::run_and_check_all(&base.clone().prune_wal(false)).unwrap_or_else(|e| panic!("{e}"));
    // Pruning may change the restarted process's own weak edges, but the
    // delivered transaction sets of the run must not lose anything.
    let txs = |o: &ScenarioOutcome, i: usize| {
        let mut t: Vec<u64> = o.outputs[i].iter().flat_map(|v| v.block.txs.clone()).collect();
        t.sort_unstable();
        t
    };
    assert_eq!(txs(&pruned, 0), txs(&unpruned, 0));
    // And the pruned cell really did prune while the unpruned one did not.
    let floor =
        |o: &ScenarioOutcome| o.wal_replays[1].as_ref().unwrap().as_ref().unwrap().pruned_round;
    assert!(floor(&pruned) > 0);
    assert_eq!(floor(&unpruned), 0);
}

#[test]
fn restart_under_churn_overlapping_down_windows() {
    // ROADMAP gap "restart under churn", half one: two processes whose
    // down-windows overlap — p1 is still down when p2 crashes, and p2
    // recovers (replays, refetches) while p1 is itself mid-recovery, so
    // each one's catch-up traffic races the other's. Pinned across the
    // tier-1 schedulers; the full suite (incl. both restart checkers and
    // WAL/state equivalence for both processes) must hold.
    for (scheduler, seed) in [
        (SchedulerSpec::Random, 3),
        (SchedulerSpec::Fifo, 1),
        (SchedulerSpec::TargetedDelay { victims: vec![0] }, 2),
    ] {
        let cell = Scenario::new(
            TopologySpec::UniformThreshold { n: 7, f: 2 },
            FaultPlan::new([
                (1, Fault::Restart { crash_at: 100, recover_at: 1100 }),
                (2, Fault::Restart { crash_at: 300, recover_at: 900 }),
            ]),
            scheduler,
            seed,
        );
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        for i in [1, 2] {
            assert!(outcome.restart_fired[i], "{}: p{i}'s window never opened", cell.cell());
            assert!(outcome.recovered[i], "{}: p{i} never replayed its log", cell.cell());
            assert!(!outcome.outputs[i].is_empty(), "{}: p{i} delivered nothing", cell.cell());
        }
    }
}

#[test]
fn restart_races_the_partition_heal() {
    // ROADMAP gap "restart under churn", half two: a restart whose
    // recover_at lands right at the partition's heal step — the replayed
    // process rejoins into a network still flushing cross-group backlog.
    // Swept just-before, at, and just-after the heal.
    for recover_at in [590, 600, 610] {
        let cell = Scenario::new(
            TopologySpec::UniformThreshold { n: 7, f: 2 },
            FaultPlan::none().with(1, Fault::Restart { crash_at: 100, recover_at }),
            SchedulerSpec::Partition {
                groups: vec![vec![0, 1, 2], vec![3, 4, 5, 6]],
                heal_at: 600,
            },
            5,
        );
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        if outcome.restart_fired[1] {
            assert!(outcome.recovered[1], "{}: fired but never replayed", cell.cell());
        }
    }
}

#[test]
fn starvation_scheduler_cells_pass_after_the_flush() {
    // Satellite: the `scheduler::Filtered`-style starvation axis was
    // untestable because it never quiesces; the runner now flushes starved
    // traffic before the checkers run. One plain cell and one combined
    // with a restart fault.
    let cells = [
        Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            SchedulerSpec::Starve { victims: vec![0] },
            2,
        ),
        Scenario::new(
            TopologySpec::RippleUnl { n: 7, unl: 6, f: 1 },
            FaultPlan::none().with(2, Fault::Restart { crash_at: 120, recover_at: 900 }),
            SchedulerSpec::Starve { victims: vec![0] },
            4,
        ),
    ];
    for cell in cells {
        let outcome = checks::run_and_check_all(&cell).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.quiescent, "{}: flush must drain the starved bag", cell.cell());
        // The victim was really starved during the run proper, yet ends
        // with the same delivered prefix as everyone else (checked by
        // prefix_consistency); liveness for it comes from the flush.
        assert!(!outcome.outputs[0].is_empty(), "{}: victim delivered nothing", cell.cell());
    }
}
