//! Byzantine-behaviour tests: protocol-level attackers (equivocating vertex
//! creators, invalid strong edges, control-ladder flooding) against honest
//! asymmetric DAG-Rider processes. Reliable broadcast and the line-140
//! validation must neutralize them: safety is preserved, and the honest
//! majority keeps committing.
//!
//! The attacker machinery ([`asym_scenarios::ByzProcess`]) and the generic
//! invariants (prefix consistency, no fabrication, DAG well-formedness,
//! guild liveness, determinism) live in `asym-scenarios`; this suite keeps
//! only the attack-specific expectations.

use asym_scenarios::{checks, pid, ByzAttack, Fault, FaultPlan, Scenario, ScenarioOutcome};
use asym_scenarios::{SchedulerSpec, TopologySpec};

use asym_dag_rider::dag::VertexId;

/// Runs one attack on `threshold(4,1)` with p3 Byzantine, under the full
/// checker suite, and returns the outcome for attack-specific assertions.
fn run_attack(attack: ByzAttack, seed: u64) -> ScenarioOutcome {
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(3, Fault::Byzantine(attack)),
        SchedulerSpec::Random,
        seed,
    );
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    // Liveness around the attacker: the three honest processes form the
    // guild, and the guild-liveness checker has already demanded progress —
    // pin it explicitly for this suite's claim.
    for p in &outcome.correct {
        assert!(!outcome.outputs[p.index()].is_empty(), "{attack:?}: honest {p} stalled");
    }
    outcome
}

#[test]
fn equivocating_vertex_creator_cannot_fork() {
    for seed in 0..5 {
        let outcome = run_attack(ByzAttack::EquivocateVertices, seed);
        // At most one of the two equivocated blocks may ever be ordered, and
        // it must be the same one everywhere (or none).
        let mut seen: Option<u64> = None;
        for o in outcome.correct.iter().flat_map(|p| &outcome.outputs[p.index()]) {
            if o.id == VertexId::new(1, pid(3)) {
                let tx = o.block.txs[0];
                assert!(tx == 666 || tx == 999);
                match seen {
                    None => seen = Some(tx),
                    Some(prev) => assert_eq!(prev, tx, "seed {seed}: forked equivocation"),
                }
            }
        }
    }
}

#[test]
fn bogus_strong_edges_are_rejected() {
    for seed in 0..5 {
        let outcome = run_attack(ByzAttack::BogusStrongEdges, seed);
        // The invalid vertex never enters any honest order or any honest DAG
        // (the dag_well_formed checker would also flag the latter).
        for p in &outcome.correct {
            for o in &outcome.outputs[p.index()] {
                assert!(o.block.txs != vec![31337], "seed {seed}: invalid vertex ordered");
            }
            let dag = outcome.dags[p.index()].as_ref().unwrap();
            assert!(
                !dag.contains(VertexId::new(2, pid(3))),
                "seed {seed}: {p} inserted the quorum-less vertex"
            );
        }
    }
}

#[test]
fn confirm_flooding_does_not_poison_liveness_or_safety() {
    for seed in 0..5 {
        run_attack(ByzAttack::ConfirmFlood, seed);
    }
}

#[test]
fn attacks_do_not_suppress_honest_blocks() {
    let outcome = run_attack(ByzAttack::EquivocateVertices, 9);
    // Every transaction injected by an honest process must be ordered by
    // every honest process within the wave budget.
    let honest_txs: Vec<u64> = outcome
        .correct
        .iter()
        .flat_map(|p| outcome.injected[p.index()].iter().flat_map(|b| b.txs.clone()))
        .collect();
    assert!(!honest_txs.is_empty());
    for p in &outcome.correct {
        let delivered = outcome.delivered_txs(p);
        for tx in &honest_txs {
            assert!(delivered.contains(tx), "honest {p} lost honest tx {tx}");
        }
    }
}

#[test]
fn attacks_replay_bit_for_bit() {
    // Byzantine cells are as reproducible as crash cells — the property the
    // matrix repro tuples rely on.
    for attack in
        [ByzAttack::EquivocateVertices, ByzAttack::BogusStrongEdges, ByzAttack::ConfirmFlood]
    {
        let a = run_attack(attack, 11);
        let b = run_attack(attack, 11);
        assert_eq!(a.outputs, b.outputs, "{attack:?}");
        assert_eq!(a.commit_logs, b.commit_logs, "{attack:?}");
    }
}
