//! Byzantine-behaviour tests: protocol-level attackers (equivocating vertex
//! creators, invalid strong edges) against honest asymmetric DAG-Rider
//! processes. Reliable broadcast and the line-140 validation must neutralize
//! them: safety is preserved, and the honest majority keeps committing.

use asym_dag_rider::broadcast::BcastMsg;
use asym_dag_rider::core::{AsymDagRider, AsymRiderMsg, Block, OrderedVertex, RiderConfig};
use asym_dag_rider::dag::{Vertex, VertexId};
use asym_dag_rider::prelude::*;
use asym_sim::{Context, Protocol};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A Byzantine consensus participant speaking the honest message type.
#[derive(Clone, Debug)]
struct ByzantineRider {
    me: ProcessId,
    n: usize,
    attack: Attack,
    sent: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Attack {
    /// Send *different* round-1 vertices to even and odd processes under the
    /// same arb instance (equivocation).
    EquivocateVertices,
    /// Broadcast a round-2 vertex whose strong edges reference only itself —
    /// no quorum, violating the line-140 validity rule.
    BogusStrongEdges,
    /// Flood CONFIRM messages for far-future waves (state-poisoning probe).
    ConfirmFlood,
}

impl Protocol for ByzantineRider {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        if self.sent {
            return;
        }
        self.sent = true;
        match self.attack {
            Attack::EquivocateVertices => {
                let full: ProcessSet = (0..self.n).collect();
                for i in 0..self.n {
                    let block = Block::new(vec![if i % 2 == 0 { 666 } else { 999 }]);
                    let v = Vertex::new(self.me, 1, block, full.clone(), vec![]);
                    ctx.send(pid(i), AsymRiderMsg::Arb(BcastMsg::Send { tag: 1, value: v }));
                }
            }
            Attack::BogusStrongEdges => {
                let v = Vertex::new(
                    self.me,
                    2,
                    Block::new(vec![31337]),
                    ProcessSet::singleton(self.me),
                    vec![],
                );
                ctx.broadcast(AsymRiderMsg::Arb(BcastMsg::Send { tag: 2, value: v }));
            }
            Attack::ConfirmFlood => {
                for wave in 1..50 {
                    ctx.broadcast(AsymRiderMsg::Confirm { wave });
                    ctx.broadcast(AsymRiderMsg::Ready { wave });
                }
            }
        }
    }

    fn on_message(
        &mut self,
        _from: ProcessId,
        _msg: Self::Msg,
        _ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        // Stays silent after the attack: worst case is crash + attack.
    }
}

/// Either an honest or a Byzantine participant (one simulation, one type).
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
enum Party {
    Honest(AsymDagRider),
    Byzantine(ByzantineRider),
}

impl Protocol for Party {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        match self {
            Party::Honest(p) => p.on_start(ctx),
            Party::Byzantine(p) => p.on_start(ctx),
        }
    }

    fn on_input(&mut self, input: Block, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        if let Party::Honest(p) = self {
            p.on_input(input, ctx)
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match self {
            Party::Honest(p) => p.on_message(from, msg, ctx),
            Party::Byzantine(p) => p.on_message(from, msg, ctx),
        }
    }
}

fn run_attack(attack: Attack, seed: u64) -> Vec<Vec<OrderedVertex>> {
    let n = 4;
    let t = topology::uniform_threshold(n, 1);
    let config = RiderConfig { max_waves: 6, ..Default::default() };
    let procs: Vec<Party> = (0..n)
        .map(|i| {
            if i == 3 {
                Party::Byzantine(ByzantineRider { me: pid(3), n, attack, sent: false })
            } else {
                Party::Honest(AsymDagRider::new(pid(i), t.quorums.clone(), 42, config))
            }
        })
        .collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    for i in 0..3 {
        sim.input(pid(i), Block::new(vec![100 + i as u64]));
    }
    assert!(sim.run(200_000_000).quiescent, "attack {attack:?} seed {seed}");
    (0..n).map(|i| sim.outputs(pid(i)).to_vec()).collect()
}

fn assert_honest_safe_and_live(outputs: &[Vec<OrderedVertex>], attack: Attack) {
    // Prefix-consistent across honest processes.
    for a in &outputs[..3] {
        for b in &outputs[..3] {
            let common = a.len().min(b.len());
            for k in 0..common {
                assert_eq!(a[k].id, b[k].id, "{attack:?}: order forked at {k}");
            }
        }
    }
    for (i, o) in outputs[..3].iter().enumerate() {
        assert!(!o.is_empty(), "{attack:?}: honest p{i} stalled");
    }
}

#[test]
fn equivocating_vertex_creator_cannot_fork() {
    for seed in 0..5 {
        let outputs = run_attack(Attack::EquivocateVertices, seed);
        assert_honest_safe_and_live(&outputs, Attack::EquivocateVertices);
        // At most one of the two equivocated blocks may ever be ordered, and
        // it must be the same one everywhere (or none).
        let mut seen: Option<u64> = None;
        for o in outputs[..3].iter().flatten() {
            if o.id == VertexId::new(1, pid(3)) {
                let tx = o.block.txs[0];
                assert!(tx == 666 || tx == 999);
                match seen {
                    None => seen = Some(tx),
                    Some(prev) => assert_eq!(prev, tx, "seed {seed}: forked equivocation"),
                }
            }
        }
    }
}

#[test]
fn bogus_strong_edges_are_rejected() {
    for seed in 0..5 {
        let outputs = run_attack(Attack::BogusStrongEdges, seed);
        assert_honest_safe_and_live(&outputs, Attack::BogusStrongEdges);
        // The invalid vertex never enters any honest order.
        for o in outputs[..3].iter().flatten() {
            assert!(o.block.txs != vec![31337], "seed {seed}: invalid vertex ordered");
        }
    }
}

#[test]
fn confirm_flooding_does_not_poison_liveness_or_safety() {
    for seed in 0..5 {
        let outputs = run_attack(Attack::ConfirmFlood, seed);
        assert_honest_safe_and_live(&outputs, Attack::ConfirmFlood);
    }
}

#[test]
fn attacks_do_not_suppress_honest_blocks() {
    let outputs = run_attack(Attack::EquivocateVertices, 9);
    for (i, o) in outputs[..3].iter().enumerate() {
        let txs: Vec<u64> = o.iter().flat_map(|v| v.block.txs.clone()).collect();
        for tx in 100..103 {
            assert!(txs.contains(&tx), "honest p{i} lost honest tx {tx}");
        }
    }
}
