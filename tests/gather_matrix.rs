//! Integration matrix for the constant-round asymmetric gather
//! (Algorithm 3): common core + agreement + validity across topologies,
//! adversaries and failure patterns, through the public API.

use asym_dag_rider::prelude::*;
use asym_gather::{check_pairwise_agreement, find_common_core, AsymGather, ValueSet};
use asym_scenarios::pid;

/// Runs Algorithm 3 on `topo` with `crashed` processes and verifies
/// Definition 3.1 for the maximal guild.
fn check_gather(topo: &topology::Topology, crashed: &[usize], seed: u64) {
    let n = topo.n();
    let faulty: ProcessSet = crashed.iter().copied().collect();
    let guild = maximal_guild(&topo.fail_prone, &topo.quorums, &faulty)
        .unwrap_or_else(|| panic!("{}: no guild for faulty={faulty}", topo.name));

    let procs: Vec<AsymGather<u64>> =
        (0..n).map(|i| AsymGather::new(pid(i), topo.quorums.clone())).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    for c in crashed {
        sim = sim.with_fault(pid(*c), FaultMode::CrashedFromStart);
    }
    for i in 0..n {
        if !crashed.contains(&i) {
            sim.input(pid(i), 900 + i as u64);
        }
    }
    assert!(sim.run(300_000_000).quiescent, "{} seed {seed}", topo.name);

    let mut outputs: Vec<(ProcessId, ValueSet<u64>)> = Vec::new();
    for g in &guild {
        let out = sim.outputs(g);
        assert_eq!(out.len(), 1, "{}: guild member {g} must ag-deliver", topo.name);
        outputs.push((g, out[0].clone()));
    }
    let refs: Vec<(ProcessId, &ValueSet<u64>)> = outputs.iter().map(|(p, u)| (*p, u)).collect();
    check_pairwise_agreement(&refs).expect("agreement");
    for (_, u) in &refs {
        for (p, v) in u.iter() {
            assert_eq!(*v, 900 + p.index() as u64, "validity for {p}");
        }
    }
    assert!(
        find_common_core(&topo.quorums, &guild, &refs).is_some(),
        "{} seed {seed}: common core missing",
        topo.name
    );
}

#[test]
fn thresholds_without_faults() {
    for seed in 0..3 {
        check_gather(&topology::uniform_threshold(4, 1), &[], seed);
        check_gather(&topology::uniform_threshold(7, 2), &[], seed);
    }
}

#[test]
fn thresholds_with_max_crashes() {
    check_gather(&topology::uniform_threshold(4, 1), &[1], 1);
    check_gather(&topology::uniform_threshold(7, 2), &[2, 4], 2);
    check_gather(&topology::uniform_threshold(10, 3), &[0, 5, 9], 3);
}

#[test]
fn ripple_and_stellar_topologies() {
    check_gather(&topology::ripple_unl(10, 8, 1), &[], 5);
    check_gather(&topology::ripple_unl(10, 8, 1), &[7], 6);
    check_gather(&topology::stellar_tiers(12, 4, 1), &[3], 7);
    check_gather(&topology::stellar_tiers(12, 4, 1), &[10, 11], 8);
}

#[test]
fn random_b3_topologies() {
    for seed in [13u64, 17, 23] {
        if let Some(t) = topology::random_slices(8, 6, 1, seed, 200) {
            check_gather(&t, &[], seed);
        }
    }
}

#[test]
fn mixed_threshold_topology_with_crash() {
    let mut systems = vec![FailProneSystem::threshold(7, 2); 7];
    systems[3] = FailProneSystem::threshold(7, 1);
    let fail_prone = AsymFailProneSystem::new(systems).unwrap();
    assert!(fail_prone.satisfies_b3());
    let quorums = fail_prone.canonical_quorums();
    let t = topology::Topology { name: "mixed".into(), fail_prone, quorums };
    check_gather(&t, &[6], 4);
}

#[test]
fn ablation_no_amplification_still_safe_when_it_delivers() {
    // With kernel amplification disabled (ablation ABL) the protocol may in
    // principle lose liveness, but anything it delivers must still satisfy
    // agreement and the common-core property when all deliver.
    use asym_gather::AsymGatherConfig;
    let topo = topology::uniform_threshold(7, 2);
    let cfg = AsymGatherConfig { kernel_amplification: false };
    for seed in 0..3 {
        let procs: Vec<AsymGather<u64>> =
            (0..7).map(|i| AsymGather::with_config(pid(i), topo.quorums.clone(), cfg)).collect();
        let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
        for i in 0..7 {
            sim.input(pid(i), i as u64);
        }
        assert!(sim.run(100_000_000).quiescent);
        let delivered: Vec<(ProcessId, ValueSet<u64>)> = (0..7)
            .filter_map(|i| sim.outputs(pid(i)).first().map(|u| (pid(i), u.clone())))
            .collect();
        let refs: Vec<(ProcessId, &ValueSet<u64>)> =
            delivered.iter().map(|(p, u)| (*p, u)).collect();
        check_pairwise_agreement(&refs).expect("agreement holds regardless");
        if refs.len() == 7 {
            let guild = ProcessSet::full(7);
            assert!(find_common_core(&topo.quorums, &guild, &refs).is_some());
        }
    }
}
