//! Integration matrix: asymmetric atomic broadcast properties
//! (Definition 4.1 — agreement, validity, total order, integrity) across
//! topologies × adversaries × failure patterns.

use asym_dag_rider::prelude::*;

/// Runs one configuration and checks every Definition-4.1 property that is
/// decidable on a bounded execution.
fn check(topo: topology::Topology, adversary: Adversary, crashed: &[usize], waves: u64) {
    let name = topo.name.clone();
    let report = Cluster::new(topo)
        .adversary(adversary)
        .crash(crashed.iter().copied())
        .waves(waves)
        .blocks_per_process(2)
        .txs_per_block(3)
        .run_asymmetric();
    assert!(report.quiescent, "{name}: execution must quiesce");
    let guild = report.guild.clone().unwrap_or_else(|| panic!("{name}: no guild"));

    // Total order among guild members.
    report.assert_total_order(&guild);

    // Progress: every guild member commits something.
    for g in &guild {
        assert!(!report.outputs[g.index()].is_empty(), "{name}: guild member {g} ordered nothing");
    }

    // Integrity: no duplicates within any process's output.
    for (i, out) in report.outputs.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for o in out {
            assert!(seen.insert(o.id), "{name}: p{i} delivered {} twice", o.id);
        }
    }

    // Agreement (bounded form): a vertex delivered by one guild member and
    // lying within another's output length must appear there too — implied
    // by prefix consistency, checked directly for belt and braces.
    let mut best: Option<(usize, usize)> = None;
    for g in &guild {
        let len = report.outputs[g.index()].len();
        if best.is_none_or(|(_, l)| len > l) {
            best = Some((g.index(), len));
        }
    }
    let (best_idx, _) = best.unwrap();
    for g in &guild {
        let out = &report.outputs[g.index()];
        for (k, o) in out.iter().enumerate() {
            assert_eq!(o.id, report.outputs[best_idx][k].id, "{name}: agreement violated at {k}");
        }
    }
}

#[test]
fn threshold_4_random() {
    check(topology::uniform_threshold(4, 1), Adversary::Random(1), &[], 6);
}

#[test]
fn threshold_4_fifo_with_crash() {
    check(topology::uniform_threshold(4, 1), Adversary::Fifo, &[2], 8);
}

#[test]
fn threshold_7_latency_two_crashes() {
    check(
        topology::uniform_threshold(7, 2),
        Adversary::Latency { seed: 9, min: 1, max: 40 },
        &[0, 1],
        8,
    );
}

#[test]
fn threshold_10_targeted_delay() {
    check(
        topology::uniform_threshold(10, 3),
        Adversary::TargetedDelay(ProcessSet::from_indices([7, 8, 9])),
        &[],
        5,
    );
}

#[test]
fn ripple_unl_random() {
    check(topology::ripple_unl(10, 8, 1), Adversary::Random(4), &[], 6);
}

#[test]
fn ripple_unl_crash_and_latency() {
    check(topology::ripple_unl(10, 8, 1), Adversary::Latency { seed: 2, min: 5, max: 25 }, &[3], 8);
}

#[test]
fn stellar_tiers_leaf_and_core_crash() {
    check(topology::stellar_tiers(10, 4, 1), Adversary::Random(6), &[2, 9], 8);
}

#[test]
fn figure1_counterexample_topology() {
    let topo = topology::Topology {
        name: "figure-1".into(),
        fail_prone: asym_dag_rider::quorum::counterexample::fig1_fail_prone(),
        quorums: asym_dag_rider::quorum::counterexample::fig1_quorums(),
    };
    check(topo, Adversary::Random(8), &[], 5);
}

#[test]
fn random_slice_topology() {
    let topo = asym_dag_rider::quorum::topology::random_slices(8, 6, 1, 11, 200)
        .expect("a B3 random topology exists for these parameters");
    check(topo, Adversary::Random(12), &[], 6);
}

#[test]
fn partition_then_heal_commits_everything() {
    check(
        topology::uniform_threshold(7, 2),
        Adversary::Partition {
            groups: vec![
                ProcessSet::from_indices([0, 1, 2, 3]),
                ProcessSet::from_indices([4, 5, 6]),
            ],
            heal_at: 1_000,
        },
        &[],
        6,
    );
}

#[test]
fn mixed_thresholds_topology() {
    // One cautious process (f=1), the rest f=2, n=7 — B3 holds.
    let mut systems = vec![FailProneSystem::threshold(7, 2); 7];
    systems[0] = FailProneSystem::threshold(7, 1);
    let fail_prone = AsymFailProneSystem::new(systems).unwrap();
    assert!(fail_prone.satisfies_b3());
    let quorums = fail_prone.canonical_quorums();
    let topo = topology::Topology { name: "mixed-thresholds".into(), fail_prone, quorums };
    check(topo, Adversary::Random(3), &[6], 8);
}

#[test]
fn validity_all_injected_blocks_ordered_eventually() {
    // Long run: everything injected up front must come out everywhere.
    let report = Cluster::new(topology::uniform_threshold(4, 1))
        .adversary(Adversary::Random(77))
        .waves(10)
        .blocks_per_process(3)
        .txs_per_block(2)
        .run_asymmetric();
    assert!(report.quiescent);
    let total_txs = 4 * 3 * 2;
    for i in 0..4 {
        let txs = report.delivered_txs(ProcessId::new(i));
        for tx in 1..=total_txs as u64 {
            assert!(txs.contains(&tx), "p{i} never delivered tx {tx}");
        }
    }
}

#[test]
fn coin_seed_changes_leader_schedule_but_not_safety() {
    for coin_seed in [1u64, 2, 3] {
        let report = Cluster::new(topology::uniform_threshold(4, 1))
            .adversary(Adversary::Random(5))
            .coin_seed(coin_seed)
            .waves(6)
            .run_asymmetric();
        report.assert_total_order(&ProcessSet::full(4));
    }
}
