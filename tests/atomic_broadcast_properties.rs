//! Integration matrix: asymmetric atomic broadcast properties
//! (Definition 4.1 — agreement, validity, total order, integrity) across
//! topologies × adversaries × failure patterns.
//!
//! Cells over the named topology families run as `asym_scenarios` cells
//! under the full checker suite (which subsumes the agreement / total-order
//! / integrity assertions this file used to hand-roll). Custom topologies
//! (Figure 1, mixed thresholds) keep the `Cluster` harness and borrow the
//! shared `assert_prefix_consistent` checker.

use asym_dag_rider::prelude::*;
use asym_scenarios::{checks, Fault, FaultPlan, Scenario, SchedulerSpec, TopologySpec};

/// Runs one scenario cell under every Definition-4.1 checker.
fn check(
    topology: TopologySpec,
    scheduler: SchedulerSpec,
    crashed: &[usize],
    seed: u64,
    waves: u64,
) {
    let scenario = Scenario::new(
        topology,
        FaultPlan::crash_from_start(crashed.iter().copied()),
        scheduler,
        seed,
    )
    .waves(waves)
    .blocks_per_process(2)
    .txs_per_block(3);
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.guild.is_some(), "{scenario}: these cells must keep a guild");
}

#[test]
fn threshold_4_random() {
    check(TopologySpec::UniformThreshold { n: 4, f: 1 }, SchedulerSpec::Random, &[], 1, 6);
}

#[test]
fn threshold_4_fifo_with_crash() {
    check(TopologySpec::UniformThreshold { n: 4, f: 1 }, SchedulerSpec::Fifo, &[2], 1, 8);
}

#[test]
fn threshold_7_latency_two_crashes() {
    check(
        TopologySpec::UniformThreshold { n: 7, f: 2 },
        SchedulerSpec::RandomLatency { min: 1, max: 40 },
        &[0, 1],
        9,
        8,
    );
}

#[test]
fn threshold_10_targeted_delay() {
    check(
        TopologySpec::UniformThreshold { n: 10, f: 3 },
        SchedulerSpec::TargetedDelay { victims: vec![7, 8, 9] },
        &[],
        1,
        5,
    );
}

#[test]
fn ripple_unl_random() {
    check(TopologySpec::RippleUnl { n: 10, unl: 8, f: 1 }, SchedulerSpec::Random, &[], 4, 6);
}

#[test]
fn ripple_unl_crash_and_latency() {
    check(
        TopologySpec::RippleUnl { n: 10, unl: 8, f: 1 },
        SchedulerSpec::RandomLatency { min: 5, max: 25 },
        &[3],
        2,
        8,
    );
}

#[test]
fn stellar_tiers_leaf_and_core_crash() {
    check(
        TopologySpec::StellarTiers { n: 10, core: 4, f_core: 1 },
        SchedulerSpec::Random,
        &[2, 9],
        6,
        8,
    );
}

#[test]
fn random_slice_topology() {
    check(
        TopologySpec::RandomSlices { n: 8, slice: 6, f: 1, seed: 11 },
        SchedulerSpec::Random,
        &[],
        12,
        6,
    );
}

#[test]
fn partition_then_heal_commits_everything() {
    check(
        TopologySpec::UniformThreshold { n: 7, f: 2 },
        SchedulerSpec::Partition { groups: vec![vec![0, 1, 2, 3], vec![4, 5, 6]], heal_at: 1_000 },
        &[],
        1,
        6,
    );
}

#[test]
fn mute_and_mid_run_crash_under_latency() {
    // A cell the old hand-rolled harness could not express: omission +
    // mid-run crash faults under a latency adversary, still fully checked.
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 7, f: 2 },
        FaultPlan::none().with(5, Fault::Mute).with(6, Fault::CrashAfter(200)),
        SchedulerSpec::RandomLatency { min: 1, max: 30 },
        8,
    )
    .waves(8);
    checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn figure1_counterexample_topology() {
    // Custom topology (no TopologySpec family): runs on the Cluster harness
    // with the shared prefix-consistency checker.
    let topo = topology::Topology {
        name: "figure-1".into(),
        fail_prone: asym_dag_rider::quorum::counterexample::fig1_fail_prone(),
        quorums: asym_dag_rider::quorum::counterexample::fig1_quorums(),
    };
    let report = Cluster::new(topo)
        .adversary(Adversary::Random(8))
        .waves(5)
        .blocks_per_process(2)
        .txs_per_block(3)
        .run_asymmetric();
    assert!(report.quiescent);
    checks::assert_prefix_consistent(&report.outputs);
    checks::assert_no_duplicates(&report.outputs);
    let guild = report.guild.clone().expect("fault-free figure-1 has a guild");
    for g in &guild {
        assert!(!report.outputs[g.index()].is_empty(), "guild member {g} ordered nothing");
    }
}

#[test]
fn mixed_thresholds_topology() {
    // One cautious process (f=1), the rest f=2, n=7 — B3 holds.
    let mut systems = vec![FailProneSystem::threshold(7, 2); 7];
    systems[0] = FailProneSystem::threshold(7, 1);
    let fail_prone = AsymFailProneSystem::new(systems).unwrap();
    assert!(fail_prone.satisfies_b3());
    let quorums = fail_prone.canonical_quorums();
    let topo = topology::Topology { name: "mixed-thresholds".into(), fail_prone, quorums };
    let report = Cluster::new(topo)
        .adversary(Adversary::Random(3))
        .crash([6])
        .waves(8)
        .blocks_per_process(2)
        .txs_per_block(3)
        .run_asymmetric();
    assert!(report.quiescent);
    checks::assert_prefix_consistent(&report.outputs);
    checks::assert_no_duplicates(&report.outputs);
    let guild = report.guild.clone().expect("one crash keeps a guild");
    for g in &guild {
        assert!(!report.outputs[g.index()].is_empty(), "guild member {g} ordered nothing");
    }
}

#[test]
fn validity_all_injected_blocks_ordered_eventually() {
    // Long run: everything injected up front must come out everywhere.
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none(),
        SchedulerSpec::Random,
        77,
    )
    .waves(10)
    .blocks_per_process(3)
    .txs_per_block(2);
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    let all_txs: Vec<u64> = outcome.injected.iter().flatten().flat_map(|b| b.txs.clone()).collect();
    assert_eq!(all_txs.len(), 4 * 3 * 2);
    for p in &outcome.correct {
        let delivered = outcome.delivered_txs(p);
        for tx in &all_txs {
            assert!(delivered.contains(tx), "{p} never delivered tx {tx}");
        }
    }
}

#[test]
fn coin_seed_changes_leader_schedule_but_not_safety() {
    // Scenario seeds drive both the scheduler and (decorrelated) the coin:
    // different seeds must keep every invariant while exploring different
    // leader schedules.
    for seed in [1u64, 2, 3] {
        let scenario = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            SchedulerSpec::Random,
            seed,
        );
        checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    }
}
