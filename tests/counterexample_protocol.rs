//! End-to-end reproduction of the paper's Appendix A (experiment MSG2):
//! Lemma 3.2 as a real message-passing execution, its
//! equality with the Listing-1 dataflow, and the Algorithm-3 contrast — all
//! through the public workspace API.

use asym_dag_rider::prelude::*;
use asym_gather::{
    dataflow, find_common_core, AsymGather, Lemma32Scheduler, NaiveGather, ValueSet,
};
use asym_quorum::counterexample::{fig1_fail_prone, fig1_quorum_of, fig1_quorums, FIG1_N};
use asym_scenarios::pid;

fn fig1_choice() -> Vec<ProcessSet> {
    (0..FIG1_N).map(|i| fig1_quorum_of(pid(i))).collect()
}

#[test]
fn figure1_is_a_valid_asymmetric_quorum_system() {
    let fps = fig1_fail_prone();
    let qs = fig1_quorums();
    assert!(fps.satisfies_b3());
    qs.validate(&fps).expect("Theorem 2.4: B3 ⟹ canonical quorums valid");
    // Everyone wise, maximal guild = everyone (failure-free).
    let guild = maximal_guild(&fps, &qs, &ProcessSet::new()).unwrap();
    assert_eq!(guild, ProcessSet::full(FIG1_N));
}

#[test]
fn lemma_3_2_full_protocol_equals_listing_1() {
    let qs = fig1_quorums();
    let choice = fig1_choice();
    let expected = dataflow::three_rounds(&choice);

    let procs: Vec<NaiveGather<u64>> =
        (0..FIG1_N).map(|i| NaiveGather::new(pid(i), qs.clone())).collect();
    let mut sim = Simulation::new(procs, Lemma32Scheduler::new(choice));
    for i in 0..FIG1_N {
        sim.input(pid(i), 10_000 + i as u64);
    }
    assert!(sim.run(100_000_000).quiescent);

    let mut outputs: Vec<ValueSet<u64>> = Vec::new();
    for i in 0..FIG1_N {
        let out = sim.outputs(pid(i));
        assert_eq!(out.len(), 1, "process {i} must deliver exactly once");
        let support: ProcessSet = out[0].keys().copied().collect();
        assert_eq!(support, expected.u[i], "U_{} diverges from Listing 1", i + 1);
        // Validity: the values really are the inputs of their originators.
        for (p, v) in out[0].iter() {
            assert_eq!(*v, 10_000 + p.index() as u64);
        }
        outputs.push(out[0].clone());
    }

    let refs: Vec<(ProcessId, &ValueSet<u64>)> =
        outputs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
    assert!(
        find_common_core(&qs, &ProcessSet::full(FIG1_N), &refs).is_none(),
        "Lemma 3.2: the adversarial execution has no common core"
    );
}

#[test]
fn algorithm_3_fixes_the_same_system() {
    let qs = fig1_quorums();
    for seed in [1u64, 2] {
        let procs: Vec<AsymGather<u64>> =
            (0..FIG1_N).map(|i| AsymGather::new(pid(i), qs.clone())).collect();
        let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
        for i in 0..FIG1_N {
            sim.input(pid(i), i as u64);
        }
        assert!(sim.run(300_000_000).quiescent, "seed {seed}");
        let outputs: Vec<ValueSet<u64>> =
            (0..FIG1_N).map(|i| sim.outputs(pid(i))[0].clone()).collect();
        let refs: Vec<(ProcessId, &ValueSet<u64>)> =
            outputs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
        assert!(
            find_common_core(&qs, &ProcessSet::full(FIG1_N), &refs).is_some(),
            "seed {seed}: Algorithm 3 must reach a common core"
        );
    }
}

#[test]
fn algorithm_3_survives_the_lemma32_style_adversary() {
    // Starve the same message classes the Lemma-3.2 adversary starves
    // (quorum-only DISTRIBUTE traffic), then release: Algorithm 3 still
    // reaches a common core — the adversary can only delay it.
    use asym_gather::AsymGatherMsg;
    use asym_sim::{InFlight, Scheduler, Step};

    struct StarveDist {
        quorum_of: Vec<ProcessSet>,
    }
    impl<V> Scheduler<AsymGatherMsg<V>> for StarveDist {
        fn next(&mut self, pending: &[InFlight<AsymGatherMsg<V>>], _now: Step) -> Option<usize> {
            pending
                .iter()
                .enumerate()
                .filter(|(_, m)| match &m.msg {
                    AsymGatherMsg::DistS(_) | AsymGatherMsg::DistT(_) => {
                        self.quorum_of[m.to.index()].contains(m.from)
                    }
                    _ => true,
                })
                .min_by_key(|(_, m)| m.seq)
                .map(|(i, _)| i)
        }
    }

    let qs = fig1_quorums();
    let procs: Vec<AsymGather<u64>> =
        (0..FIG1_N).map(|i| AsymGather::new(pid(i), qs.clone())).collect();
    let mut sim = Simulation::new(procs, StarveDist { quorum_of: fig1_choice() });
    for i in 0..FIG1_N {
        sim.input(pid(i), i as u64);
    }
    // Filtered phase, then eventual delivery of the starved messages.
    sim.run(300_000_000);
    assert!(sim.flush_starved(300_000_000).quiescent);

    let outputs: Vec<ValueSet<u64>> = (0..FIG1_N)
        .map(|i| {
            let out = sim.outputs(pid(i));
            assert!(!out.is_empty(), "process {i} must deliver after the flush");
            out[0].clone()
        })
        .collect();
    let refs: Vec<(ProcessId, &ValueSet<u64>)> =
        outputs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
    assert!(
        find_common_core(&qs, &ProcessSet::full(FIG1_N), &refs).is_some(),
        "Algorithm 3 under the starving adversary must still reach a common core"
    );
}

#[test]
fn small_systems_are_immune_listing1_check() {
    // §3.2: any system with < 16 processes reaches a common core under the
    // 3-round dataflow, provided quorums pairwise intersect. Spot-check the
    // boundary claim with shifted-window quorum systems up to n = 15.
    for n in 4..=15usize {
        let q = n / 2 + 1;
        let quorums: Vec<ProcessSet> =
            (0..n).map(|i| (0..q).map(|k| (i + k) % n).collect()).collect();
        assert!(
            dataflow::has_common_core(&quorums),
            "n={n}: windowed majority quorums must reach a core in 3 rounds"
        );
    }
}
