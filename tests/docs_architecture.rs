//! Keeps `docs/ARCHITECTURE.md` honest: the `DagEvent` table there must
//! list exactly the variants of the real enum, and the checkers the table
//! cites must exist in the standard suite. Fails CI on drift instead of
//! letting the persistence documentation rot.

use std::collections::BTreeSet;
use std::path::Path;

fn read(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The `DagEvent` variant names, parsed from the enum source. Variants are
/// either `Name(..)` or `Name { .. }` at one indent level inside the enum.
fn enum_variants() -> BTreeSet<String> {
    let src = read("crates/storage/src/event.rs");
    let body_start = src.find("pub enum DagEvent<B> {").expect("DagEvent enum present");
    let body = &src[body_start..];
    let mut depth = 0usize;
    let mut end = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &body[..end];
    let mut variants = BTreeSet::new();
    for line in body.lines() {
        let trimmed = line.trim_start();
        if line.starts_with("    ")
            && !line.starts_with("        ")
            && trimmed.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        {
            let name: String = trimmed.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
            if !name.is_empty() {
                variants.insert(name);
            }
        }
    }
    variants
}

/// The variants the ARCHITECTURE.md table documents: rows of the form
/// ``| `Name` | ... |`` in the event-vocabulary table.
fn documented_variants(doc: &str) -> BTreeSet<String> {
    doc.lines()
        .filter_map(|l| {
            let l = l.trim();
            let rest = l.strip_prefix("| `")?;
            let name = rest.split('`').next()?;
            name.chars().all(|c| c.is_ascii_alphanumeric()).then(|| name.to_string())
        })
        .filter(|n| n.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        .filter(|n| n != "DagEvent") // the table's header row
        .collect()
}

#[test]
fn dag_event_table_matches_the_enum() {
    let doc = read("docs/ARCHITECTURE.md");
    let from_enum = enum_variants();
    let from_doc = documented_variants(&doc);
    assert!(
        from_enum.len() >= 6,
        "parser self-check: expected ≥6 DagEvent variants, found {from_enum:?}"
    );
    let undocumented: Vec<_> = from_enum.difference(&from_doc).collect();
    assert!(
        undocumented.is_empty(),
        "DagEvent variants missing from docs/ARCHITECTURE.md's table: {undocumented:?}"
    );
    let stale: Vec<_> = from_doc.difference(&from_enum).collect();
    assert!(
        stale.is_empty(),
        "docs/ARCHITECTURE.md documents DagEvent variants that no longer exist: {stale:?}"
    );
}

#[test]
fn cited_checkers_exist_in_the_standard_suite() {
    let doc = read("docs/ARCHITECTURE.md");
    let checks = read("crates/scenarios/src/checks.rs");
    // Every `snake_case` backtick token in the guarded-by column must be a
    // registered checker name.
    for line in doc.lines().filter(|l| l.trim_start().starts_with("| `")) {
        let Some(guarded) = line.rsplit('|').nth(1) else { continue };
        for token in guarded.split('`').skip(1).step_by(2) {
            if token.contains('_') && token.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
                assert!(
                    checks.contains(&format!("(\"{token}\"")),
                    "docs cite checker `{token}` which is not registered in standard_checks()"
                );
            }
        }
    }
}

#[test]
fn architecture_doc_is_linked_from_readme() {
    let readme = read("README.md");
    assert!(
        readme.contains("docs/ARCHITECTURE.md"),
        "README must link the persistence architecture document"
    );
}
