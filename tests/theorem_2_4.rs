//! Property-based validation of the trust-structure theory:
//!
//! * **Theorem 2.4** — an asymmetric fail-prone system satisfies B³ **iff**
//!   an asymmetric quorum system for it exists; the canonical construction
//!   (complements of maximal fail-prone sets) is the witness.
//! * Guild structure: the maximal guild is a guild containing every other
//!   guild.

use proptest::prelude::*;

use asym_dag_rider::prelude::*;
use asym_quorum::{is_guild, wise_processes};

/// Strategy: a random explicit asymmetric fail-prone system on `n` processes
/// with up to `k` fail-prone sets of size ≤ `fmax` each.
fn arb_fail_prone(n: usize, k: usize, fmax: usize) -> impl Strategy<Value = AsymFailProneSystem> {
    let set = proptest::collection::vec(0..n, 1..=fmax);
    let sets = proptest::collection::vec(set, 1..=k);
    proptest::collection::vec(sets, n).prop_map(move |per_process| {
        let systems: Vec<FailProneSystem> = per_process
            .into_iter()
            .map(|sets| {
                let sets: Vec<ProcessSet> =
                    sets.into_iter().map(ProcessSet::from_indices).collect();
                FailProneSystem::explicit(n, sets).expect("non-empty, in range")
            })
            .collect();
        AsymFailProneSystem::new(systems).expect("well-formed")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// B³ ⟹ the canonical quorum system is consistent and available.
    #[test]
    fn b3_implies_canonical_system_valid(fps in arb_fail_prone(5, 3, 2)) {
        prop_assume!(fps.satisfies_b3());
        let qs = fps.canonical_quorums();
        prop_assert!(qs.validate(&fps).is_ok(), "violation: {:?}", qs.validate(&fps));
    }

    /// ¬B³ ⟹ the canonical quorum system violates consistency (the forward
    /// direction of Theorem 2.4's "only if": no system can work, so in
    /// particular the canonical one fails).
    #[test]
    fn not_b3_implies_canonical_system_invalid(fps in arb_fail_prone(4, 2, 2)) {
        prop_assume!(!fps.satisfies_b3());
        let qs = fps.canonical_quorums();
        prop_assert!(
            qs.check_consistency(&fps).is_err(),
            "¬B3 but canonical quorums look consistent"
        );
    }

    /// The maximal guild is a guild, and contains every singleton-closure
    /// guild candidate.
    #[test]
    fn maximal_guild_is_maximal(
        fps in arb_fail_prone(5, 2, 2),
        faulty in proptest::collection::vec(0usize..5, 0..2),
    ) {
        prop_assume!(fps.satisfies_b3());
        let qs = fps.canonical_quorums();
        let faulty: ProcessSet = faulty.into_iter().collect();
        let wise = wise_processes(&fps, &faulty);
        match maximal_guild(&fps, &qs, &faulty) {
            Some(guild) => {
                prop_assert!(is_guild(&fps, &qs, &faulty, &guild));
                prop_assert!(guild.is_subset(&wise));
                // Maximality: extending the guild by any wise outsider does
                // not yield a guild.
                for w in wise.difference(&guild).iter() {
                    let mut bigger = guild.clone();
                    bigger.insert(w);
                    prop_assert!(
                        !is_guild(&fps, &qs, &faulty, &bigger),
                        "guild {guild} extensible by {w}"
                    );
                }
            }
            None => {
                // Then the full wise set itself must fail closure somewhere.
                prop_assert!(!is_guild(&fps, &qs, &faulty, &wise) || wise.is_empty());
            }
        }
    }

    /// Uniform threshold systems: B³ ⟺ n > 3f (the classic bound).
    #[test]
    fn threshold_b3_iff_classic_bound(n in 2usize..12, f in 0usize..4) {
        prop_assume!(f < n);
        prop_assume!(f >= 1);
        let fps = AsymFailProneSystem::uniform(FailProneSystem::threshold(n, f));
        prop_assert_eq!(fps.satisfies_b3(), n > 3 * f);
    }

    /// Kernels really intersect every quorum (on the canonical systems).
    #[test]
    fn kernels_hit_all_quorums(fps in arb_fail_prone(5, 2, 2)) {
        prop_assume!(fps.satisfies_b3());
        let qs = fps.canonical_quorums();
        for i in 0..5 {
            let p = ProcessId::new(i);
            let system = qs.of(p);
            for kernel in system.minimal_kernels() {
                prop_assert!(system.is_kernel(&kernel));
                for quorum in system.minimal_quorums() {
                    prop_assert!(kernel.intersects(&quorum), "{kernel} misses {quorum}");
                }
            }
            // And removing any element of a minimal kernel breaks it.
            for kernel in system.minimal_kernels() {
                for e in &kernel {
                    let mut smaller = kernel.clone();
                    smaller.remove(e);
                    prop_assert!(!system.is_kernel(&smaller));
                }
            }
        }
    }
}

#[test]
fn figure_1_satisfies_both_directions() {
    let fps = asym_dag_rider::quorum::counterexample::fig1_fail_prone();
    assert!(fps.satisfies_b3());
    assert!(fps.canonical_quorums().validate(&fps).is_ok());
}
