//! Fault-injection suite: mid-run crashes, send-omission (mute) processes,
//! and adversarial starvation — safety must be unconditional, liveness holds
//! for the guild whenever the surviving trust structure admits one.
//!
//! Every execution is a scenario cell audited by the full
//! `asym_scenarios::checks` suite (prefix consistency, no fabrication, DAG
//! well-formedness, guild liveness, determinism); the tests add only the
//! scenario-specific expectations on top.

use asym_scenarios::{checks, Fault, FaultPlan, Scenario, SchedulerSpec, TopologySpec};

#[test]
fn crash_mid_run_after_k_deliveries() {
    // p3 processes k deliveries and then dies; the rest keep committing.
    for k in [0u64, 50, 200, 1000] {
        let scenario = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(3, Fault::CrashAfter(k)),
            SchedulerSpec::Random,
            k,
        );
        let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
        for i in 0..3 {
            assert!(!outcome.outputs[i].is_empty(), "k={k}: survivor p{i} stalled");
        }
    }
}

#[test]
fn mute_process_is_tolerated_like_a_crash() {
    // A mute process receives everything but its sends vanish — an
    // omission fault within the f = 1 budget.
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(2, Fault::Mute),
        SchedulerSpec::Random,
        7,
    );
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    for i in [0usize, 1, 3] {
        assert!(!outcome.outputs[i].is_empty(), "p{i} must progress around the mute p2");
    }
}

#[test]
fn two_simultaneous_fault_kinds() {
    // n=10, f=3 budget spent as: one crash-from-start, one mid-run crash,
    // one mute.
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 10, f: 3 },
        FaultPlan::none()
            .with(7, Fault::Crash)
            .with(8, Fault::CrashAfter(500))
            .with(9, Fault::Mute),
        SchedulerSpec::Random,
        3,
    )
    .waves(5);
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    for i in 0..7 {
        assert!(!outcome.outputs[i].is_empty(), "survivor p{i} stalled");
    }
}

#[test]
fn starving_one_process_delays_but_does_not_fork() {
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 7, f: 2 },
        FaultPlan::none(),
        SchedulerSpec::TargetedDelay { victims: vec![0] },
        42,
    )
    .waves(5);
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    // Eventual delivery means even the victim catches up at quiescence (the
    // guild-liveness checker already demands this; assert it explicitly).
    assert!(!outcome.outputs[0].is_empty(), "victim must catch up eventually");
}

#[test]
fn beyond_threshold_failures_stall_but_never_fork() {
    // 2 crashes with f = 1: no guild, no liveness promise — but whatever is
    // output stays consistent (safety is unconditional for crash faults).
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::crash_from_start([2, 3]),
        SchedulerSpec::Random,
        1,
    )
    .waves(4);
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.guild.is_none(), "two crashes with f=1 leave no guild");
    assert!(
        outcome.outputs.iter().all(|o| o.is_empty()),
        "no quorum of 3 exists among 2 correct processes — nothing can commit"
    );
}

#[test]
fn guild_destroying_crash_on_stellar_topology_stalls_safely() {
    // Two core members exceed the core threshold of 1: guild vanishes, and
    // the checker suite degrades to safety-only (liveness is vacuous).
    let scenario = Scenario::new(
        TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
        FaultPlan::crash_from_start([0, 1]),
        SchedulerSpec::Random,
        2,
    )
    .waves(4);
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.guild.is_none(), "two core crashes must destroy the guild");
}

#[test]
fn every_fault_kind_replays_bit_for_bit() {
    // The determinism the repro tuples rely on, across all fault kinds.
    for plan in [
        FaultPlan::none().with(3, Fault::CrashAfter(80)),
        FaultPlan::none().with(2, Fault::Mute),
        FaultPlan::crash_from_start([1]),
    ] {
        let scenario = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            plan,
            SchedulerSpec::Random,
            5,
        )
        .waves(4);
        let (a, b) = (scenario.run(), asym_scenarios::replay(&scenario));
        assert_eq!(a.outputs, b.outputs, "{scenario}");
        assert_eq!(a.commit_logs, b.commit_logs, "{scenario}");
    }
}
