//! Fault-injection suite: mid-run crashes, send-omission (mute) processes,
//! and adversarial starvation — safety must be unconditional, liveness holds
//! for the guild whenever the surviving trust structure admits one.

use asym_dag_rider::prelude::*;

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn riders(t: &topology::Topology, waves: u64, coin: u64) -> Vec<AsymDagRider> {
    let config = RiderConfig { max_waves: waves, ..Default::default() };
    (0..t.n()).map(|i| AsymDagRider::new(pid(i), t.quorums.clone(), coin, config)).collect()
}

fn assert_prefix_consistent(outputs: &[Vec<OrderedVertex>]) {
    for a in outputs {
        for b in outputs {
            let common = a.len().min(b.len());
            for k in 0..common {
                assert_eq!(a[k].id, b[k].id, "total order violated at {k}");
            }
        }
    }
}

#[test]
fn crash_mid_run_after_k_deliveries() {
    // p3 processes 200 deliveries and then dies; the rest keep committing.
    let t = topology::uniform_threshold(4, 1);
    for k in [0u64, 50, 200, 1000] {
        let mut sim = Simulation::new(riders(&t, 6, 42), scheduler::Random::new(k))
            .with_fault(pid(3), FaultMode::CrashAfter(k));
        for i in 0..4 {
            sim.input(pid(i), Block::new(vec![i as u64]));
        }
        assert!(sim.run(200_000_000).quiescent, "k={k}");
        let outputs: Vec<Vec<OrderedVertex>> =
            (0..4).map(|i| sim.outputs(pid(i)).to_vec()).collect();
        assert_prefix_consistent(&outputs);
        for (i, o) in outputs.iter().take(3).enumerate() {
            assert!(!o.is_empty(), "k={k}: survivor p{i} stalled");
        }
    }
}

#[test]
fn mute_process_is_tolerated_like_a_crash() {
    // A mute process receives everything but its sends vanish — an
    // omission fault within the f = 1 budget.
    let t = topology::uniform_threshold(4, 1);
    let mut sim = Simulation::new(riders(&t, 6, 42), scheduler::Random::new(7))
        .with_fault(pid(2), FaultMode::Mute);
    for i in 0..4 {
        sim.input(pid(i), Block::new(vec![i as u64]));
    }
    assert!(sim.run(200_000_000).quiescent);
    let outputs: Vec<Vec<OrderedVertex>> = (0..4).map(|i| sim.outputs(pid(i)).to_vec()).collect();
    assert_prefix_consistent(&outputs);
    for i in [0usize, 1, 3] {
        assert!(!outputs[i].is_empty(), "p{i} must progress around the mute p2");
    }
}

#[test]
fn two_simultaneous_fault_kinds() {
    // n=10, f=3 budget spent as: one crash-from-start, one mid-run crash,
    // one mute.
    let t = topology::uniform_threshold(10, 3);
    let mut sim = Simulation::new(riders(&t, 5, 42), scheduler::Random::new(3))
        .with_fault(pid(7), FaultMode::CrashedFromStart)
        .with_fault(pid(8), FaultMode::CrashAfter(500))
        .with_fault(pid(9), FaultMode::Mute);
    for i in 0..7 {
        sim.input(pid(i), Block::new(vec![i as u64]));
    }
    assert!(sim.run(500_000_000).quiescent);
    let outputs: Vec<Vec<OrderedVertex>> = (0..10).map(|i| sim.outputs(pid(i)).to_vec()).collect();
    assert_prefix_consistent(&outputs);
    for (i, o) in outputs.iter().take(7).enumerate() {
        assert!(!o.is_empty(), "survivor p{i} stalled");
    }
}

#[test]
fn starving_one_process_delays_but_does_not_fork() {
    let t = topology::uniform_threshold(7, 2);
    let victims = ProcessSet::from_indices([0]);
    let mut sim = Simulation::new(riders(&t, 5, 42), scheduler::TargetedDelay::new(victims));
    for i in 0..7 {
        sim.input(pid(i), Block::new(vec![i as u64]));
    }
    assert!(sim.run(500_000_000).quiescent);
    let outputs: Vec<Vec<OrderedVertex>> = (0..7).map(|i| sim.outputs(pid(i)).to_vec()).collect();
    assert_prefix_consistent(&outputs);
    // Eventual delivery means even the victim catches up at quiescence.
    assert!(!outputs[0].is_empty(), "victim must catch up eventually");
}

#[test]
fn beyond_threshold_failures_stall_but_never_fork() {
    // 2 crashes with f = 1: no guild, no liveness promise — but whatever is
    // output stays consistent (safety is unconditional for crash faults).
    let t = topology::uniform_threshold(4, 1);
    let mut sim = Simulation::new(riders(&t, 4, 42), scheduler::Random::new(1))
        .with_fault(pid(2), FaultMode::CrashedFromStart)
        .with_fault(pid(3), FaultMode::CrashedFromStart);
    for i in 0..2 {
        sim.input(pid(i), Block::new(vec![i as u64]));
    }
    assert!(sim.run(50_000_000).quiescent);
    let outputs: Vec<Vec<OrderedVertex>> = (0..4).map(|i| sim.outputs(pid(i)).to_vec()).collect();
    assert_prefix_consistent(&outputs);
    assert!(
        outputs.iter().all(|o| o.is_empty()),
        "no quorum of 3 exists among 2 correct processes — nothing can commit"
    );
}

#[test]
fn guild_destroying_crash_on_stellar_topology_stalls_safely() {
    let t = topology::stellar_tiers(8, 4, 1);
    // Two core members exceed the core threshold of 1: guild vanishes.
    assert!(maximal_guild(&t.fail_prone, &t.quorums, &ProcessSet::from_indices([0, 1])).is_none());
    let mut sim = Simulation::new(riders(&t, 4, 42), scheduler::Random::new(2))
        .with_fault(pid(0), FaultMode::CrashedFromStart)
        .with_fault(pid(1), FaultMode::CrashedFromStart);
    for i in 2..8 {
        sim.input(pid(i), Block::new(vec![i as u64]));
    }
    assert!(sim.run(50_000_000).quiescent);
    let outputs: Vec<Vec<OrderedVertex>> = (0..8).map(|i| sim.outputs(pid(i)).to_vec()).collect();
    assert_prefix_consistent(&outputs);
}
