//! Cross-executor validation: the same protocol state machines run on the
//! threaded (real-concurrency, OS-scheduled) runtime must satisfy the same
//! safety properties as on the deterministic simulator. Liveness within a
//! bounded wave budget also holds because crossbeam channels are reliable
//! and the runtime drains to quiescence.

use asym_dag_rider::prelude::*;
use asym_gather::{check_pairwise_agreement, find_common_core, AsymGather, ValueSet};
use asym_scenarios::pid;
use asym_sim::threaded;

#[test]
fn gather_on_threads_reaches_common_core() {
    let n = 7;
    let t = topology::uniform_threshold(n, 2);
    for _attempt in 0..3 {
        let procs: Vec<AsymGather<u64>> =
            (0..n).map(|i| AsymGather::new(pid(i), t.quorums.clone())).collect();
        let inputs: Vec<Vec<u64>> = (0..n).map(|i| vec![400 + i as u64]).collect();
        let results = threaded::run(procs, inputs);

        let outputs: Vec<(ProcessId, ValueSet<u64>)> = results
            .iter()
            .enumerate()
            .map(|(i, r)| {
                assert_eq!(r.outputs.len(), 1, "process {i} must ag-deliver exactly once");
                (pid(i), r.outputs[0].clone())
            })
            .collect();
        let refs: Vec<(ProcessId, &ValueSet<u64>)> = outputs.iter().map(|(p, u)| (*p, u)).collect();
        check_pairwise_agreement(&refs).expect("agreement under real concurrency");
        for (_, u) in &refs {
            for (p, v) in u.iter() {
                assert_eq!(*v, 400 + p.index() as u64, "validity for {p}");
            }
        }
        assert!(
            find_common_core(&t.quorums, &ProcessSet::full(n), &refs).is_some(),
            "common core under real concurrency"
        );
    }
}

#[test]
fn consensus_on_threads_preserves_total_order() {
    let n = 4;
    let t = topology::uniform_threshold(n, 1);
    let config = RiderConfig { max_waves: 4, ..Default::default() };
    for _attempt in 0..3 {
        let procs: Vec<AsymDagRider> =
            (0..n).map(|i| AsymDagRider::new(pid(i), t.quorums.clone(), 42, config)).collect();
        let inputs: Vec<Vec<Block>> =
            (0..n).map(|i| vec![Block::new(vec![800 + i as u64])]).collect();
        let results = threaded::run(procs, inputs);

        // Total order: pairwise prefix consistency across all processes.
        for a in &results {
            for b in &results {
                let common = a.outputs.len().min(b.outputs.len());
                for k in 0..common {
                    assert_eq!(
                        a.outputs[k].id, b.outputs[k].id,
                        "threaded runtime forked the order at {k}"
                    );
                }
            }
        }
        // Progress: with reliable channels everyone commits within 4 waves.
        for (i, r) in results.iter().enumerate() {
            assert!(!r.outputs.is_empty(), "process {i} ordered nothing");
            assert!(r.delivered > 0);
        }
        // Integrity.
        for r in &results {
            let mut seen = std::collections::HashSet::new();
            for o in &r.outputs {
                assert!(seen.insert(o.id), "duplicate {}", o.id);
            }
        }
    }
}

#[test]
fn symmetric_baseline_on_threads() {
    let n = 4;
    let config = RiderConfig { max_waves: 4, ..Default::default() };
    let procs: Vec<DagRider> = (0..n).map(|i| DagRider::new(pid(i), n, 1, 9, config)).collect();
    let inputs: Vec<Vec<Block>> = (0..n).map(|i| vec![Block::new(vec![i as u64])]).collect();
    let results = threaded::run(procs, inputs);
    for a in &results {
        for b in &results {
            let common = a.outputs.len().min(b.outputs.len());
            for k in 0..common {
                assert_eq!(a.outputs[k].id, b.outputs[k].id);
            }
        }
    }
    assert!(results.iter().all(|r| !r.outputs.is_empty()));
}
