//! Head-to-head: asymmetric DAG-Rider vs. the symmetric baseline on the
//! *same* workload, scheduler and coin — the BASE experiment of the
//! suite. On uniform-threshold topologies both must be safe and
//! live; the asymmetric variant pays extra control messages.

use asym_dag_rider::prelude::*;

fn run_pair(n: usize, f: usize, seed: u64, waves: u64) -> (ClusterReport, ClusterReport) {
    let t = topology::uniform_threshold(n, f);
    let asym = Cluster::new(t.clone())
        .adversary(Adversary::Random(seed))
        .waves(waves)
        .blocks_per_process(2)
        .run_asymmetric();
    let sym = Cluster::new(t)
        .adversary(Adversary::Random(seed))
        .waves(waves)
        .blocks_per_process(2)
        .run_baseline(f);
    (asym, sym)
}

#[test]
fn both_protocols_safe_and_live_on_threshold_topology() {
    let (asym, sym) = run_pair(4, 1, 10, 6);
    let everyone = ProcessSet::full(4);
    for r in [&asym, &sym] {
        assert!(r.quiescent);
        r.assert_total_order(&everyone);
        assert!(r.outputs.iter().all(|o| !o.is_empty()));
    }
}

#[test]
fn asymmetric_variant_pays_control_message_overhead() {
    let (asym, sym) = run_pair(4, 1, 3, 6);
    assert!(
        asym.net.sent > sym.net.sent,
        "ACK/READY/CONFIRM must add messages: {} vs {}",
        asym.net.sent,
        sym.net.sent
    );
    // But the overhead is a constant factor, not an explosion: the vertex
    // dissemination (O(n²) per round via arb) dominates in both.
    let ratio = asym.net.sent as f64 / sym.net.sent as f64;
    assert!(ratio < 2.5, "overhead ratio {ratio} out of expected band");
}

#[test]
fn same_coin_same_leader_schedule() {
    // With the same coin seed the two protocols elect the same leaders, so
    // committed-leader logs coincide on the waves both commit.
    let t = topology::uniform_threshold(4, 1);
    let config_waves = 6;
    let asym =
        Cluster::new(t.clone()).adversary(Adversary::Fifo).waves(config_waves).run_asymmetric();
    let sym = Cluster::new(t).adversary(Adversary::Fifo).waves(config_waves).run_baseline(1);
    // Outputs of the two protocols are internally consistent; cross-protocol
    // orders also agree because coin, DAG shape (FIFO) and ordering rule
    // coincide on this symmetric configuration.
    let a: Vec<_> = asym.outputs[0].iter().map(|o| o.id).collect();
    let s: Vec<_> = sym.outputs[0].iter().map(|o| o.id).collect();
    let common = a.len().min(s.len());
    assert!(common > 0);
    assert_eq!(a[..common], s[..common], "leader schedule must coincide");
}

#[test]
fn commit_rate_scales_with_smallest_quorum_lemma_4_4() {
    // Lemma 4.4: expected waves per commit ≤ |P| / c(Q). For uniform
    // thresholds c(Q) = n − f, so the bound is n/(n−f) ≈ 1.5 at f = n/3;
    // with many waves the observed rate must stay well under 2.5 (geometric
    // tail) and above 1 (can't beat one commit per wave).
    for (n, f) in [(4usize, 1usize), (7, 2)] {
        let t = topology::uniform_threshold(n, f);
        let report = Cluster::new(t).adversary(Adversary::Fifo).waves(16).run_asymmetric();
        let wpc = report.waves_per_commit().expect("commits must happen");
        let bound = n as f64 / (n - f) as f64;
        assert!(
            wpc >= 1.0 && wpc < bound * 2.0,
            "n={n}, f={f}: observed {wpc:.2} waves/commit, Lemma 4.4 bound {bound:.2}"
        );
    }
}

#[test]
fn deterministic_replay_of_both_protocols() {
    let (a1, s1) = run_pair(4, 1, 42, 4);
    let (a2, s2) = run_pair(4, 1, 42, 4);
    assert_eq!(a1.outputs, a2.outputs);
    assert_eq!(s1.outputs, s2.outputs);
    assert_eq!(a1.net, a2.net);
    assert_eq!(s1.net, s2.net);
}

#[test]
fn larger_cluster_smoke() {
    let (asym, sym) = run_pair(10, 3, 5, 5);
    let everyone = ProcessSet::full(10);
    asym.assert_total_order(&everyone);
    sym.assert_total_order(&everyone);
    assert!(asym.max_txs_ordered() > 0);
    assert!(sym.max_txs_ordered() > 0);
}
