//! Recovery, twice over. Part 1: a network partition splits the cluster;
//! the protocol (being safe under full asynchrony) never forks, and once
//! the partition heals it commits everything — no recovery logic needed.
//! Part 2: a *real* crash — a process loses its entire in-memory state
//! mid-run and restarts from its write-ahead log, rejoining without ever
//! delivering a block twice.
//!
//! ```bash
//! cargo run --example partition_recovery
//! ```

use asym_dag_rider::prelude::*;
use asym_scenarios::{checks, Fault, FaultPlan, Scenario, SchedulerSpec, TopologySpec};

fn main() {
    partition_heal();
    crash_restart();
}

/// Part 1 — asynchrony in action: the partition only delays delivery.
fn partition_heal() {
    let n = 7;
    let t = topology::uniform_threshold(n, 2);

    // Split 4 vs 3: with f = 2 quorums have 5 members, so neither side can
    // advance a single round alone — cross-group messages queue until the
    // heal (at step 2000, or earlier once both sides are fully quiesced).
    let groups = vec![ProcessSet::from_indices([0, 1, 2, 3]), ProcessSet::from_indices([4, 5, 6])];
    let heal_at = 2_000;

    println!(
        "partitioning {{0,1,2,3}} | {{4,5,6}} for the first {heal_at} delivery steps, then healing"
    );
    let report = Cluster::new(t.clone())
        .adversary(Adversary::Partition { groups: groups.clone(), heal_at })
        .waves(6)
        .blocks_per_process(2)
        .run_asymmetric();

    assert!(report.quiescent);
    let everyone = ProcessSet::full(n);
    report.assert_total_order(&everyone);
    for i in 0..n {
        assert!(!report.outputs[i].is_empty(), "process {i} must commit after the heal");
    }
    println!("after heal: every process committed; total order verified ✓");
    for (i, m) in report.metrics.iter().enumerate() {
        println!(
            "  p{i}: round {}, {}/{} waves committed, {} vertices ordered",
            m.round, m.waves_committed, m.waves_attempted, m.vertices_ordered
        );
    }

    // Control run without the partition, same seeds: the partition only
    // delays — it cannot change the committed order (determinism lets us
    // compare like-for-like).
    let control =
        Cluster::new(t).adversary(Adversary::Fifo).waves(6).blocks_per_process(2).run_asymmetric();
    let a: Vec<_> = report.outputs[0].iter().map(|o| o.id).collect();
    let b: Vec<_> = control.outputs[0].iter().map(|o| o.id).collect();
    let common = a.len().min(b.len());
    println!(
        "\npartitioned vs. unpartitioned run: {} vs {} vertices ordered at p0",
        a.len(),
        b.len()
    );
    // The orders need not be identical (different schedules ⇒ possibly
    // different DAGs), but both must be internally consistent — asserted
    // above. Report the comparison for the curious reader.
    println!("first {common} positions equal: {}", a[..common] == b[..common]);
}

/// Part 2 — a crash-*restart*: unlike the healed partition (where the
/// process was alive the whole time and merely unreachable), p1 here loses
/// all in-memory state after 150 deliveries and is rebuilt at step 1200
/// purely from its write-ahead log: replay the DAG and delivered set,
/// re-announce confirmed waves, revive stalled broadcasts, fetch missed
/// rounds from peers, continue.
fn crash_restart() {
    let (crash_at, recover_at) = (150, 1_200);
    println!(
        "\ncrashing p1 after {crash_at} deliveries; restarting from its WAL at step {recover_at}"
    );

    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(1, Fault::Restart { crash_at, recover_at }),
        SchedulerSpec::Random,
        3,
    )
    .waves(6);

    // The full checker suite runs here too: no double delivery across the
    // restart, prefix consistency with the never-crashed processes, restart
    // liveness, and WAL/state equivalence.
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| panic!("{e}"));
    assert!(outcome.recovered[1], "the restart must actually fire");

    let wal = outcome.wal_stats[1].expect("p1 persists to a WAL");
    let replay = outcome.wal_replays[1].as_ref().unwrap().as_ref().unwrap();
    println!(
        "p1's WAL: {} records, {:.1} kB appended, {} snapshot(s); replays to a {}-vertex DAG",
        wal.records_appended,
        wal.bytes_appended as f64 / 1024.0,
        wal.snapshots_written,
        replay.dag.len(),
    );
    println!(
        "p1 delivered {} vertices across the restart (fault-free processes: {}); \
         no duplicates, prefix-consistent ✓",
        outcome.outputs[1].len(),
        outcome.outputs[0].len(),
    );
}
