//! Asynchrony in action: a network partition splits the cluster; the
//! protocol (being safe under full asynchrony) never forks, and once the
//! partition heals it commits everything — no recovery logic needed.
//!
//! ```bash
//! cargo run --example partition_recovery
//! ```

use asym_dag_rider::prelude::*;

fn main() {
    let n = 7;
    let t = topology::uniform_threshold(n, 2);

    // Split 4 vs 3: with f = 2 quorums have 5 members, so neither side can
    // advance a single round alone — cross-group messages queue until the
    // heal (at step 2000, or earlier once both sides are fully quiesced).
    let groups = vec![ProcessSet::from_indices([0, 1, 2, 3]), ProcessSet::from_indices([4, 5, 6])];
    let heal_at = 2_000;

    println!(
        "partitioning {{0,1,2,3}} | {{4,5,6}} for the first {heal_at} delivery steps, then healing"
    );
    let report = Cluster::new(t.clone())
        .adversary(Adversary::Partition { groups: groups.clone(), heal_at })
        .waves(6)
        .blocks_per_process(2)
        .run_asymmetric();

    assert!(report.quiescent);
    let everyone = ProcessSet::full(n);
    report.assert_total_order(&everyone);
    for i in 0..n {
        assert!(!report.outputs[i].is_empty(), "process {i} must commit after the heal");
    }
    println!("after heal: every process committed; total order verified ✓");
    for (i, m) in report.metrics.iter().enumerate() {
        println!(
            "  p{i}: round {}, {}/{} waves committed, {} vertices ordered",
            m.round, m.waves_committed, m.waves_attempted, m.vertices_ordered
        );
    }

    // Control run without the partition, same seeds: the partition only
    // delays — it cannot change the committed order (determinism lets us
    // compare like-for-like).
    let control =
        Cluster::new(t).adversary(Adversary::Fifo).waves(6).blocks_per_process(2).run_asymmetric();
    let a: Vec<_> = report.outputs[0].iter().map(|o| o.id).collect();
    let b: Vec<_> = control.outputs[0].iter().map(|o| o.id).collect();
    let common = a.len().min(b.len());
    println!(
        "\npartitioned vs. unpartitioned run: {} vs {} vertices ordered at p0",
        a.len(),
        b.len()
    );
    // The orders need not be identical (different schedules ⇒ possibly
    // different DAGs), but both must be internally consistent — asserted
    // above. Report the comparison for the curious reader.
    println!("first {common} positions equal: {}", a[..common] == b[..common]);
}
