//! A Ripple-like topology: every validator trusts a sliding-window Unique
//! Node List (UNL). Shows how UNL overlap governs soundness (B³), and
//! compares asymmetric DAG-Rider against the symmetric DAG-Rider baseline on
//! the same workload.
//!
//! ```bash
//! cargo run --example ripple_unl
//! ```

use asym_dag_rider::prelude::*;

fn main() {
    let n = 10;

    // ---- Overlap study: when do sliding-window UNLs admit quorums? ----
    println!("UNL overlap vs. soundness (n = {n}, f = 1):");
    for unl in [4usize, 6, 8, 10] {
        let t = topology::ripple_unl(n, unl, 1);
        let b3 = t.fail_prone.satisfies_b3();
        println!(
            "  UNL size {unl:2}: min overlap {:2} → B3 {}",
            unl.saturating_sub(n - unl),
            if b3 { "holds — usable" } else { "violated — unsound" }
        );
    }

    // ---- Consensus on the sound configuration. ----
    let t = topology::ripple_unl(n, 8, 1);
    t.quorums.validate(&t.fail_prone).expect("valid");
    println!("\nrunning {} with one crashed validator (p4)…", t.name);
    let report = Cluster::new(t.clone())
        .adversary(Adversary::Latency { seed: 3, min: 5, max: 50 })
        .crash([4])
        .waves(8)
        .blocks_per_process(3)
        .txs_per_block(8)
        .run_asymmetric();
    let guild = report.guild.clone().expect("guild survives one crash");
    report.assert_total_order(&guild);
    println!(
        "  asymmetric DAG-Rider: {} waves/commit, {} txs ordered, \
         {} messages, simulated time {}",
        report.waves_per_commit().map(|w| format!("{w:.2}")).unwrap_or_else(|| "∞".into()),
        report.max_txs_ordered(),
        report.net.sent,
        report.time
    );

    // ---- Baseline: symmetric DAG-Rider with the equivalent threshold. ----
    let baseline = Cluster::new(t)
        .adversary(Adversary::Latency { seed: 3, min: 5, max: 50 })
        .crash([4])
        .waves(8)
        .blocks_per_process(3)
        .txs_per_block(8)
        .run_baseline(1);
    baseline.assert_total_order(&ProcessSet::from_indices((0..n).filter(|i| *i != 4)));
    println!(
        "  symmetric baseline (f=1): {} waves/commit, {} txs ordered, \
         {} messages, simulated time {}",
        baseline.waves_per_commit().map(|w| format!("{w:.2}")).unwrap_or_else(|| "∞".into()),
        baseline.max_txs_ordered(),
        baseline.net.sent,
        baseline.time
    );
    println!(
        "\nthe asymmetric run pays extra control messages (ACK/READY/CONFIRM) \
         for per-validator trust autonomy — the paper's central trade-off."
    );
}
