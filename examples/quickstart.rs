//! Quickstart: run asymmetric DAG-Rider on a 7-process cluster where every
//! participant declares its own trust assumption, submit transactions, and
//! watch them come out in one identical total order everywhere.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use asym_dag_rider::prelude::*;

fn main() {
    // 1. Trust: a heterogeneous system — most processes tolerate 2 failures,
    //    a cautious one (p0) tolerates only 1. B³ must hold for a quorum
    //    system to exist at all (Theorem 2.4).
    let n = 7;
    let mut systems = vec![FailProneSystem::threshold(n, 2); n];
    systems[0] = FailProneSystem::threshold(n, 1);
    let fail_prone = AsymFailProneSystem::new(systems).expect("well-formed");
    assert!(fail_prone.satisfies_b3(), "trust assumptions admit no quorum system");
    let quorums = fail_prone.canonical_quorums();
    quorums.validate(&fail_prone).expect("consistent + available");

    let topo = topology::Topology {
        name: "quickstart(n=7, mixed thresholds)".into(),
        fail_prone,
        quorums,
    };
    println!("topology: {}", topo.name);
    println!("smallest quorum c(Q) = {}", topo.quorums.min_quorum_size());

    // 2. Run: 6 waves under a random asynchronous schedule, with process 6
    //    crashed from the start and 3 blocks of client transactions per
    //    correct process.
    let report = Cluster::new(topo)
        .adversary(Adversary::Random(2024))
        .crash([6])
        .waves(6)
        .blocks_per_process(3)
        .txs_per_block(4)
        .run_asymmetric();

    let guild = report.guild.clone().expect("crashing p6 keeps a guild");
    println!("faulty = {{6}}; maximal guild = {guild}");
    assert!(report.quiescent);

    // 3. Verify and display: identical order at every guild member.
    report.assert_total_order(&guild);
    let reference = guild.first().unwrap();
    println!(
        "\natomic broadcast order at {reference} ({} vertices):",
        report.outputs[reference.index()].len()
    );
    for o in report.outputs[reference.index()].iter().take(12) {
        println!("  wave {}  {}  txs {:?}", o.committed_in_wave, o.id, o.block.txs);
    }
    if report.outputs[reference.index()].len() > 12 {
        println!("  …");
    }

    for g in &guild {
        let m = &report.metrics[g.index()];
        println!(
            "{g}: round {}, committed {}/{} waves, ordered {} txs",
            m.round, m.waves_committed, m.waves_attempted, m.txs_ordered
        );
    }
    println!(
        "\nnetwork: {} sent, {} delivered, {} steps",
        report.net.sent, report.net.delivered, report.steps
    );
    println!("total order verified across the whole guild ✓");
}
