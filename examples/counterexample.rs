//! Regenerates the paper's negative result end to end:
//!
//! * **Figure 1** — the 30-process asymmetric fail-prone/quorum system;
//! * **Figures 2–4** — the S/T/U sets of the adversarial Algorithm-2 run;
//! * **Listing 1** — the common-core candidate check (must come out empty);
//! * the **message-passing** Algorithm 2 under the Appendix-A schedule,
//!   matching the dataflow exactly (Lemma 3.2);
//! * the contrast: **Algorithm 3** (constant-round asymmetric gather) on the
//!   same system reaches a common core.
//!
//! ```bash
//! cargo run --example counterexample
//! ```

use asym_dag_rider::prelude::*;
use asym_gather::{dataflow, find_common_core, AsymGather, Lemma32Scheduler, NaiveGather};
use asym_quorum::counterexample::{
    fig1_fail_prone, fig1_quorum_of, fig1_quorums, render_grid, FIG1_N,
};

fn main() {
    // ---- Figure 1: the fail-prone system and its canonical quorums. ----
    let fps = fig1_fail_prone();
    let qs = fig1_quorums();
    assert!(fps.satisfies_b3(), "Figure 1 satisfies B3");
    qs.validate(&fps).expect("valid asymmetric quorum system (Theorem 2.4)");
    println!("FIGURE 1 — canonical quorums (■ = member, rows = processes, paper labels)\n");
    let quorum_rows: Vec<ProcessSet> =
        (0..FIG1_N).map(|i| fig1_quorum_of(ProcessId::new(i))).collect();
    println!("{}", render_grid(&quorum_rows));
    println!("B3 condition: satisfied ✓   consistency + availability: verified ✓\n");

    // ---- Figures 2–4: the three dataflow rounds. ----
    let sets = dataflow::three_rounds(&quorum_rows);
    println!("FIGURE 2 — S sets (values after one round of hearing one's quorum)\n");
    println!("{}", render_grid(&sets.s));
    println!("FIGURE 3 — T sets (after the second round)\n");
    println!("{}", render_grid(&sets.t));
    println!("FIGURE 4 — U sets (after the third round; the delivered outputs)\n");
    println!("{}", render_grid(&sets.u));

    // ---- Listing 1: the common-core candidate check. ----
    let candidates = dataflow::common_core_candidates(&sets.s, &sets.u);
    println!("LISTING 1 — all_candidates = {candidates}");
    assert!(candidates.is_empty());
    println!("no S set is contained in every U set ⇒ NO COMMON CORE (Lemma 3.2) ✓\n");

    // ---- The same result over real messages (Algorithm 2 + adversary). ----
    let procs: Vec<NaiveGather<u64>> =
        (0..FIG1_N).map(|i| NaiveGather::new(ProcessId::new(i), qs.clone())).collect();
    let mut sim = Simulation::new(procs, Lemma32Scheduler::new(quorum_rows.clone()));
    for i in 0..FIG1_N {
        sim.input(ProcessId::new(i), i as u64);
    }
    let report = sim.run(100_000_000);
    assert!(report.quiescent);
    let outputs: Vec<asym_gather::ValueSet<u64>> =
        (0..FIG1_N).map(|i| sim.outputs(ProcessId::new(i))[0].clone()).collect();
    for (i, u) in outputs.iter().enumerate() {
        let support: ProcessSet = u.keys().copied().collect();
        assert_eq!(support, sets.u[i], "protocol U set {} matches Listing 1", i + 1);
    }
    let refs: Vec<(ProcessId, &asym_gather::ValueSet<u64>)> =
        outputs.iter().enumerate().map(|(i, u)| (ProcessId::new(i), u)).collect();
    assert!(find_common_core(&qs, &ProcessSet::full(FIG1_N), &refs).is_none());
    println!(
        "message-passing Algorithm 2 under the Appendix-A schedule: {} deliveries, \
         U sets identical to Listing 1, still no common core ✓",
        report.steps
    );

    // ---- How many extra rounds would Algorithm 2 need? ----
    let rounds = dataflow::rounds_to_common_core(&quorum_rows, 16).unwrap();
    println!("quorum-replacement gather needs {rounds} rounds on this system (3 are run)\n");

    // ---- The fix: Algorithm 3 on the very same system. ----
    let procs: Vec<AsymGather<u64>> =
        (0..FIG1_N).map(|i| AsymGather::new(ProcessId::new(i), qs.clone())).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(7));
    for i in 0..FIG1_N {
        sim.input(ProcessId::new(i), i as u64);
    }
    assert!(sim.run(200_000_000).quiescent);
    let outputs: Vec<asym_gather::ValueSet<u64>> =
        (0..FIG1_N).map(|i| sim.outputs(ProcessId::new(i))[0].clone()).collect();
    let refs: Vec<(ProcessId, &asym_gather::ValueSet<u64>)> =
        outputs.iter().enumerate().map(|(i, u)| (ProcessId::new(i), u)).collect();
    let (owner, core) = find_common_core(&qs, &ProcessSet::full(FIG1_N), &refs)
        .expect("Algorithm 3 guarantees a common core");
    println!(
        "ALGORITHM 3 (constant-round asymmetric gather) on the same system: \
         common core found — quorum {core} of process {owner} is in every output ✓"
    );
}
