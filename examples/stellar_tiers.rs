//! A Stellar-like tiered trust topology: a small core of anchor institutions
//! plus leaves that each trust `core ∪ {self}`. Demonstrates
//!
//! * consensus surviving a within-threshold core failure,
//! * leaf failures being entirely harmless,
//! * the *guild* collapsing (and safety-by-stalling) when the core
//!   assumption is exceeded — the "chose the wrong friends" regime.
//!
//! ```bash
//! cargo run --example stellar_tiers
//! ```

use asym_dag_rider::prelude::*;
use asym_quorum::classify;

fn main() {
    let n = 12;
    let core = 4;
    let t = topology::stellar_tiers(n, core, 1);
    println!("topology: {} (core = p0..p3, leaves trust core ∪ self)", t.name);
    assert!(t.fail_prone.satisfies_b3());
    t.quorums.validate(&t.fail_prone).expect("valid");

    // ---- Scenario A: one core member crashes (within threshold). ----
    let report = Cluster::new(t.clone())
        .adversary(Adversary::Random(5))
        .crash([1])
        .waves(6)
        .blocks_per_process(2)
        .run_asymmetric();
    let guild = report.guild.clone().expect("guild survives one core crash");
    println!("\nA: core member p1 crashes → guild = {guild}");
    report.assert_total_order(&guild);
    for g in &guild {
        assert!(!report.outputs[g.index()].is_empty());
    }
    println!(
        "   all {} guild members commit; {} txs ordered at p0; waves/commit ≈ {:.2}",
        guild.len(),
        report.metrics[0].txs_ordered,
        report.waves_per_commit().unwrap_or(f64::NAN),
    );

    // ---- Scenario B: two leaves crash (outside everyone's slice). ----
    let report = Cluster::new(t.clone())
        .adversary(Adversary::Random(6))
        .crash([10, 11])
        .waves(6)
        .blocks_per_process(2)
        .run_asymmetric();
    let guild = report.guild.clone().expect("leaf crashes keep the guild");
    println!("\nB: leaves p10, p11 crash → guild = {guild} (all correct processes)");
    report.assert_total_order(&guild);
    println!("   progress unaffected: {} waves/commit", report.waves_per_commit().unwrap());

    // ---- Scenario C: the core assumption is exceeded. ----
    let faulty = ProcessSet::from_indices([0, 1]);
    let guild = asym_quorum::maximal_guild(&t.fail_prone, &t.quorums, &faulty);
    println!("\nC: core members p0, p1 both crash (threshold is 1):");
    for i in [2usize, 3, 6] {
        println!(
            "   {} is {}",
            ProcessId::new(i),
            classify(&t.fail_prone, &faulty, ProcessId::new(i))
        );
    }
    assert_eq!(guild, None);
    println!("   no guild exists — the paper gives no liveness guarantee here;");

    let report = Cluster::new(t)
        .adversary(Adversary::Random(7))
        .crash([0, 1])
        .waves(4)
        .max_steps(20_000_000)
        .run_asymmetric();
    let progressed = report.outputs.iter().filter(|o| !o.is_empty()).count();
    println!(
        "   observed: {} of 12 processes committed anything (safety holds: \
         the protocol stalls rather than forks)",
        progressed
    );
    let everyone = ProcessSet::full(12);
    report.assert_total_order(&everyone);
    println!("   outputs that do exist are still mutually consistent ✓");
}
