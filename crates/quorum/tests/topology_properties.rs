//! Property-based coverage of the seeded topology generators: everything
//! `random_slices` emits satisfies the quorum-system consistency
//! precondition, and generation is a pure function of its seed — the
//! guarantee the scenario matrix relies on to make failing cells
//! reproducible.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use asym_quorum::topology::{self, TopologySpec};
use asym_quorum::{maximal_guild, ProcessSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever `random_slices` returns satisfies B³ and the
    /// consistency/availability preconditions of an asymmetric quorum
    /// system — for arbitrary (n, slice, f, seed) draws.
    #[test]
    fn random_slices_satisfy_consistency_precondition(
        n in 4usize..10,
        extra in 0usize..3,
        seed in 0u64..5000,
    ) {
        // Keep the slice large relative to n so B³ systems exist to be found;
        // f = 1 keeps the subset checks cheap.
        let slice = (3 * n).div_ceil(4) + extra;
        prop_assume!(slice <= n);
        let Some(t) = topology::random_slices(n, slice, 1, seed, 50) else {
            // No B³ system within the attempt budget is a legal outcome.
            return Ok(());
        };
        prop_assert!(t.fail_prone.satisfies_b3(), "{}: B3 violated", t.name);
        prop_assert!(t.quorums.check_consistency(&t.fail_prone).is_ok(), "{}", t.name);
        prop_assert!(t.quorums.check_availability(&t.fail_prone).is_ok(), "{}", t.name);
        prop_assert_eq!(t.n(), n);
    }

    /// Same seed ⇒ identical topology, bit for bit; and the `TopologySpec`
    /// wrapper rebuilds the same system the direct call produces.
    #[test]
    fn random_slices_deterministic_per_seed(
        n in 5usize..9,
        seed in 0u64..5000,
    ) {
        let slice = (3 * n).div_ceil(4);
        let a = topology::random_slices(n, slice, 1, seed, 50);
        let b = topology::random_slices(n, slice, 1, seed, 50);
        prop_assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(&a.fail_prone, &b.fail_prone, "seed {} not deterministic", seed);
            prop_assert_eq!(&a.quorums, &b.quorums);
            let via_spec = TopologySpec::RandomSlices { n, slice, f: 1, seed }
                .build()
                .expect("direct call succeeded");
            prop_assert_eq!(&via_spec.fail_prone, &a.fail_prone);
        }
    }

    /// `random_faulty` respects its cardinality bound and the process-id
    /// range, and is deterministic given the RNG state.
    #[test]
    fn random_faulty_bounded_and_deterministic(
        n in 1usize..20,
        max_faulty in 0usize..6,
        seed in 0u64..5000,
    ) {
        let draw = |s| {
            let mut rng = SmallRng::seed_from_u64(s);
            (0..8).map(|_| topology::random_faulty(n, max_faulty, &mut rng))
                .collect::<Vec<ProcessSet>>()
        };
        let sets = draw(seed);
        for f in &sets {
            prop_assert!(f.len() <= max_faulty.min(n));
            prop_assert!(f.max_id().is_none_or(|m| m.index() < n));
        }
        prop_assert_eq!(sets, draw(seed), "same rng seed must redraw the same sets");
    }

    /// Generated random topologies work with the guild machinery: failing
    /// nobody always leaves the full process set as the maximal guild.
    #[test]
    fn random_slices_fault_free_guild_is_everyone(
        n in 5usize..9,
        seed in 0u64..1000,
    ) {
        let slice = (3 * n).div_ceil(4);
        let Some(t) = topology::random_slices(n, slice, 1, seed, 50) else {
            return Ok(());
        };
        let guild = maximal_guild(&t.fail_prone, &t.quorums, &ProcessSet::new());
        prop_assert_eq!(guild, Some(ProcessSet::full(n)));
    }
}
