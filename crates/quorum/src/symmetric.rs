//! Symmetric (global) Byzantine quorum systems.
//!
//! This module implements the classic model of Malkhi–Reiter [26]: a single
//! *fail-prone system* `F ⊆ 2^P` shared by all processes, and a *Byzantine
//! quorum system* `Q` whose quorums pairwise intersect outside every common
//! fail-prone set (consistency) and avoid every fail-prone set (availability).
//!
//! Threshold systems (`f` out of `n`) are represented implicitly so that
//! membership and kernel tests are `O(1)` instead of enumerating `C(n, f)`
//! subsets; explicit systems carry the antichain of maximal fail-prone sets /
//! minimal quorums.

use crate::combinatorics::{combinations, minimal_hitting_sets, retain_maximal, retain_minimal};
use crate::{ProcessSet, QuorumError};

/// A symmetric fail-prone system: the collection of sets of processes that may
/// jointly fail in some execution.
///
/// The collection is identified with the antichain of its *maximal* elements;
/// `F* = {F' | F' ⊆ F, F ∈ F}` is the downward closure queried by
/// [`FailProneSystem::covers`].
///
/// # Examples
///
/// ```
/// use asym_quorum::{FailProneSystem, ProcessSet};
///
/// // Up to 1 of 4 processes may fail.
/// let fps = FailProneSystem::threshold(4, 1);
/// assert!(fps.covers(&ProcessSet::from_indices([2])));
/// assert!(!fps.covers(&ProcessSet::from_indices([2, 3])));
/// assert!(fps.satisfies_q3());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailProneSystem {
    /// All subsets of size at most `f` may fail.
    Threshold {
        /// Number of processes in the system.
        n: usize,
        /// Maximum number of simultaneous failures tolerated.
        f: usize,
    },
    /// An explicit antichain of maximal fail-prone sets.
    Explicit {
        /// Number of processes in the system.
        n: usize,
        /// Maximal fail-prone sets (canonicalized: an antichain, sorted).
        sets: Vec<ProcessSet>,
    },
    /// Trust is placed only in `slice` (a Ripple UNL / simple Stellar slice):
    /// every process outside `slice` may fail, plus up to `f` members of
    /// `slice`. Maximal sets are `(P ∖ slice) ∪ C` for each `f`-subset `C` of
    /// `slice`.
    SliceThreshold {
        /// Number of processes in the system.
        n: usize,
        /// The trusted slice.
        slice: ProcessSet,
        /// Maximum number of slice members that may fail.
        f: usize,
    },
}

impl FailProneSystem {
    /// Creates the threshold fail-prone system tolerating `f` out of `n`
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics if `f >= n`.
    pub fn threshold(n: usize, f: usize) -> Self {
        assert!(f < n, "threshold fail-prone system needs f < n (got f={f}, n={n})");
        FailProneSystem::Threshold { n, f }
    }

    /// Creates an explicit fail-prone system from arbitrary sets.
    ///
    /// Non-maximal sets are dropped (the system is the downward closure of its
    /// maximal elements).
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::Empty`] if no set is given, and
    /// [`QuorumError::OutOfRange`] if a set mentions a process `≥ n`.
    pub fn explicit(n: usize, mut sets: Vec<ProcessSet>) -> Result<Self, QuorumError> {
        if sets.is_empty() {
            return Err(QuorumError::Empty);
        }
        for s in &sets {
            if s.max_id().is_some_and(|m| m.index() >= n) {
                return Err(QuorumError::OutOfRange { set: s.clone(), n });
            }
        }
        retain_maximal(&mut sets);
        Ok(FailProneSystem::Explicit { n, sets })
    }

    /// Creates the slice-threshold fail-prone system: everything outside
    /// `slice` may fail, plus at most `f` members of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` reaches outside the universe or `f >= |slice|`.
    pub fn slice_threshold(n: usize, slice: ProcessSet, f: usize) -> Self {
        assert!(
            slice.max_id().is_some_and(|m| m.index() < n),
            "slice must be non-empty and within the universe"
        );
        assert!(f < slice.len(), "slice threshold needs f < |slice|");
        FailProneSystem::SliceThreshold { n, slice, f }
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        match self {
            FailProneSystem::Threshold { n, .. }
            | FailProneSystem::Explicit { n, .. }
            | FailProneSystem::SliceThreshold { n, .. } => *n,
        }
    }

    /// Returns `true` if `faulty ∈ F*`, i.e. the system *foresees* this set of
    /// failures (some fail-prone set contains it).
    pub fn covers(&self, faulty: &ProcessSet) -> bool {
        match self {
            FailProneSystem::Threshold { n, f } => {
                faulty.len() <= *f && faulty.max_id().is_none_or(|m| m.index() < *n)
            }
            FailProneSystem::Explicit { sets, .. } => sets.iter().any(|s| faulty.is_subset(s)),
            FailProneSystem::SliceThreshold { n, slice, f } => {
                faulty.intersection(slice).len() <= *f
                    && faulty.max_id().is_none_or(|m| m.index() < *n)
            }
        }
    }

    /// Returns the maximal fail-prone sets.
    ///
    /// For threshold systems this *enumerates* all `C(n, f)` subsets — only
    /// call it on small systems (figure regeneration, tests). All validation
    /// fast-paths avoid this enumeration.
    pub fn maximal_sets(&self) -> Vec<ProcessSet> {
        match self {
            FailProneSystem::Threshold { n, f } => {
                combinations(&ProcessSet::full(*n), *f).collect()
            }
            FailProneSystem::Explicit { sets, .. } => sets.clone(),
            FailProneSystem::SliceThreshold { n, slice, f } => {
                let outside = slice.complement(*n);
                combinations(slice, *f).map(|c| c.union(&outside)).collect()
            }
        }
    }

    /// Checks the Q³ condition: no three fail-prone sets cover `P`.
    ///
    /// Q³ is necessary and sufficient for a Byzantine quorum system tolerating
    /// this fail-prone system to exist (Malkhi–Reiter).
    pub fn satisfies_q3(&self) -> bool {
        self.q3_violation().is_none()
    }

    /// Returns a witness of a Q³ violation, or `None` if Q³ holds.
    pub fn q3_violation(&self) -> Option<[ProcessSet; 3]> {
        match self {
            FailProneSystem::Threshold { n, f } => {
                if *n > 3 * *f {
                    None
                } else {
                    // Witness: three consecutive slices of size f (padded with
                    // the last processes if 3f > n they overlap arbitrarily).
                    let a = ProcessSet::from_indices(0..*f);
                    let b = ProcessSet::from_indices(*f..(2 * *f).min(*n));
                    let mut c = ProcessSet::from_indices((2 * *f).min(*n)..*n);
                    // Pad c up to f elements to stay a fail-prone set.
                    for i in 0..*n {
                        if c.len() >= *f {
                            break;
                        }
                        c.insert(crate::ProcessId::new(i));
                    }
                    Some([a, b, c])
                }
            }
            FailProneSystem::Explicit { n, sets } => {
                let full = ProcessSet::full(*n);
                for a in sets {
                    for b in sets {
                        let ab = a.union(b);
                        for c in sets {
                            if ab.union(c) == full {
                                return Some([a.clone(), b.clone(), c.clone()]);
                            }
                        }
                    }
                }
                None
            }
            FailProneSystem::SliceThreshold { n, slice, f } => {
                if slice.len() > 3 * *f {
                    return None;
                }
                // Three f-chunks of the slice cover it when 3f ≥ |slice|.
                let members = slice.to_vec();
                let outside = slice.complement(*n);
                let chunk = |k: usize| -> ProcessSet {
                    members
                        .iter()
                        .copied()
                        .cycle()
                        .skip(k * *f)
                        .take(*f)
                        .collect::<ProcessSet>()
                        .union(&outside)
                };
                Some([chunk(0), chunk(1), chunk(2)])
            }
        }
    }

    /// Returns the canonical quorum system: the complements of the maximal
    /// fail-prone sets.
    ///
    /// For a threshold system `f`-of-`n` this is the `(n−f)`-of-`n` quorum
    /// system used by classic BFT protocols.
    pub fn canonical_quorums(&self) -> QuorumSystem {
        match self {
            FailProneSystem::Threshold { n, f } => QuorumSystem::Threshold { n: *n, q: n - f },
            FailProneSystem::Explicit { n, sets } => {
                let mut quorums: Vec<ProcessSet> = sets.iter().map(|s| s.complement(*n)).collect();
                retain_minimal(&mut quorums);
                QuorumSystem::Explicit { n: *n, quorums }
            }
            FailProneSystem::SliceThreshold { n, slice, f } => {
                QuorumSystem::SliceThreshold { n: *n, slice: slice.clone(), q: slice.len() - f }
            }
        }
    }
}

/// A symmetric Byzantine quorum system: a collection of quorums, identified
/// with the antichain of its *minimal* elements (any superset of a quorum is a
/// quorum).
///
/// # Examples
///
/// ```
/// use asym_quorum::{ProcessSet, QuorumSystem};
///
/// // Classic n=4, f=1: quorums are all sets of ≥ 3 processes.
/// let qs = QuorumSystem::threshold(4, 3);
/// assert!(qs.contains_quorum(&ProcessSet::from_indices([0, 1, 3])));
/// assert!(!qs.contains_quorum(&ProcessSet::from_indices([0, 1])));
/// // A kernel must intersect every quorum: any 2 processes suffice here.
/// assert!(qs.is_kernel(&ProcessSet::from_indices([1, 2])));
/// assert!(!qs.is_kernel(&ProcessSet::from_indices([1])));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuorumSystem {
    /// Quorums are all subsets of size at least `q`.
    Threshold {
        /// Number of processes in the system.
        n: usize,
        /// Minimum quorum cardinality.
        q: usize,
    },
    /// An explicit antichain of minimal quorums.
    Explicit {
        /// Number of processes in the system.
        n: usize,
        /// Minimal quorums (canonicalized: an antichain, sorted).
        quorums: Vec<ProcessSet>,
    },
    /// Quorums are all subsets of `slice` of size at least `q` (the canonical
    /// quorum system of [`FailProneSystem::SliceThreshold`]).
    SliceThreshold {
        /// Number of processes in the system.
        n: usize,
        /// The trusted slice.
        slice: ProcessSet,
        /// Minimum number of slice members forming a quorum.
        q: usize,
    },
}

impl QuorumSystem {
    /// Creates the threshold quorum system whose quorums are all sets of at
    /// least `q` processes.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `q > n`.
    pub fn threshold(n: usize, q: usize) -> Self {
        assert!(q >= 1 && q <= n, "threshold quorum size must satisfy 1 ≤ q ≤ n");
        QuorumSystem::Threshold { n, q }
    }

    /// Creates an explicit quorum system from arbitrary quorums; non-minimal
    /// quorums are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::Empty`] if no quorum is given,
    /// [`QuorumError::OutOfRange`] if a quorum mentions a process `≥ n`, and
    /// [`QuorumError::EmptyQuorum`] if the empty set is given as a quorum.
    pub fn explicit(n: usize, mut quorums: Vec<ProcessSet>) -> Result<Self, QuorumError> {
        if quorums.is_empty() {
            return Err(QuorumError::Empty);
        }
        for q in &quorums {
            if q.is_empty() {
                return Err(QuorumError::EmptyQuorum { process: crate::ProcessId::new(0) });
            }
            if q.max_id().is_some_and(|m| m.index() >= n) {
                return Err(QuorumError::OutOfRange { set: q.clone(), n });
            }
        }
        retain_minimal(&mut quorums);
        Ok(QuorumSystem::Explicit { n, quorums })
    }

    /// Creates the slice-threshold quorum system whose quorums are all
    /// subsets of `slice` with at least `q` members.
    ///
    /// # Panics
    ///
    /// Panics if `slice` reaches outside the universe or `q` is not in
    /// `1..=|slice|`.
    pub fn slice_threshold(n: usize, slice: ProcessSet, q: usize) -> Self {
        assert!(
            slice.max_id().is_some_and(|m| m.index() < n),
            "slice must be non-empty and within the universe"
        );
        assert!(q >= 1 && q <= slice.len(), "slice quorum size must satisfy 1 ≤ q ≤ |slice|");
        QuorumSystem::SliceThreshold { n, slice, q }
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        match self {
            QuorumSystem::Threshold { n, .. }
            | QuorumSystem::Explicit { n, .. }
            | QuorumSystem::SliceThreshold { n, .. } => *n,
        }
    }

    /// Size of the smallest quorum (`c(Q)` in the paper's Lemma 4.4).
    pub fn min_quorum_size(&self) -> usize {
        match self {
            QuorumSystem::Threshold { q, .. } => *q,
            QuorumSystem::Explicit { quorums, .. } => {
                quorums.iter().map(ProcessSet::len).min().unwrap_or(0)
            }
            QuorumSystem::SliceThreshold { q, .. } => *q,
        }
    }

    /// Returns `true` if `observed` contains some quorum.
    ///
    /// This is the protocols' round-advancement test `∃Q ∈ Q_i: Q ⊆ observed`.
    pub fn contains_quorum(&self, observed: &ProcessSet) -> bool {
        match self {
            QuorumSystem::Threshold { n, q } => {
                // Only members of the universe count.
                let within = observed.intersection(&ProcessSet::full(*n));
                within.len() >= *q
            }
            QuorumSystem::Explicit { quorums, .. } => {
                quorums.iter().any(|qs| qs.is_subset(observed))
            }
            QuorumSystem::SliceThreshold { slice, q, .. } => {
                observed.intersection(slice).len() >= *q
            }
        }
    }

    /// Returns some quorum contained in `observed`, if any.
    pub fn find_quorum(&self, observed: &ProcessSet) -> Option<ProcessSet> {
        match self {
            QuorumSystem::Threshold { n, q } => {
                let within = observed.intersection(&ProcessSet::full(*n));
                if within.len() >= *q {
                    Some(within.iter().take(*q).collect())
                } else {
                    None
                }
            }
            QuorumSystem::Explicit { quorums, .. } => {
                quorums.iter().find(|qs| qs.is_subset(observed)).cloned()
            }
            QuorumSystem::SliceThreshold { slice, q, .. } => {
                let within = observed.intersection(slice);
                if within.len() >= *q {
                    Some(within.iter().take(*q).collect())
                } else {
                    None
                }
            }
        }
    }

    /// Returns `true` if `observed` intersects *every* quorum, i.e. contains a
    /// kernel (the protocols' amplification test `∃K ∈ K_i: K ⊆ observed`).
    pub fn is_kernel(&self, observed: &ProcessSet) -> bool {
        match self {
            QuorumSystem::Threshold { n, q } => {
                let within = observed.intersection(&ProcessSet::full(*n));
                within.len() > n - q
            }
            QuorumSystem::Explicit { quorums, .. } => {
                quorums.iter().all(|qs| qs.intersects(observed))
            }
            QuorumSystem::SliceThreshold { slice, q, .. } => {
                observed.intersection(slice).len() > slice.len() - q
            }
        }
    }

    /// Enumerates the minimal quorums.
    ///
    /// For threshold systems this enumerates `C(n, q)` sets — only call it on
    /// small systems.
    pub fn minimal_quorums(&self) -> Vec<ProcessSet> {
        match self {
            QuorumSystem::Threshold { n, q } => combinations(&ProcessSet::full(*n), *q).collect(),
            QuorumSystem::Explicit { quorums, .. } => quorums.clone(),
            QuorumSystem::SliceThreshold { slice, q, .. } => combinations(slice, *q).collect(),
        }
    }

    /// Computes the minimal kernels (minimal hitting sets of the quorums).
    ///
    /// Exponential in general; intended for inspection and tests on small
    /// systems. For threshold systems the closed form (all `(n−q+1)`-subsets)
    /// is returned without search.
    pub fn minimal_kernels(&self) -> Vec<ProcessSet> {
        match self {
            QuorumSystem::Threshold { n, q } => {
                combinations(&ProcessSet::full(*n), n - q + 1).collect()
            }
            QuorumSystem::Explicit { quorums, .. } => minimal_hitting_sets(quorums),
            QuorumSystem::SliceThreshold { slice, q, .. } => {
                combinations(slice, slice.len() - q + 1).collect()
            }
        }
    }

    /// Checks quorum **consistency** against a fail-prone system: any two
    /// quorums intersect in at least one process outside every common
    /// fail-prone set.
    ///
    /// # Errors
    ///
    /// Returns the violating pair and fail-prone set on failure.
    pub fn check_consistency(&self, fps: &FailProneSystem) -> Result<(), QuorumError> {
        match (self, fps) {
            (QuorumSystem::Threshold { n, q }, FailProneSystem::Threshold { f, .. }) => {
                // |Q1 ∩ Q2| ≥ 2q − n must exceed f.
                if 2 * q > n + f {
                    Ok(())
                } else {
                    let qi = ProcessSet::from_indices(0..*q);
                    let qj = ProcessSet::from_indices(n - q..*n);
                    let fij: ProcessSet = qi.intersection(&qj).iter().take(*f).collect();
                    Err(QuorumError::ConsistencyViolation {
                        i: crate::ProcessId::new(0),
                        j: crate::ProcessId::new(0),
                        qi,
                        qj,
                        fij,
                    })
                }
            }
            _ => {
                let quorums = self.minimal_quorums();
                let fail_sets = fps.maximal_sets();
                for qi in &quorums {
                    for qj in &quorums {
                        let inter = qi.intersection(qj);
                        for fij in &fail_sets {
                            if inter.is_subset(fij) {
                                return Err(QuorumError::ConsistencyViolation {
                                    i: crate::ProcessId::new(0),
                                    j: crate::ProcessId::new(0),
                                    qi: qi.clone(),
                                    qj: qj.clone(),
                                    fij: fij.clone(),
                                });
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Checks quorum **availability** against a fail-prone system: for every
    /// fail-prone set there is a disjoint quorum.
    ///
    /// # Errors
    ///
    /// Returns the fail-prone set no quorum avoids on failure.
    pub fn check_availability(&self, fps: &FailProneSystem) -> Result<(), QuorumError> {
        match (self, fps) {
            (QuorumSystem::Threshold { n, q }, FailProneSystem::Threshold { f, .. }) => {
                if q + f <= *n {
                    Ok(())
                } else {
                    Err(QuorumError::AvailabilityViolation {
                        process: crate::ProcessId::new(0),
                        fail_prone: ProcessSet::from_indices(0..*f),
                    })
                }
            }
            _ => {
                let quorums = self.minimal_quorums();
                for fset in fps.maximal_sets() {
                    if !quorums.iter().any(|q| q.is_disjoint(&fset)) {
                        return Err(QuorumError::AvailabilityViolation {
                            process: crate::ProcessId::new(0),
                            fail_prone: fset,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(ids: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(ids.iter().copied())
    }

    #[test]
    fn threshold_covers() {
        let fps = FailProneSystem::threshold(7, 2);
        assert!(fps.covers(&ProcessSet::new()));
        assert!(fps.covers(&set(&[0, 6])));
        assert!(!fps.covers(&set(&[0, 1, 2])));
        assert!(!fps.covers(&set(&[7])), "out-of-universe processes are not covered");
    }

    #[test]
    fn explicit_covers_downward_closure() {
        let fps = FailProneSystem::explicit(5, vec![set(&[0, 1]), set(&[3])]).unwrap();
        assert!(fps.covers(&set(&[0])));
        assert!(fps.covers(&set(&[0, 1])));
        assert!(fps.covers(&set(&[3])));
        assert!(!fps.covers(&set(&[0, 3])));
    }

    #[test]
    fn explicit_canonicalizes_to_maximal_antichain() {
        let fps =
            FailProneSystem::explicit(5, vec![set(&[0]), set(&[0, 1]), set(&[0, 1])]).unwrap();
        assert_eq!(fps.maximal_sets(), vec![set(&[0, 1])]);
    }

    #[test]
    fn q3_threshold() {
        assert!(FailProneSystem::threshold(4, 1).satisfies_q3());
        assert!(FailProneSystem::threshold(7, 2).satisfies_q3());
        assert!(!FailProneSystem::threshold(6, 2).satisfies_q3());
        assert!(!FailProneSystem::threshold(3, 1).satisfies_q3());
        // Violation witnesses actually cover P with fail-prone sets.
        let fps = FailProneSystem::threshold(6, 2);
        let w = fps.q3_violation().unwrap();
        let union = w[0].union(&w[1]).union(&w[2]);
        assert_eq!(union, ProcessSet::full(6));
        for s in &w {
            assert!(fps.covers(s));
        }
    }

    #[test]
    fn q3_explicit() {
        let good =
            FailProneSystem::explicit(4, vec![set(&[0]), set(&[1]), set(&[2]), set(&[3])]).unwrap();
        assert!(good.satisfies_q3());
        let bad = FailProneSystem::explicit(3, vec![set(&[0]), set(&[1]), set(&[2])]).unwrap();
        assert!(!bad.satisfies_q3());
    }

    #[test]
    fn canonical_quorums_threshold() {
        let fps = FailProneSystem::threshold(4, 1);
        let qs = fps.canonical_quorums();
        assert_eq!(qs.min_quorum_size(), 3);
        assert!(qs.check_consistency(&fps).is_ok());
        assert!(qs.check_availability(&fps).is_ok());
    }

    #[test]
    fn canonical_quorums_explicit_are_complements() {
        let fps = FailProneSystem::explicit(4, vec![set(&[0]), set(&[1, 2])]).unwrap();
        let qs = fps.canonical_quorums();
        assert_eq!(qs.minimal_quorums(), vec![set(&[0, 3]), set(&[1, 2, 3])],);
    }

    #[test]
    fn quorum_membership_and_kernels_threshold() {
        let qs = QuorumSystem::threshold(4, 3);
        assert!(qs.contains_quorum(&set(&[0, 1, 2])));
        assert!(qs.contains_quorum(&set(&[0, 1, 2, 3])));
        assert!(!qs.contains_quorum(&set(&[0, 1])));
        let q = qs.find_quorum(&set(&[0, 1, 2, 3])).unwrap();
        assert_eq!(q.len(), 3);
        // kernel size n - q + 1 = 2
        assert!(qs.is_kernel(&set(&[0, 3])));
        assert!(!qs.is_kernel(&set(&[3])));
        assert_eq!(qs.minimal_kernels().len(), 6);
    }

    #[test]
    fn quorum_membership_explicit() {
        let qs = QuorumSystem::explicit(4, vec![set(&[0, 1]), set(&[2, 3])]).unwrap();
        assert!(qs.contains_quorum(&set(&[0, 1, 2])));
        assert!(!qs.contains_quorum(&set(&[0, 2])));
        assert_eq!(qs.find_quorum(&set(&[2, 3])), Some(set(&[2, 3])));
        // Kernels must hit both {0,1} and {2,3}.
        assert!(qs.is_kernel(&set(&[1, 2])));
        assert!(!qs.is_kernel(&set(&[0, 1])));
        let kernels = qs.minimal_kernels();
        assert_eq!(kernels.len(), 4);
        assert!(kernels.contains(&set(&[0, 2])));
    }

    #[test]
    fn consistency_availability_thresholds() {
        // n = 3f + 1, q = 2f + 1 is consistent and available.
        for f in 1..6 {
            let n = 3 * f + 1;
            let fps = FailProneSystem::threshold(n, f);
            let qs = QuorumSystem::threshold(n, 2 * f + 1);
            assert!(qs.check_consistency(&fps).is_ok(), "f={f}");
            assert!(qs.check_availability(&fps).is_ok(), "f={f}");
        }
        // Quorums too small: inconsistent.
        let fps = FailProneSystem::threshold(4, 1);
        let qs = QuorumSystem::threshold(4, 2);
        assert!(matches!(
            qs.check_consistency(&fps),
            Err(QuorumError::ConsistencyViolation { .. })
        ));
        // Quorums too large: unavailable.
        let qs = QuorumSystem::threshold(4, 4);
        assert!(matches!(
            qs.check_availability(&fps),
            Err(QuorumError::AvailabilityViolation { .. })
        ));
    }

    #[test]
    fn explicit_constructor_validation() {
        assert_eq!(QuorumSystem::explicit(3, vec![]), Err(QuorumError::Empty));
        assert!(matches!(
            QuorumSystem::explicit(3, vec![ProcessSet::new()]),
            Err(QuorumError::EmptyQuorum { .. })
        ));
        assert!(matches!(
            QuorumSystem::explicit(3, vec![set(&[5])]),
            Err(QuorumError::OutOfRange { .. })
        ));
        assert!(matches!(
            FailProneSystem::explicit(3, vec![set(&[5])]),
            Err(QuorumError::OutOfRange { .. })
        ));
    }

    #[test]
    fn threshold_explicit_agree() {
        // The implicit threshold representation must agree with the explicit
        // enumeration of the same system.
        let t = QuorumSystem::threshold(5, 3);
        let e = QuorumSystem::explicit(5, t.minimal_quorums()).unwrap();
        let fps_t = FailProneSystem::threshold(5, 1);
        let fps_e = FailProneSystem::explicit(5, fps_t.maximal_sets()).unwrap();
        assert_eq!(fps_t.satisfies_q3(), fps_e.satisfies_q3());
        assert_eq!(t.check_consistency(&fps_t).is_ok(), e.check_consistency(&fps_e).is_ok());
        assert_eq!(t.check_availability(&fps_t).is_ok(), e.check_availability(&fps_e).is_ok());
    }

    #[test]
    fn slice_threshold_membership() {
        // Slice {1,2,3,4,5} with f=1 → quorums are 4-subsets of the slice.
        let slice = set(&[1, 2, 3, 4, 5]);
        let fps = FailProneSystem::slice_threshold(8, slice.clone(), 1);
        assert!(fps.covers(&set(&[0, 6, 7, 3])), "outside + 1 slice member");
        assert!(!fps.covers(&set(&[2, 3])), "two slice members exceed f");
        let qs = fps.canonical_quorums();
        assert_eq!(qs.min_quorum_size(), 4);
        assert!(qs.contains_quorum(&set(&[1, 2, 3, 4])));
        assert!(!qs.contains_quorum(&set(&[0, 1, 2, 6, 7])), "outside processes don't count");
        assert_eq!(qs.find_quorum(&set(&[0, 1, 2, 3, 4])), Some(set(&[1, 2, 3, 4])));
        // Kernel: |slice| - q + 1 = 2 slice members.
        assert!(qs.is_kernel(&set(&[3, 5])));
        assert!(!qs.is_kernel(&set(&[3, 0, 6])));
        assert!(qs.check_consistency(&fps).is_ok());
        assert!(qs.check_availability(&fps).is_ok());
    }

    #[test]
    fn slice_threshold_q3() {
        let slice = set(&[0, 1, 2, 3]);
        assert!(FailProneSystem::slice_threshold(6, slice.clone(), 1).satisfies_q3());
        let fps = FailProneSystem::slice_threshold(6, set(&[0, 1, 2]), 1);
        assert!(!fps.satisfies_q3());
        let w = fps.q3_violation().unwrap();
        let union = w[0].union(&w[1]).union(&w[2]);
        assert_eq!(union, ProcessSet::full(6));
        for s in &w {
            assert!(fps.covers(s), "witness {s} not fail-prone");
        }
    }

    #[test]
    fn slice_threshold_maximal_sets() {
        let fps = FailProneSystem::slice_threshold(5, set(&[0, 1, 2]), 1);
        let max = fps.maximal_sets();
        assert_eq!(max.len(), 3);
        assert!(max.contains(&set(&[0, 3, 4])));
        assert!(max.contains(&set(&[1, 3, 4])));
        assert!(max.contains(&set(&[2, 3, 4])));
    }

    #[test]
    fn slice_threshold_agrees_with_explicit() {
        let slice = set(&[1, 3, 4]);
        let st = QuorumSystem::slice_threshold(6, slice, 2);
        let ex = QuorumSystem::explicit(6, st.minimal_quorums()).unwrap();
        for bits in 0..64usize {
            let obs: ProcessSet = (0..6).filter(|i| bits & (1 << i) != 0).collect();
            assert_eq!(st.contains_quorum(&obs), ex.contains_quorum(&obs), "{obs}");
            assert_eq!(st.is_kernel(&obs), ex.is_kernel(&obs), "{obs}");
        }
    }

    proptest! {
        #[test]
        fn prop_threshold_and_explicit_membership_agree(
            n in 3usize..8,
            q in 1usize..8,
            observed in proptest::collection::vec(0usize..8, 0..8),
        ) {
            prop_assume!(q <= n);
            let t = QuorumSystem::threshold(n, q);
            let e = QuorumSystem::explicit(n, t.minimal_quorums()).unwrap();
            let obs: ProcessSet = observed.into_iter().filter(|i| *i < n).collect();
            prop_assert_eq!(t.contains_quorum(&obs), e.contains_quorum(&obs));
            prop_assert_eq!(t.is_kernel(&obs), e.is_kernel(&obs));
        }

        #[test]
        fn prop_kernel_iff_hits_all_quorums(
            n in 3usize..7,
            q in 2usize..7,
            observed in proptest::collection::vec(0usize..7, 0..7),
        ) {
            prop_assume!(q <= n);
            let qs = QuorumSystem::threshold(n, q);
            let obs: ProcessSet = observed.into_iter().filter(|i| *i < n).collect();
            let hits_all = qs.minimal_quorums().iter().all(|quorum| quorum.intersects(&obs));
            prop_assert_eq!(qs.is_kernel(&obs), hits_all);
        }
    }
}
