//! Process classification (faulty / naive / wise) and guilds (paper §2.3,
//! Definition 2.2).
//!
//! Given the *actual* set of faulty processes `F` of an execution — known only
//! to an outside observer — every process falls into one of three classes:
//!
//! * **faulty** — a member of `F`;
//! * **wise** — correct and `F ∈ F_i*` (its trust assumption foresaw `F`);
//! * **naive** — correct but `F ∉ F_i*` ("chose the wrong friends").
//!
//! A **guild** is a set of wise processes containing one quorum for each
//! member; all liveness and safety guarantees of the paper's protocols are
//! stated for the members of the *maximal* guild.

use crate::{AsymFailProneSystem, AsymQuorumSystem, ProcessId, ProcessSet};

/// Observer-level classification of a process with respect to the actual
/// failure set of an execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessClass {
    /// The process is in the actual failure set `F`.
    Faulty,
    /// The process is correct but its fail-prone system does not cover `F`.
    Naive,
    /// The process is correct and `F ∈ F_i*`.
    Wise,
}

impl core::fmt::Display for ProcessClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ProcessClass::Faulty => "faulty",
            ProcessClass::Naive => "naive",
            ProcessClass::Wise => "wise",
        };
        f.write_str(s)
    }
}

/// Classifies one process with respect to the actual failure set.
pub fn classify(fps: &AsymFailProneSystem, faulty: &ProcessSet, p: ProcessId) -> ProcessClass {
    if faulty.contains(p) {
        ProcessClass::Faulty
    } else if fps.foresees(p, faulty) {
        ProcessClass::Wise
    } else {
        ProcessClass::Naive
    }
}

/// Returns the set of wise processes for the given failure set.
pub fn wise_processes(fps: &AsymFailProneSystem, faulty: &ProcessSet) -> ProcessSet {
    (0..fps.n())
        .map(ProcessId::new)
        .filter(|p| classify(fps, faulty, *p) == ProcessClass::Wise)
        .collect()
}

/// Returns `true` if `candidate` is a guild for `(fps, qs)` under the given
/// failure set: all members wise, and each member has a quorum inside the set
/// (Definition 2.2: wisdom + closure).
pub fn is_guild(
    fps: &AsymFailProneSystem,
    qs: &AsymQuorumSystem,
    faulty: &ProcessSet,
    candidate: &ProcessSet,
) -> bool {
    if candidate.is_empty() {
        return false;
    }
    candidate.iter().all(|p| {
        classify(fps, faulty, p) == ProcessClass::Wise && qs.contains_quorum_for(p, candidate)
    })
}

/// Computes the **maximal guild** for the given failure set, or `None` if no
/// guild exists.
///
/// The maximal guild is the greatest fixpoint of "remove every process
/// without a quorum inside the current set", started from the set of wise
/// processes; the union of any two guilds is a guild, so the fixpoint is the
/// unique maximal one.
///
/// # Examples
///
/// ```
/// use asym_quorum::{
///     maximal_guild, AsymFailProneSystem, FailProneSystem, ProcessSet,
/// };
///
/// let fps = AsymFailProneSystem::uniform(FailProneSystem::threshold(4, 1));
/// let qs = fps.canonical_quorums();
/// let faulty = ProcessSet::from_indices([3]);
/// let guild = maximal_guild(&fps, &qs, &faulty).unwrap();
/// assert_eq!(guild, ProcessSet::from_indices([0, 1, 2]));
/// ```
pub fn maximal_guild(
    fps: &AsymFailProneSystem,
    qs: &AsymQuorumSystem,
    faulty: &ProcessSet,
) -> Option<ProcessSet> {
    let mut guild = wise_processes(fps, faulty);
    loop {
        let lacking: Vec<ProcessId> =
            guild.iter().filter(|p| !qs.contains_quorum_for(*p, &guild)).collect();
        if lacking.is_empty() {
            break;
        }
        for p in lacking {
            guild.remove(p);
        }
    }
    if guild.is_empty() {
        None
    } else {
        debug_assert!(is_guild(fps, qs, faulty, &guild));
        Some(guild)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailProneSystem, QuorumSystem};

    fn set(ids: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(ids.iter().copied())
    }

    fn threshold_system(n: usize, f: usize) -> (AsymFailProneSystem, AsymQuorumSystem) {
        let fps = AsymFailProneSystem::uniform(FailProneSystem::threshold(n, f));
        let qs = fps.canonical_quorums();
        (fps, qs)
    }

    #[test]
    fn classification_threshold() {
        let (fps, _) = threshold_system(4, 1);
        let faulty = set(&[3]);
        assert_eq!(classify(&fps, &faulty, ProcessId::new(3)), ProcessClass::Faulty);
        for i in 0..3 {
            assert_eq!(classify(&fps, &faulty, ProcessId::new(i)), ProcessClass::Wise);
        }
        // Two failures exceed everyone's assumption: correct processes naive.
        let faulty = set(&[2, 3]);
        assert_eq!(classify(&fps, &faulty, ProcessId::new(0)), ProcessClass::Naive);
        assert_eq!(wise_processes(&fps, &faulty), ProcessSet::new());
    }

    #[test]
    fn classification_display() {
        assert_eq!(ProcessClass::Wise.to_string(), "wise");
        assert_eq!(ProcessClass::Naive.to_string(), "naive");
        assert_eq!(ProcessClass::Faulty.to_string(), "faulty");
    }

    #[test]
    fn maximal_guild_threshold_no_faults() {
        let (fps, qs) = threshold_system(4, 1);
        let guild = maximal_guild(&fps, &qs, &ProcessSet::new()).unwrap();
        assert_eq!(guild, ProcessSet::full(4));
    }

    #[test]
    fn maximal_guild_threshold_with_fault() {
        let (fps, qs) = threshold_system(7, 2);
        let guild = maximal_guild(&fps, &qs, &set(&[0, 1])).unwrap();
        assert_eq!(guild, set(&[2, 3, 4, 5, 6]));
        // Exceeding the threshold destroys all guilds.
        assert_eq!(maximal_guild(&fps, &qs, &set(&[0, 1, 2])), None);
    }

    #[test]
    fn naive_processes_excluded_from_guild() {
        // 4 processes. p0..p2 assume {3} may fail; p3 assumes {0} may fail.
        let f_a = FailProneSystem::explicit(4, vec![set(&[3])]).unwrap();
        let f_b = FailProneSystem::explicit(4, vec![set(&[0])]).unwrap();
        let fps =
            AsymFailProneSystem::new(vec![f_a.clone(), f_a.clone(), f_a.clone(), f_b]).unwrap();
        let qs = fps.canonical_quorums();
        // Actual failure: {3}. p0..p2 wise; p3 faulty.
        let guild = maximal_guild(&fps, &qs, &set(&[3])).unwrap();
        assert_eq!(guild, set(&[0, 1, 2]));
        // Actual failure: {0}. p3 wise but p1, p2 naive — and p3's only
        // quorum {1,2,3} is not fully wise, so no guild exists.
        assert_eq!(classify(&fps, &set(&[0]), ProcessId::new(3)), ProcessClass::Wise);
        assert_eq!(classify(&fps, &set(&[0]), ProcessId::new(1)), ProcessClass::Naive);
        assert_eq!(maximal_guild(&fps, &qs, &set(&[0])), None);
    }

    #[test]
    fn closure_iteration_removes_cascade() {
        // Chain of dependencies: p0's quorum needs p1, p1's needs p2, p2's
        // needs the (faulty) p3 — everyone unravels even though all "wise".
        let q = |ids: &[usize]| QuorumSystem::explicit(4, vec![set(ids)]).unwrap();
        let qs = AsymQuorumSystem::new(vec![q(&[0, 1]), q(&[1, 2]), q(&[2, 3]), q(&[3])]).unwrap();
        // Everyone's fail-prone system covers {3} so all correct are wise.
        let fps =
            AsymFailProneSystem::uniform(FailProneSystem::explicit(4, vec![set(&[3])]).unwrap());
        assert_eq!(maximal_guild(&fps, &qs, &set(&[3])), None);
        // Without failures, the full set is a guild.
        let guild = maximal_guild(&fps, &qs, &ProcessSet::new()).unwrap();
        assert_eq!(guild, ProcessSet::full(4));
    }

    #[test]
    fn is_guild_rejects_non_closed_sets() {
        let (fps, qs) = threshold_system(4, 1);
        // {0,1} is wise but contains no quorum (quorums have size 3).
        assert!(!is_guild(&fps, &qs, &set(&[3]), &set(&[0, 1])));
        assert!(is_guild(&fps, &qs, &set(&[3]), &set(&[0, 1, 2])));
        assert!(!is_guild(&fps, &qs, &set(&[3]), &ProcessSet::new()));
    }

    #[test]
    fn guild_members_guaranteed_quorum_of_guild_members() {
        let (fps, qs) = threshold_system(10, 3);
        let faulty = set(&[7, 8, 9]);
        let guild = maximal_guild(&fps, &qs, &faulty).unwrap();
        for p in &guild {
            let q = qs.find_quorum_for(p, &guild).unwrap();
            assert!(q.is_subset(&guild));
        }
    }
}
