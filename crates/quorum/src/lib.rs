//! Symmetric and **asymmetric Byzantine quorum systems** — the trust substrate
//! of the paper *"DAG-based Consensus with Asymmetric Trust"* (Amores-Sesar,
//! Cachin, Villacis, Zanolini; PODC 2025).
//!
//! In protocols with asymmetric trust each process `p_i` declares its own
//! *fail-prone system* `F_i` (which sets of processes it believes may jointly
//! fail) and derives its own *quorums* `Q_i`. This crate provides:
//!
//! * [`ProcessId`] / [`ProcessSet`] — dense process identifiers and bit-set
//!   process sets, the currency of all quorum mathematics;
//! * [`FailProneSystem`] / [`QuorumSystem`] — symmetric (global) systems with
//!   threshold, explicit, and slice-threshold (UNL-style) representations;
//! * [`AsymFailProneSystem`] / [`AsymQuorumSystem`] — the per-process arrays
//!   of Definition 2.1, with the **B³ condition** (Definition 2.3),
//!   consistency/availability validation and canonical-quorum construction
//!   (Theorem 2.4);
//! * [`maximal_guild`] and process classification ([`ProcessClass`]) —
//!   wise/naive/faulty processes and guilds (Definition 2.2);
//! * [`counterexample`] — the paper's 30-process Figure-1 system on which the
//!   quorum-replacement gather provably fails;
//! * [`topology`] — generators (uniform threshold, Ripple-style UNLs,
//!   Stellar-style tiers, random slices) used by the experiment suite.
//!
//! # Quick start
//!
//! ```
//! use asym_quorum::{maximal_guild, topology, ProcessSet};
//!
//! // A 7-process system where everyone tolerates 2 failures.
//! let t = topology::uniform_threshold(7, 2);
//! assert!(t.fail_prone.satisfies_b3());
//! t.quorums.validate(&t.fail_prone)?;
//!
//! // With processes 5 and 6 actually faulty, the rest form the maximal guild.
//! let faulty = ProcessSet::from_indices([5, 6]);
//! let guild = maximal_guild(&t.fail_prone, &t.quorums, &faulty).unwrap();
//! assert_eq!(guild, ProcessSet::from_indices([0, 1, 2, 3, 4]));
//! # Ok::<(), asym_quorum::QuorumError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asymmetric;
pub mod combinatorics;
pub mod counterexample;
mod error;
mod guild;
mod pid;
mod set;
mod symmetric;
pub mod topology;

pub use asymmetric::{AsymFailProneSystem, AsymQuorumSystem};
pub use error::QuorumError;
pub use guild::{classify, is_guild, maximal_guild, wise_processes, ProcessClass};
pub use pid::{all_processes, ProcessId};
pub use set::{Iter, ProcessSet};
pub use symmetric::{FailProneSystem, QuorumSystem};
