//! Trust-topology generators for experiments and examples.
//!
//! These generators produce `(fail-prone system, quorum system)` pairs that
//! model the heterogeneous-trust settings the paper's introduction motivates:
//! uniform thresholds (the classic model embedded in the asymmetric one),
//! Ripple-style overlapping UNLs, Stellar-style tiered slices, and random
//! asymmetric systems for property-based sweeps.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt, SeedableRng};

use crate::{
    AsymFailProneSystem, AsymQuorumSystem, FailProneSystem, ProcessId, ProcessSet, QuorumSystem,
};

/// A named trust configuration: an asymmetric fail-prone system together with
/// its (usually canonical) asymmetric quorum system.
///
/// # Examples
///
/// ```
/// use asym_quorum::topology;
///
/// let t = topology::uniform_threshold(7, 2);
/// assert!(t.fail_prone.satisfies_b3());
/// assert!(t.quorums.validate(&t.fail_prone).is_ok());
/// assert_eq!(t.quorums.min_quorum_size(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable name used in experiment output.
    pub name: String,
    /// The asymmetric fail-prone system `F = [F_1, …, F_n]`.
    pub fail_prone: AsymFailProneSystem,
    /// The asymmetric quorum system `Q = [Q_1, …, Q_n]`.
    pub quorums: AsymQuorumSystem,
}

impl Topology {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.quorums.n()
    }
}

/// The uniform threshold topology: every process assumes at most `f` of `n`
/// processes fail and uses `(n−f)`-quorums. This embeds the symmetric model
/// (e.g. DAG-Rider's `n = 3f + 1`) into the asymmetric one.
///
/// # Panics
///
/// Panics if `f >= n`.
pub fn uniform_threshold(n: usize, f: usize) -> Topology {
    let fps = AsymFailProneSystem::uniform(FailProneSystem::threshold(n, f));
    let quorums = fps.canonical_quorums();
    Topology { name: format!("threshold(n={n},f={f})"), fail_prone: fps, quorums }
}

/// A Ripple-style topology: process `i`'s UNL is the window
/// `{i, i+1, …, i+unl−1}` (mod `n`) and it tolerates `f` failures inside its
/// UNL. Neighbouring processes have heavily overlapping but *distinct* trust
/// assumptions.
///
/// # Examples
///
/// With large overlap the system satisfies B³ and admits valid asymmetric
/// quorums; with small, nearly disjoint UNLs it cannot:
///
/// ```
/// use asym_quorum::topology;
///
/// let good = topology::ripple_unl(10, 8, 1);
/// assert!(good.fail_prone.satisfies_b3());
/// assert!(good.quorums.validate(&good.fail_prone).is_ok());
/// assert_eq!(good.n(), 10);
///
/// let bad = topology::ripple_unl(12, 4, 1);
/// assert!(!bad.fail_prone.satisfies_b3());
/// ```
///
/// # Panics
///
/// Panics if `unl > n`, `unl == 0`, or `f >= unl`.
pub fn ripple_unl(n: usize, unl: usize, f: usize) -> Topology {
    assert!(unl >= 1 && unl <= n, "UNL size must be in 1..=n");
    assert!(f < unl, "UNL threshold must satisfy f < unl");
    let mut fail = Vec::with_capacity(n);
    let mut quo = Vec::with_capacity(n);
    for i in 0..n {
        let slice: ProcessSet = (0..unl).map(|k| (i + k) % n).collect();
        fail.push(FailProneSystem::slice_threshold(n, slice.clone(), f));
        quo.push(QuorumSystem::slice_threshold(n, slice, unl - f));
    }
    Topology {
        name: format!("ripple(n={n},unl={unl},f={f})"),
        fail_prone: AsymFailProneSystem::new(fail).expect("windowed UNLs are well-formed"),
        quorums: AsymQuorumSystem::new(quo).expect("windowed UNLs are well-formed"),
    }
}

/// A Stellar-style two-tier topology: `core` processes `{0, …, core−1}` trust
/// the core with threshold `f_core`; each *leaf* process trusts
/// `core ∪ {itself}` with the same threshold. This models the "everyone
/// ultimately watches a set of anchor institutions" configuration the Stellar
/// network converged to.
///
/// # Examples
///
/// Leaf failures never affect anyone else's assumptions, so the guild is
/// everything except the failed leaves:
///
/// ```
/// use asym_quorum::{maximal_guild, topology, ProcessSet};
///
/// let t = topology::stellar_tiers(12, 4, 1);
/// assert!(t.fail_prone.satisfies_b3());
///
/// let faulty = ProcessSet::from_indices([8, 9]);
/// let guild = maximal_guild(&t.fail_prone, &t.quorums, &faulty).unwrap();
/// assert_eq!(guild, ProcessSet::full(12).difference(&faulty));
/// ```
///
/// # Panics
///
/// Panics if `core == 0`, `core > n`, or `f_core >= core`.
pub fn stellar_tiers(n: usize, core: usize, f_core: usize) -> Topology {
    assert!(core >= 1 && core <= n, "core size must be in 1..=n");
    assert!(f_core < core, "core threshold must satisfy f_core < core");
    let core_set: ProcessSet = (0..core).collect();
    let mut fail = Vec::with_capacity(n);
    let mut quo = Vec::with_capacity(n);
    for i in 0..n {
        let mut slice = core_set.clone();
        slice.insert(ProcessId::new(i));
        let q = slice.len() - f_core;
        fail.push(FailProneSystem::slice_threshold(n, slice.clone(), f_core));
        quo.push(QuorumSystem::slice_threshold(n, slice, q));
    }
    Topology {
        name: format!("stellar(n={n},core={core},f={f_core})"),
        fail_prone: AsymFailProneSystem::new(fail).expect("tiered slices are well-formed"),
        quorums: AsymQuorumSystem::new(quo).expect("tiered slices are well-formed"),
    }
}

/// Generates a random asymmetric slice topology: every process trusts a
/// random slice of size `slice_size` containing itself, tolerating `f`
/// failures within the slice. Regenerates until the fail-prone system
/// satisfies B³ (up to `max_attempts` tries).
///
/// Returns `None` if no B³ system was found within the attempt budget —
/// callers typically loosen `slice_size`/`f` in that case.
///
/// # Panics
///
/// Panics if `slice_size` is not in `1..=n` or `f >= slice_size`.
pub fn random_slices(
    n: usize,
    slice_size: usize,
    f: usize,
    seed: u64,
    max_attempts: usize,
) -> Option<Topology> {
    assert!(slice_size >= 1 && slice_size <= n, "slice size must be in 1..=n");
    assert!(f < slice_size, "slice threshold must satisfy f < slice_size");
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..max_attempts {
        let mut fail = Vec::with_capacity(n);
        let mut quo = Vec::with_capacity(n);
        for i in 0..n {
            let mut others: Vec<usize> = (0..n).filter(|j| *j != i).collect();
            others.shuffle(&mut rng);
            let mut slice: ProcessSet = others.into_iter().take(slice_size - 1).collect();
            slice.insert(ProcessId::new(i));
            fail.push(FailProneSystem::slice_threshold(n, slice.clone(), f));
            quo.push(QuorumSystem::slice_threshold(n, slice, slice_size - f));
        }
        let fps = AsymFailProneSystem::new(fail).expect("random slices are well-formed");
        if fps.satisfies_b3() {
            let quorums = AsymQuorumSystem::new(quo).expect("random slices are well-formed");
            if quorums.validate(&fps).is_ok() {
                return Some(Topology {
                    name: format!("random(n={n},slice={slice_size},f={f},seed={seed})"),
                    fail_prone: fps,
                    quorums,
                });
            }
        }
    }
    None
}

/// A declarative, seed-replayable recipe for one topology family — the form
/// a scenario matrix can enumerate, print in a failure report, and rebuild
/// bit-for-bit.
///
/// Every variant maps onto one of the generator functions in this module;
/// [`TopologySpec::build`] performs the mapping. Specs are plain data
/// (`Copy`, `Eq`), so a failing sweep cell can report the exact spec and any
/// reader can reconstruct the identical [`Topology`].
///
/// # Examples
///
/// ```
/// use asym_quorum::topology::TopologySpec;
///
/// let spec = TopologySpec::RandomSlices { n: 8, slice: 6, f: 1, seed: 42 };
/// let a = spec.build().expect("seed 42 finds a B3 system");
/// let b = spec.build().unwrap();
/// assert_eq!(a.fail_prone, b.fail_prone, "specs rebuild deterministically");
/// assert_eq!(spec.family(), "random_slices");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// [`uniform_threshold`]`(n, f)`.
    UniformThreshold {
        /// Number of processes.
        n: usize,
        /// Uniform failure threshold.
        f: usize,
    },
    /// [`ripple_unl`]`(n, unl, f)`.
    RippleUnl {
        /// Number of processes.
        n: usize,
        /// UNL window size.
        unl: usize,
        /// Failures tolerated inside each UNL.
        f: usize,
    },
    /// [`stellar_tiers`]`(n, core, f_core)`.
    StellarTiers {
        /// Number of processes.
        n: usize,
        /// Size of the trusted core tier.
        core: usize,
        /// Failures tolerated inside the core.
        f_core: usize,
    },
    /// [`random_slices`]`(n, slice, f, seed, 200)`.
    RandomSlices {
        /// Number of processes.
        n: usize,
        /// Size of each random trust slice.
        slice: usize,
        /// Failures tolerated inside each slice.
        f: usize,
        /// Generation seed (determines the slices).
        seed: u64,
    },
}

impl TopologySpec {
    /// Builds the described topology. Returns `None` only for
    /// [`TopologySpec::RandomSlices`] when no B³ system is found within the
    /// attempt budget; the closed-form families always succeed.
    pub fn build(&self) -> Option<Topology> {
        match *self {
            TopologySpec::UniformThreshold { n, f } => Some(uniform_threshold(n, f)),
            TopologySpec::RippleUnl { n, unl, f } => Some(ripple_unl(n, unl, f)),
            TopologySpec::StellarTiers { n, core, f_core } => Some(stellar_tiers(n, core, f_core)),
            TopologySpec::RandomSlices { n, slice, f, seed } => {
                random_slices(n, slice, f, seed, 200)
            }
        }
    }

    /// The family name (stable identifier for sweep tables).
    pub fn family(&self) -> &'static str {
        match self {
            TopologySpec::UniformThreshold { .. } => "uniform_threshold",
            TopologySpec::RippleUnl { .. } => "ripple_unl",
            TopologySpec::StellarTiers { .. } => "stellar_tiers",
            TopologySpec::RandomSlices { .. } => "random_slices",
        }
    }

    /// Number of processes the built topology will have.
    pub fn n(&self) -> usize {
        match *self {
            TopologySpec::UniformThreshold { n, .. }
            | TopologySpec::RippleUnl { n, .. }
            | TopologySpec::StellarTiers { n, .. }
            | TopologySpec::RandomSlices { n, .. } => n,
        }
    }
}

impl core::fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            TopologySpec::UniformThreshold { n, f: t } => write!(f, "threshold(n={n},f={t})"),
            TopologySpec::RippleUnl { n, unl, f: t } => write!(f, "ripple(n={n},unl={unl},f={t})"),
            TopologySpec::StellarTiers { n, core, f_core } => {
                write!(f, "stellar(n={n},core={core},f={f_core})")
            }
            TopologySpec::RandomSlices { n, slice, f: t, seed } => {
                write!(f, "random(n={n},slice={slice},f={t},seed={seed})")
            }
        }
    }
}

/// Samples a uniformly random failure set that the given process-class
/// targets allow: at most `max_faulty` processes, drawn without replacement.
pub fn random_faulty(n: usize, max_faulty: usize, rng: &mut impl Rng) -> ProcessSet {
    let k = rng.random_range(0..=max_faulty.min(n));
    let mut ids: Vec<usize> = (0..n).collect();
    ids.shuffle(rng);
    ids.into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maximal_guild;

    #[test]
    fn uniform_threshold_is_valid() {
        for (n, f) in [(4, 1), (7, 2), (10, 3), (31, 10)] {
            let t = uniform_threshold(n, f);
            assert!(t.fail_prone.satisfies_b3(), "{}", t.name);
            assert!(t.quorums.validate(&t.fail_prone).is_ok(), "{}", t.name);
            assert_eq!(t.n(), n);
        }
    }

    #[test]
    fn ripple_unl_valid_with_high_overlap() {
        // n=10, UNL=8, f=1: neighbouring UNLs overlap in ≥6 processes.
        let t = ripple_unl(10, 8, 1);
        assert!(t.fail_prone.satisfies_b3(), "{:?}", t.fail_prone.b3_violation());
        assert!(t.quorums.validate(&t.fail_prone).is_ok());
        assert_eq!(t.quorums.min_quorum_size(), 7);
    }

    #[test]
    fn ripple_unl_low_overlap_violates_b3() {
        // Tiny disjoint-ish UNLs cannot satisfy B3.
        let t = ripple_unl(12, 4, 1);
        assert!(!t.fail_prone.satisfies_b3());
    }

    #[test]
    fn stellar_tiers_valid() {
        let t = stellar_tiers(12, 4, 1);
        assert!(t.fail_prone.satisfies_b3(), "{:?}", t.fail_prone.b3_violation());
        assert!(t.quorums.validate(&t.fail_prone).is_ok());
        // A core failure within threshold leaves a guild containing the
        // remaining core and all leaves.
        let faulty = ProcessSet::from_indices([0]);
        let guild = maximal_guild(&t.fail_prone, &t.quorums, &faulty).unwrap();
        assert_eq!(guild, ProcessSet::full(12).difference(&faulty));
        // Exceeding the core threshold destroys the guild.
        let faulty = ProcessSet::from_indices([0, 1]);
        assert_eq!(maximal_guild(&t.fail_prone, &t.quorums, &faulty), None);
    }

    #[test]
    fn stellar_leaf_failures_do_not_matter() {
        let t = stellar_tiers(10, 4, 1);
        // Leaves 8, 9 failing hurt nobody else's assumptions.
        let faulty = ProcessSet::from_indices([8, 9]);
        let guild = maximal_guild(&t.fail_prone, &t.quorums, &faulty).unwrap();
        assert_eq!(guild, ProcessSet::full(10).difference(&faulty));
    }

    #[test]
    fn random_slices_deterministic_and_valid() {
        let a = random_slices(8, 6, 1, 42, 100).expect("seed 42 should find a B3 system");
        let b = random_slices(8, 6, 1, 42, 100).unwrap();
        assert_eq!(a.fail_prone, b.fail_prone, "same seed ⇒ same topology");
        assert!(a.fail_prone.satisfies_b3());
        assert!(a.quorums.validate(&a.fail_prone).is_ok());
    }

    #[test]
    fn random_slices_impossible_configuration_returns_none() {
        // Slices of size 2 with f=1 can never satisfy B3 for n ≥ 3.
        assert!(random_slices(6, 2, 1, 7, 20).is_none());
    }

    #[test]
    fn specs_build_their_families() {
        let specs = [
            TopologySpec::UniformThreshold { n: 7, f: 2 },
            TopologySpec::RippleUnl { n: 10, unl: 8, f: 1 },
            TopologySpec::StellarTiers { n: 12, core: 4, f_core: 1 },
            TopologySpec::RandomSlices { n: 8, slice: 6, f: 1, seed: 42 },
        ];
        for spec in specs {
            let t = spec.build().unwrap_or_else(|| panic!("{spec} must build"));
            assert_eq!(t.n(), spec.n(), "{spec}");
            assert!(t.fail_prone.satisfies_b3(), "{spec}");
            assert!(t.quorums.validate(&t.fail_prone).is_ok(), "{spec}");
        }
    }

    #[test]
    fn spec_display_matches_topology_name() {
        let spec = TopologySpec::UniformThreshold { n: 4, f: 1 };
        assert_eq!(spec.to_string(), spec.build().unwrap().name);
        let spec = TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 };
        assert_eq!(spec.to_string(), spec.build().unwrap().name);
    }

    #[test]
    fn random_faulty_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let f = random_faulty(10, 3, &mut rng);
            assert!(f.len() <= 3);
            assert!(f.max_id().is_none_or(|m| m.index() < 10));
        }
    }
}
