//! The 30-process counterexample of the paper (Figure 1 / Appendix A).
//!
//! Each of the 30 processes has exactly **one** quorum (listed in the paper's
//! Listing 1) and one fail-prone set — the complement of that quorum
//! ("canonical" association). The system satisfies the B³ condition, so by
//! Theorem 2.4 it is a valid asymmetric quorum system; nevertheless, running
//! the quorum-replacement gather (Algorithm 2) on it reaches **no common
//! core** — the paper's Lemma 3.2.
//!
//! The paper notes that at least 16 processes are required for any such
//! counterexample; this is the published 30-process instance, reproduced
//! digit-for-digit from Listing 1.

use crate::{
    AsymFailProneSystem, AsymQuorumSystem, FailProneSystem, ProcessId, ProcessSet, QuorumSystem,
};

/// Number of processes in the Figure-1 counterexample.
pub const FIG1_N: usize = 30;

/// The single quorum of each process, using the paper's **one-based** labels,
/// exactly as printed in Listing 1.
pub const FIG1_QUORUMS_1BASED: [[usize; 6]; FIG1_N] = [
    [1, 2, 3, 4, 5, 16],    // quorum of process 1
    [1, 6, 7, 8, 9, 17],    // 2
    [1, 2, 3, 4, 5, 18],    // 3
    [1, 6, 7, 8, 9, 19],    // 4
    [2, 6, 10, 11, 12, 20], // 5
    [4, 8, 11, 13, 15, 21], // 6
    [4, 8, 11, 13, 15, 22], // 7
    [5, 9, 12, 14, 15, 23], // 8
    [5, 9, 12, 14, 15, 24], // 9
    [4, 8, 11, 13, 15, 25], // 10
    [1, 6, 7, 8, 9, 26],    // 11
    [2, 6, 10, 11, 12, 27], // 12
    [3, 7, 10, 13, 14, 28], // 13
    [3, 7, 10, 13, 14, 29], // 14
    [5, 9, 12, 14, 15, 30], // 15
    [1, 2, 3, 4, 5, 16],    // 16
    [1, 2, 3, 4, 5, 16],    // 17
    [1, 2, 3, 4, 5, 16],    // 18
    [1, 2, 3, 4, 5, 16],    // 19
    [1, 6, 7, 8, 9, 27],    // 20
    [1, 6, 7, 8, 9, 27],    // 21
    [1, 6, 7, 8, 9, 20],    // 22
    [2, 6, 10, 11, 12, 30], // 23
    [2, 6, 10, 11, 12, 30], // 24
    [1, 6, 7, 8, 9, 22],    // 25
    [1, 2, 3, 4, 5, 16],    // 26
    [1, 6, 7, 8, 9, 27],    // 27
    [1, 2, 3, 4, 5, 16],    // 28
    [1, 2, 3, 4, 5, 29],    // 29
    [2, 6, 10, 11, 12, 30], // 30
];

/// Returns the single (zero-based) quorum of process `p` in the Figure-1
/// system.
///
/// # Panics
///
/// Panics if `p.index() >= 30`.
pub fn fig1_quorum_of(p: ProcessId) -> ProcessSet {
    ProcessSet::from_paper_labels(FIG1_QUORUMS_1BASED[p.index()])
}

/// Builds the asymmetric quorum system of Figure 1: one explicit quorum per
/// process.
pub fn fig1_quorums() -> AsymQuorumSystem {
    let systems: Vec<QuorumSystem> = (0..FIG1_N)
        .map(|i| {
            QuorumSystem::explicit(FIG1_N, vec![fig1_quorum_of(ProcessId::new(i))])
                .expect("figure-1 quorums are valid")
        })
        .collect();
    AsymQuorumSystem::new(systems).expect("figure-1 system is well-formed")
}

/// Builds the asymmetric fail-prone system of Figure 1: each process's single
/// fail-prone set is the complement of its quorum.
pub fn fig1_fail_prone() -> AsymFailProneSystem {
    let systems: Vec<FailProneSystem> = (0..FIG1_N)
        .map(|i| {
            let f = fig1_quorum_of(ProcessId::new(i)).complement(FIG1_N);
            FailProneSystem::explicit(FIG1_N, vec![f]).expect("figure-1 fail-prone sets are valid")
        })
        .collect();
    AsymFailProneSystem::new(systems).expect("figure-1 system is well-formed")
}

/// Renders a Figure-1-style grid: one row per process (top row = process `n`,
/// as in the paper), one column per process; `■` marks set membership.
///
/// `sets[i]` is the set shown on the row of process `i + 1` (paper label).
pub fn render_grid(sets: &[ProcessSet]) -> String {
    let n = sets.len();
    let mut out = String::new();
    out.push_str("    ");
    for col in 1..=n {
        out.push_str(&format!("{:>3}", col));
    }
    out.push('\n');
    for row in (0..n).rev() {
        out.push_str(&format!("{:>3} ", row + 1));
        for col in 0..n {
            let mark = if sets[row].contains(ProcessId::new(col)) { "  ■" } else { "  ·" };
            out.push_str(mark);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_guild, maximal_guild, wise_processes};

    #[test]
    fn every_quorum_has_six_members() {
        for i in 0..FIG1_N {
            assert_eq!(fig1_quorum_of(ProcessId::new(i)).len(), 6, "process {}", i + 1);
        }
    }

    #[test]
    fn satisfies_b3() {
        // The paper: "This fail-prone system satisfies the B3 condition."
        let fps = fig1_fail_prone();
        assert!(fps.satisfies_b3(), "{:?}", fps.b3_violation());
    }

    #[test]
    fn quorums_are_the_canonical_system_and_valid() {
        let fps = fig1_fail_prone();
        let qs = fig1_quorums();
        assert_eq!(fps.canonical_quorums(), qs);
        // Theorem 2.4: B3 ⟹ the canonical system is a valid asymmetric
        // Byzantine quorum system.
        qs.validate(&fps).expect("figure-1 quorum system must be consistent and available");
    }

    #[test]
    fn all_pairs_of_quorums_intersect() {
        // For single-quorum-per-process canonical systems, consistency
        // degenerates to pairwise non-empty intersection.
        for i in 0..FIG1_N {
            for j in 0..FIG1_N {
                let qi = fig1_quorum_of(ProcessId::new(i));
                let qj = fig1_quorum_of(ProcessId::new(j));
                assert!(qi.intersects(&qj), "quorums of {} and {} disjoint", i + 1, j + 1);
            }
        }
    }

    #[test]
    fn failure_free_execution_has_full_guild() {
        // Appendix A: "we will assume that all processes are correct,
        // therefore wise, and the maximal guild is composed by all 30."
        let fps = fig1_fail_prone();
        let qs = fig1_quorums();
        let faulty = ProcessSet::new();
        assert_eq!(wise_processes(&fps, &faulty), ProcessSet::full(FIG1_N));
        let guild = maximal_guild(&fps, &qs, &faulty).unwrap();
        assert_eq!(guild, ProcessSet::full(FIG1_N));
        assert!(is_guild(&fps, &qs, &faulty, &guild));
    }

    #[test]
    fn every_quorum_contains_a_member_in_16_to_30() {
        // Appendix A's key observation: "all quorums of all processes contain
        // at least one element in the range [16, 30]".
        let tail = ProcessSet::from_paper_labels(16..=30);
        for i in 0..FIG1_N {
            assert!(
                fig1_quorum_of(ProcessId::new(i)).intersects(&tail),
                "quorum of {} misses the tail range",
                i + 1
            );
        }
    }

    #[test]
    fn min_quorum_size_is_six() {
        assert_eq!(fig1_quorums().min_quorum_size(), 6);
    }

    #[test]
    fn grid_renders_every_process_row() {
        let sets: Vec<ProcessSet> =
            (0..FIG1_N).map(|i| fig1_quorum_of(ProcessId::new(i))).collect();
        let grid = render_grid(&sets);
        assert_eq!(grid.lines().count(), FIG1_N + 1);
        // Row of process 1 (last line) must mark columns 1..5 and 16.
        let last = grid.lines().last().unwrap();
        assert!(last.starts_with("  1"));
        assert_eq!(last.matches('■').count(), 6);
    }
}
