//! Process identifiers.
//!
//! Every participant of the system `P = {p_0, …, p_{n-1}}` is named by a
//! dense, zero-based [`ProcessId`]. The paper numbers processes `1..=n`; this
//! crate uses `0..n` internally and the figure-rendering helpers translate to
//! one-based labels when reproducing the paper's figures.

use core::fmt;

/// Identifier of a process in the system `P = {p_0, …, p_{n-1}}`.
///
/// `ProcessId` is a zero-based dense index. It is deliberately a newtype (not
/// a bare `usize`) so that process ids, round numbers and wave numbers cannot
/// be confused at compile time.
///
/// # Examples
///
/// ```
/// use asym_quorum::ProcessId;
///
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(p.to_string(), "p3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from its dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        ProcessId(index)
    }

    /// Returns the dense zero-based index of this process.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the one-based label used by the paper's figures (`1..=n`).
    #[inline]
    pub const fn paper_label(self) -> usize {
        self.0 + 1
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    #[inline]
    fn from(index: usize) -> Self {
        ProcessId(index)
    }
}

impl From<ProcessId> for usize {
    #[inline]
    fn from(pid: ProcessId) -> Self {
        pid.0
    }
}

/// Returns an iterator over all process ids of a system of size `n`.
///
/// # Examples
///
/// ```
/// use asym_quorum::{all_processes, ProcessId};
///
/// let ids: Vec<ProcessId> = all_processes(3).collect();
/// assert_eq!(ids, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
/// ```
pub fn all_processes(n: usize) -> impl Iterator<Item = ProcessId> + Clone {
    (0..n).map(ProcessId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..100 {
            let p = ProcessId::new(i);
            assert_eq!(p.index(), i);
            assert_eq!(usize::from(p), i);
            assert_eq!(ProcessId::from(i), p);
        }
    }

    #[test]
    fn paper_label_is_one_based() {
        assert_eq!(ProcessId::new(0).paper_label(), 1);
        assert_eq!(ProcessId::new(29).paper_label(), 30);
    }

    #[test]
    fn display_and_debug() {
        let p = ProcessId::new(7);
        assert_eq!(format!("{p}"), "p7");
        assert_eq!(format!("{p:?}"), "p7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessId::new(1) < ProcessId::new(2));
        let mut v = vec![ProcessId::new(5), ProcessId::new(1), ProcessId::new(3)];
        v.sort();
        assert_eq!(v, vec![ProcessId::new(1), ProcessId::new(3), ProcessId::new(5)]);
    }

    #[test]
    fn all_processes_yields_dense_range() {
        assert_eq!(all_processes(0).count(), 0);
        let v: Vec<_> = all_processes(4).map(|p| p.index()).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }
}
