//! Asymmetric fail-prone systems and asymmetric Byzantine quorum systems
//! (Damgård et al. / Alpos et al., paper §2.3).
//!
//! In the asymmetric model every process `p_i` carries its *own* fail-prone
//! system `F_i` and its own quorum system `Q_i`. Soundness is captured by two
//! global properties (Definition 2.1):
//!
//! * **Consistency** — any two quorums of any two processes intersect outside
//!   every fail-prone set common to both processes;
//! * **Availability** — every process has, for each of its fail-prone sets, a
//!   quorum disjoint from it.
//!
//! The **B³ condition** (Definition 2.3) on the fail-prone systems is
//! equivalent to the existence of an asymmetric quorum system (Theorem 2.4);
//! [`AsymFailProneSystem::canonical_quorums`] realizes the canonical witness.

use crate::{FailProneSystem, ProcessId, ProcessSet, QuorumError, QuorumSystem};

/// An asymmetric fail-prone system `F = [F_1, …, F_n]`: one fail-prone system
/// per process, all over the same universe of `n` processes.
///
/// # Examples
///
/// ```
/// use asym_quorum::{AsymFailProneSystem, FailProneSystem};
///
/// // Every process uses the same 1-of-4 threshold assumption: the symmetric
/// // model embeds into the asymmetric one.
/// let fps = AsymFailProneSystem::uniform(FailProneSystem::threshold(4, 1));
/// assert!(fps.satisfies_b3());
/// let qs = fps.canonical_quorums();
/// assert!(qs.validate(&fps).is_ok());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsymFailProneSystem {
    systems: Vec<FailProneSystem>,
}

impl AsymFailProneSystem {
    /// Creates an asymmetric fail-prone system from one fail-prone system per
    /// process.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::Empty`] for an empty vector,
    /// [`QuorumError::MismatchedUniverse`] if the per-process systems disagree
    /// about `n`, and [`QuorumError::WrongLength`] if the number of systems is
    /// not `n`.
    pub fn new(systems: Vec<FailProneSystem>) -> Result<Self, QuorumError> {
        if systems.is_empty() {
            return Err(QuorumError::Empty);
        }
        let n = systems[0].n();
        for s in &systems {
            if s.n() != n {
                return Err(QuorumError::MismatchedUniverse { expected: n, got: s.n() });
            }
        }
        if systems.len() != n {
            return Err(QuorumError::WrongLength { expected: n, got: systems.len() });
        }
        Ok(AsymFailProneSystem { systems })
    }

    /// Creates the asymmetric system in which every process uses the same
    /// (symmetric) fail-prone system — the embedding of the threshold model.
    pub fn uniform(fps: FailProneSystem) -> Self {
        let n = fps.n();
        AsymFailProneSystem { systems: vec![fps; n] }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.systems.len()
    }

    /// The fail-prone system of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    pub fn of(&self, p: ProcessId) -> &FailProneSystem {
        &self.systems[p.index()]
    }

    /// Iterates over `(process, fail-prone system)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &FailProneSystem)> {
        self.systems.iter().enumerate().map(|(i, s)| (ProcessId::new(i), s))
    }

    /// Returns `true` if process `p` *correctly foresees* the failure set
    /// `faulty`, i.e. `faulty ∈ F_p*`.
    pub fn foresees(&self, p: ProcessId, faulty: &ProcessSet) -> bool {
        self.of(p).covers(faulty)
    }

    /// Checks the **B³ condition** (Definition 2.3):
    /// `∀i,j, ∀F_i ∈ F_i, ∀F_j ∈ F_j, ∀F_ij ∈ F_i* ∩ F_j*: P ⊄ F_i ∪ F_j ∪ F_ij`.
    pub fn satisfies_b3(&self) -> bool {
        self.b3_violation().is_none()
    }

    /// Returns a witness of a B³ violation, or `None` if B³ holds.
    ///
    /// The maximal elements of `F_i* ∩ F_j*` are the pairwise intersections of
    /// maximal sets, so quantifying over those suffices.
    ///
    /// Fast path: if every process uses a threshold system, B³ reduces to
    /// `∀i,j: f_i + f_j + min(f_i, f_j) < n`.
    pub fn b3_violation(&self) -> Option<QuorumError> {
        let n = self.n();
        // Fast path for all-threshold systems.
        let thresholds: Option<Vec<usize>> = self
            .systems
            .iter()
            .map(|s| match s {
                FailProneSystem::Threshold { f, .. } => Some(*f),
                FailProneSystem::Explicit { .. } | FailProneSystem::SliceThreshold { .. } => None,
            })
            .collect();
        if let Some(fs) = thresholds {
            for i in 0..n {
                for j in i..n {
                    let (fi, fj) = (fs[i], fs[j]);
                    if fi + fj + fi.min(fj) >= n {
                        // Build a concrete witness: three disjoint-ish slices.
                        let a = ProcessSet::from_indices(0..fi.min(n));
                        let b = ProcessSet::from_indices(fi..(fi + fj).min(n));
                        let rest: Vec<usize> = ((fi + fj).min(n)..n).chain(0..fi.min(fj)).collect();
                        let c: ProcessSet = rest.into_iter().take(fi.min(fj)).collect();
                        return Some(QuorumError::B3Violation {
                            i: ProcessId::new(i),
                            j: ProcessId::new(j),
                            fi: a,
                            fj: b,
                            fij: c,
                        });
                    }
                }
            }
            return None;
        }

        let full = ProcessSet::full(n);
        let maximal: Vec<Vec<ProcessSet>> =
            self.systems.iter().map(FailProneSystem::maximal_sets).collect();
        for i in 0..n {
            for j in i..n {
                // Maximal common fail-prone sets of (i, j).
                let mut common: Vec<ProcessSet> = Vec::new();
                for a in &maximal[i] {
                    for b in &maximal[j] {
                        common.push(a.intersection(b));
                    }
                }
                crate::combinatorics::retain_maximal(&mut common);
                for fi in &maximal[i] {
                    for fj in &maximal[j] {
                        let union = fi.union(fj);
                        for fij in &common {
                            if union.union(fij) == full {
                                return Some(QuorumError::B3Violation {
                                    i: ProcessId::new(i),
                                    j: ProcessId::new(j),
                                    fi: fi.clone(),
                                    fj: fj.clone(),
                                    fij: fij.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        None
    }

    /// Returns the canonical asymmetric quorum system: for each process, the
    /// complements of its maximal fail-prone sets.
    ///
    /// By Theorem 2.4 this satisfies consistency and availability whenever B³
    /// holds.
    pub fn canonical_quorums(&self) -> AsymQuorumSystem {
        AsymQuorumSystem {
            systems: self.systems.iter().map(FailProneSystem::canonical_quorums).collect(),
        }
    }
}

/// An asymmetric Byzantine quorum system `Q = [Q_1, …, Q_n]` (Definition 2.1).
///
/// # Examples
///
/// ```
/// use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet, QuorumSystem};
///
/// let qs = AsymQuorumSystem::uniform(QuorumSystem::threshold(4, 3));
/// let p0 = ProcessId::new(0);
/// assert!(qs.contains_quorum_for(p0, &ProcessSet::from_indices([1, 2, 3])));
/// assert!(qs.hits_kernel_for(p0, &ProcessSet::from_indices([0, 1])));
/// assert_eq!(qs.min_quorum_size(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsymQuorumSystem {
    systems: Vec<QuorumSystem>,
}

impl AsymQuorumSystem {
    /// Creates an asymmetric quorum system from one quorum system per process.
    ///
    /// # Errors
    ///
    /// Mirrors [`AsymFailProneSystem::new`].
    pub fn new(systems: Vec<QuorumSystem>) -> Result<Self, QuorumError> {
        if systems.is_empty() {
            return Err(QuorumError::Empty);
        }
        let n = systems[0].n();
        for s in &systems {
            if s.n() != n {
                return Err(QuorumError::MismatchedUniverse { expected: n, got: s.n() });
            }
        }
        if systems.len() != n {
            return Err(QuorumError::WrongLength { expected: n, got: systems.len() });
        }
        Ok(AsymQuorumSystem { systems })
    }

    /// Creates the asymmetric system in which every process uses the same
    /// quorum system — the embedding of the threshold model.
    pub fn uniform(qs: QuorumSystem) -> Self {
        let n = qs.n();
        AsymQuorumSystem { systems: vec![qs; n] }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.systems.len()
    }

    /// The quorum system of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the universe.
    pub fn of(&self, p: ProcessId) -> &QuorumSystem {
        &self.systems[p.index()]
    }

    /// Iterates over `(process, quorum system)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, &QuorumSystem)> {
        self.systems.iter().enumerate().map(|(i, s)| (ProcessId::new(i), s))
    }

    /// `∃Q ∈ Q_p: Q ⊆ observed` — the round-advancement test of every
    /// protocol in the paper (written `Q_p |= observed` there).
    pub fn contains_quorum_for(&self, p: ProcessId, observed: &ProcessSet) -> bool {
        self.of(p).contains_quorum(observed)
    }

    /// Returns some quorum of `p` contained in `observed`, if any.
    pub fn find_quorum_for(&self, p: ProcessId, observed: &ProcessSet) -> Option<ProcessSet> {
        self.of(p).find_quorum(observed)
    }

    /// `∃K ∈ K_p: K ⊆ observed` — `observed` contains a kernel for `p`
    /// (equivalently: intersects every quorum of `p`). This is the
    /// Bracha-style amplification test.
    pub fn hits_kernel_for(&self, p: ProcessId, observed: &ProcessSet) -> bool {
        self.of(p).is_kernel(observed)
    }

    /// `∃Q ∈ Q_j for ANY process j: Q ⊆ observed` — used by the asymmetric
    /// DAG-Rider commit rule (Algorithm 6, line 148), which accepts a quorum
    /// of *any* participant.
    pub fn contains_quorum_for_any(
        &self,
        observed: &ProcessSet,
    ) -> Option<(ProcessId, ProcessSet)> {
        for (i, qs) in self.systems.iter().enumerate() {
            if let Some(q) = qs.find_quorum(observed) {
                return Some((ProcessId::new(i), q));
            }
        }
        None
    }

    /// Size of the smallest quorum of any process — `c(Q)` in Lemma 4.4.
    pub fn min_quorum_size(&self) -> usize {
        self.systems.iter().map(QuorumSystem::min_quorum_size).min().unwrap_or(0)
    }

    /// Checks asymmetric quorum **consistency** (Definition 2.1) against a
    /// fail-prone system:
    /// `∀i,j, ∀Q_i ∈ Q_i, ∀Q_j ∈ Q_j, ∀F_ij ∈ F_i* ∩ F_j*: Q_i ∩ Q_j ⊄ F_ij`.
    ///
    /// Enumerates minimal quorums and maximal common fail-prone sets; intended
    /// for explicit systems or small thresholds. For uniform threshold systems
    /// the symmetric fast path is used.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_consistency(&self, fps: &AsymFailProneSystem) -> Result<(), QuorumError> {
        let n = self.n();
        if n != fps.n() {
            return Err(QuorumError::MismatchedUniverse { expected: fps.n(), got: n });
        }
        // Fast path: all processes share one threshold quorum/fail-prone pair.
        if let (QuorumSystem::Threshold { .. }, FailProneSystem::Threshold { .. }) =
            (&self.systems[0], &fps.systems[0])
        {
            let all_same = self.systems.iter().all(|s| *s == self.systems[0])
                && fps.systems.iter().all(|s| *s == fps.systems[0]);
            if all_same {
                return self.systems[0].check_consistency(&fps.systems[0]);
            }
        }

        let quorums: Vec<Vec<ProcessSet>> =
            self.systems.iter().map(QuorumSystem::minimal_quorums).collect();
        let maximal: Vec<Vec<ProcessSet>> =
            fps.systems.iter().map(FailProneSystem::maximal_sets).collect();
        for i in 0..n {
            for j in i..n {
                let mut common: Vec<ProcessSet> = Vec::new();
                for a in &maximal[i] {
                    for b in &maximal[j] {
                        common.push(a.intersection(b));
                    }
                }
                crate::combinatorics::retain_maximal(&mut common);
                for qi in &quorums[i] {
                    for qj in &quorums[j] {
                        let inter = qi.intersection(qj);
                        for fij in &common {
                            if inter.is_subset(fij) {
                                return Err(QuorumError::ConsistencyViolation {
                                    i: ProcessId::new(i),
                                    j: ProcessId::new(j),
                                    qi: qi.clone(),
                                    qj: qj.clone(),
                                    fij: fij.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks asymmetric quorum **availability** (Definition 2.1):
    /// `∀i, ∀F_i ∈ F_i: ∃Q_i ∈ Q_i: F_i ∩ Q_i = ∅`.
    ///
    /// # Errors
    ///
    /// Returns the first process/fail-prone set with no disjoint quorum.
    pub fn check_availability(&self, fps: &AsymFailProneSystem) -> Result<(), QuorumError> {
        let n = self.n();
        if n != fps.n() {
            return Err(QuorumError::MismatchedUniverse { expected: fps.n(), got: n });
        }
        for i in 0..n {
            match (&self.systems[i], &fps.systems[i]) {
                (QuorumSystem::Threshold { q, .. }, FailProneSystem::Threshold { f, .. }) => {
                    if q + f > n {
                        return Err(QuorumError::AvailabilityViolation {
                            process: ProcessId::new(i),
                            fail_prone: ProcessSet::from_indices(0..*f),
                        });
                    }
                }
                _ => {
                    let quorums = self.systems[i].minimal_quorums();
                    for fset in fps.systems[i].maximal_sets() {
                        if !quorums.iter().any(|q| q.is_disjoint(&fset)) {
                            return Err(QuorumError::AvailabilityViolation {
                                process: ProcessId::new(i),
                                fail_prone: fset,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates both defining properties against `fps`.
    ///
    /// # Errors
    ///
    /// Returns the first consistency or availability violation.
    pub fn validate(&self, fps: &AsymFailProneSystem) -> Result<(), QuorumError> {
        self.check_consistency(fps)?;
        self.check_availability(fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(ids.iter().copied())
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(AsymFailProneSystem::new(vec![]), Err(QuorumError::Empty));
        let err = AsymFailProneSystem::new(vec![
            FailProneSystem::threshold(4, 1),
            FailProneSystem::threshold(5, 1),
        ]);
        assert!(matches!(err, Err(QuorumError::MismatchedUniverse { .. })));
        let err = AsymFailProneSystem::new(vec![FailProneSystem::threshold(4, 1); 3]);
        assert!(matches!(err, Err(QuorumError::WrongLength { expected: 4, got: 3 })));
        assert!(AsymFailProneSystem::new(vec![FailProneSystem::threshold(4, 1); 4]).is_ok());
    }

    #[test]
    fn uniform_threshold_b3_matches_n_gt_3f() {
        assert!(AsymFailProneSystem::uniform(FailProneSystem::threshold(4, 1)).satisfies_b3());
        assert!(AsymFailProneSystem::uniform(FailProneSystem::threshold(10, 3)).satisfies_b3());
        assert!(!AsymFailProneSystem::uniform(FailProneSystem::threshold(9, 3)).satisfies_b3());
        assert!(!AsymFailProneSystem::uniform(FailProneSystem::threshold(3, 1)).satisfies_b3());
    }

    #[test]
    fn mixed_threshold_b3() {
        // n = 10; one paranoid process (f=1), others f=3: fi+fj+min = 3+3+3=9 < 10 OK
        let mut systems = vec![FailProneSystem::threshold(10, 3); 10];
        systems[0] = FailProneSystem::threshold(10, 1);
        assert!(AsymFailProneSystem::new(systems).unwrap().satisfies_b3());
        // One reckless process (f=5): 5+3+3=11 ≥ 10 violates.
        let mut systems = vec![FailProneSystem::threshold(10, 3); 10];
        systems[0] = FailProneSystem::threshold(10, 5);
        let fps = AsymFailProneSystem::new(systems).unwrap();
        assert!(!fps.satisfies_b3());
        assert!(matches!(fps.b3_violation(), Some(QuorumError::B3Violation { .. })));
    }

    #[test]
    fn explicit_b3_with_witness() {
        // 3 processes, each believing only itself correct beyond one other:
        // F_i = {P \ {i}} — clearly violates B3.
        let systems: Vec<FailProneSystem> = (0..3)
            .map(|i| {
                FailProneSystem::explicit(3, vec![ProcessSet::full(3).difference(&set(&[i]))])
                    .unwrap()
            })
            .collect();
        let fps = AsymFailProneSystem::new(systems).unwrap();
        let v = fps.b3_violation().unwrap();
        if let QuorumError::B3Violation { fi, fj, fij, .. } = v {
            assert_eq!(fi.union(&fj).union(&fij), ProcessSet::full(3));
        } else {
            panic!("wrong violation type");
        }
    }

    #[test]
    fn canonical_quorums_of_threshold_valid() {
        let fps = AsymFailProneSystem::uniform(FailProneSystem::threshold(7, 2));
        let qs = fps.canonical_quorums();
        assert!(qs.validate(&fps).is_ok());
        assert_eq!(qs.min_quorum_size(), 5);
    }

    #[test]
    fn theorem_2_4_on_small_explicit_systems() {
        // B3 holds ⟹ canonical quorums are consistent + available.
        let mk = |sets: Vec<Vec<usize>>| {
            FailProneSystem::explicit(4, sets.into_iter().map(ProcessSet::from_indices).collect())
                .unwrap()
        };
        let systems = vec![
            mk(vec![vec![1], vec![2]]),
            mk(vec![vec![0], vec![3]]),
            mk(vec![vec![3]]),
            mk(vec![vec![0], vec![1]]),
        ];
        let fps = AsymFailProneSystem::new(systems).unwrap();
        assert!(fps.satisfies_b3());
        let qs = fps.canonical_quorums();
        assert!(qs.validate(&fps).is_ok());
    }

    #[test]
    fn consistency_violation_detected() {
        // Two processes with disjoint quorums.
        let q0 = QuorumSystem::explicit(4, vec![set(&[0, 1])]).unwrap();
        let q1 = QuorumSystem::explicit(4, vec![set(&[2, 3])]).unwrap();
        let qs = AsymQuorumSystem::new(vec![q0.clone(), q1, q0.clone(), q0]).unwrap();
        let fps = AsymFailProneSystem::uniform(
            FailProneSystem::explicit(4, vec![ProcessSet::new()]).unwrap(),
        );
        // Even with empty fail-prone sets, ∅ ⊆ F_ij = ∅ — disjoint quorums
        // intersect in ∅ ⊆ ∅, violating consistency.
        assert!(matches!(
            qs.check_consistency(&fps),
            Err(QuorumError::ConsistencyViolation { .. })
        ));
    }

    #[test]
    fn availability_violation_detected() {
        let q = QuorumSystem::explicit(3, vec![set(&[0, 1, 2])]).unwrap();
        let qs = AsymQuorumSystem::uniform(q);
        let fps =
            AsymFailProneSystem::uniform(FailProneSystem::explicit(3, vec![set(&[0])]).unwrap());
        assert!(matches!(
            qs.check_availability(&fps),
            Err(QuorumError::AvailabilityViolation { .. })
        ));
    }

    #[test]
    fn quorum_queries() {
        let qs = AsymQuorumSystem::uniform(QuorumSystem::threshold(4, 3));
        let p = ProcessId::new(1);
        assert!(qs.contains_quorum_for(p, &set(&[0, 1, 2])));
        assert!(qs.find_quorum_for(p, &set(&[0, 1])).is_none());
        let (j, q) = qs.contains_quorum_for_any(&set(&[1, 2, 3])).unwrap();
        assert_eq!(j, ProcessId::new(0));
        assert_eq!(q.len(), 3);
        assert!(qs.contains_quorum_for_any(&set(&[1, 2])).is_none());
    }

    #[test]
    fn uniform_threshold_consistency_fast_path() {
        let fps = AsymFailProneSystem::uniform(FailProneSystem::threshold(31, 10));
        let qs = fps.canonical_quorums();
        // Large n: must finish fast (fast path, no enumeration).
        assert!(qs.validate(&fps).is_ok());
    }
}
