//! Error type for quorum-system construction and validation.

use core::fmt;

use crate::{ProcessId, ProcessSet};

/// Errors produced when constructing or validating (asymmetric) quorum
/// systems.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QuorumError {
    /// The per-process array has the wrong length (must equal `n`).
    WrongLength {
        /// Expected number of per-process entries (`n`).
        expected: usize,
        /// Number of entries provided.
        got: usize,
    },
    /// Two components disagree about the universe size `n`.
    MismatchedUniverse {
        /// Universe size of the first component.
        expected: usize,
        /// Universe size of the offending component.
        got: usize,
    },
    /// A set mentions a process outside the universe.
    OutOfRange {
        /// The offending set.
        set: ProcessSet,
        /// Universe size.
        n: usize,
    },
    /// A fail-prone or quorum system was given no sets at all.
    Empty,
    /// A quorum system contains an empty quorum (trivially unsound).
    EmptyQuorum {
        /// Process whose quorum system is unsound.
        process: ProcessId,
    },
    /// The B³ condition (Definition 2.3) is violated.
    B3Violation {
        /// First process of the violating pair.
        i: ProcessId,
        /// Second process of the violating pair.
        j: ProcessId,
        /// Fail-prone set of `i` witnessing the violation.
        fi: ProcessSet,
        /// Fail-prone set of `j` witnessing the violation.
        fj: ProcessSet,
        /// Common fail-prone set witnessing the violation.
        fij: ProcessSet,
    },
    /// The symmetric Q³ condition is violated.
    Q3Violation {
        /// Three fail-prone sets covering the whole universe.
        witness: [ProcessSet; 3],
    },
    /// Quorum consistency (Definition 2.1) is violated.
    ConsistencyViolation {
        /// First process of the violating pair.
        i: ProcessId,
        /// Second process of the violating pair.
        j: ProcessId,
        /// Quorum of `i`.
        qi: ProcessSet,
        /// Quorum of `j`.
        qj: ProcessSet,
        /// Common fail-prone set containing the whole intersection.
        fij: ProcessSet,
    },
    /// Quorum availability (Definition 2.1) is violated.
    AvailabilityViolation {
        /// The process lacking a quorum.
        process: ProcessId,
        /// The fail-prone set no quorum avoids.
        fail_prone: ProcessSet,
    },
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::WrongLength { expected, got } => {
                write!(f, "expected {expected} per-process entries, got {got}")
            }
            QuorumError::MismatchedUniverse { expected, got } => {
                write!(f, "mismatched universe sizes: {expected} vs {got}")
            }
            QuorumError::OutOfRange { set, n } => {
                write!(f, "set {set} mentions a process outside the universe of size {n}")
            }
            QuorumError::Empty => write!(f, "system contains no sets"),
            QuorumError::EmptyQuorum { process } => {
                write!(f, "quorum system of {process} contains an empty quorum")
            }
            QuorumError::B3Violation { i, j, fi, fj, fij } => {
                write!(f, "B3 violated for ({i}, {j}): {fi} ∪ {fj} ∪ {fij} covers all processes")
            }
            QuorumError::Q3Violation { witness } => write!(
                f,
                "Q3 violated: {} ∪ {} ∪ {} covers all processes",
                witness[0], witness[1], witness[2]
            ),
            QuorumError::ConsistencyViolation { i, j, qi, qj, fij } => {
                write!(f, "quorum consistency violated for ({i}, {j}): {qi} ∩ {qj} ⊆ {fij}")
            }
            QuorumError::AvailabilityViolation { process, fail_prone } => write!(
                f,
                "quorum availability violated for {process}: no quorum avoids {fail_prone}"
            ),
        }
    }
}

impl std::error::Error for QuorumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = QuorumError::WrongLength { expected: 4, got: 3 };
        assert!(e.to_string().contains("expected 4"));

        let e = QuorumError::AvailabilityViolation {
            process: ProcessId::new(2),
            fail_prone: ProcessSet::from_indices([0, 1]),
        };
        let s = e.to_string();
        assert!(s.contains("p2") && s.contains("{0, 1}"), "{s}");
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<QuorumError>();
    }
}
