//! Dense sets of processes backed by a dynamic bit set.
//!
//! All quorum-system mathematics in this crate — subset tests, intersections,
//! complements, kernel checks — bottoms out in operations on [`ProcessSet`].
//! The representation is a canonical `Vec<u64>` bit vector (no trailing zero
//! blocks), so equality, hashing and ordering are structural.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign, BitXor, Sub, SubAssign};

use serde::de::{SeqAccess, Visitor};
use serde::ser::SerializeSeq;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::ProcessId;

const BITS: usize = 64;

/// A set of [`ProcessId`]s, implemented as a dynamic bit set.
///
/// The set is unbounded: inserting `p100` into an empty set grows the backing
/// storage as needed. Operations that need to know the system size `n`
/// (such as [`ProcessSet::complement`]) take it as an argument.
///
/// # Examples
///
/// ```
/// use asym_quorum::{ProcessId, ProcessSet};
///
/// let a: ProcessSet = [0usize, 1, 2].into_iter().collect();
/// let b: ProcessSet = [2usize, 3].into_iter().collect();
/// assert_eq!((&a & &b).to_string(), "{2}");
/// assert_eq!((&a | &b).len(), 4);
/// assert!(a.contains(ProcessId::new(1)));
/// assert!(!a.is_subset(&b));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ProcessSet {
    /// Bit blocks, least-significant block first; canonical: no trailing zeros.
    blocks: Vec<u64>,
}

impl ProcessSet {
    /// Creates an empty set.
    #[inline]
    pub fn new() -> Self {
        ProcessSet { blocks: Vec::new() }
    }

    /// Creates a set containing exactly one process.
    pub fn singleton(id: ProcessId) -> Self {
        let mut s = ProcessSet::new();
        s.insert(id);
        s
    }

    /// Creates the full set `{p_0, …, p_{n-1}}`.
    pub fn full(n: usize) -> Self {
        let mut blocks = vec![u64::MAX; n / BITS];
        let rem = n % BITS;
        if rem != 0 {
            blocks.push((1u64 << rem) - 1);
        }
        let mut s = ProcessSet { blocks };
        s.normalize();
        s
    }

    /// Creates a set from zero-based indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(ids: I) -> Self {
        ids.into_iter().map(ProcessId::new).collect()
    }

    /// Creates a set from the paper's one-based labels (`1..=n`).
    ///
    /// # Panics
    ///
    /// Panics if any label is `0`, since the paper's labels start at 1.
    pub fn from_paper_labels<I: IntoIterator<Item = usize>>(labels: I) -> Self {
        labels
            .into_iter()
            .map(|l| {
                assert!(l >= 1, "paper labels are one-based");
                ProcessId::new(l - 1)
            })
            .collect()
    }

    /// Inserts a process; returns `true` if it was not already present.
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let (block, bit) = (id.index() / BITS, id.index() % BITS);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes a process; returns `true` if it was present.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let (block, bit) = (id.index() / BITS, id.index() % BITS);
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        if present {
            self.normalize();
        }
        present
    }

    /// Returns `true` if the process is a member.
    #[inline]
    pub fn contains(&self, id: ProcessId) -> bool {
        let (block, bit) = (id.index() / BITS, id.index() % BITS);
        self.blocks.get(block).is_some_and(|b| b & (1u64 << bit) != 0)
    }

    /// Returns the number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the union `self ∪ other`.
    pub fn union(&self, other: &Self) -> Self {
        let (long, short) =
            if self.blocks.len() >= other.blocks.len() { (self, other) } else { (other, self) };
        let mut blocks = long.blocks.clone();
        for (b, s) in blocks.iter_mut().zip(&short.blocks) {
            *b |= s;
        }
        ProcessSet { blocks }
    }

    /// Returns the intersection `self ∩ other`.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut blocks: Vec<u64> =
            self.blocks.iter().zip(&other.blocks).map(|(a, b)| a & b).collect();
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        ProcessSet { blocks }
    }

    /// Returns the difference `self ∖ other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut blocks = self.blocks.clone();
        for (b, o) in blocks.iter_mut().zip(&other.blocks) {
            *b &= !o;
        }
        let mut s = ProcessSet { blocks };
        s.normalize();
        s
    }

    /// Returns the symmetric difference `self △ other`.
    pub fn symmetric_difference(&self, other: &Self) -> Self {
        let (long, short) =
            if self.blocks.len() >= other.blocks.len() { (self, other) } else { (other, self) };
        let mut blocks = long.blocks.clone();
        for (b, s) in blocks.iter_mut().zip(&short.blocks) {
            *b ^= s;
        }
        let mut s = ProcessSet { blocks };
        s.normalize();
        s
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (b, o) in self.blocks.iter_mut().zip(&other.blocks) {
            *b |= o;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        self.blocks.truncate(other.blocks.len());
        for (b, o) in self.blocks.iter_mut().zip(&other.blocks) {
            *b &= o;
        }
        self.normalize();
    }

    /// In-place difference (removes all members of `other`).
    pub fn subtract(&mut self, other: &Self) {
        for (b, o) in self.blocks.iter_mut().zip(&other.blocks) {
            *b &= !o;
        }
        self.normalize();
    }

    /// Returns `true` if `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false;
        }
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if `self ⊇ other`.
    #[inline]
    pub fn is_superset(&self, other: &Self) -> bool {
        other.is_subset(self)
    }

    /// Returns `true` if the sets share no member.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if the sets share at least one member.
    #[inline]
    pub fn intersects(&self, other: &Self) -> bool {
        !self.is_disjoint(other)
    }

    /// Returns the complement `{p_0, …, p_{n-1}} ∖ self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` contains a process with index `≥ n`.
    pub fn complement(&self, n: usize) -> Self {
        if let Some(max) = self.max_id() {
            assert!(
                max.index() < n,
                "complement within universe of size {n} of a set containing {max}"
            );
        }
        ProcessSet::full(n).difference(self)
    }

    /// Returns the smallest member, if any.
    pub fn first(&self) -> Option<ProcessId> {
        for (i, b) in self.blocks.iter().enumerate() {
            if *b != 0 {
                return Some(ProcessId::new(i * BITS + b.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Returns the largest member, if any.
    pub fn max_id(&self) -> Option<ProcessId> {
        let (i, b) = self.blocks.iter().enumerate().rev().find(|(_, b)| **b != 0)?;
        Some(ProcessId::new(i * BITS + (BITS - 1 - b.leading_zeros() as usize)))
    }

    /// Returns an iterator over members in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, block: 0, bits: self.blocks.first().copied().unwrap_or(0) }
    }

    /// Collects the members into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<ProcessId> {
        self.iter().collect()
    }

    /// Collects the members into a sorted `Vec` of raw indices.
    pub fn to_index_vec(&self) -> Vec<usize> {
        self.iter().map(|p| p.index()).collect()
    }

    fn normalize(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }
}

/// Iterator over the members of a [`ProcessSet`] in ascending order.
#[derive(Clone)]
pub struct Iter<'a> {
    set: &'a ProcessSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(ProcessId::new(self.block * BITS + bit));
            }
            self.block += 1;
            self.bits = *self.set.blocks.get(self.block)?;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.bits.count_ones() as usize
            + self.set.blocks[(self.block + 1).min(self.set.blocks.len())..]
                .iter()
                .map(|b| b.count_ones() as usize)
                .sum::<usize>();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        s.extend(iter);
        s
    }
}

impl FromIterator<usize> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().map(ProcessId::new).collect()
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl Extend<usize> for ProcessSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        self.extend(iter.into_iter().map(ProcessId::new));
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p.index())?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl BitOr for &ProcessSet {
    type Output = ProcessSet;
    fn bitor(self, rhs: &ProcessSet) -> ProcessSet {
        self.union(rhs)
    }
}

impl BitAnd for &ProcessSet {
    type Output = ProcessSet;
    fn bitand(self, rhs: &ProcessSet) -> ProcessSet {
        self.intersection(rhs)
    }
}

impl Sub for &ProcessSet {
    type Output = ProcessSet;
    fn sub(self, rhs: &ProcessSet) -> ProcessSet {
        self.difference(rhs)
    }
}

impl BitXor for &ProcessSet {
    type Output = ProcessSet;
    fn bitxor(self, rhs: &ProcessSet) -> ProcessSet {
        self.symmetric_difference(rhs)
    }
}

impl BitOrAssign<&ProcessSet> for ProcessSet {
    fn bitor_assign(&mut self, rhs: &ProcessSet) {
        self.union_with(rhs);
    }
}

impl SubAssign<&ProcessSet> for ProcessSet {
    fn sub_assign(&mut self, rhs: &ProcessSet) {
        self.subtract(rhs);
    }
}

impl Serialize for ProcessSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for p in self {
            seq.serialize_element(&(p.index() as u64))?;
        }
        seq.end()
    }
}

impl<'de> Deserialize<'de> for ProcessSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SetVisitor;

        impl<'de> Visitor<'de> for SetVisitor {
            type Value = ProcessSet;

            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence of process indices")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<ProcessSet, A::Error> {
                let mut set = ProcessSet::new();
                while let Some(idx) = seq.next_element::<u64>()? {
                    set.insert(ProcessId::new(idx as usize));
                }
                Ok(set)
            }
        }

        deserializer.deserialize_seq(SetVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(ids: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(ids.iter().copied())
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ProcessSet::new();
        assert!(s.insert(ProcessId::new(5)));
        assert!(!s.insert(ProcessId::new(5)));
        assert!(s.contains(ProcessId::new(5)));
        assert!(!s.contains(ProcessId::new(4)));
        assert!(s.remove(ProcessId::new(5)));
        assert!(!s.remove(ProcessId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn removal_renormalizes_for_structural_equality() {
        let mut s = set(&[1, 200]);
        s.remove(ProcessId::new(200));
        assert_eq!(s, set(&[1]));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        s.hash(&mut h1);
        set(&[1]).hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn full_and_complement() {
        let full = ProcessSet::full(70);
        assert_eq!(full.len(), 70);
        assert!(full.contains(ProcessId::new(69)));
        assert!(!full.contains(ProcessId::new(70)));
        let s = set(&[0, 69]);
        let c = s.complement(70);
        assert_eq!(c.len(), 68);
        assert!(!c.contains(ProcessId::new(0)));
        assert!(c.contains(ProcessId::new(1)));
    }

    #[test]
    #[should_panic(expected = "complement within universe")]
    fn complement_panics_outside_universe() {
        set(&[10]).complement(5);
    }

    #[test]
    fn set_algebra_basics() {
        let a = set(&[0, 1, 2, 64]);
        let b = set(&[2, 64, 65]);
        assert_eq!(a.union(&b), set(&[0, 1, 2, 64, 65]));
        assert_eq!(a.intersection(&b), set(&[2, 64]));
        assert_eq!(a.difference(&b), set(&[0, 1]));
        assert_eq!(a.symmetric_difference(&b), set(&[0, 1, 65]));
        assert!(set(&[0, 1]).is_subset(&a));
        assert!(a.is_superset(&set(&[64])));
        assert!(a.intersects(&b));
        assert!(set(&[3]).is_disjoint(&b));
    }

    #[test]
    fn operators_match_methods() {
        let a = set(&[1, 2, 3]);
        let b = set(&[3, 4]);
        assert_eq!(&a | &b, a.union(&b));
        assert_eq!(&a & &b, a.intersection(&b));
        assert_eq!(&a - &b, a.difference(&b));
        assert_eq!(&a ^ &b, a.symmetric_difference(&b));
        let mut c = a.clone();
        c |= &b;
        assert_eq!(c, a.union(&b));
        let mut d = a.clone();
        d -= &b;
        assert_eq!(d, a.difference(&b));
    }

    #[test]
    fn iter_ascending_and_exact_size() {
        let s = set(&[130, 0, 64, 3]);
        let v: Vec<usize> = s.iter().map(|p| p.index()).collect();
        assert_eq!(v, vec![0, 3, 64, 130]);
        assert_eq!(s.iter().len(), 4);
        assert_eq!(s.first(), Some(ProcessId::new(0)));
        assert_eq!(s.max_id(), Some(ProcessId::new(130)));
    }

    #[test]
    fn empty_set_edges() {
        let e = ProcessSet::new();
        assert_eq!(e.len(), 0);
        assert!(e.iter().next().is_none());
        assert_eq!(e.first(), None);
        assert_eq!(e.max_id(), None);
        assert!(e.is_subset(&e));
        assert!(e.is_disjoint(&e));
        assert_eq!(e.to_string(), "{}");
        assert_eq!(e.complement(3), ProcessSet::full(3));
    }

    #[test]
    fn paper_labels() {
        let s = ProcessSet::from_paper_labels([1, 2, 30]);
        assert_eq!(s.to_index_vec(), vec![0, 1, 29]);
    }

    #[test]
    fn display_format() {
        assert_eq!(set(&[2, 0, 5]).to_string(), "{0, 2, 5}");
    }

    #[test]
    fn deserialize_from_seq() {
        use serde::de::value::{Error as DeError, SeqDeserializer};
        let de: SeqDeserializer<_, DeError> = SeqDeserializer::new(vec![3u64, 1, 4].into_iter());
        let s = ProcessSet::deserialize(de).unwrap();
        assert_eq!(s, set(&[1, 3, 4]));
    }

    proptest! {
        #[test]
        fn prop_union_contains_both(a in proptest::collection::vec(0usize..200, 0..40),
                                    b in proptest::collection::vec(0usize..200, 0..40)) {
            let sa = ProcessSet::from_indices(a.iter().copied());
            let sb = ProcessSet::from_indices(b.iter().copied());
            let u = sa.union(&sb);
            prop_assert!(sa.is_subset(&u));
            prop_assert!(sb.is_subset(&u));
            for p in &u {
                prop_assert!(sa.contains(p) || sb.contains(p));
            }
        }

        #[test]
        fn prop_intersection_subset_difference_disjoint(
            a in proptest::collection::vec(0usize..200, 0..40),
            b in proptest::collection::vec(0usize..200, 0..40),
        ) {
            let sa = ProcessSet::from_indices(a.iter().copied());
            let sb = ProcessSet::from_indices(b.iter().copied());
            let i = sa.intersection(&sb);
            let d = sa.difference(&sb);
            prop_assert!(i.is_subset(&sa));
            prop_assert!(i.is_subset(&sb));
            prop_assert!(d.is_disjoint(&sb));
            prop_assert_eq!(i.union(&d), sa.clone());
            prop_assert_eq!(i.len() + d.len(), sa.len());
        }

        #[test]
        fn prop_complement_partitions(a in proptest::collection::vec(0usize..100, 0..30)) {
            let sa = ProcessSet::from_indices(a.iter().copied());
            let c = sa.complement(100);
            prop_assert!(sa.is_disjoint(&c));
            prop_assert_eq!(sa.union(&c), ProcessSet::full(100));
        }

        #[test]
        fn prop_iter_sorted_dedup(a in proptest::collection::vec(0usize..300, 0..60)) {
            let s = ProcessSet::from_indices(a.iter().copied());
            let v = s.to_index_vec();
            let mut expected = a.clone();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(v, expected);
        }
    }
}
