//! Small combinatorial utilities used by quorum-system enumeration.
//!
//! Threshold fail-prone systems are *implicitly* all `f`-subsets of `P`;
//! explicit enumeration is exponential and only ever done for small systems
//! (tests, figure regeneration, minimal-kernel inspection). The iterators here
//! are lazy so callers can bound the work.

use crate::{ProcessId, ProcessSet};

/// Lazy iterator over all `k`-subsets of a ground set, in lexicographic order.
///
/// # Examples
///
/// ```
/// use asym_quorum::combinatorics::combinations;
/// use asym_quorum::ProcessSet;
///
/// let ground = ProcessSet::from_indices([0, 1, 2]);
/// let pairs: Vec<ProcessSet> = combinations(&ground, 2).collect();
/// assert_eq!(pairs.len(), 3);
/// assert_eq!(pairs[0], ProcessSet::from_indices([0, 1]));
/// ```
pub fn combinations(ground: &ProcessSet, k: usize) -> Combinations {
    Combinations::new(ground.to_vec(), k)
}

/// Iterator type returned by [`combinations`].
#[derive(Clone, Debug)]
pub struct Combinations {
    elements: Vec<ProcessId>,
    /// Indices into `elements` of the current combination; empty when done.
    cursor: Vec<usize>,
    k: usize,
    started: bool,
    done: bool,
}

impl Combinations {
    fn new(elements: Vec<ProcessId>, k: usize) -> Self {
        let done = k > elements.len();
        Combinations { cursor: (0..k).collect(), elements, k, started: false, done }
    }

    fn current(&self) -> ProcessSet {
        self.cursor.iter().map(|&i| self.elements[i]).collect()
    }

    fn advance(&mut self) -> bool {
        let n = self.elements.len();
        let k = self.k;
        if k == 0 {
            return false;
        }
        // Find the rightmost index that can still move right.
        let mut i = k;
        while i > 0 {
            i -= 1;
            if self.cursor[i] != i + n - k {
                self.cursor[i] += 1;
                for j in i + 1..k {
                    self.cursor[j] = self.cursor[j - 1] + 1;
                }
                return true;
            }
        }
        false
    }
}

impl Iterator for Combinations {
    type Item = ProcessSet;

    fn next(&mut self) -> Option<ProcessSet> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.current());
        }
        if self.advance() {
            Some(self.current())
        } else {
            self.done = true;
            None
        }
    }
}

/// Returns the binomial coefficient `C(n, k)`, saturating at `u64::MAX`.
pub fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

/// Removes non-maximal sets (sets contained in another set of the family).
///
/// Used to canonicalize explicit fail-prone systems, which are identified with
/// the antichain of their maximal elements.
pub fn retain_maximal(sets: &mut Vec<ProcessSet>) {
    sets.sort_by_key(|s| core::cmp::Reverse(s.len()));
    sets.dedup();
    let mut kept: Vec<ProcessSet> = Vec::with_capacity(sets.len());
    for s in sets.drain(..) {
        if !kept.iter().any(|m| s.is_subset(m)) {
            kept.push(s);
        }
    }
    kept.sort();
    *sets = kept;
}

/// Removes non-minimal sets (sets containing another set of the family).
///
/// Used to canonicalize explicit quorum systems, which are identified with the
/// antichain of their minimal elements.
pub fn retain_minimal(sets: &mut Vec<ProcessSet>) {
    sets.sort_by_key(|s| s.len());
    sets.dedup();
    let mut kept: Vec<ProcessSet> = Vec::with_capacity(sets.len());
    for s in sets.drain(..) {
        if !kept.iter().any(|m| m.is_subset(&s)) {
            kept.push(s);
        }
    }
    kept.sort();
    *sets = kept;
}

/// Enumerates all *minimal hitting sets* of a family of non-empty sets:
/// minimal sets intersecting every member of the family.
///
/// For a quorum system this computes the minimal kernels. The algorithm is a
/// classic branch-and-prune enumeration and is exponential in the worst case;
/// it is intended for inspection and tests on small systems.
///
/// Returns an empty family if `sets` contains an empty set (nothing can hit
/// it); returns `[∅]`-like behaviour is avoided: if `sets` is empty, the empty
/// set hits everything vacuously and `vec![ProcessSet::new()]` is returned.
pub fn minimal_hitting_sets(sets: &[ProcessSet]) -> Vec<ProcessSet> {
    if sets.is_empty() {
        return vec![ProcessSet::new()];
    }
    if sets.iter().any(ProcessSet::is_empty) {
        return Vec::new();
    }
    let mut out: Vec<ProcessSet> = Vec::new();
    let mut current = ProcessSet::new();
    branch(sets, &mut current, &mut out);
    retain_minimal(&mut out);
    out
}

fn branch(sets: &[ProcessSet], current: &mut ProcessSet, out: &mut Vec<ProcessSet>) {
    // Find a set not yet hit.
    let unhit = sets.iter().find(|s| s.is_disjoint(current));
    let Some(unhit) = unhit else {
        out.push(current.clone());
        return;
    };
    // Prune: if some accumulated minimal set is a subset of current ∪ {e}
    // for every branch, that branch only produces non-minimal sets; cheap
    // check is done at the end by retain_minimal, with a light prune here.
    for e in unhit {
        current.insert(e);
        if !out.iter().any(|m| m.is_subset(current)) {
            branch(sets, current, out);
        }
        current.remove(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[usize]) -> ProcessSet {
        ProcessSet::from_indices(ids.iter().copied())
    }

    #[test]
    fn combinations_counts() {
        let ground = ProcessSet::full(6);
        for k in 0..=6 {
            let got = combinations(&ground, k).count() as u64;
            assert_eq!(got, binomial(6, k), "k={k}");
        }
        assert_eq!(combinations(&ground, 7).count(), 0);
    }

    #[test]
    fn combinations_of_sparse_ground_set() {
        let ground = set(&[2, 5, 9]);
        let combos: Vec<_> = combinations(&ground, 2).collect();
        assert_eq!(combos, vec![set(&[2, 5]), set(&[2, 9]), set(&[5, 9])]);
    }

    #[test]
    fn combinations_zero_k() {
        let ground = set(&[1, 2]);
        let combos: Vec<_> = combinations(&ground, 0).collect();
        assert_eq!(combos, vec![ProcessSet::new()]);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(30, 6), 593_775);
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(200, 100), u64::MAX); // saturates
    }

    #[test]
    fn maximal_and_minimal_antichains() {
        let mut fam = vec![set(&[0]), set(&[0, 1]), set(&[2]), set(&[0, 1])];
        retain_maximal(&mut fam);
        assert_eq!(fam, vec![set(&[0, 1]), set(&[2])]);

        let mut fam = vec![set(&[0]), set(&[0, 1]), set(&[2]), set(&[2, 3])];
        retain_minimal(&mut fam);
        assert_eq!(fam, vec![set(&[0]), set(&[2])]);
    }

    #[test]
    fn hitting_sets_simple() {
        // Family {{0,1},{1,2}}: minimal hitting sets are {1}, {0,2}.
        let fam = vec![set(&[0, 1]), set(&[1, 2])];
        let hs = minimal_hitting_sets(&fam);
        assert_eq!(hs, vec![set(&[1]), set(&[0, 2])]);
    }

    #[test]
    fn hitting_sets_threshold_quorums() {
        // Quorums = all 2-subsets of {0,1,2}; minimal kernels are all 2-subsets.
        let fam: Vec<_> = combinations(&ProcessSet::full(3), 2).collect();
        let hs = minimal_hitting_sets(&fam);
        assert_eq!(hs.len(), 3);
        assert!(hs.iter().all(|k| k.len() == 2));
    }

    #[test]
    fn hitting_sets_edge_cases() {
        assert_eq!(minimal_hitting_sets(&[]), vec![ProcessSet::new()]);
        assert!(minimal_hitting_sets(&[ProcessSet::new()]).is_empty());
    }

    #[test]
    fn hitting_sets_every_result_hits_everything() {
        let fam = vec![set(&[0, 1, 2]), set(&[2, 3]), set(&[4, 0]), set(&[1, 4])];
        for h in minimal_hitting_sets(&fam) {
            for s in &fam {
                assert!(h.intersects(s), "{h} misses {s}");
            }
        }
    }
}
