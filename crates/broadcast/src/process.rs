//! Standalone [`Protocol`] wrapper around the broadcast hubs, plus Byzantine
//! sender variants for adversarial testing.
//!
//! The gather and consensus crates embed [`BroadcastHub`] directly; this
//! wrapper exists so that the broadcast layer can be exercised (and attacked)
//! in full simulations on its own.

use asym_quorum::{AsymQuorumSystem, ProcessId};
use asym_sim::{Context, Protocol};

use crate::{BcastMsg, BroadcastHub, Delivery, Tag};

/// A process running only the asymmetric reliable broadcast layer.
///
/// *Input*: `(tag, value)` pairs to arb-broadcast. *Output*: [`Delivery`]
/// events. The [`Byzantine`](ArbRole::Equivocate) role sends conflicting
/// `SEND` messages to odd/even processes — the classic equivocation attack
/// that reliable broadcast must neutralize.
#[derive(Clone, Debug)]
pub struct ArbProcess {
    hub: BroadcastHub<u64>,
    role: ArbRole,
}

/// Behaviour of an [`ArbProcess`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArbRole {
    /// Follows the protocol.
    Honest,
    /// On input, sends `value` to even-indexed processes and `value + 1` to
    /// odd-indexed ones instead of a uniform broadcast.
    Equivocate,
}

impl ArbProcess {
    /// Creates an honest broadcast process.
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem) -> Self {
        ArbProcess { hub: BroadcastHub::new(me, quorums), role: ArbRole::Honest }
    }

    /// Creates a process with the given role.
    pub fn with_role(me: ProcessId, quorums: AsymQuorumSystem, role: ArbRole) -> Self {
        ArbProcess { hub: BroadcastHub::new(me, quorums), role }
    }

    /// Read access to the underlying hub (assertions in tests).
    pub fn hub(&self) -> &BroadcastHub<u64> {
        &self.hub
    }
}

impl Protocol for ArbProcess {
    type Msg = BcastMsg<u64>;
    type Input = (Tag, u64);
    type Output = Delivery<u64>;

    fn on_input(
        &mut self,
        (tag, value): (Tag, u64),
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match self.role {
            ArbRole::Honest => {
                for m in self.hub.broadcast(tag, value) {
                    ctx.broadcast(m);
                }
            }
            ArbRole::Equivocate => {
                // Bypass the hub: hand-craft conflicting SENDs.
                for i in 0..ctx.n() {
                    let v = if i % 2 == 0 { value } else { value + 1 };
                    ctx.send(ProcessId::new(i), BcastMsg::Send { tag, value: v });
                }
            }
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        let (out, delivered) = self.hub.on_message(from, msg);
        for m in out {
            ctx.broadcast(m);
        }
        for d in delivered {
            ctx.output(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::{topology, ProcessSet};
    use asym_sim::{scheduler, FaultMode, Simulation};

    fn cluster(n: usize, f: usize, role_of: impl Fn(usize) -> ArbRole) -> Vec<ArbProcess> {
        let t = topology::uniform_threshold(n, f);
        (0..n)
            .map(|i| ArbProcess::with_role(ProcessId::new(i), t.quorums.clone(), role_of(i)))
            .collect()
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn honest_broadcast_delivered_by_all() {
        for seed in 0..5 {
            let mut sim =
                Simulation::new(cluster(4, 1, |_| ArbRole::Honest), scheduler::Random::new(seed));
            sim.input(pid(0), (0, 99));
            assert!(sim.run(100_000).quiescent);
            for i in 0..4 {
                let out = sim.outputs(pid(i));
                assert_eq!(out.len(), 1, "seed {seed} process {i}");
                assert_eq!(out[0], Delivery { origin: pid(0), tag: 0, value: 99 });
            }
        }
    }

    #[test]
    fn many_concurrent_instances() {
        let mut sim =
            Simulation::new(cluster(7, 2, |_| ArbRole::Honest), scheduler::Random::new(3));
        for i in 0..7 {
            for tag in 0..5 {
                sim.input(pid(i), (tag, (i * 10 + tag as usize) as u64));
            }
        }
        assert!(sim.run(10_000_000).quiescent);
        for i in 0..7 {
            assert_eq!(sim.outputs(pid(i)).len(), 35, "process {i} delivers all 35");
        }
    }

    #[test]
    fn agreement_under_equivocating_sender() {
        // Byzantine p0 equivocates; n=4, f=1. Correct processes must never
        // deliver conflicting values — at most one of {v, v+1} wins system-wide.
        for seed in 0..10 {
            let mut sim = Simulation::new(
                cluster(4, 1, |i| if i == 0 { ArbRole::Equivocate } else { ArbRole::Honest }),
                scheduler::Random::new(seed),
            );
            sim.input(pid(0), (7, 100));
            sim.run(100_000);
            let mut value_seen = None;
            for i in 1..4 {
                for d in sim.outputs(pid(i)) {
                    assert_eq!(d.origin, pid(0));
                    match value_seen {
                        None => value_seen = Some(d.value),
                        Some(v) => assert_eq!(v, d.value, "seed {seed}: split delivery"),
                    }
                }
            }
        }
    }

    #[test]
    fn totality_with_crashed_origin_after_send() {
        // Origin crashes immediately after its SEND reaches the network; if
        // any correct process delivers, all correct processes deliver.
        let mut sim = Simulation::new(cluster(4, 1, |_| ArbRole::Honest), scheduler::Fifo)
            .with_fault(pid(0), FaultMode::CrashAfter(0));
        sim.input(pid(0), (0, 5));
        assert!(sim.run(100_000).quiescent);
        let delivered: Vec<usize> = (1..4).filter(|i| !sim.outputs(pid(*i)).is_empty()).collect();
        assert!(delivered.is_empty() || delivered.len() == 3, "totality violated: {delivered:?}");
    }

    #[test]
    fn no_delivery_without_origin() {
        // Nothing broadcast: no outputs, ever.
        let mut sim = Simulation::new(cluster(4, 1, |_| ArbRole::Honest), scheduler::Fifo);
        assert!(sim.run(1_000).quiescent);
        for i in 0..4 {
            assert!(sim.outputs(pid(i)).is_empty());
        }
    }

    #[test]
    fn validity_under_targeted_delay() {
        // Starve the origin's messages; eventual delivery still holds because
        // the targeted-delay scheduler remains fair.
        let mut sim = Simulation::new(
            cluster(4, 1, |_| ArbRole::Honest),
            scheduler::TargetedDelay::new(ProcessSet::from_indices([0])),
        );
        sim.input(pid(0), (0, 11));
        assert!(sim.run(100_000).quiescent);
        for i in 0..4 {
            assert_eq!(sim.outputs(pid(i)).len(), 1, "process {i}");
        }
    }

    #[test]
    fn works_on_figure1_topology() {
        // The 30-process counterexample system is still a valid quorum
        // system; reliable broadcast must work fine on it.
        let qs = asym_quorum::counterexample::fig1_quorums();
        let procs: Vec<ArbProcess> = (0..30).map(|i| ArbProcess::new(pid(i), qs.clone())).collect();
        let mut sim = Simulation::new(procs, scheduler::Random::new(1));
        sim.input(pid(4), (0, 123));
        assert!(sim.run(10_000_000).quiescent);
        for i in 0..30 {
            assert_eq!(
                sim.outputs(pid(i)),
                &[Delivery { origin: pid(4), tag: 0, value: 123 }],
                "process {i}"
            );
        }
    }
}
