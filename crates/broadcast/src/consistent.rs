//! Asymmetric Byzantine **consistent** broadcast.
//!
//! The weaker sibling of reliable broadcast: consistency (no two correct
//! processes deliver different values for the same instance) and validity,
//! but **no totality** — if the (Byzantine) origin equivocates, some correct
//! processes may deliver while others never do. It needs one round less than
//! reliable broadcast (SEND → ECHO → deliver on a quorum of matching
//! echoes), which is why uncertified-DAG protocols such as Mysticeti use it;
//! the paper's §4.5 discusses this trade-off.
//!
//! Included for completeness of the Alpos et al. asymmetric primitive suite
//! and to support the latency ablation in the benchmarks.

use std::collections::HashMap;
use std::hash::Hash;

use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};

use crate::{Delivery, Tag};

/// Wire messages of consistent broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CbcastMsg<T> {
    /// The origin's initial dissemination.
    Send {
        /// Instance tag chosen by the origin.
        tag: Tag,
        /// The broadcast value.
        value: T,
    },
    /// Witness for `(origin, tag, value)`.
    Echo {
        /// The process whose broadcast this echoes.
        origin: ProcessId,
        /// Instance tag.
        tag: Tag,
        /// Echoed value.
        value: T,
    },
}

#[derive(Clone, Debug)]
struct Instance<T> {
    echoes: HashMap<T, ProcessSet>,
    sent_echo: bool,
    delivered: bool,
}

impl<T> Default for Instance<T> {
    fn default() -> Self {
        Instance { echoes: HashMap::new(), sent_echo: false, delivered: false }
    }
}

/// Multi-instance asymmetric consistent broadcast engine for one process.
///
/// Same embedding pattern as [`BroadcastHub`](crate::BroadcastHub).
#[derive(Clone, Debug)]
pub struct ConsistentHub<T> {
    me: ProcessId,
    quorums: AsymQuorumSystem,
    instances: HashMap<(ProcessId, Tag), Instance<T>>,
    originated: std::collections::HashSet<Tag>,
}

impl<T: Clone + Eq + Hash + core::fmt::Debug> ConsistentHub<T> {
    /// Creates a hub for process `me` under the given asymmetric quorum
    /// system.
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem) -> Self {
        ConsistentHub { me, quorums, instances: HashMap::new(), originated: Default::default() }
    }

    /// Starts broadcasting `value` under `tag`.
    ///
    /// # Panics
    ///
    /// Panics if this process already broadcast under `tag`.
    pub fn broadcast(&mut self, tag: Tag, value: T) -> Vec<CbcastMsg<T>> {
        assert!(
            self.originated.insert(tag),
            "process {} consistent-broadcast twice under tag {tag}",
            self.me
        );
        vec![CbcastMsg::Send { tag, value }]
    }

    /// Handles one received message; returns `(to_send_to_all, deliveries)`.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: CbcastMsg<T>,
    ) -> (Vec<CbcastMsg<T>>, Vec<Delivery<T>>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        match msg {
            CbcastMsg::Send { tag, value } => {
                let inst = self.instances.entry((from, tag)).or_default();
                if !inst.sent_echo {
                    inst.sent_echo = true;
                    out.push(CbcastMsg::Echo { origin: from, tag, value });
                }
            }
            CbcastMsg::Echo { origin, tag, value } => {
                let inst = self.instances.entry((origin, tag)).or_default();
                let echoers = inst.echoes.entry(value.clone()).or_default();
                echoers.insert(from);
                if !inst.delivered && self.quorums.contains_quorum_for(self.me, echoers) {
                    inst.delivered = true;
                    delivered.push(Delivery { origin, tag, value });
                }
            }
        }
        (out, delivered)
    }

    /// Returns `true` if this hub already delivered for `(origin, tag)`.
    pub fn has_delivered(&self, origin: ProcessId, tag: Tag) -> bool {
        self.instances.get(&(origin, tag)).is_some_and(|i| i.delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::topology;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn hub(i: usize) -> ConsistentHub<u32> {
        ConsistentHub::new(pid(i), topology::uniform_threshold(4, 1).quorums)
    }

    #[test]
    fn delivers_after_quorum_of_echoes() {
        let mut h = hub(0);
        let echo = |from: usize| (pid(from), CbcastMsg::Echo { origin: pid(3), tag: 1, value: 8 });
        for i in 0..2 {
            let (f, m) = echo(i);
            assert!(h.on_message(f, m).1.is_empty());
        }
        let (f, m) = echo(2);
        let (_, del) = h.on_message(f, m);
        assert_eq!(del, vec![Delivery { origin: pid(3), tag: 1, value: 8 }]);
        assert!(h.has_delivered(pid(3), 1));
    }

    #[test]
    fn echoes_once_per_instance() {
        let mut h = hub(0);
        let (out, _) = h.on_message(pid(2), CbcastMsg::Send { tag: 0, value: 1 });
        assert_eq!(out.len(), 1);
        let (out, _) = h.on_message(pid(2), CbcastMsg::Send { tag: 0, value: 2 });
        assert!(out.is_empty());
    }

    #[test]
    fn split_echoes_never_deliver_two_values() {
        // 2 echoes for each of two values: no quorum for either, and quorum
        // intersection makes a double delivery impossible in principle.
        let mut h = hub(0);
        for (i, v) in [(0, 1u32), (1, 1), (2, 2), (3, 2)] {
            let (_, del) =
                h.on_message(pid(i), CbcastMsg::Echo { origin: pid(3), tag: 0, value: v });
            assert!(del.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "consistent-broadcast twice")]
    fn double_broadcast_panics() {
        let mut h = hub(0);
        let _ = h.broadcast(3, 1);
        let _ = h.broadcast(3, 2);
    }
}
