//! Standalone [`Protocol`] wrapper for consistent broadcast, mirroring
//! [`ArbProcess`](crate::ArbProcess) — used by the latency ablation and by
//! tests contrasting consistent vs reliable delivery guarantees.

use asym_quorum::{AsymQuorumSystem, ProcessId};
use asym_sim::{Context, Protocol};

use crate::{CbcastMsg, ConsistentHub, Delivery, Tag};

/// A process running only the asymmetric consistent broadcast layer.
///
/// *Input*: `(tag, value)` pairs to broadcast. *Output*: [`Delivery`] events.
/// Unlike reliable broadcast there is **no totality**: with an equivocating
/// origin some correct processes may deliver while others never do — the
/// tests demonstrate exactly that gap.
#[derive(Clone, Debug)]
pub struct CbProcess {
    hub: ConsistentHub<u64>,
}

impl CbProcess {
    /// Creates an honest consistent-broadcast process.
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem) -> Self {
        CbProcess { hub: ConsistentHub::new(me, quorums) }
    }

    /// Read access to the underlying hub.
    pub fn hub(&self) -> &ConsistentHub<u64> {
        &self.hub
    }
}

impl Protocol for CbProcess {
    type Msg = CbcastMsg<u64>;
    type Input = (Tag, u64);
    type Output = Delivery<u64>;

    fn on_input(
        &mut self,
        (tag, value): (Tag, u64),
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        for m in self.hub.broadcast(tag, value) {
            ctx.broadcast(m);
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        let (out, delivered) = self.hub.on_message(from, msg);
        for m in out {
            ctx.broadcast(m);
        }
        for d in delivered {
            ctx.output(d);
        }
    }
}

/// An equivocating consistent-broadcast origin: sends `value` to even
/// processes and `value + 1` to odd ones. Consistency still guarantees at
/// most one of the two is ever delivered system-wide; totality is forfeited.
#[derive(Clone, Debug)]
pub struct EquivocatingCbSender;

impl Protocol for EquivocatingCbSender {
    type Msg = CbcastMsg<u64>;
    type Input = (Tag, u64);
    type Output = Delivery<u64>;

    fn on_input(
        &mut self,
        (tag, value): (Tag, u64),
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        for i in 0..ctx.n() {
            let v = if i % 2 == 0 { value } else { value + 1 };
            ctx.send(ProcessId::new(i), CbcastMsg::Send { tag, value: v });
        }
    }

    fn on_message(
        &mut self,
        _from: ProcessId,
        _msg: Self::Msg,
        _ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        // Byzantine: never echoes.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::topology;
    use asym_sim::{scheduler, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn honest_broadcast_delivered_by_all() {
        let t = topology::uniform_threshold(4, 1);
        let procs: Vec<CbProcess> =
            (0..4).map(|i| CbProcess::new(pid(i), t.quorums.clone())).collect();
        let mut sim = Simulation::new(procs, scheduler::Random::new(2));
        sim.input(pid(1), (0, 55));
        assert!(sim.run(100_000).quiescent);
        for i in 0..4 {
            assert_eq!(
                sim.outputs(pid(i)),
                &[Delivery { origin: pid(1), tag: 0, value: 55 }],
                "process {i}"
            );
        }
    }

    #[test]
    fn consistent_broadcast_is_cheaper_than_reliable() {
        // One round less: SEND + ECHO only (no READY phase).
        let t = topology::uniform_threshold(7, 2);
        let procs: Vec<CbProcess> =
            (0..7).map(|i| CbProcess::new(pid(i), t.quorums.clone())).collect();
        let mut sim = Simulation::new(procs, scheduler::Fifo);
        sim.input(pid(0), (0, 1));
        assert!(sim.run(100_000).quiescent);
        let cb_msgs = sim.stats().sent;

        let procs: Vec<crate::ArbProcess> =
            (0..7).map(|i| crate::ArbProcess::new(pid(i), t.quorums.clone())).collect();
        let mut sim = Simulation::new(procs, scheduler::Fifo);
        sim.input(pid(0), (0, 1));
        assert!(sim.run(100_000).quiescent);
        let arb_msgs = sim.stats().sent;

        assert!(
            cb_msgs < arb_msgs,
            "consistent ({cb_msgs}) must be cheaper than reliable ({arb_msgs})"
        );
    }

    /// One simulation type covering honest receivers and one equivocator.
    #[derive(Clone, Debug)]
    enum Node {
        Honest(CbProcess),
        Byz(EquivocatingCbSender),
    }

    impl Protocol for Node {
        type Msg = CbcastMsg<u64>;
        type Input = (Tag, u64);
        type Output = Delivery<u64>;

        fn on_input(&mut self, i: (Tag, u64), ctx: &mut Context<'_, Self::Msg, Self::Output>) {
            match self {
                Node::Honest(p) => p.on_input(i, ctx),
                Node::Byz(p) => p.on_input(i, ctx),
            }
        }

        fn on_message(
            &mut self,
            from: ProcessId,
            msg: Self::Msg,
            ctx: &mut Context<'_, Self::Msg, Self::Output>,
        ) {
            match self {
                Node::Honest(p) => p.on_message(from, msg, ctx),
                Node::Byz(p) => p.on_message(from, msg, ctx),
            }
        }
    }

    #[test]
    fn equivocation_never_splits_delivered_values() {
        // Consistency survives equivocation; totality does not have to.
        let t = topology::uniform_threshold(4, 1);
        for seed in 0..10 {
            let procs: Vec<Node> = (0..4)
                .map(|i| {
                    if i == 3 {
                        Node::Byz(EquivocatingCbSender)
                    } else {
                        Node::Honest(CbProcess::new(pid(i), t.quorums.clone()))
                    }
                })
                .collect();
            let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
            sim.input(pid(3), (0, 70));
            assert!(sim.run(100_000).quiescent);
            let mut seen = None;
            for i in 0..3 {
                for d in sim.outputs(pid(i)) {
                    match seen {
                        None => seen = Some(d.value),
                        Some(v) => assert_eq!(v, d.value, "seed {seed}: split delivery"),
                    }
                }
            }
        }
    }
}
