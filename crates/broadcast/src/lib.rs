//! Reliable and consistent broadcast over (asymmetric) Byzantine quorum
//! systems — the `arb-broadcast` / `arb-deliver` primitive of the paper.
//!
//! The paper's DAG protocols disseminate every vertex through **asymmetric
//! reliable broadcast** (Alpos et al.), obtained from Bracha's protocol by
//! replacing the two thresholds with quorum/kernel conditions — one of the
//! cases where the quorum-replacement heuristic *does* work (unlike for
//! gather, which is the paper's central negative result).
//!
//! * [`BroadcastHub`] — multi-instance asymmetric reliable broadcast
//!   (SEND → ECHO → READY with kernel amplification); with a uniform
//!   threshold system this is exactly Bracha's protocol, which doubles as the
//!   symmetric baseline.
//! * [`ConsistentHub`] — the weaker, one-round-cheaper consistent broadcast
//!   (no totality), included for the Mysticeti-style latency ablation.
//! * [`ArbProcess`] — a standalone simulation wrapper with honest and
//!   equivocating roles for adversarial tests.
//!
//! ```
//! use asym_broadcast::{BcastMsg, BroadcastHub};
//! use asym_quorum::{topology, ProcessId};
//!
//! let t = topology::uniform_threshold(4, 1);
//! let mut hub = BroadcastHub::<&'static str>::new(ProcessId::new(1), t.quorums);
//! let to_all = hub.broadcast(0, "block");
//! assert_eq!(to_all.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cb_process;
mod consistent;
mod process;
mod reliable;

pub use cb_process::{CbProcess, EquivocatingCbSender};
pub use consistent::{CbcastMsg, ConsistentHub};
pub use process::{ArbProcess, ArbRole};
pub use reliable::{BcastMsg, BroadcastHub, Delivery, Tag};
