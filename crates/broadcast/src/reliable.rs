//! Asymmetric Byzantine reliable broadcast (Alpos et al., used as `arb-` in
//! the paper).
//!
//! This is Bracha's classic SEND → ECHO → READY protocol with its two
//! threshold rules generalized to asymmetric quorums, exactly as prescribed
//! by the paper (§3.2):
//!
//! * *deliver after `2f+1` READY* becomes *deliver after READY from one of
//!   my **quorums***;
//! * *amplify after `f+1` READY* becomes *amplify after READY from one of my
//!   **kernels*** (a set intersecting all my quorums);
//! * *echo after the sender's SEND*, *ready after ECHO from a quorum* as in
//!   Bracha.
//!
//! With a uniform threshold quorum system this *is* Bracha broadcast — the
//! symmetric baseline and the asymmetric protocol share this implementation,
//! which the unit tests exploit.
//!
//! A [`BroadcastHub`] multiplexes any number of instances, keyed by
//! `(origin, tag)`; one process broadcasts at most one value per tag (in the
//! DAG protocols the tag is the round number).

use std::collections::HashMap;
use std::hash::Hash;

use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};

/// Instance tag: distinguishes broadcasts by the same origin (e.g. the DAG
/// round number).
pub type Tag = u64;

/// Wire messages of the reliable broadcast. All of them are sent to *all*
/// processes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BcastMsg<T> {
    /// The origin's initial dissemination of `value` under `tag`.
    Send {
        /// Instance tag chosen by the origin.
        tag: Tag,
        /// The broadcast value.
        value: T,
    },
    /// Witness that the sender received `Send{tag, value}` from `origin`.
    Echo {
        /// The process whose broadcast this echoes.
        origin: ProcessId,
        /// Instance tag.
        tag: Tag,
        /// Echoed value.
        value: T,
    },
    /// Commitment that the sender is ready to deliver `value` for
    /// `(origin, tag)`.
    Ready {
        /// The process whose broadcast this concerns.
        origin: ProcessId,
        /// Instance tag.
        tag: Tag,
        /// Value ready for delivery.
        value: T,
    },
}

/// A delivery produced by the hub: `origin` reliably broadcast `value` under
/// `tag`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<T> {
    /// The broadcasting process.
    pub origin: ProcessId,
    /// Instance tag.
    pub tag: Tag,
    /// The delivered value.
    pub value: T,
}

#[derive(Clone, Debug)]
struct Instance<T> {
    /// Who echoed which value.
    echoes: HashMap<T, ProcessSet>,
    /// Who sent READY for which value.
    readies: HashMap<T, ProcessSet>,
    sent_echo: bool,
    sent_ready: bool,
    delivered: bool,
}

impl<T> Default for Instance<T> {
    fn default() -> Self {
        Instance {
            echoes: HashMap::new(),
            readies: HashMap::new(),
            sent_echo: false,
            sent_ready: false,
            delivered: false,
        }
    }
}

/// Multi-instance asymmetric reliable broadcast engine for one process.
///
/// The hub is a pure state machine: [`BroadcastHub::broadcast`] and
/// [`BroadcastHub::on_message`] return the messages to send (each to **all**
/// processes) and the deliveries that became ready. Wrap it in any
/// [`Protocol`](asym_sim::Protocol) by nesting [`BcastMsg`] in the host's
/// message enum — this is how the gather and consensus crates embed it.
///
/// # Examples
///
/// ```
/// use asym_broadcast::{BcastMsg, BroadcastHub};
/// use asym_quorum::{topology, ProcessId};
///
/// let t = topology::uniform_threshold(4, 1);
/// let mut hub = BroadcastHub::<u32>::new(ProcessId::new(0), t.quorums.clone());
/// let out = hub.broadcast(7, 42);
/// assert!(matches!(out[0], BcastMsg::Send { tag: 7, value: 42 }));
/// ```
#[derive(Clone, Debug)]
pub struct BroadcastHub<T> {
    me: ProcessId,
    quorums: AsymQuorumSystem,
    instances: HashMap<(ProcessId, Tag), Instance<T>>,
    originated: std::collections::HashSet<Tag>,
}

impl<T: Clone + Eq + Hash + core::fmt::Debug> BroadcastHub<T> {
    /// Creates a hub for process `me` under the given asymmetric quorum
    /// system.
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem) -> Self {
        BroadcastHub { me, quorums, instances: HashMap::new(), originated: Default::default() }
    }

    /// Creates a hub using the classic symmetric threshold system
    /// (`n−f`-quorums): plain Bracha broadcast.
    pub fn symmetric(me: ProcessId, n: usize, f: usize) -> Self {
        let qs = AsymQuorumSystem::uniform(asym_quorum::QuorumSystem::threshold(n, n - f));
        BroadcastHub::new(me, qs)
    }

    /// This process's identity.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Starts broadcasting `value` under `tag`; returns the messages to send
    /// to all processes.
    ///
    /// Broadcasting twice under one tag is a protocol bug.
    ///
    /// # Panics
    ///
    /// Panics if this process already broadcast under `tag`.
    pub fn broadcast(&mut self, tag: Tag, value: T) -> Vec<BcastMsg<T>> {
        assert!(self.originated.insert(tag), "process {} broadcast twice under tag {tag}", self.me);
        vec![BcastMsg::Send { tag, value }]
    }

    /// Handles one received broadcast-layer message from `from`.
    ///
    /// Returns `(to_send, deliveries)`: messages to send to all processes and
    /// values that became deliverable.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: BcastMsg<T>,
    ) -> (Vec<BcastMsg<T>>, Vec<Delivery<T>>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        match msg {
            BcastMsg::Send { tag, value } => {
                // Echo the first value seen from this origin under this tag.
                let inst = self.instances.entry((from, tag)).or_default();
                if !inst.sent_echo {
                    inst.sent_echo = true;
                    out.push(BcastMsg::Echo { origin: from, tag, value });
                }
            }
            BcastMsg::Echo { origin, tag, value } => {
                let inst = self.instances.entry((origin, tag)).or_default();
                let echoers = inst.echoes.entry(value.clone()).or_default();
                echoers.insert(from);
                // READY once a quorum of mine echoed the same value.
                if !inst.sent_ready && self.quorums.contains_quorum_for(self.me, echoers) {
                    inst.sent_ready = true;
                    out.push(BcastMsg::Ready { origin, tag, value });
                }
            }
            BcastMsg::Ready { origin, tag, value } => {
                let inst = self.instances.entry((origin, tag)).or_default();
                let readiers = inst.readies.entry(value.clone()).or_default();
                readiers.insert(from);
                // Amplification: READY after a kernel of READYs.
                if !inst.sent_ready && self.quorums.hits_kernel_for(self.me, readiers) {
                    inst.sent_ready = true;
                    out.push(BcastMsg::Ready { origin, tag, value: value.clone() });
                }
                // Delivery: READY from one of my quorums.
                if !inst.delivered && self.quorums.contains_quorum_for(self.me, readiers) {
                    inst.delivered = true;
                    delivered.push(Delivery { origin, tag, value });
                }
            }
        }
        (out, delivered)
    }

    /// Returns `true` if this hub already delivered for `(origin, tag)`.
    pub fn has_delivered(&self, origin: ProcessId, tag: Tag) -> bool {
        self.instances.get(&(origin, tag)).is_some_and(|i| i.delivered)
    }

    /// Number of instances with any state (observability).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::topology;

    fn hub(i: usize) -> BroadcastHub<u32> {
        BroadcastHub::new(ProcessId::new(i), topology::uniform_threshold(4, 1).quorums)
    }

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn echo_only_first_value_per_origin_tag() {
        let mut h = hub(0);
        let (out1, _) = h.on_message(pid(1), BcastMsg::Send { tag: 0, value: 5 });
        assert_eq!(out1.len(), 1);
        // Equivocating second SEND: ignored.
        let (out2, _) = h.on_message(pid(1), BcastMsg::Send { tag: 0, value: 6 });
        assert!(out2.is_empty());
        // Different tag: fresh echo.
        let (out3, _) = h.on_message(pid(1), BcastMsg::Send { tag: 1, value: 6 });
        assert_eq!(out3.len(), 1);
    }

    #[test]
    fn ready_after_quorum_of_echoes() {
        let mut h = hub(0);
        // n=4, f=1 → quorums of size 3.
        let echo = |v| BcastMsg::Echo { origin: pid(3), tag: 0, value: v };
        assert!(h.on_message(pid(0), echo(9)).0.is_empty());
        assert!(h.on_message(pid(1), echo(9)).0.is_empty());
        let (out, _) = h.on_message(pid(2), echo(9));
        assert_eq!(out, vec![BcastMsg::Ready { origin: pid(3), tag: 0, value: 9 }]);
        // No duplicate READY on the 4th echo.
        assert!(h.on_message(pid(3), echo(9)).0.is_empty());
    }

    #[test]
    fn echoes_for_different_values_do_not_mix() {
        let mut h = hub(0);
        let echo =
            |from: usize, v| (pid(from), BcastMsg::Echo { origin: pid(3), tag: 0, value: v });
        let (f, m) = echo(0, 1);
        h.on_message(f, m);
        let (f, m) = echo(1, 2);
        h.on_message(f, m);
        let (f, m) = echo(2, 1);
        h.on_message(f, m);
        // Two echoes for 1, one for 2: no quorum for either.
        let (f, m) = echo(3, 2);
        let (out, _) = h.on_message(f, m);
        assert!(out.is_empty(), "2+2 split must not produce READY");
    }

    #[test]
    fn amplification_from_kernel_of_readies() {
        let mut h = hub(0);
        // Kernel size for threshold(4, q=3) is 4-3+1 = 2.
        let ready = |from: usize| (pid(from), BcastMsg::Ready { origin: pid(3), tag: 0, value: 7 });
        let (f, m) = ready(1);
        assert!(h.on_message(f, m).0.is_empty());
        let (f, m) = ready(2);
        let (out, del) = h.on_message(f, m);
        assert_eq!(out, vec![BcastMsg::Ready { origin: pid(3), tag: 0, value: 7 }]);
        assert!(del.is_empty(), "2 readies < quorum");
    }

    #[test]
    fn delivery_after_quorum_of_readies_once() {
        let mut h = hub(0);
        let ready = |from: usize| (pid(from), BcastMsg::Ready { origin: pid(3), tag: 0, value: 7 });
        for i in 1..3 {
            let (f, m) = ready(i);
            h.on_message(f, m);
        }
        let (f, m) = ready(3);
        let (_, del) = h.on_message(f, m);
        assert_eq!(del, vec![Delivery { origin: pid(3), tag: 0, value: 7 }]);
        assert!(h.has_delivered(pid(3), 0));
        // Further READYs do not re-deliver.
        let (f, m) = ready(0);
        let (_, del) = h.on_message(f, m);
        assert!(del.is_empty());
    }

    #[test]
    #[should_panic(expected = "broadcast twice")]
    fn double_broadcast_panics() {
        let mut h = hub(0);
        let out = h.broadcast(0, 1);
        // Simulate the self-delivery of SEND which marks sent_echo.
        for m in out {
            h.on_message(pid(0), m);
        }
        let _ = h.broadcast(0, 2);
    }
}
