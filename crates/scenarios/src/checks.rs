//! Reusable invariant checkers over [`ScenarioOutcome`]s.
//!
//! Each checker audits one claim of the paper against everything an
//! execution observably produced. Checkers are plain functions
//! `fn(&ScenarioOutcome) -> Result<(), String>` so sweeps can run any subset
//! and report the violated invariant together with the exact reproduction
//! tuple ([`ScenarioFailure`]).
//!
//! | checker | paper claim |
//! |---------|-------------|
//! | [`quiescence`] | bounded executions terminate (budget not exhausted) |
//! | [`prefix_consistency`] | total order: outputs of honest processes are prefixes of one another, ids *and* blocks |
//! | [`no_duplicates`] | integrity: no vertex delivered twice |
//! | [`no_fabrication`] | validity: committed blocks were really injected (or are Byzantine-authored) |
//! | [`dag_no_fabrication`] | no honest DAG *stores* a vertex whose claimed honest source never created it (forged fetch replies) |
//! | [`cross_dag_consistency`] | any vertex id two honest DAGs share is bit-identical in both (no forged copy was smuggled in) |
//! | [`dag_well_formed`] | every local DAG satisfies the certified-DAG invariants incl. the line-140 quorum rule |
//! | [`commit_log_coin`] | commit logs elect exactly the common-coin leaders, in increasing waves |
//! | [`delivery_bookkeeping`] | the committer's delivered set and log agree exactly with the observed output stream |
//! | [`guild_liveness`] | when a guild survives the fault plan, every guild member commits |
//! | [`same_seed_determinism`] | the descriptor replays to the identical commit log |
//! | [`restart_no_double_delivery`] | a crash-restarted process never delivers a vertex twice across its restart |
//! | [`restart_prefix_consistency`] | a restarted process's delivered sequence stays a prefix-match with every fault-free process |
//! | [`restart_liveness`] | when a guild survives, a restarted process recovers, rejoins and delivers |
//! | [`wal_state_equivalence`] | replaying a process's final WAL reproduces its live DAG, delivered set (with wave tags) and commit log exactly |
//! | [`state_transfer_consistency`] | a delivered-state install reproduces some honest delivered prefix bit-for-bit, never re-delivers, and only ever happens on a recovering process |

use std::collections::HashSet;

use asym_core::OrderedVertex;
use asym_crypto::CommonCoin;
use asym_dag::{round_of_wave, VertexId};

use crate::runner::ScenarioOutcome;
use crate::spec::Scenario;

/// One invariant checker.
pub type CheckFn = fn(&ScenarioOutcome) -> Result<(), String>;

/// The standard checker suite, in the order they are run.
pub fn standard_checks() -> Vec<(&'static str, CheckFn)> {
    vec![
        ("quiescence", quiescence),
        ("prefix_consistency", prefix_consistency),
        ("no_duplicates", no_duplicates),
        ("no_fabrication", no_fabrication),
        ("dag_no_fabrication", dag_no_fabrication),
        ("cross_dag_consistency", cross_dag_consistency),
        ("dag_well_formed", dag_well_formed),
        ("commit_log_coin", commit_log_coin),
        ("delivery_bookkeeping", delivery_bookkeeping),
        ("guild_liveness", guild_liveness),
        ("same_seed_determinism", same_seed_determinism),
        ("restart_no_double_delivery", restart_no_double_delivery),
        ("restart_prefix_consistency", restart_prefix_consistency),
        ("restart_liveness", restart_liveness),
        ("wal_state_equivalence", wal_state_equivalence),
        ("state_transfer_consistency", state_transfer_consistency),
    ]
}

/// An invariant violation, carrying the scenario tuple that reproduces it.
#[derive(Clone, Debug)]
pub struct ScenarioFailure {
    /// The failing scenario (replay with [`replay`]).
    pub scenario: Scenario,
    /// Name of the violated invariant.
    pub check: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl core::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "invariant `{}` violated: {}", self.check, self.detail)?;
        writeln!(f, "  cell: {}", self.scenario.cell())?;
        write!(f, "  reproduce with: asym_scenarios::replay(&{})", self.scenario.repro())
    }
}

impl std::error::Error for ScenarioFailure {}

/// Re-executes a scenario descriptor bit-for-bit — the one function call a
/// failure report points at.
///
/// # Panics
///
/// Panics if the scenario cannot be built (see [`Scenario::try_run`]).
pub fn replay(scenario: &Scenario) -> ScenarioOutcome {
    scenario.run()
}

/// Runs a scenario and audits it with the full standard suite.
///
/// # Errors
///
/// The first violated invariant, as a [`ScenarioFailure`] naming the exact
/// reproduction tuple. An unbuildable scenario is reported the same way
/// (check name `build`).
pub fn run_and_check_all(scenario: &Scenario) -> Result<ScenarioOutcome, ScenarioFailure> {
    run_and_check(scenario, &standard_checks())
}

/// Runs a scenario and audits it with a chosen checker subset.
///
/// # Errors
///
/// The first violated invariant (or build error) as a [`ScenarioFailure`].
pub fn run_and_check(
    scenario: &Scenario,
    checks: &[(&'static str, CheckFn)],
) -> Result<ScenarioOutcome, ScenarioFailure> {
    let outcome = scenario.try_run().map_err(|e| ScenarioFailure {
        scenario: scenario.clone(),
        check: "build",
        detail: e.to_string(),
    })?;
    check_outcome(&outcome, checks)?;
    Ok(outcome)
}

/// Audits an already-produced outcome with a checker subset.
///
/// # Errors
///
/// The first violated invariant as a [`ScenarioFailure`].
pub fn check_outcome(
    outcome: &ScenarioOutcome,
    checks: &[(&'static str, CheckFn)],
) -> Result<(), ScenarioFailure> {
    for (name, check) in checks {
        check(outcome).map_err(|detail| ScenarioFailure {
            scenario: outcome.scenario.clone(),
            check: name,
            detail,
        })?;
    }
    Ok(())
}

/// The execution must end in quiescence, not budget exhaustion — otherwise
/// the bounded forms of the other properties are meaningless.
pub fn quiescence(o: &ScenarioOutcome) -> Result<(), String> {
    if o.quiescent {
        Ok(())
    } else {
        Err(format!("run exhausted its {}-step budget without quiescing", o.scenario.max_steps))
    }
}

/// Total order: the output sequences of every pair of honest processes are
/// prefix-consistent (Definition 4.1, agreement + total order in bounded
/// form). Crash/mute processes are honest-but-truncated, so they are
/// included; Byzantine processes are not. Compares *blocks* as well as ids:
/// two processes agreeing on the vertex identity but delivering different
/// payloads (an equivocation that slipped past reliable broadcast, or a
/// forged fetch copy) is exactly the fork this invariant exists to catch —
/// an id-only comparison would wave it through.
pub fn prefix_consistency(o: &ScenarioOutcome) -> Result<(), String> {
    for a in &o.honest {
        for b in &o.honest {
            let (oa, ob) = (&o.outputs[a.index()], &o.outputs[b.index()]);
            let common = oa.len().min(ob.len());
            for k in 0..common {
                if oa[k].id != ob[k].id {
                    return Err(format!(
                        "total order forked between {a} and {b} at position {k}: {} vs {}",
                        oa[k].id, ob[k].id
                    ));
                }
                if oa[k].block != ob[k].block {
                    return Err(format!(
                        "{a} and {b} delivered {} at position {k} with different blocks: \
                         {:?} vs {:?}",
                        oa[k].id, oa[k].block.txs, ob[k].block.txs
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Integrity: no honest process delivers the same vertex twice.
pub fn no_duplicates(o: &ScenarioOutcome) -> Result<(), String> {
    for p in &o.honest {
        let mut seen = HashSet::new();
        for v in &o.outputs[p.index()] {
            if !seen.insert(v.id) {
                return Err(format!("{p} delivered {} twice", v.id));
            }
        }
    }
    Ok(())
}

/// Validity / no fabrication: a committed vertex created by an honest
/// process carries either a filler block or a block that process really
/// injected; a committed vertex from a Byzantine source carries only
/// transactions its attack is known to author. Nothing is invented by the
/// protocol.
pub fn no_fabrication(o: &ScenarioOutcome) -> Result<(), String> {
    for p in &o.honest {
        for v in &o.outputs[p.index()] {
            let src = v.id.source;
            if o.honest.contains(src) {
                if !v.block.is_empty() && !o.injected[src.index()].contains(&v.block) {
                    return Err(format!(
                        "{p} ordered {} carrying block {:?} that {src} never injected",
                        v.id, v.block.txs
                    ));
                }
            } else {
                let attack = o
                    .scenario
                    .faults
                    .byzantine()
                    .find(|(i, _)| *i == src.index())
                    .map(|(_, a)| a)
                    .expect("non-honest source must be a configured attacker");
                for tx in &v.block.txs {
                    if !attack.injected_txs().contains(tx) {
                        return Err(format!(
                            "{p} ordered {} with tx {tx} not authored by the {attack} attack",
                            v.id
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// DAG-level no-fabrication: an honest process must never *store* (not
/// merely never deliver) a vertex from an honest source carrying a block
/// that source never injected, nor a vertex from a Byzantine source
/// carrying transactions its attack is not known to author. This is the
/// checker the forged-fetch-reply attack aims at: a fabricated vertex
/// attributed to an honest process that slips past the kernel-matched
/// fetch acceptance lands in a DAG long before (and even without ever)
/// being delivered.
pub fn dag_no_fabrication(o: &ScenarioOutcome) -> Result<(), String> {
    for p in &o.honest {
        let dag = o.dags[p.index()].as_ref().expect("honest processes snapshot their DAG");
        for r in 1..=dag.max_round().unwrap_or(0) {
            for v in dag.vertices_in_round(r) {
                let src = v.source();
                if o.honest.contains(src) {
                    if !v.block().is_empty() && !o.injected[src.index()].contains(v.block()) {
                        return Err(format!(
                            "{p} stores {} carrying block {:?} that {src} never injected \
                             (forged vertex accepted into a DAG)",
                            v.id(),
                            v.block().txs
                        ));
                    }
                } else {
                    let attack = o
                        .scenario
                        .faults
                        .byzantine()
                        .find(|(i, _)| *i == src.index())
                        .map(|(_, a)| a)
                        .expect("non-honest source must be a configured attacker");
                    for tx in &v.block().txs {
                        if !attack.injected_txs().contains(tx) {
                            return Err(format!(
                                "{p} stores {} with tx {tx} not authored by the {attack} attack",
                                v.id()
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Cross-DAG consistency: any vertex identity present in two honest DAGs
/// must be bit-identical in both (same block, same edges). Reliable
/// broadcast guarantees this for arb-delivered vertices; the recovery
/// fetch path bypasses reliable broadcast, so this checker is what proves
/// the kernel-matched acceptance kept equivocated or forged fetch copies
/// out — *before* any of them reaches a commit.
pub fn cross_dag_consistency(o: &ScenarioOutcome) -> Result<(), String> {
    let honest: Vec<_> = o.honest.iter().collect();
    for (ai, a) in honest.iter().enumerate() {
        let da = o.dags[a.index()].as_ref().expect("honest DAG snapshot");
        for b in honest.iter().skip(ai + 1) {
            let db = o.dags[b.index()].as_ref().expect("honest DAG snapshot");
            for r in 1..=da.max_round().unwrap_or(0) {
                for v in da.vertices_in_round(r) {
                    if let Some(w) = db.get(v.id()) {
                        if v != w {
                            return Err(format!(
                                "{a} and {b} store different vertices under the same identity \
                                 {}: blocks {:?} vs {:?}",
                                v.id(),
                                v.block().txs,
                                w.block().txs
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Certified-DAG well-formedness of every honest local DAG, audited through
/// [`asym_dag::DagStore`]: parents precede children, strong edges satisfy
/// the Algorithm-6 line-140 quorum rule, every ordered vertex is stored with
/// the block it was ordered with, and delivery respects causality.
pub fn dag_well_formed(o: &ScenarioOutcome) -> Result<(), String> {
    for p in &o.honest {
        let dag = o.dags[p.index()].as_ref().expect("honest processes snapshot their DAG");
        let max_round = dag.max_round().unwrap_or(0);
        for r in 1..=max_round {
            for v in dag.vertices_in_round(r) {
                for parent in v.parents() {
                    // Pruned parents were delivered and garbage-collected
                    // — legally absent (per exact id, not by round).
                    if !dag.contains(parent) && !dag.is_pruned(parent) {
                        return Err(format!("{p}: {} references missing parent {parent}", v.id()));
                    }
                }
                if o.topology.quorums.contains_quorum_for_any(v.strong_edges()).is_none() {
                    return Err(format!(
                        "{p}: {} stored with strong edges {} containing no quorum (line 140)",
                        v.id(),
                        v.strong_edges()
                    ));
                }
            }
        }
        // Ordered outputs come from the DAG, blocks intact, parents first.
        let out = &o.outputs[p.index()];
        let pos: std::collections::HashMap<_, _> =
            out.iter().enumerate().map(|(k, v)| (v.id, k)).collect();
        for (k, v) in out.iter().enumerate() {
            let Some(stored) = dag.get(v.id) else {
                // A pruned vertex was delivered first and garbage-collected
                // later — exactly what WAL pruning promises.
                if dag.is_pruned(v.id) {
                    continue;
                }
                return Err(format!("{p} ordered {} which is not in its DAG", v.id));
            };
            if stored.block() != &v.block {
                return Err(format!("{p} ordered {} with a block differing from its DAG", v.id));
            }
            for parent in stored.parents() {
                if parent.round == 0 {
                    continue;
                }
                match pos.get(&parent) {
                    None => {
                        return Err(format!(
                            "{p}: {} delivered but its parent {parent} never was",
                            v.id
                        ))
                    }
                    Some(pk) if *pk > k => {
                        return Err(format!("{p}: parent {parent} delivered after child {}", v.id))
                    }
                    Some(_) => {}
                }
            }
        }
    }
    Ok(())
}

/// Commit logs contain exactly coin-elected wave leaders, in strictly
/// increasing wave order, and are prefix-consistent across honest processes
/// (the shared total order is anchored in the shared leader sequence).
pub fn commit_log_coin(o: &ScenarioOutcome) -> Result<(), String> {
    let coin = CommonCoin::new(o.scenario.coin_seed(), o.topology.n());
    for p in &o.honest {
        let log = &o.commit_logs[p.index()];
        for w in log.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("{p}: commit log waves not increasing: {w:?}"));
            }
        }
        for (wave, leader) in log {
            let expected_round = round_of_wave(*wave, 1);
            if leader.round != expected_round || leader.source != coin.leader(*wave) {
                return Err(format!(
                    "{p}: wave {wave} committed leader {leader}, but the coin elects {} in round \
                     {expected_round}",
                    coin.leader(*wave)
                ));
            }
        }
    }
    for a in &o.honest {
        for b in &o.honest {
            let (la, lb) = (&o.commit_logs[a.index()], &o.commit_logs[b.index()]);
            let common = la.len().min(lb.len());
            if la[..common] != lb[..common] {
                return Err(format!("commit logs of {a} and {b} diverge within {common} entries"));
            }
        }
    }
    Ok(())
}

/// Internal-state audit: each honest process's [`WaveCommitter`] bookkeeping
/// must agree exactly with what it observably output — every output vertex
/// is marked delivered, nothing is marked delivered that was not output,
/// the snapshot's log equals the recorded commit log, and the decided wave
/// bounds it.
///
/// [`WaveCommitter`]: asym_core::WaveCommitter
pub fn delivery_bookkeeping(o: &ScenarioOutcome) -> Result<(), String> {
    for p in &o.honest {
        let committer =
            o.committers[p.index()].as_ref().expect("honest processes snapshot their committer");
        let out = &o.outputs[p.index()];
        for v in out {
            if !committer.is_delivered(v.id) {
                return Err(format!("{p}: output {} is not marked delivered", v.id));
            }
        }
        if committer.delivered_count() != out.len() {
            return Err(format!(
                "{p}: committer marked {} vertices delivered but {} were output",
                committer.delivered_count(),
                out.len()
            ));
        }
        let out_ids: HashSet<VertexId> = out.iter().map(|v| v.id).collect();
        for vid in committer.delivered() {
            if !out_ids.contains(&vid) {
                return Err(format!("{p}: {vid} marked delivered but never output"));
            }
        }
        if committer.log() != o.commit_logs[p.index()] {
            return Err(format!("{p}: committer log differs from the recorded commit log"));
        }
        if let Some((last_wave, _)) = committer.log().last() {
            if committer.decided_wave() < *last_wave {
                return Err(format!(
                    "{p}: decided wave {} behind last committed wave {last_wave}",
                    committer.decided_wave()
                ));
            }
        }
    }
    Ok(())
}

/// Liveness under a surviving guild: if the fault plan leaves a guild, every
/// guild member must have committed at least one vertex by quiescence. When
/// no guild survives, nothing is promised and the check passes vacuously
/// (safety checks still apply).
pub fn guild_liveness(o: &ScenarioOutcome) -> Result<(), String> {
    let Some(guild) = &o.guild else {
        return Ok(());
    };
    if !o.quiescent {
        return Ok(()); // quiescence checker reports this case
    }
    for g in guild {
        if o.outputs[g.index()].is_empty() {
            return Err(format!(
                "guild {guild} survived the fault plan but member {g} ordered nothing in {} waves",
                o.scenario.waves
            ));
        }
    }
    Ok(())
}

/// Same-seed determinism: re-running the descriptor yields the identical
/// execution — outputs, commit logs, step count. This is what makes every
/// red cell of a sweep reproducible.
pub fn same_seed_determinism(o: &ScenarioOutcome) -> Result<(), String> {
    let rerun = o.scenario.try_run().map_err(|e| format!("replay failed to build: {e}"))?;
    if rerun.outputs != o.outputs {
        return Err("replay produced different outputs".into());
    }
    if rerun.commit_logs != o.commit_logs {
        return Err("replay produced different commit logs".into());
    }
    if rerun.steps != o.steps || rerun.time != o.time {
        return Err(format!(
            "replay took {} steps / {} time, original {} / {}",
            rerun.steps, rerun.time, o.steps, o.time
        ));
    }
    Ok(())
}

/// Integrity across a restart: a crash-restarted process must never deliver
/// the same vertex twice, even though its post-recovery half runs from a
/// state rebuilt out of the write-ahead log. (Subsumed by
/// [`no_duplicates`], but reported under its own name so a WAL-replay bug
/// is attributed to recovery, not to the ordering layer.) Vacuous in cells
/// without a restart fault.
pub fn restart_no_double_delivery(o: &ScenarioOutcome) -> Result<(), String> {
    for i in o.restarted() {
        let mut seen = HashSet::new();
        for v in &o.outputs[i] {
            if !seen.insert(v.id) {
                return Err(format!(
                    "restarted p{i} delivered {} twice (WAL replay lost the delivered set?)",
                    v.id
                ));
            }
        }
    }
    Ok(())
}

/// Total order across a restart: the full delivered sequence of a restarted
/// process (pre-crash prefix + post-recovery tail) must stay
/// prefix-consistent with every fault-free process. Vacuous without a
/// restart fault.
pub fn restart_prefix_consistency(o: &ScenarioOutcome) -> Result<(), String> {
    for i in o.restarted() {
        for p in &o.correct {
            let (or, oc) = (&o.outputs[i], &o.outputs[p.index()]);
            let common = or.len().min(oc.len());
            for k in 0..common {
                if or[k].id != oc[k].id {
                    return Err(format!(
                        "restarted p{i} forked from {p} at position {k}: {} vs {}",
                        or[k].id, oc[k].id
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Recovery liveness: when the fault plan leaves a guild (so the run makes
/// progress at all), every restarted process must have executed its
/// recovery path and delivered at least one vertex by quiescence — crashing
/// forever is exactly what the storage subsystem is meant to prevent.
/// Vacuous without a restart fault, without a surviving guild, or for a
/// restart process whose crash window never opened (`crash_at` beyond the
/// deliveries it saw): such a process simply ran correctly throughout.
pub fn restart_liveness(o: &ScenarioOutcome) -> Result<(), String> {
    if o.guild.is_none() || !o.quiescent {
        return Ok(());
    }
    for i in o.restarted() {
        if !o.restart_fired[i] {
            continue; // never crashed: the fault was vacuous this run
        }
        if !o.recovered[i] {
            return Err(format!(
                "p{i}'s restart fired but the process never rebuilt itself from its log"
            ));
        }
        if o.outputs[i].is_empty() {
            return Err(format!(
                "restarted p{i} recovered but delivered nothing in {} waves",
                o.scenario.waves
            ));
        }
    }
    Ok(())
}

/// WAL/state equivalence: replaying a process's final write-ahead log must
/// reproduce its live state exactly — same DAG vertices, same delivered
/// set, same commit log, same decided wave. This is the checker that makes
/// "the log is the state" an audited invariant rather than a design hope.
/// Pruning keeps the equivalence *an equality*: the live DAG and every
/// snapshot drop the same delivered prefix and carry the same floor, so a
/// pruned replay must still coincide with the pruned live state — the
/// post-prefix extension of the original claim. Vacuous for processes
/// without storage.
pub fn wal_state_equivalence(o: &ScenarioOutcome) -> Result<(), String> {
    for p in &o.honest {
        let i = p.index();
        let Some(replay) = &o.wal_replays[i] else { continue };
        let replayed = replay.as_ref().map_err(|e| format!("{p}: WAL unreadable: {e}"))?;
        let dag = o.dags[i].as_ref().expect("honest processes snapshot their DAG");
        if replayed.dag.pruned_floor() != dag.pruned_floor()
            || replayed.pruned_round != dag.pruned_floor()
        {
            return Err(format!(
                "{p}: WAL replays to pruning floor {} (marker {}) but the live DAG's floor is {}",
                replayed.dag.pruned_floor(),
                replayed.pruned_round,
                dag.pruned_floor()
            ));
        }
        if replayed.dag.len() != dag.len() {
            return Err(format!(
                "{p}: WAL replays to {} vertices but the live DAG holds {}",
                replayed.dag.len(),
                dag.len()
            ));
        }
        for r in 1..=dag.max_round().unwrap_or(0) {
            for v in dag.vertices_in_round(r) {
                if replayed.dag.get(v.id()) != Some(v) {
                    return Err(format!("{p}: {} differs between WAL and live DAG", v.id()));
                }
            }
        }
        let committer =
            o.committers[i].as_ref().expect("honest processes snapshot their committer");
        if replayed.commit_log != committer.log() {
            return Err(format!("{p}: WAL commit log differs from the live one"));
        }
        if replayed.decided_wave != committer.decided_wave() {
            return Err(format!(
                "{p}: WAL decided wave {} vs live {}",
                replayed.decided_wave,
                committer.decided_wave()
            ));
        }
        let live: std::collections::BTreeSet<VertexId> = committer.delivered().collect();
        if replayed.delivered != live {
            return Err(format!(
                "{p}: WAL delivered set ({}) differs from live ({})",
                replayed.delivered.len(),
                live.len()
            ));
        }
        // The wave tags behind delivered-state transfer must survive the
        // snapshot/replay round-trip too — a donor serving segments out of
        // a replayed log must group deliveries exactly like the live one.
        let live_waves: std::collections::BTreeMap<VertexId, u64> =
            committer.delivered_waves().collect();
        if replayed.delivered_waves != live_waves {
            return Err(format!("{p}: WAL delivered-wave tags differ from the live ones"));
        }
    }
    Ok(())
}

/// Delivered-state transfer consistency: for every honest process that
/// installed transferred state, (a) the install happened on a recovering
/// process (the only path that requests state), (b) its full output
/// sequence is **bit-for-bit** (id, block *and* ordering wave) a
/// prefix-match with every fault-free process — the transferred prefix
/// equals some honest delivered prefix exactly, and (c) no vertex id
/// appears twice in its output stream (a state install never re-delivers;
/// the exact outputs-vs-committer bookkeeping reconciliation is
/// [`delivery_bookkeeping`]'s job and applies to these processes too).
/// Vacuous in cells where nothing was transferred.
pub fn state_transfer_consistency(o: &ScenarioOutcome) -> Result<(), String> {
    for p in &o.honest {
        let Some(stats) = o.transfers[p.index()] else { continue };
        if stats.deliveries_installed == 0 && stats.waves_installed == 0 {
            continue;
        }
        if !o.recovered[p.index()] {
            return Err(format!(
                "{p} installed transferred state without ever having recovered from its log"
            ));
        }
        let mine = &o.outputs[p.index()];
        for c in &o.correct {
            if c == p {
                continue;
            }
            let other = &o.outputs[c.index()];
            let common = mine.len().min(other.len());
            for k in 0..common {
                if mine[k] != other[k] {
                    return Err(format!(
                        "{p}'s transferred prefix diverges from {c} at position {k}: \
                         {:?} vs {:?} (a state install must reproduce an honest delivered \
                         prefix bit-for-bit)",
                        mine[k], other[k]
                    ));
                }
            }
        }
        let distinct: HashSet<VertexId> = mine.iter().map(|v| v.id).collect();
        if distinct.len() != mine.len() {
            return Err(format!("{p} re-delivered across a state install"));
        }
    }
    Ok(())
}

/// Panics unless the output sequences are pairwise prefix-consistent — the
/// drop-in replacement for the helper the integration tests used to
/// copy-paste.
///
/// # Panics
///
/// Panics with the fork position if two sequences diverge.
pub fn assert_prefix_consistent(outputs: &[Vec<OrderedVertex>]) {
    for (ai, a) in outputs.iter().enumerate() {
        for (bi, b) in outputs.iter().enumerate() {
            let common = a.len().min(b.len());
            for k in 0..common {
                assert_eq!(
                    a[k].id, b[k].id,
                    "total order violated between p{ai} and p{bi} at position {k}"
                );
            }
        }
    }
}

/// Panics if any output sequence delivers a vertex twice — the integrity
/// property, for raw outputs produced outside the scenario runner (e.g. the
/// `Cluster` harness on custom topologies).
///
/// # Panics
///
/// Panics naming the process and vertex on the first duplicate delivery.
pub fn assert_no_duplicates(outputs: &[Vec<OrderedVertex>]) {
    for (i, out) in outputs.iter().enumerate() {
        let mut seen = HashSet::new();
        for v in out {
            assert!(seen.insert(v.id), "p{i} delivered {} twice", v.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Fault, FaultPlan, SchedulerSpec};
    use crate::{ByzAttack, TopologySpec};

    fn scenario() -> Scenario {
        Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            SchedulerSpec::Random,
            5,
        )
        .waves(4)
    }

    #[test]
    fn standard_suite_passes_on_fault_free_run() {
        let outcome = run_and_check_all(&scenario()).expect("all invariants hold");
        assert!(outcome.max_commits() > 0);
    }

    #[test]
    fn standard_suite_passes_with_byzantine_attacker() {
        for attack in [
            ByzAttack::EquivocateVertices,
            ByzAttack::BogusStrongEdges,
            ByzAttack::ConfirmFlood,
            ByzAttack::ForgeFetchReplies,
        ] {
            let s = Scenario::new(
                TopologySpec::UniformThreshold { n: 4, f: 1 },
                FaultPlan::none().with(3, Fault::Byzantine(attack)),
                SchedulerSpec::Random,
                2,
            )
            .waves(5);
            run_and_check_all(&s).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn restart_cell_passes_the_standard_suite_and_records_recovery() {
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(1, Fault::Restart { crash_at: 120, recover_at: 900 }),
            SchedulerSpec::Random,
            4,
        )
        .waves(5);
        let outcome = run_and_check_all(&s).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.recovered[1], "restart must actually fire");
        assert!(outcome.wal_replays[1].is_some(), "restarted process carries a WAL");
        assert!(outcome.wal_replays[0].is_none(), "always-up processes carry none");
        assert!(!outcome.outputs[1].is_empty(), "recovered process delivers");
        let stats = outcome.wal_stats[1].expect("stats for the WAL-equipped process");
        assert!(stats.records_appended > 0);
    }

    #[test]
    fn unfired_restart_window_is_vacuous_not_a_violation() {
        // crash_at far beyond the run's deliveries: the process never
        // crashes, runs correctly throughout, and the suite must pass with
        // the restart fault recorded as vacuous.
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(1, Fault::Restart { crash_at: 100_000, recover_at: 200_000 }),
            SchedulerSpec::Random,
            4,
        )
        .waves(4);
        let outcome = run_and_check_all(&s).unwrap_or_else(|e| panic!("{e}"));
        assert!(!outcome.restart_fired[1], "crash window must not have opened");
        assert!(!outcome.recovered[1]);
        assert!(!outcome.outputs[1].is_empty(), "it simply ran correctly");
    }

    #[test]
    fn forced_violation_names_check_and_cell() {
        fn impossible(_: &ScenarioOutcome) -> Result<(), String> {
            Err("forced".into())
        }
        let failure =
            run_and_check(&scenario(), &[("impossible", impossible)]).expect_err("must fail");
        assert_eq!(failure.check, "impossible");
        let report = failure.to_string();
        assert!(report.contains("threshold(n=4,f=1)"), "{report}");
        assert!(report.contains("seed=5"), "{report}");
        assert!(report.contains("replay"), "{report}");
    }

    #[test]
    fn unbuildable_scenario_reported_as_build_failure() {
        let s = Scenario::new(
            TopologySpec::RandomSlices { n: 6, slice: 2, f: 1, seed: 3 },
            FaultPlan::none(),
            SchedulerSpec::Fifo,
            1,
        );
        let failure = run_and_check_all(&s).expect_err("cannot build");
        assert_eq!(failure.check, "build");
    }

    #[test]
    fn guild_liveness_is_vacuous_without_a_guild() {
        // Two crashes with f = 1: no guild → safety-only cell must PASS.
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::crash_from_start([2, 3]),
            SchedulerSpec::Random,
            1,
        )
        .waves(4);
        let outcome = run_and_check_all(&s).unwrap_or_else(|e| panic!("{e}"));
        assert!(outcome.guild.is_none());
        assert!(outcome.outputs.iter().all(|o| o.is_empty()), "nothing can commit");
    }

    #[test]
    fn prefix_consistency_detects_a_fork() {
        let mut outcome = scenario().run();
        // Artificially fork one process's first output.
        let forged = OrderedVertex {
            id: asym_dag::VertexId::new(999, crate::pid(0)),
            ..outcome.outputs[1][0].clone()
        };
        outcome.outputs[1][0] = forged;
        assert!(prefix_consistency(&outcome).is_err());
    }

    #[test]
    fn prefix_consistency_detects_a_block_level_fork() {
        // Regression for a bug found while building the recovery attack
        // cells: the checker used to compare only vertex *ids*, so two
        // processes delivering the same id with different payloads (the
        // observable of a successful equivocation, and of the powerloss
        // own-vertex re-mint demonstrated in this PR) passed silently.
        let mut outcome = scenario().run();
        let mut forged = outcome.outputs[1][0].clone();
        forged.block = asym_core::Block::new(vec![424_242]);
        outcome.outputs[1][0] = forged;
        let err = prefix_consistency(&outcome).expect_err("block fork must be flagged");
        assert!(err.contains("different blocks"), "{err}");
    }

    #[test]
    fn cross_dag_consistency_detects_a_smuggled_copy() {
        // A forged copy of an existing vertex planted in one process's DAG
        // (what a broken fetch acceptance would allow) must be flagged
        // even if it is never delivered.
        let mut outcome = scenario().run();
        let dag = outcome.dags[2].as_mut().unwrap();
        let victim = dag.vertices_in_round(1).next().unwrap().clone();
        let id = victim.id();
        let forged = asym_dag::Vertex::new(
            id.source,
            id.round,
            asym_core::Block::new(vec![777_777]),
            victim.strong_edges().clone(),
            victim.weak_edges().to_vec(),
        );
        dag.remove(id).unwrap();
        dag.insert(forged).unwrap();
        let err = cross_dag_consistency(&outcome).expect_err("smuggled copy must be flagged");
        assert!(err.contains("same identity"), "{err}");
        assert!(dag_no_fabrication(&outcome).is_err(), "and it is a fabrication too");
    }
}
