//! Deterministic scenario-matrix harness for the asymmetric DAG-Rider
//! reproduction: **topology × fault-plan × adversary × seed** sweeps with a
//! library of reusable invariant checkers.
//!
//! The paper's central claims are *unconditional safety* and *liveness
//! whenever the surviving trust structure admits a guild*. A handful of
//! hand-written executions cannot exercise the cross-product of trust
//! structures and fault patterns where the interesting behaviour lives, so
//! this crate turns one execution into a datum:
//!
//! * [`Scenario`] — a plain-data descriptor of one execution: a
//!   [`TopologySpec`] (seed-replayable topology family), a [`FaultPlan`]
//!   (crash / mid-run crash / mute / crash-restart / Byzantine
//!   assignments), a [`SchedulerSpec`] (delivery adversary) and a seed;
//! * [`ScenarioOutcome`] — everything an execution observably produced:
//!   per-process outputs, commit logs, DAG snapshots, WAL replays, metrics,
//!   the guild;
//! * [`checks`] — invariant checkers over outcomes: total-order prefix
//!   consistency, validity/no-fabrication, DAG well-formedness,
//!   guild-liveness, coin-consistent commit logs, same-seed determinism,
//!   and the crash-recovery suite (no double delivery across a restart,
//!   restart prefix consistency, restart liveness, WAL/state equivalence);
//! * [`Matrix`] — cross-product sweeps with per-cell pass/fail reporting.
//!
//! The [`Fault::Restart`] axis equips a process with an `asym-storage`
//! write-ahead log, crashes it mid-run, and restarts it from that log: the
//! recovered process must rejoin, catch up and keep its delivered sequence
//! a prefix-consistent, duplicate-free match with everyone else. Recovery
//! is treated as an *attack surface*: [`StorageSpec`] injects powerloss
//! damage into the WAL at the crash, [`Fault::ByzantineRestart`] revives
//! an attacker that lies during its own recovery, and
//! [`ByzAttack::ForgeFetchReplies`] lies *to* a recovering process through
//! the catch-up fetch path — with [`checks::cross_dag_consistency`] and
//! [`checks::dag_no_fabrication`] proving none of it sticks.
//!
//! The **all-pruned** axis ([`Scenario::wal_everywhere`]) equips every
//! honest process with a pruning WAL, so a deep laggard can only rejoin
//! through delivered-state transfer (`asym_core::transfer`) — with
//! [`ByzAttack::ForgeStateOffers`] probing the kernel-matched install and
//! [`checks::state_transfer_consistency`] proving installed prefixes equal
//! an honest delivered prefix bit-for-bit. The persistence & recovery
//! lifecycle behind these axes is documented in `docs/ARCHITECTURE.md` at
//! the repository root.
//!
//! Every failure prints the exact `(topology, fault plan, scheduler, seed)`
//! tuple; [`replay`] re-executes it bit-for-bit.
//!
//! # Example
//!
//! ```
//! use asym_scenarios::{checks, FaultPlan, Scenario, SchedulerSpec, TopologySpec};
//!
//! let scenario = Scenario::new(
//!     TopologySpec::UniformThreshold { n: 4, f: 1 },
//!     FaultPlan::crash_from_start([3]),
//!     SchedulerSpec::Random,
//!     7,
//! );
//! let outcome = checks::run_and_check_all(&scenario).expect("all invariants hold");
//! assert!(outcome.quiescent);
//! // The same descriptor replays to the identical execution.
//! assert_eq!(asym_scenarios::replay(&scenario).outputs, outcome.outputs);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod byzantine;
pub mod checks;
mod matrix;
mod runner;
mod spec;

pub use byzantine::{ByzAttack, ByzProcess, Party, FORGED_TX};
pub use checks::{replay, ScenarioFailure};
pub use matrix::{CellStats, CellStatus, Matrix, MatrixReport};
pub use runner::{ScenarioError, ScenarioOutcome};
pub use spec::{Fault, FaultPlan, Scenario, SchedulerSpec, StorageSpec};

// Re-export so downstream tests can name topologies without an extra import.
pub use asym_quorum::topology::TopologySpec;

use asym_core::{AsymDagRider, RiderConfig};
use asym_quorum::topology::Topology;
use asym_quorum::ProcessId;

/// Shorthand process-id constructor (the helper every integration test used
/// to re-implement).
pub fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Builds one honest asymmetric DAG-Rider process per topology member, all
/// sharing `coin` and a `waves` budget — the cluster-construction helper the
/// integration tests used to copy-paste.
pub fn riders(t: &Topology, waves: u64, coin: u64) -> Vec<AsymDagRider> {
    let config = RiderConfig { max_waves: waves, ..Default::default() };
    (0..t.n()).map(|i| AsymDagRider::new(pid(i), t.quorums.clone(), coin, config)).collect()
}
