//! The scenario runner: descriptor in, fully-observed execution out.

use asym_core::{
    AsymDagRider, Block, DagLog, OrderedVertex, RiderConfig, RiderMetrics, TransferStats,
    WaveCommitter,
};
use asym_dag::{DagStore, VertexId, WaveId};
use asym_quorum::topology::{Topology, TopologySpec};
use asym_quorum::{maximal_guild, ProcessId, ProcessSet};
use asym_sim::{NetStats, RunReport, Simulation};
use asym_storage::{PowerlossPlan, RecoveredState, StorageBackend, WalStats};

use crate::byzantine::{ByzProcess, Party};
use crate::pid;
use crate::spec::{Fault, Scenario, StorageSpec};

/// Why a scenario could not be executed (as opposed to failing a check).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The topology spec found no valid system (random families only).
    TopologyUnavailable(TopologySpec),
    /// A fault was assigned to a process outside `0..n`.
    FaultIndexOutOfRange {
        /// The offending index.
        index: usize,
        /// System size.
        n: usize,
    },
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScenarioError::TopologyUnavailable(spec) => {
                write!(f, "no valid topology for {spec} within the attempt budget")
            }
            ScenarioError::FaultIndexOutOfRange { index, n } => {
                write!(f, "fault assigned to p{index} but the topology has n={n}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Everything one execution observably produced — the input to every
/// invariant checker.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// The descriptor that produced this outcome.
    pub scenario: Scenario,
    /// The built topology.
    pub topology: Topology,
    /// `true` if the run ended in quiescence (vs. budget exhaustion).
    pub quiescent: bool,
    /// Delivery steps executed.
    pub steps: u64,
    /// Final simulated clock.
    pub time: u64,
    /// Network counters.
    pub net: NetStats,
    /// Atomic-broadcast outputs per process, in delivery order.
    pub outputs: Vec<Vec<OrderedVertex>>,
    /// Per-process commit logs (`(wave, leader)` pairs; empty for Byzantine).
    pub commit_logs: Vec<Vec<(WaveId, VertexId)>>,
    /// Wave-commitment state snapshots — decided wave, delivered-vertex set,
    /// log — audited by the `delivery_bookkeeping` checker (`None` for
    /// Byzantine processes).
    pub committers: Vec<Option<WaveCommitter>>,
    /// Local DAG snapshots (`None` for Byzantine processes).
    pub dags: Vec<Option<DagStore<Block>>>,
    /// Protocol counters (default for Byzantine processes).
    pub metrics: Vec<RiderMetrics>,
    /// For every WAL-equipped (restart-faulted) process: the state its
    /// final write-ahead log replays to — what the `wal_state_equivalence`
    /// checker compares against the live snapshots — or the storage error
    /// as a string. `None` for processes without storage.
    pub wal_replays: Vec<Option<Result<RecoveredState<Block>, String>>>,
    /// WAL activity counters for WAL-equipped processes.
    pub wal_stats: Vec<Option<WalStats>>,
    /// Per-snapshot blob sizes (in install order) for WAL-equipped
    /// processes — the `exp_recovery` observable proving pruning keeps the
    /// sequence bounded (sawtooth) instead of monotonically growing.
    pub wal_snapshot_sizes: Vec<Option<Vec<u64>>>,
    /// Whether each process actually executed its recovery path (rebuilt
    /// itself from its log).
    pub recovered: Vec<bool>,
    /// Per-process delivered-state-transfer counters (`None` for Byzantine
    /// processes): offers seen, requests sent, segments received/rejected,
    /// waves and deliveries installed — how the `state_transfer_consistency`
    /// checker and the tier-1 cells prove a deep laggard recovered through
    /// the transfer path.
    pub transfers: Vec<Option<TransferStats>>,
    /// Whether the engine fired a restart for each process — `false` for a
    /// [`Fault::Restart`] process whose crash window never opened (the run
    /// ended before `crash_at` deliveries), in which case the fault was
    /// vacuous and `recovered` is legitimately `false` too.
    pub restart_fired: Vec<bool>,
    /// Blocks injected per process, in injection order.
    pub injected: Vec<Vec<Block>>,
    /// Processes running the honest protocol (everyone but Byzantine —
    /// includes crash/mute processes, whose local state is still honest).
    pub honest: ProcessSet,
    /// Processes with no fault at all.
    pub correct: ProcessSet,
    /// The maximal guild of the fault plan's faulty set, if any.
    pub guild: Option<ProcessSet>,
}

impl ScenarioOutcome {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.outputs.len()
    }

    /// Transactions delivered by a process, in order.
    pub fn delivered_txs(&self, p: ProcessId) -> Vec<u64> {
        self.outputs[p.index()].iter().flat_map(|o| o.block.txs.clone()).collect()
    }

    /// The longest commit log across honest processes.
    pub fn max_commits(&self) -> usize {
        self.honest.iter().map(|p| self.commit_logs[p.index()].len()).max().unwrap_or(0)
    }

    /// Indices of the processes assigned a [`Fault::Restart`].
    pub fn restarted(&self) -> Vec<usize> {
        self.scenario.faults.restarts().collect()
    }
}

impl Scenario {
    /// Executes the scenario. Deterministic: equal scenarios yield equal
    /// outcomes.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::TopologyUnavailable`] if a random topology family
    /// finds no valid system; [`ScenarioError::FaultIndexOutOfRange`] if the
    /// fault plan targets a process the topology does not have.
    pub fn try_run(&self) -> Result<ScenarioOutcome, ScenarioError> {
        let topology =
            self.topology.build().ok_or(ScenarioError::TopologyUnavailable(self.topology))?;
        let n = topology.n();
        if let Some(max) = self.faults.max_index() {
            if max >= n {
                return Err(ScenarioError::FaultIndexOutOfRange { index: max, n });
            }
        }

        let config =
            RiderConfig { max_waves: self.waves, prune_wal: self.prune_wal, ..Default::default() };
        let byz: Vec<Option<crate::ByzAttack>> = (0..n)
            .map(|i| self.faults.byzantine().find(|(b, _)| *b == i).map(|(_, a)| a))
            .collect();
        let restartable: Vec<bool> = {
            let mut r = vec![false; n];
            for i in self.faults.restarts() {
                r[i] = true;
            }
            r
        };
        // File-backed cells get a unique fresh directory per process per
        // run invocation (runs of the same cell may execute concurrently —
        // the determinism checker replays cells while the matrix pool is
        // still sweeping), removed once the outcome is harvested.
        let mut temp_dirs: Vec<std::path::PathBuf> = Vec::new();
        let procs: Vec<Party> = (0..n)
            .map(|i| match byz[i] {
                Some(attack) => {
                    Party::Byzantine(ByzProcess::new(pid(i), n, attack, self.coin_seed()))
                }
                None => {
                    let mut rider = AsymDagRider::new(
                        pid(i),
                        topology.quorums.clone(),
                        self.coin_seed(),
                        config,
                    );
                    if restartable[i] || self.wal_everywhere {
                        rider = rider.with_storage(
                            DagLog::new(self.wal_backend(i, &mut temp_dirs))
                                .with_snapshot_every(self.snapshot_every),
                        );
                    }
                    Party::Honest(rider)
                }
            })
            .collect();

        let mut sim = Simulation::new(procs, self.scheduler.adversary(self.seed).build())
            .with_faults(
                self.faults.assignments().iter().map(|(i, f)| (pid(*i), f.network_mode())),
            );

        // Globally unique transaction ids: block b of process i carries
        // txs (b·n + i)·txs_per_block + 1 ..= +txs_per_block.
        let mut injected: Vec<Vec<Block>> = vec![Vec::new(); n];
        for b in 0..self.blocks_per_process {
            for i in 0..n {
                let skip = byz[i].is_some()
                    || matches!(
                        self.faults.assignments().iter().find(|(p, _)| *p == i),
                        Some((_, Fault::Crash))
                    );
                if skip {
                    continue;
                }
                let base = ((b * n + i) * self.txs_per_block) as u64;
                let block = Block::new((1..=self.txs_per_block as u64).map(|t| base + t).collect());
                injected[i].push(block.clone());
                sim.input(pid(i), block);
            }
        }

        let mut report = sim.run(self.max_steps);
        if self.scheduler.needs_flush() {
            // A hard-starving adversary quiesces with victim traffic still
            // in flight; "the delayed messages eventually arrive" before
            // any liveness claim is audited.
            let flush = sim.flush_starved(self.max_steps.saturating_sub(report.steps));
            report = RunReport {
                steps: report.steps + flush.steps,
                quiescent: report.quiescent && flush.quiescent,
            };
        }

        let outputs: Vec<Vec<OrderedVertex>> =
            (0..n).map(|i| sim.outputs(pid(i)).to_vec()).collect();
        let mut commit_logs = Vec::with_capacity(n);
        let mut committers = Vec::with_capacity(n);
        let mut dags = Vec::with_capacity(n);
        let mut metrics = Vec::with_capacity(n);
        let mut wal_replays = Vec::with_capacity(n);
        let mut wal_stats = Vec::with_capacity(n);
        let mut wal_snapshot_sizes = Vec::with_capacity(n);
        let mut recovered = Vec::with_capacity(n);
        let mut transfers = Vec::with_capacity(n);
        for i in 0..n {
            match sim.process(pid(i)).as_honest() {
                Some(r) => {
                    commit_logs.push(r.commit_log().to_vec());
                    committers.push(Some(r.committer().clone()));
                    dags.push(Some(r.dag().clone()));
                    metrics.push(r.metrics());
                    wal_replays.push(r.replay_storage().map(|res| res.map_err(|e| e.to_string())));
                    wal_stats.push(r.storage().map(|l| l.stats()));
                    wal_snapshot_sizes.push(r.storage().map(|l| l.snapshot_sizes().to_vec()));
                    recovered.push(r.has_recovered());
                    transfers.push(Some(r.transfer_stats()));
                }
                None => {
                    commit_logs.push(Vec::new());
                    committers.push(None);
                    dags.push(None);
                    metrics.push(RiderMetrics::default());
                    wal_replays.push(None);
                    wal_stats.push(None);
                    wal_snapshot_sizes.push(None);
                    recovered.push(false);
                    transfers.push(None);
                }
            }
        }

        for dir in temp_dirs {
            let _ = std::fs::remove_dir_all(dir);
        }

        let faulty = self.faults.faulty_set();
        let honest: ProcessSet = (0..n).filter(|i| byz[*i].is_none()).collect();
        Ok(ScenarioOutcome {
            scenario: self.clone(),
            quiescent: report.quiescent,
            steps: report.steps,
            time: sim.now(),
            net: sim.stats(),
            outputs,
            commit_logs,
            committers,
            dags,
            metrics,
            wal_replays,
            wal_stats,
            wal_snapshot_sizes,
            recovered,
            transfers,
            restart_fired: (0..n).map(|i| sim.was_recovered(pid(i))).collect(),
            injected,
            honest,
            correct: faulty.complement(n),
            guild: maximal_guild(&topology.fail_prone, &topology.quorums, &faulty),
            topology,
        })
    }

    /// Executes the scenario, panicking with the reproduction tuple if it
    /// cannot be built.
    ///
    /// # Panics
    ///
    /// Panics on [`ScenarioError`] (unbuildable topology / bad fault index).
    pub fn run(&self) -> ScenarioOutcome {
        self.try_run().unwrap_or_else(|e| panic!("scenario {self} failed to build: {e}"))
    }

    /// Builds the WAL backend for restart process `i` per the scenario's
    /// [`StorageSpec`]: in-memory or a fresh temp-dir file store, optionally
    /// wrapped in the powerloss injector with a per-process damage seed
    /// respecting the process's fsync barriers.
    fn wal_backend(&self, i: usize, temp_dirs: &mut Vec<std::path::PathBuf>) -> StorageBackend {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_DIR: AtomicU64 = AtomicU64::new(0);
        let backend = if self.storage.is_file() {
            let dir = std::env::temp_dir().join(format!(
                "asym-scn-{}-{}-p{}",
                std::process::id(),
                NEXT_DIR.fetch_add(1, Ordering::Relaxed),
                i
            ));
            let _ = std::fs::remove_dir_all(&dir);
            temp_dirs.push(dir.clone());
            StorageBackend::file(&dir).expect("scenario temp dir must be writable")
        } else {
            StorageBackend::in_memory()
        };
        match self.storage {
            StorageSpec::PowerlossMem { seed } | StorageSpec::PowerlossFile { seed } => {
                // Decorrelate damage across processes sharing one cell.
                let mixed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                backend.with_powerloss(PowerlossPlan::fsync_barriers(mixed, pid(i)))
            }
            StorageSpec::Mem | StorageSpec::File => backend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultPlan, SchedulerSpec};
    use crate::ByzAttack;

    fn base() -> Scenario {
        Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            SchedulerSpec::Random,
            3,
        )
        .waves(4)
    }

    #[test]
    fn fault_free_run_commits_everywhere() {
        let out = base().run();
        assert!(out.quiescent);
        assert_eq!(out.n(), 4);
        assert_eq!(out.correct, ProcessSet::full(4));
        assert_eq!(out.guild, Some(ProcessSet::full(4)));
        for p in &out.correct {
            assert!(!out.outputs[p.index()].is_empty(), "{p} ordered nothing");
            assert!(!out.commit_logs[p.index()].is_empty());
            assert!(out.dags[p.index()].is_some());
        }
        // The injected workload is recorded with globally unique tx ids.
        let all: Vec<u64> = out.injected.iter().flatten().flat_map(|b| b.txs.clone()).collect();
        let unique: std::collections::HashSet<u64> = all.iter().copied().collect();
        assert_eq!(all.len(), unique.len());
    }

    #[test]
    fn equal_scenarios_equal_outcomes() {
        let a = base().run();
        let b = base().run();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.commit_logs, b.commit_logs);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn byzantine_processes_have_no_dag_snapshot() {
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(3, crate::Fault::Byzantine(ByzAttack::ConfirmFlood)),
            SchedulerSpec::Random,
            1,
        )
        .waves(4);
        let out = s.run();
        assert!(out.dags[3].is_none());
        assert_eq!(out.honest, ProcessSet::from_indices([0, 1, 2]));
        assert_eq!(out.correct, ProcessSet::from_indices([0, 1, 2]));
        assert!(out.injected[3].is_empty(), "attackers inject no workload");
    }

    #[test]
    fn out_of_range_fault_is_reported() {
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::crash_from_start([7]),
            SchedulerSpec::Fifo,
            1,
        );
        assert_eq!(
            s.try_run().unwrap_err(),
            ScenarioError::FaultIndexOutOfRange { index: 7, n: 4 }
        );
    }

    #[test]
    fn unbuildable_random_topology_is_reported() {
        // Slices of size 2 with f=1 can never satisfy B3 for n ≥ 3.
        let spec = TopologySpec::RandomSlices { n: 6, slice: 2, f: 1, seed: 7 };
        let s = Scenario::new(spec, FaultPlan::none(), SchedulerSpec::Fifo, 1);
        assert_eq!(s.try_run().unwrap_err(), ScenarioError::TopologyUnavailable(spec));
    }
}
