//! Byzantine protocol variants: attackers speaking the honest wire format.
//!
//! Crash and omission faults live at the network layer
//! ([`asym_sim::FaultMode`]); *Byzantine* behaviour is protocol-level
//! deviation, so it is modelled as an alternative state machine speaking
//! [`AsymRiderMsg`]. [`Party`] packs honest and Byzantine participants into
//! one protocol type so a single simulation can mix them — the form every
//! Byzantine scenario cell runs.

use asym_broadcast::BcastMsg;
use asym_core::{AsymDagRider, AsymRiderMsg, Block, OrderedVertex};
use asym_dag::Vertex;
use asym_quorum::{ProcessId, ProcessSet};
use asym_sim::{Context, Protocol};

/// A protocol-level attack an adversarial participant mounts once at start,
/// staying silent afterwards (worst case: attack + crash).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzAttack {
    /// Send *different* round-1 vertices to even and odd processes under the
    /// same arb instance (equivocation). Reliable broadcast must ensure at
    /// most one version is ever ordered, and the same one everywhere.
    EquivocateVertices,
    /// Broadcast a round-2 vertex whose strong edges reference only the
    /// attacker — no quorum, violating the line-140 validity rule. Honest
    /// processes must never insert it.
    BogusStrongEdges,
    /// Flood CONFIRM/READY messages for far-future waves (state-poisoning
    /// probe against the Algorithm-5 control ladder).
    ConfirmFlood,
}

impl ByzAttack {
    /// The equivocated/invalid transaction ids this attack injects; the
    /// no-fabrication checker treats them as Byzantine-authored.
    pub fn injected_txs(&self) -> &'static [u64] {
        match self {
            ByzAttack::EquivocateVertices => &[666, 999],
            ByzAttack::BogusStrongEdges => &[31337],
            ByzAttack::ConfirmFlood => &[],
        }
    }
}

impl core::fmt::Display for ByzAttack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ByzAttack::EquivocateVertices => write!(f, "equivocate"),
            ByzAttack::BogusStrongEdges => write!(f, "bogus-edges"),
            ByzAttack::ConfirmFlood => write!(f, "confirm-flood"),
        }
    }
}

/// A Byzantine consensus participant speaking the honest message type.
#[derive(Clone, Debug)]
pub struct ByzProcess {
    me: ProcessId,
    n: usize,
    attack: ByzAttack,
    sent: bool,
}

impl ByzProcess {
    /// Creates an attacker with identity `me` in an `n`-process system.
    pub fn new(me: ProcessId, n: usize, attack: ByzAttack) -> Self {
        ByzProcess { me, n, attack, sent: false }
    }

    /// The mounted attack.
    pub fn attack(&self) -> ByzAttack {
        self.attack
    }
}

impl Protocol for ByzProcess {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        if self.sent {
            return;
        }
        self.sent = true;
        match self.attack {
            ByzAttack::EquivocateVertices => {
                let full: ProcessSet = (0..self.n).collect();
                for i in 0..self.n {
                    let block = Block::new(vec![if i % 2 == 0 { 666 } else { 999 }]);
                    let v = Vertex::new(self.me, 1, block, full.clone(), vec![]);
                    ctx.send(
                        ProcessId::new(i),
                        AsymRiderMsg::Arb(BcastMsg::Send { tag: 1, value: v }),
                    );
                }
            }
            ByzAttack::BogusStrongEdges => {
                let v = Vertex::new(
                    self.me,
                    2,
                    Block::new(vec![31337]),
                    ProcessSet::singleton(self.me),
                    vec![],
                );
                ctx.broadcast(AsymRiderMsg::Arb(BcastMsg::Send { tag: 2, value: v }));
            }
            ByzAttack::ConfirmFlood => {
                for wave in 1..50 {
                    ctx.broadcast(AsymRiderMsg::Confirm { wave });
                    ctx.broadcast(AsymRiderMsg::Ready { wave });
                }
            }
        }
    }

    fn on_message(
        &mut self,
        _from: ProcessId,
        _msg: Self::Msg,
        _ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        // Stays silent after the attack: worst case is crash + attack.
    }
}

/// Either an honest or a Byzantine participant — one simulation, one type.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Party {
    /// An honest asymmetric DAG-Rider process.
    Honest(AsymDagRider),
    /// A protocol-level attacker.
    Byzantine(ByzProcess),
}

impl Party {
    /// The honest process, if this party is one.
    pub fn as_honest(&self) -> Option<&AsymDagRider> {
        match self {
            Party::Honest(p) => Some(p),
            Party::Byzantine(_) => None,
        }
    }
}

impl Protocol for Party {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        match self {
            Party::Honest(p) => p.on_start(ctx),
            Party::Byzantine(p) => p.on_start(ctx),
        }
    }

    fn on_input(&mut self, input: Block, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        if let Party::Honest(p) = self {
            p.on_input(input, ctx)
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match self {
            Party::Honest(p) => p.on_message(from, msg, ctx),
            Party::Byzantine(p) => p.on_message(from, msg, ctx),
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        // Byzantine restart is not modelled (a ROADMAP gap): attackers keep
        // the default "merely unreachable" semantics.
        if let Party::Honest(p) = self {
            p.on_recover(ctx)
        }
    }
}
