//! Byzantine protocol variants: attackers speaking the honest wire format.
//!
//! Crash and omission faults live at the network layer
//! ([`asym_sim::FaultMode`]); *Byzantine* behaviour is protocol-level
//! deviation, so it is modelled as an alternative state machine speaking
//! [`AsymRiderMsg`]. [`Party`] packs honest and Byzantine participants into
//! one protocol type so a single simulation can mix them — the form every
//! Byzantine scenario cell runs.

use asym_broadcast::BcastMsg;
use asym_core::{AsymDagRider, AsymRiderMsg, Block, OrderedVertex, WaveSegment};
use asym_crypto::CommonCoin;
use asym_dag::{round_of_wave, Vertex, VertexId};
use asym_quorum::{ProcessId, ProcessSet};
use asym_sim::{Context, Protocol};

/// A protocol-level attack an adversarial participant mounts once at start,
/// staying silent afterwards (worst case: attack + crash).
///
/// Every attack also has a *recovery-time* half, mounted when the attacker
/// is assigned [`Fault::ByzantineRestart`](crate::Fault::ByzantineRestart)
/// and the engine revives it: instead of an honest WAL replay it lies —
/// re-SENDing equivocating copies of its own vertices, re-announcing
/// CONFIRMs it never earned, or soliciting fetch traffic it will poison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ByzAttack {
    /// Send *different* round-1 vertices to even and odd processes under the
    /// same arb instance (equivocation). Reliable broadcast must ensure at
    /// most one version is ever ordered, and the same one everywhere. On
    /// recovery: re-SENDs the two copies *swapped* (each peer now sees the
    /// copy it did not see before) and falsely re-announces CONFIRMs.
    EquivocateVertices,
    /// Broadcast a round-2 vertex whose strong edges reference only the
    /// attacker — no quorum, violating the line-140 validity rule. Honest
    /// processes must never insert it. On recovery: broadcasts it again.
    BogusStrongEdges,
    /// Flood CONFIRM/READY messages for far-future waves (state-poisoning
    /// probe against the Algorithm-5 control ladder). On recovery: floods
    /// again.
    ConfirmFlood,
    /// Lie *to recovering processes*: stays silent until it sees a
    /// [`Fetch`](asym_core::AsymRiderMsg::Fetch), then answers with a
    /// forged [`FetchReply`](asym_core::AsymRiderMsg::FetchReply) —
    /// fabricated vertices attributed to honest processes (forged copies
    /// of their genuine round-1 vertices plus never-created ones) and
    /// false confirmed-wave claims. The fetch path bypasses reliable
    /// broadcast, so the recovering process's kernel-matched acceptance is
    /// the only defense this attack probes. On recovery: broadcasts a
    /// `Fetch` of its own, soliciting reply traffic it can answer-poison.
    ForgeFetchReplies,
    /// Lie through the **delivered-state transfer** path: answer every
    /// `Fetch` with a forged [`StateOffer`](asym_core::AsymRiderMsg::StateOffer)
    /// claiming a deep decided wave, and every
    /// [`StateRequest`](asym_core::AsymRiderMsg::StateRequest) with a
    /// forged [`StateChunk`](asym_core::AsymRiderMsg::StateChunk) whose
    /// segments name the *correct* coin-elected leaders (so the cheap coin
    /// filter passes) but carry fabricated [`FORGED_TX`] deliveries — a
    /// forged or truncated delivered prefix. The laggard's kernel-matched
    /// install is the only defense: a lone liar never corroborates a
    /// segment, and the laggard must still converge via honest offers. On
    /// recovery: pushes unsolicited forged offers at everyone.
    ForgeStateOffers,
}

/// The forged transaction id `ForgeFetchReplies` plants in fabricated
/// vertices; appearing in any honest output or DAG is proof the defense
/// failed.
pub const FORGED_TX: u64 = 7777;

impl ByzAttack {
    /// The equivocated/invalid transaction ids this attack injects; the
    /// no-fabrication checker treats them as Byzantine-authored.
    pub fn injected_txs(&self) -> &'static [u64] {
        match self {
            ByzAttack::EquivocateVertices => &[666, 999],
            ByzAttack::BogusStrongEdges => &[31337],
            ByzAttack::ConfirmFlood => &[],
            // FORGED_TX is deliberately absent: the forged vertices claim
            // *honest* sources, so any delivery of one is flagged by the
            // no-fabrication checkers rather than excused as
            // attacker-authored.
            ByzAttack::ForgeFetchReplies => &[],
            // Likewise: forged segments deliver under honest vertex ids, so
            // an installed forgery is a checker violation, never excused.
            ByzAttack::ForgeStateOffers => &[],
        }
    }
}

impl core::fmt::Display for ByzAttack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ByzAttack::EquivocateVertices => write!(f, "equivocate"),
            ByzAttack::BogusStrongEdges => write!(f, "bogus-edges"),
            ByzAttack::ConfirmFlood => write!(f, "confirm-flood"),
            ByzAttack::ForgeFetchReplies => write!(f, "forge-fetch-replies"),
            ByzAttack::ForgeStateOffers => write!(f, "forge-state-offers"),
        }
    }
}

/// A Byzantine consensus participant speaking the honest message type.
#[derive(Clone, Debug)]
pub struct ByzProcess {
    me: ProcessId,
    n: usize,
    attack: ByzAttack,
    /// The cluster's shared coin — an insider attacker knows the leader
    /// schedule, so its forged state segments can name the correct
    /// coin-elected leaders and survive the cheap coin filter (the
    /// kernel-matched install must be the defense that holds).
    coin: CommonCoin,
    sent: bool,
}

impl ByzProcess {
    /// Creates an attacker with identity `me` in an `n`-process system
    /// sharing the cluster's `coin_seed`.
    pub fn new(me: ProcessId, n: usize, attack: ByzAttack, coin_seed: u64) -> Self {
        ByzProcess { me, n, attack, coin: CommonCoin::new(coin_seed, n), sent: false }
    }

    /// The mounted attack.
    pub fn attack(&self) -> ByzAttack {
        self.attack
    }
}

impl ByzProcess {
    /// Sends the two equivocating round-1 copies; `swap` flips which copy
    /// goes to even and odd peers (the recovery-time re-SEND shows every
    /// peer the copy it did not see before the crash).
    fn equivocate(&self, swap: bool, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        let full: ProcessSet = (0..self.n).collect();
        for i in 0..self.n {
            let even = (i % 2 == 0) ^ swap;
            let block = Block::new(vec![if even { 666 } else { 999 }]);
            let v = Vertex::new(self.me, 1, block, full.clone(), vec![]);
            ctx.send(ProcessId::new(i), AsymRiderMsg::Arb(BcastMsg::Send { tag: 1, value: v }));
        }
    }

    /// The forged catch-up reply `ForgeFetchReplies` answers fetches with:
    /// fabricated round-`above_round + 1` vertices attributed to every
    /// *other* process (forged copies of genuine round-1 vertices when
    /// `above_round == 0`, pure fabrications otherwise), plus false
    /// confirmed-wave claims.
    fn forged_fetch_reply(&self, above_round: u64) -> AsymRiderMsg {
        let full: ProcessSet = (0..self.n).collect();
        let round = above_round + 1;
        let vertices: Vec<Vertex<Block>> = (0..self.n)
            .filter(|i| *i != self.me.index())
            .map(|i| {
                Vertex::new(
                    ProcessId::new(i),
                    round,
                    Block::new(vec![FORGED_TX]),
                    full.clone(),
                    vec![],
                )
            })
            .collect();
        AsymRiderMsg::FetchReply { vertices, confirmed: (1..=30).collect() }
    }

    /// The forged delivered prefix `ForgeStateOffers` claims: a `StateOffer`
    /// advertising 12 decided waves.
    fn forged_state_offer(&self) -> AsymRiderMsg {
        AsymRiderMsg::StateOffer { decided_wave: 12, floor: round_of_wave(12, 1) }
    }

    /// The forged `StateChunk` backing that offer: segments for every
    /// claimed wave above the requester's watermark, each naming the
    /// *correct* coin-elected leader (the attacker shares the cluster coin)
    /// but delivering a fabricated [`FORGED_TX`] block under the leader's
    /// honest identity — installing any of these is a provable defense
    /// failure.
    fn forged_state_chunk(&self, above_wave: u64) -> AsymRiderMsg {
        let segments: Vec<WaveSegment> = (above_wave + 1..=12)
            .map(|wave| {
                let leader = VertexId::new(round_of_wave(wave, 1), self.coin.leader(wave));
                WaveSegment {
                    wave,
                    // Chain straight onto the requester's watermark so the
                    // first forged segment is immediately installable if
                    // kernel matching ever failed to hold.
                    prev_wave: if wave == above_wave + 1 { above_wave } else { wave - 1 },
                    leader,
                    deliveries: vec![(leader, Block::new(vec![FORGED_TX]))],
                }
            })
            .collect();
        AsymRiderMsg::StateChunk { segments }
    }
}

impl Protocol for ByzProcess {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        if self.sent {
            return;
        }
        self.sent = true;
        match self.attack {
            ByzAttack::EquivocateVertices => self.equivocate(false, ctx),
            ByzAttack::BogusStrongEdges => {
                let v = Vertex::new(
                    self.me,
                    2,
                    Block::new(vec![31337]),
                    ProcessSet::singleton(self.me),
                    vec![],
                );
                ctx.broadcast(AsymRiderMsg::Arb(BcastMsg::Send { tag: 2, value: v }));
            }
            ByzAttack::ConfirmFlood => {
                for wave in 1..50 {
                    ctx.broadcast(AsymRiderMsg::Confirm { wave });
                    ctx.broadcast(AsymRiderMsg::Ready { wave });
                }
            }
            // Lie reactively: every Fetch it sees gets a poisoned reply.
            ByzAttack::ForgeFetchReplies | ByzAttack::ForgeStateOffers => {}
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        // Attacks stay otherwise silent after their opening move (worst
        // case: attack + crash) — except the forgers, which answer exactly
        // the messages a *recovering* honest process depends on.
        match (self.attack, &msg) {
            (ByzAttack::ForgeFetchReplies, AsymRiderMsg::Fetch { above_round }) => {
                ctx.send(from, self.forged_fetch_reply(*above_round));
            }
            (ByzAttack::ForgeStateOffers, AsymRiderMsg::Fetch { .. }) => {
                ctx.send(from, self.forged_state_offer());
            }
            (ByzAttack::ForgeStateOffers, AsymRiderMsg::StateRequest { above_wave }) => {
                ctx.send(from, self.forged_state_chunk(*above_wave));
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        // The recovery-time lie: a Byzantine process revived by the engine
        // mimics the shape of honest recovery (re-SENDs, CONFIRM
        // re-announcements, a catch-up Fetch) with poisoned content.
        match self.attack {
            ByzAttack::EquivocateVertices => {
                self.equivocate(true, ctx);
                for wave in 1..=8 {
                    ctx.broadcast(AsymRiderMsg::Confirm { wave });
                }
            }
            ByzAttack::BogusStrongEdges => {
                let v = Vertex::new(
                    self.me,
                    2,
                    Block::new(vec![31337]),
                    ProcessSet::singleton(self.me),
                    vec![],
                );
                ctx.broadcast(AsymRiderMsg::Arb(BcastMsg::Send { tag: 2, value: v }));
            }
            ByzAttack::ConfirmFlood => {
                for wave in 1..50 {
                    ctx.broadcast(AsymRiderMsg::Confirm { wave });
                    ctx.broadcast(AsymRiderMsg::Ready { wave });
                }
            }
            ByzAttack::ForgeFetchReplies => {
                // Solicit catch-up traffic it can answer-poison, and push
                // an unsolicited forged reply at everyone in case some
                // peer is mid-recovery right now.
                ctx.broadcast(AsymRiderMsg::Fetch { above_round: 0 });
                let reply = self.forged_fetch_reply(0);
                for i in 0..self.n {
                    if i != self.me.index() {
                        ctx.send(ProcessId::new(i), reply.clone());
                    }
                }
            }
            ByzAttack::ForgeStateOffers => {
                // Push unsolicited forged offers at everyone: any peer
                // mid-recovery will request the forged prefix.
                let offer = self.forged_state_offer();
                for i in 0..self.n {
                    if i != self.me.index() {
                        ctx.send(ProcessId::new(i), offer.clone());
                    }
                }
            }
        }
    }
}

/// Either an honest or a Byzantine participant — one simulation, one type.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Party {
    /// An honest asymmetric DAG-Rider process.
    Honest(AsymDagRider),
    /// A protocol-level attacker.
    Byzantine(ByzProcess),
}

impl Party {
    /// The honest process, if this party is one.
    pub fn as_honest(&self) -> Option<&AsymDagRider> {
        match self {
            Party::Honest(p) => Some(p),
            Party::Byzantine(_) => None,
        }
    }
}

impl Protocol for Party {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        match self {
            Party::Honest(p) => p.on_start(ctx),
            Party::Byzantine(p) => p.on_start(ctx),
        }
    }

    fn on_input(&mut self, input: Block, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        if let Party::Honest(p) = self {
            p.on_input(input, ctx)
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match self {
            Party::Honest(p) => p.on_message(from, msg, ctx),
            Party::Byzantine(p) => p.on_message(from, msg, ctx),
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        match self {
            Party::Honest(p) => p.on_recover(ctx),
            // A revived attacker lies during its own recovery
            // (Fault::ByzantineRestart) instead of replaying a WAL.
            Party::Byzantine(p) => p.on_recover(ctx),
        }
    }
}
