//! The scenario descriptor: plain data identifying one execution exactly.
//!
//! A [`Scenario`] is the unit the matrix sweeps over and the tuple a failure
//! report prints. Everything in it is `Clone + PartialEq + Debug` data —
//! no closures, no trait objects — so two equal descriptors always produce
//! bit-for-bit identical executions.

use asym_quorum::topology::TopologySpec;
use asym_quorum::ProcessSet;
use asym_sim::{Adversary, FaultMode};

use crate::byzantine::ByzAttack;

/// One process's assigned misbehaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Never starts: sends nothing, receives nothing.
    Crash,
    /// Behaves correctly until it has processed `k` deliveries, then dies.
    CrashAfter(u64),
    /// Receives everything but all its sends vanish (send-omission).
    Mute,
    /// Crashes after `crash_at` deliveries, then restarts at global step
    /// `recover_at` (or at quiescence, whichever comes first) and rebuilds
    /// itself from its write-ahead log — the crash-*recovery* axis. The
    /// runner attaches an in-memory WAL to the process automatically.
    Restart {
        /// Deliveries the process handles before crashing.
        crash_at: u64,
        /// Global delivery step at which it restarts from its log.
        recover_at: u64,
    },
    /// Runs a protocol-level attack instead of the honest state machine.
    Byzantine(ByzAttack),
    /// A Byzantine process that also crashes and restarts: it mounts its
    /// attack at start, goes silent after `crash_at` deliveries, and is
    /// revived at `recover_at` — where it mounts the attack's
    /// *recovery-time* lies (equivocating re-SENDs, false CONFIRM
    /// re-announcements, forged catch-up state) instead of an honest
    /// WAL replay. No write-ahead log is attached: an attacker needs no
    /// honest storage.
    ByzantineRestart {
        /// The mounted attack (start-time and recovery-time halves).
        attack: ByzAttack,
        /// Deliveries the attacker handles before crashing.
        crash_at: u64,
        /// Global delivery step at which it restarts (lying).
        recover_at: u64,
    },
}

impl Fault {
    /// The network-layer fault mode realizing this fault. Byzantine
    /// deviation is protocol-level, so its network mode is `Correct`.
    pub fn network_mode(&self) -> FaultMode {
        match self {
            Fault::Crash => FaultMode::CrashedFromStart,
            Fault::CrashAfter(k) => FaultMode::CrashAfter(*k),
            Fault::Mute => FaultMode::Mute,
            Fault::Restart { crash_at, recover_at }
            | Fault::ByzantineRestart { crash_at, recover_at, .. } => {
                FaultMode::RestartAfter { crash_at: *crash_at, recover_at: *recover_at }
            }
            Fault::Byzantine(_) => FaultMode::Correct,
        }
    }
}

impl core::fmt::Display for Fault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Fault::Crash => write!(f, "crash"),
            Fault::CrashAfter(k) => write!(f, "crash-after-{k}"),
            Fault::Mute => write!(f, "mute"),
            Fault::Restart { crash_at, recover_at } => {
                write!(f, "restart({crash_at}..{recover_at})")
            }
            Fault::Byzantine(a) => write!(f, "byz-{a}"),
            Fault::ByzantineRestart { attack, crash_at, recover_at } => {
                write!(f, "byz-restart-{attack}({crash_at}..{recover_at})")
            }
        }
    }
}

/// A named assignment of faults to process indices.
///
/// Plans are data; the runner lowers crash/omission faults to the network
/// layer ([`FaultMode`]) and Byzantine assignments to [`crate::Party`]
/// protocol instances.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    assignments: Vec<(usize, Fault)>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit `(process index, fault)` assignments.
    ///
    /// # Panics
    ///
    /// Panics if an index is assigned twice.
    pub fn new<I: IntoIterator<Item = (usize, Fault)>>(assignments: I) -> Self {
        let mut assignments: Vec<(usize, Fault)> = assignments.into_iter().collect();
        assignments.sort_by_key(|(i, _)| *i);
        for w in assignments.windows(2) {
            assert!(w[0].0 != w[1].0, "process {} assigned two faults", w[0].0);
        }
        FaultPlan { assignments }
    }

    /// Crashes the given processes from the start.
    pub fn crash_from_start<I: IntoIterator<Item = usize>>(ids: I) -> Self {
        FaultPlan::new(ids.into_iter().map(|i| (i, Fault::Crash)))
    }

    /// Adds one more assignment (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the index already has a fault.
    pub fn with(self, index: usize, fault: Fault) -> Self {
        let mut assignments = self.assignments;
        assignments.push((index, fault));
        FaultPlan::new(assignments)
    }

    /// The `(index, fault)` assignments, sorted by index.
    pub fn assignments(&self) -> &[(usize, Fault)] {
        &self.assignments
    }

    /// Every process with any fault assigned — the set guild computations
    /// take as "faulty" (a process that ever deviates or dies is faulty).
    pub fn faulty_set(&self) -> ProcessSet {
        self.assignments.iter().map(|(i, _)| *i).collect()
    }

    /// The Byzantine assignments — including attackers that restart
    /// ([`Fault::ByzantineRestart`]); both run an attacker state machine.
    pub fn byzantine(&self) -> impl Iterator<Item = (usize, ByzAttack)> + '_ {
        self.assignments.iter().filter_map(|(i, f)| match f {
            Fault::Byzantine(a) | Fault::ByzantineRestart { attack: a, .. } => Some((*i, *a)),
            _ => None,
        })
    }

    /// The *honest* crash-restart assignments only — the processes the
    /// runner equips with a write-ahead log. Byzantine restarts are not
    /// included: an attacker "recovers" by lying, not by replaying.
    pub fn restarts(&self) -> impl Iterator<Item = usize> + '_ {
        self.assignments.iter().filter_map(|(i, f)| match f {
            Fault::Restart { .. } => Some(*i),
            _ => None,
        })
    }

    /// The Byzantine-restart assignments (attackers that crash and revive
    /// mid-run to lie during their own recovery).
    pub fn byz_restarts(&self) -> impl Iterator<Item = (usize, ByzAttack)> + '_ {
        self.assignments.iter().filter_map(|(i, f)| match f {
            Fault::ByzantineRestart { attack, .. } => Some((*i, *attack)),
            _ => None,
        })
    }

    /// Largest assigned index (`None` for the fault-free plan). The matrix
    /// uses it to skip plans that do not fit a topology.
    pub fn max_index(&self) -> Option<usize> {
        self.assignments.last().map(|(i, _)| *i)
    }
}

impl core::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.assignments.is_empty() {
            return write!(f, "fault-free");
        }
        for (k, (i, fault)) in self.assignments.iter().enumerate() {
            if k > 0 {
                write!(f, "+")?;
            }
            write!(f, "{fault}(p{i})")?;
        }
        Ok(())
    }
}

/// Where a restart-faulted process's write-ahead log physically lives —
/// the storage axis of a scenario. Powerloss variants wrap the backend in
/// [`asym_storage::FaultyStorage`]: the crash deterministically tears the
/// final append, drops an unsynced suffix (respecting the process's fsync
/// barriers) or reverts/reorders the latest snapshot rename, and recovery
/// must still replay a consistent prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageSpec {
    /// Deterministic in-memory storage — the simulator default.
    Mem,
    /// Real `std::fs` files (`wal.log` + `snapshot.bin`) in a per-run
    /// temporary directory the runner creates and removes.
    File,
    /// In-memory storage behind the powerloss injector; `seed` drives the
    /// damage (decorrelated per process).
    PowerlossMem {
        /// Damage seed.
        seed: u64,
    },
    /// File-backed storage behind the powerloss injector.
    PowerlossFile {
        /// Damage seed.
        seed: u64,
    },
}

impl StorageSpec {
    /// Stable family name for sweep tables.
    pub fn name(&self) -> &'static str {
        match self {
            StorageSpec::Mem => "mem",
            StorageSpec::File => "file",
            StorageSpec::PowerlossMem { .. } => "powerloss-mem",
            StorageSpec::PowerlossFile { .. } => "powerloss-file",
        }
    }

    /// `true` if this spec injects powerloss damage at the crash.
    pub fn is_powerloss(&self) -> bool {
        matches!(self, StorageSpec::PowerlossMem { .. } | StorageSpec::PowerlossFile { .. })
    }

    /// `true` if this spec is backed by real files.
    pub fn is_file(&self) -> bool {
        matches!(self, StorageSpec::File | StorageSpec::PowerlossFile { .. })
    }
}

impl core::fmt::Display for StorageSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StorageSpec::Mem => write!(f, "mem"),
            StorageSpec::File => write!(f, "file"),
            StorageSpec::PowerlossMem { seed } => write!(f, "powerloss-mem(seed={seed})"),
            StorageSpec::PowerlossFile { seed } => write!(f, "powerloss-file(seed={seed})"),
        }
    }
}

/// A delivery-adversary family; the scenario seed supplies its randomness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedulerSpec {
    /// Send-order delivery.
    Fifo,
    /// Seeded uniformly random delivery order.
    Random,
    /// Per-message random latency in `min..=max` simulated time units.
    RandomLatency {
        /// Minimum per-message latency.
        min: u64,
        /// Maximum per-message latency.
        max: u64,
    },
    /// Messages to/from the victims are starved as long as possible.
    TargetedDelay {
        /// Victim process indices.
        victims: Vec<usize>,
    },
    /// Messages to/from the victims are starved **forever** (the
    /// Appendix-A starvation shape): the run quiesces with victim traffic
    /// still in flight, and the runner then flushes it FIFO
    /// ([`asym_sim::Simulation::flush_starved`] — "the delayed messages
    /// eventually arrive") before the checker suite applies.
    Starve {
        /// Victim process indices.
        victims: Vec<usize>,
    },
    /// Cross-group messages blocked until `heal_at` delivery steps.
    Partition {
        /// The isolated groups (process indices).
        groups: Vec<Vec<usize>>,
        /// Step at which the partition heals.
        heal_at: u64,
    },
}

impl SchedulerSpec {
    /// Instantiates the described adversary with the scenario seed.
    pub fn adversary(&self, seed: u64) -> Adversary {
        match self {
            SchedulerSpec::Fifo => Adversary::Fifo,
            SchedulerSpec::Random => Adversary::Random(seed),
            SchedulerSpec::RandomLatency { min, max } => {
                Adversary::Latency { seed, min: *min, max: *max }
            }
            SchedulerSpec::TargetedDelay { victims } => {
                Adversary::TargetedDelay(victims.iter().copied().collect())
            }
            SchedulerSpec::Starve { victims } => {
                Adversary::Starve(victims.iter().copied().collect())
            }
            SchedulerSpec::Partition { groups, heal_at } => Adversary::Partition {
                groups: groups.iter().map(|g| g.iter().copied().collect()).collect(),
                heal_at: *heal_at,
            },
        }
    }

    /// Stable family name for sweep tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSpec::Fifo => "fifo",
            SchedulerSpec::Random => "random",
            SchedulerSpec::RandomLatency { .. } => "latency",
            SchedulerSpec::TargetedDelay { .. } => "targeted-delay",
            SchedulerSpec::Starve { .. } => "starve",
            SchedulerSpec::Partition { .. } => "partition",
        }
    }

    /// `true` if this adversary deliberately never quiesces on its own, so
    /// the runner must deliver the starved remainder
    /// ([`asym_sim::Simulation::flush_starved`]) before liveness checkers
    /// are meaningful.
    pub fn needs_flush(&self) -> bool {
        matches!(self, SchedulerSpec::Starve { .. })
    }
}

impl core::fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SchedulerSpec::Fifo => write!(f, "fifo"),
            SchedulerSpec::Random => write!(f, "random"),
            SchedulerSpec::RandomLatency { min, max } => write!(f, "latency({min}..={max})"),
            SchedulerSpec::TargetedDelay { victims } => {
                write!(f, "targeted-delay({victims:?})")
            }
            SchedulerSpec::Starve { victims } => write!(f, "starve({victims:?})"),
            SchedulerSpec::Partition { groups, heal_at } => {
                write!(f, "partition({groups:?},heal={heal_at})")
            }
        }
    }
}

/// One fully-specified execution: the matrix cell and the reproduction
/// tuple. Equal scenarios run to identical outcomes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// The trust-topology family and its parameters.
    pub topology: TopologySpec,
    /// Who misbehaves, and how.
    pub faults: FaultPlan,
    /// The delivery adversary family.
    pub scheduler: SchedulerSpec,
    /// Seed feeding the scheduler (and, decorrelated, the common coin).
    pub seed: u64,
    /// Wave budget per process.
    pub waves: u64,
    /// Blocks each non-crashed, non-Byzantine process injects.
    pub blocks_per_process: usize,
    /// Transactions per injected block.
    pub txs_per_block: usize,
    /// Delivery-step budget.
    pub max_steps: u64,
    /// Snapshot cadence of restart-faulted processes' write-ahead logs
    /// (`0` = never snapshot; replay then folds the entire log).
    pub snapshot_every: usize,
    /// Storage backend of restart-faulted processes' write-ahead logs.
    pub storage: StorageSpec,
    /// Garbage-collect delivered prefixes at snapshot time (WAL pruning).
    pub prune_wal: bool,
    /// Equip **every** honest process with a write-ahead log (not only the
    /// restart-faulted ones) — the *all-pruned* axis: combined with
    /// `prune_wal`, every peer garbage-collects its delivered prefix, so a
    /// deep laggard can only recover through delivered-state transfer
    /// (no peer retains the full DAG to serve a plain `FetchReply`).
    pub wal_everywhere: bool,
}

impl Scenario {
    /// A scenario with the default workload (6 waves, 1 block of 2 txs per
    /// process, 500M-step budget) and the default persistence axis
    /// (in-memory WAL, snapshot every 64 records, pruning on).
    pub fn new(
        topology: TopologySpec,
        faults: FaultPlan,
        scheduler: SchedulerSpec,
        seed: u64,
    ) -> Self {
        Scenario {
            topology,
            faults,
            scheduler,
            seed,
            waves: 6,
            blocks_per_process: 1,
            txs_per_block: 2,
            max_steps: 500_000_000,
            snapshot_every: 64,
            storage: StorageSpec::Mem,
            prune_wal: true,
            wal_everywhere: false,
        }
    }

    /// Overrides the wave budget (builder-style).
    pub fn waves(mut self, waves: u64) -> Self {
        self.waves = waves;
        self
    }

    /// Overrides the blocks injected per process (builder-style).
    pub fn blocks_per_process(mut self, blocks: usize) -> Self {
        self.blocks_per_process = blocks;
        self
    }

    /// Overrides the transactions per block (builder-style).
    pub fn txs_per_block(mut self, txs: usize) -> Self {
        self.txs_per_block = txs;
        self
    }

    /// Overrides the delivery-step budget (builder-style).
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Overrides the WAL snapshot cadence (builder-style; `0` = never).
    pub fn snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Overrides the WAL storage backend (builder-style).
    pub fn storage(mut self, storage: StorageSpec) -> Self {
        self.storage = storage;
        self
    }

    /// Enables or disables WAL pruning (builder-style).
    pub fn prune_wal(mut self, prune: bool) -> Self {
        self.prune_wal = prune;
        self
    }

    /// Equips every honest process with a write-ahead log — the all-pruned
    /// axis (builder-style).
    pub fn wal_everywhere(mut self, everywhere: bool) -> Self {
        self.wal_everywhere = everywhere;
        self
    }

    /// The shared coin seed: derived from the scenario seed but decorrelated
    /// from the scheduler's RNG stream.
    pub fn coin_seed(&self) -> u64 {
        self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_C01D
    }

    /// The human-readable `(topology, fault plan, scheduler, seed)` cell
    /// label printed by sweep tables and failure reports. Cells with a
    /// write-ahead log (any restart fault) also name the persistence axis.
    pub fn cell(&self) -> String {
        let mut cell = format!(
            "(topology={}, faults={}, scheduler={}, seed={})",
            self.topology, self.faults, self.scheduler, self.seed
        );
        if self.faults.restarts().next().is_some() || self.wal_everywhere {
            cell.push_str(&format!(
                " wal=({}, every={}, prune={}{})",
                self.storage,
                self.snapshot_every,
                self.prune_wal,
                if self.wal_everywhere { ", everywhere" } else { "" }
            ));
        }
        cell
    }

    /// A copy-pasteable reproduction of this scenario: a constructor
    /// expression that compiles verbatim under
    /// `use asym_scenarios::{ByzAttack, Fault, FaultPlan, Scenario, SchedulerSpec, StorageSpec, TopologySpec};`
    /// and rebuilds an equal `Scenario`.
    pub fn repro(&self) -> String {
        let faults = if self.faults.assignments().is_empty() {
            "FaultPlan::none()".to_string()
        } else {
            let items: Vec<String> = self
                .faults
                .assignments()
                .iter()
                .map(|(i, f)| {
                    let fault = match f {
                        Fault::Crash => "Fault::Crash".to_string(),
                        Fault::CrashAfter(k) => format!("Fault::CrashAfter({k})"),
                        Fault::Mute => "Fault::Mute".to_string(),
                        Fault::Restart { crash_at, recover_at } => format!(
                            "Fault::Restart {{ crash_at: {crash_at}, recover_at: {recover_at} }}"
                        ),
                        Fault::Byzantine(a) => format!("Fault::Byzantine(ByzAttack::{a:?})"),
                        Fault::ByzantineRestart { attack, crash_at, recover_at } => format!(
                            "Fault::ByzantineRestart {{ attack: ByzAttack::{attack:?}, \
                             crash_at: {crash_at}, recover_at: {recover_at} }}"
                        ),
                    };
                    format!("({i}, {fault})")
                })
                .collect();
            format!("FaultPlan::new([{}])", items.join(", "))
        };
        let scheduler = match &self.scheduler {
            SchedulerSpec::Fifo => "SchedulerSpec::Fifo".to_string(),
            SchedulerSpec::Random => "SchedulerSpec::Random".to_string(),
            SchedulerSpec::RandomLatency { min, max } => {
                format!("SchedulerSpec::RandomLatency {{ min: {min}, max: {max} }}")
            }
            SchedulerSpec::TargetedDelay { victims } => {
                format!("SchedulerSpec::TargetedDelay {{ victims: vec!{victims:?} }}")
            }
            SchedulerSpec::Starve { victims } => {
                format!("SchedulerSpec::Starve {{ victims: vec!{victims:?} }}")
            }
            SchedulerSpec::Partition { groups, heal_at } => {
                let groups: Vec<String> = groups.iter().map(|g| format!("vec!{g:?}")).collect();
                format!(
                    "SchedulerSpec::Partition {{ groups: vec![{}], heal_at: {heal_at} }}",
                    groups.join(", ")
                )
            }
        };
        format!(
            "Scenario::new(TopologySpec::{:?}, {faults}, {scheduler}, {}).waves({})\
             .blocks_per_process({}).txs_per_block({}).max_steps({}).snapshot_every({})\
             .storage(StorageSpec::{:?}).prune_wal({}).wal_everywhere({})",
            self.topology,
            self.seed,
            self.waves,
            self.blocks_per_process,
            self.txs_per_block,
            self.max_steps,
            self.snapshot_every,
            self.storage,
            self.prune_wal,
            self.wal_everywhere
        )
    }
}

impl core::fmt::Display for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.cell())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_sorts_and_reports() {
        let plan = FaultPlan::new([(3, Fault::Mute), (1, Fault::Crash)]);
        assert_eq!(plan.assignments()[0], (1, Fault::Crash));
        assert_eq!(plan.max_index(), Some(3));
        assert_eq!(plan.faulty_set(), ProcessSet::from_indices([1, 3]));
        assert_eq!(plan.to_string(), "crash(p1)+mute(p3)");
        assert_eq!(FaultPlan::none().to_string(), "fault-free");
    }

    #[test]
    #[should_panic(expected = "two faults")]
    fn duplicate_assignment_rejected() {
        FaultPlan::new([(1, Fault::Crash), (1, Fault::Mute)]);
    }

    #[test]
    fn byzantine_assignments_are_network_correct() {
        let plan = FaultPlan::none().with(2, Fault::Byzantine(ByzAttack::EquivocateVertices));
        assert_eq!(plan.assignments()[0].1.network_mode(), FaultMode::Correct);
        assert_eq!(plan.byzantine().count(), 1);
        assert_eq!(plan.faulty_set(), ProcessSet::from_indices([2]));
    }

    #[test]
    fn restart_fault_lowers_to_restart_after_and_reproduces() {
        let plan = FaultPlan::none().with(2, Fault::Restart { crash_at: 150, recover_at: 900 });
        assert_eq!(
            plan.assignments()[0].1.network_mode(),
            FaultMode::RestartAfter { crash_at: 150, recover_at: 900 }
        );
        assert_eq!(plan.restarts().collect::<Vec<_>>(), vec![2]);
        assert_eq!(plan.to_string(), "restart(150..900)(p2)");
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            plan,
            SchedulerSpec::Fifo,
            1,
        );
        assert!(
            s.repro().contains("Fault::Restart { crash_at: 150, recover_at: 900 }"),
            "{}",
            s.repro()
        );
    }

    #[test]
    fn byzantine_restart_fault_is_both_byzantine_and_restarting() {
        let plan = FaultPlan::none().with(
            3,
            Fault::ByzantineRestart {
                attack: ByzAttack::EquivocateVertices,
                crash_at: 100,
                recover_at: 800,
            },
        );
        assert_eq!(
            plan.assignments()[0].1.network_mode(),
            FaultMode::RestartAfter { crash_at: 100, recover_at: 800 }
        );
        assert_eq!(plan.byzantine().count(), 1, "an attacker even while restarting");
        assert_eq!(plan.restarts().count(), 0, "no WAL for attackers");
        assert_eq!(
            plan.byz_restarts().collect::<Vec<_>>(),
            vec![(3, ByzAttack::EquivocateVertices)]
        );
        assert_eq!(plan.to_string(), "byz-restart-equivocate(100..800)(p3)");
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            plan,
            SchedulerSpec::Fifo,
            1,
        );
        assert!(s.repro().contains(
            "Fault::ByzantineRestart { attack: ByzAttack::EquivocateVertices, crash_at: 100, \
             recover_at: 800 }"
        ));
    }

    #[test]
    fn starve_scheduler_needs_flush_and_reproduces() {
        let spec = SchedulerSpec::Starve { victims: vec![1, 2] };
        assert!(spec.needs_flush());
        assert!(!SchedulerSpec::Random.needs_flush());
        assert!(!SchedulerSpec::TargetedDelay { victims: vec![1] }.needs_flush());
        assert_eq!(spec.name(), "starve");
        assert_eq!(
            spec.adversary(4),
            Adversary::Starve(asym_quorum::ProcessSet::from_indices([1, 2]))
        );
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            spec,
            4,
        );
        assert!(s.repro().contains("SchedulerSpec::Starve { victims: vec![1, 2] }"));
    }

    #[test]
    fn restart_cells_name_the_persistence_axis() {
        let plain = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            SchedulerSpec::Fifo,
            1,
        );
        assert!(!plain.cell().contains("wal="), "no WAL, no axis: {}", plain.cell());
        let restart = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(1, Fault::Restart { crash_at: 10, recover_at: 90 }),
            SchedulerSpec::Fifo,
            1,
        )
        .storage(StorageSpec::PowerlossMem { seed: 3 })
        .snapshot_every(8);
        let cell = restart.cell();
        for needle in ["wal=(powerloss-mem(seed=3)", "every=8", "prune=true"] {
            assert!(cell.contains(needle), "{cell} missing {needle}");
        }
        assert!(!cell.contains("everywhere"), "{cell}");
        // The all-pruned axis names itself even without a restart fault.
        let all = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none(),
            SchedulerSpec::Fifo,
            1,
        )
        .wal_everywhere(true);
        assert!(all.cell().contains("everywhere"), "{}", all.cell());
    }

    #[test]
    fn scheduler_spec_builds_seeded_adversary() {
        assert_eq!(SchedulerSpec::Random.adversary(9), Adversary::Random(9));
        assert_eq!(
            SchedulerSpec::RandomLatency { min: 1, max: 5 }.adversary(3),
            Adversary::Latency { seed: 3, min: 1, max: 5 }
        );
        assert_eq!(SchedulerSpec::Fifo.adversary(9), Adversary::Fifo);
    }

    #[test]
    fn cell_names_every_axis() {
        let s = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::crash_from_start([3]),
            SchedulerSpec::Random,
            42,
        );
        let cell = s.cell();
        for needle in ["threshold(n=4,f=1)", "crash(p3)", "random", "seed=42"] {
            assert!(cell.contains(needle), "{cell} missing {needle}");
        }
        assert!(s.repro().contains("UniformThreshold"));
    }

    #[test]
    fn repro_string_is_a_compiling_constructor_expression() {
        let scenario = Scenario::new(
            TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
            FaultPlan::new([(2, Fault::Mute), (5, Fault::Byzantine(ByzAttack::ConfirmFlood))]),
            SchedulerSpec::TargetedDelay { victims: vec![0, 1] },
            13,
        )
        .waves(5);
        // The exact expression repro() prints, compiled — if repro() drifts
        // from constructible syntax, the strings below stop matching.
        let rebuilt = Scenario::new(
            TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
            FaultPlan::new([(2, Fault::Mute), (5, Fault::Byzantine(ByzAttack::ConfirmFlood))]),
            SchedulerSpec::TargetedDelay { victims: vec![0, 1] },
            13,
        )
        .waves(5)
        .blocks_per_process(1)
        .txs_per_block(2)
        .max_steps(500000000)
        .snapshot_every(64)
        .storage(StorageSpec::Mem)
        .prune_wal(true)
        .wal_everywhere(false);
        assert_eq!(rebuilt, scenario);
        assert_eq!(
            scenario.repro(),
            "Scenario::new(TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 }, \
             FaultPlan::new([(2, Fault::Mute), (5, Fault::Byzantine(ByzAttack::ConfirmFlood))]), \
             SchedulerSpec::TargetedDelay { victims: vec![0, 1] }, 13).waves(5)\
             .blocks_per_process(1).txs_per_block(2).max_steps(500000000).snapshot_every(64)\
             .storage(StorageSpec::Mem).prune_wal(true).wal_everywhere(false)"
        );
        assert_eq!(
            Scenario::new(
                TopologySpec::UniformThreshold { n: 4, f: 1 },
                FaultPlan::none(),
                SchedulerSpec::Random,
                7,
            )
            .storage(StorageSpec::PowerlossFile { seed: 9 })
            .snapshot_every(0)
            .prune_wal(false)
            .wal_everywhere(true)
            .repro(),
            "Scenario::new(TopologySpec::UniformThreshold { n: 4, f: 1 }, FaultPlan::none(), \
             SchedulerSpec::Random, 7).waves(6).blocks_per_process(1).txs_per_block(2)\
             .max_steps(500000000).snapshot_every(0)\
             .storage(StorageSpec::PowerlossFile { seed: 9 }).prune_wal(false)\
             .wal_everywhere(true)"
        );
    }

    #[test]
    fn coin_seed_decorrelates_neighbouring_seeds() {
        let mk = |seed| {
            Scenario::new(
                TopologySpec::UniformThreshold { n: 4, f: 1 },
                FaultPlan::none(),
                SchedulerSpec::Random,
                seed,
            )
        };
        assert_ne!(mk(1).coin_seed(), mk(2).coin_seed());
        assert_ne!(mk(1).coin_seed(), 1, "coin stream must differ from scheduler stream");
    }
}
