//! Cross-product sweeps: topology × fault plan × scheduler × seed.
//!
//! A [`Matrix`] enumerates [`Scenario`]s, runs every buildable cell under
//! the standard checker suite, and reports each cell as passed (with its
//! measurements), failed (with the reproduction tuple) or unbuildable.
//! Combinations whose fault plan does not fit the topology are counted as
//! skipped rather than silently dropped.

use crate::checks::{run_and_check_all, ScenarioFailure};
use crate::runner::ScenarioOutcome;
use crate::spec::{Fault, FaultPlan, Scenario, SchedulerSpec, StorageSpec};
use crate::{ByzAttack, TopologySpec};

/// Measurements of one passed cell.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CellStats {
    /// Longest commit log across honest processes (committed waves).
    pub commits: usize,
    /// Vertices ordered at the best-progressed process.
    pub ordered: u64,
    /// Messages handed to the network.
    pub sent: u64,
    /// Delivery steps executed.
    pub steps: u64,
    /// Final simulated clock.
    pub time: u64,
    /// Simulated time per committed wave (`time / commits`; infinite when
    /// nothing committed — legal in safety-only cells).
    pub commit_latency: f64,
}

impl CellStats {
    fn from_outcome(o: &ScenarioOutcome) -> Self {
        let commits = o.max_commits();
        let ordered = o.metrics.iter().map(|m| m.vertices_ordered).max().unwrap_or(0);
        CellStats {
            commits,
            ordered,
            sent: o.net.sent,
            steps: o.steps,
            time: o.time,
            commit_latency: if commits > 0 {
                o.time as f64 / commits as f64
            } else {
                f64::INFINITY
            },
        }
    }
}

/// Result of one matrix cell.
#[derive(Clone, Debug)]
pub enum CellStatus {
    /// All invariants held.
    Passed(CellStats),
    /// An invariant was violated (the failure holds the reproduction tuple).
    Failed(Box<ScenarioFailure>),
    /// The topology spec found no valid system (random families only).
    Unbuildable,
}

/// Outcome of a whole sweep.
#[derive(Debug, Default)]
pub struct MatrixReport {
    /// Every executed cell with its status, in sweep order.
    pub cells: Vec<(Scenario, CellStatus)>,
    /// Combinations skipped because the fault plan targets processes the
    /// topology does not have (reported so coverage gaps stay visible).
    pub skipped_unfit: usize,
}

impl MatrixReport {
    /// Number of cells in which every invariant held.
    pub fn passed(&self) -> usize {
        self.cells.iter().filter(|(_, s)| matches!(s, CellStatus::Passed(_))).count()
    }

    /// The invariant violations, in sweep order.
    pub fn failures(&self) -> Vec<&ScenarioFailure> {
        self.cells
            .iter()
            .filter_map(|(_, s)| match s {
                CellStatus::Failed(f) => Some(f.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// Number of unbuildable cells.
    pub fn unbuildable(&self) -> usize {
        self.cells.iter().filter(|(_, s)| matches!(s, CellStatus::Unbuildable)).count()
    }

    /// Renders a per-cell summary plus every failure's reproduction tuple.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (scenario, status) in &self.cells {
            match status {
                CellStatus::Passed(stats) => out.push_str(&format!(
                    "PASS {} commits={} ordered={} msgs={} time={} time/commit={:.1}\n",
                    scenario.cell(),
                    stats.commits,
                    stats.ordered,
                    stats.sent,
                    stats.time,
                    stats.commit_latency
                )),
                CellStatus::Failed(f) => out.push_str(&format!("FAIL {}\n{f}\n", scenario.cell())),
                CellStatus::Unbuildable => {
                    out.push_str(&format!("SKIP {} (topology unbuildable)\n", scenario.cell()))
                }
            }
        }
        out.push_str(&format!(
            "{} passed, {} failed, {} unbuildable, {} unfit combinations skipped\n",
            self.passed(),
            self.failures().len(),
            self.unbuildable(),
            self.skipped_unfit
        ));
        out
    }

    /// Panics with every failure's reproduction tuple if any cell failed.
    ///
    /// # Panics
    ///
    /// Panics when at least one cell violated an invariant.
    pub fn assert_all_passed(&self) {
        let failures = self.failures();
        if failures.is_empty() {
            return;
        }
        let mut msg = format!("{} scenario cell(s) violated invariants:\n", failures.len());
        for f in failures {
            msg.push_str(&format!("{f}\n"));
        }
        panic!("{msg}");
    }
}

/// A sweep over the cross-product of four axes plus workload knobs.
///
/// Fault plans containing an honest [`Fault::Restart`] additionally sweep
/// the **persistence axis**: one cell per snapshot cadence (paired with
/// the first storage backend) plus one cell per further storage backend
/// (paired with the first cadence) — a cross at the defaults rather than a
/// full product, so the sweep grows linearly in each new axis. Plans
/// without a write-ahead log run once with the defaults.
#[derive(Clone, Debug)]
pub struct Matrix {
    /// Topology families to sweep.
    pub topologies: Vec<TopologySpec>,
    /// Fault plans to sweep.
    pub fault_plans: Vec<FaultPlan>,
    /// Scheduler adversaries to sweep.
    pub schedulers: Vec<SchedulerSpec>,
    /// Seeds per cell.
    pub seeds: Vec<u64>,
    /// Wave budget for every cell.
    pub waves: u64,
    /// Blocks injected per process.
    pub blocks_per_process: usize,
    /// Transactions per block.
    pub txs_per_block: usize,
    /// WAL snapshot cadences for restart plans (first = default; include
    /// `0` to cover the never-snapshot edge).
    pub snapshot_cadences: Vec<usize>,
    /// WAL storage backends for restart plans (first = default).
    pub restart_storages: Vec<StorageSpec>,
    /// Fault plans additionally run as **all-pruned** cells: every honest
    /// process gets a pruning write-ahead log
    /// ([`Scenario::wal_everywhere`]) at an aggressive snapshot cadence, so
    /// no peer retains the full DAG and a deep laggard can only recover
    /// through delivered-state transfer. Each plan here should contain a
    /// deep restart (early `crash_at`, far `recover_at`).
    pub all_pruned_plans: Vec<FaultPlan>,
}

/// Snapshot cadence of all-pruned cells: aggressive enough that every peer
/// prunes below a deep laggard's floor within the default wave budget.
const ALL_PRUNED_CADENCE: usize = 8;

impl Matrix {
    /// The curated tier-1 sub-matrix: every topology family, the core
    /// fault kinds (none, crash, mid-run crash, mute, crash-restart,
    /// Byzantine equivocation) plus the adversarial-recovery plans (a peer
    /// lying to a recovering process, an attacker lying during its *own*
    /// recovery), two scheduler families plus the hard-starvation
    /// adversary, two seeds, and the persistence axis (cadence 64 and the
    /// never-snapshot edge on in-memory WALs, plus a powerloss-injected
    /// cell). Small enough for `cargo test`, wide enough that each axis is
    /// exercised against each other at least once.
    pub fn smoke() -> Self {
        Matrix {
            topologies: vec![
                TopologySpec::UniformThreshold { n: 4, f: 1 },
                TopologySpec::RippleUnl { n: 7, unl: 6, f: 1 },
                TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
                TopologySpec::RandomSlices { n: 8, slice: 6, f: 1, seed: 11 },
            ],
            fault_plans: vec![
                FaultPlan::none(),
                FaultPlan::crash_from_start([3]),
                FaultPlan::none().with(1, Fault::CrashAfter(150)),
                FaultPlan::none().with(2, Fault::Mute),
                FaultPlan::none().with(1, Fault::Restart { crash_at: 120, recover_at: 900 }),
                FaultPlan::none().with(3, Fault::Byzantine(ByzAttack::EquivocateVertices)),
                // A Byzantine peer lying to a recovering process: forged
                // fetch replies race the honest catch-up.
                FaultPlan::none()
                    .with(1, Fault::Restart { crash_at: 120, recover_at: 900 })
                    .with(3, Fault::Byzantine(ByzAttack::ForgeFetchReplies)),
                // A Byzantine process lying during its *own* recovery:
                // equivocating re-SENDs + false CONFIRM re-announcements.
                FaultPlan::none().with(
                    3,
                    Fault::ByzantineRestart {
                        attack: ByzAttack::EquivocateVertices,
                        crash_at: 40,
                        recover_at: 600,
                    },
                ),
            ],
            schedulers: vec![
                SchedulerSpec::Random,
                SchedulerSpec::Fifo,
                SchedulerSpec::Starve { victims: vec![0] },
            ],
            seeds: vec![1, 2],
            waves: 5,
            blocks_per_process: 1,
            txs_per_block: 2,
            snapshot_cadences: vec![64, 0],
            restart_storages: vec![StorageSpec::Mem, StorageSpec::PowerlossMem { seed: 7 }],
            all_pruned_plans: vec![
                // A deep laggard: crashes almost immediately, recovers only
                // at quiescence — by then every peer has pruned below its
                // floor, so only delivered-state transfer can serve it.
                FaultPlan::none().with(1, Fault::Restart { crash_at: 60, recover_at: 40_000_000 }),
                // The same cell with a liar: forged offers + forged chunks
                // (correct coin leaders, fabricated deliveries) race the
                // honest transfer; the kernel-matched install must reject
                // them without costing the laggard its liveness.
                FaultPlan::none()
                    .with(1, Fault::Restart { crash_at: 60, recover_at: 40_000_000 })
                    .with(3, Fault::Byzantine(ByzAttack::ForgeStateOffers)),
            ],
        }
    }

    /// The full CI sweep: more sizes per family, all Byzantine attacks
    /// (single and multi-attacker, crossed against *every* scheduler
    /// family including Partition, TargetedDelay and hard Starvation),
    /// combined fault kinds, crash-restart plans with the persistence axis
    /// (cadence sweep incl. never-snapshot, file-backed WALs, powerloss
    /// injection on both backends), the adversarial-recovery plans (lying
    /// peer, lying recoverer, both at once), a guild-destroying plan
    /// (safety-only cells), and three seeds.
    pub fn full() -> Self {
        Matrix {
            topologies: vec![
                TopologySpec::UniformThreshold { n: 4, f: 1 },
                TopologySpec::UniformThreshold { n: 7, f: 2 },
                TopologySpec::UniformThreshold { n: 10, f: 3 },
                TopologySpec::RippleUnl { n: 10, unl: 8, f: 1 },
                TopologySpec::StellarTiers { n: 8, core: 4, f_core: 1 },
                TopologySpec::StellarTiers { n: 12, core: 4, f_core: 1 },
                TopologySpec::RandomSlices { n: 8, slice: 6, f: 1, seed: 11 },
                TopologySpec::RandomSlices { n: 9, slice: 7, f: 1, seed: 23 },
            ],
            fault_plans: vec![
                FaultPlan::none(),
                FaultPlan::crash_from_start([3]),
                FaultPlan::crash_from_start([5, 6]),
                FaultPlan::none().with(1, Fault::CrashAfter(150)),
                FaultPlan::none().with(2, Fault::Mute),
                FaultPlan::none().with(1, Fault::CrashAfter(400)).with(2, Fault::Mute),
                FaultPlan::none().with(3, Fault::Byzantine(ByzAttack::EquivocateVertices)),
                FaultPlan::none().with(3, Fault::Byzantine(ByzAttack::BogusStrongEdges)),
                FaultPlan::none().with(3, Fault::Byzantine(ByzAttack::ConfirmFlood)),
                // Crash-restart: process 1 loses its in-memory state mid-run
                // and rejoins from its write-ahead log.
                FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1200 }),
                // Restart under churn: two processes with overlapping down
                // windows — both replay, refetch and rejoin while the other
                // is (or was just) down.
                FaultPlan::none()
                    .with(1, Fault::Restart { crash_at: 100, recover_at: 1100 })
                    .with(2, Fault::Restart { crash_at: 300, recover_at: 900 }),
                // A restart racing the partition heal: recover_at 610 lands
                // right on the Partition scheduler's heal_at 600, so the
                // replayed process rejoins into a still-settling network.
                FaultPlan::none().with(1, Fault::Restart { crash_at: 100, recover_at: 610 }),
                // Restart racing a permanent crash (guild-destroying on the
                // small topologies — those cells are safety-only).
                FaultPlan::crash_from_start([3])
                    .with(1, Fault::Restart { crash_at: 200, recover_at: 1500 }),
                // Multi-attacker: two equivocators from different identities.
                FaultPlan::none()
                    .with(2, Fault::Byzantine(ByzAttack::EquivocateVertices))
                    .with(3, Fault::Byzantine(ByzAttack::EquivocateVertices)),
                // Colluders: an equivocator plus a mute process.
                FaultPlan::none()
                    .with(2, Fault::Mute)
                    .with(3, Fault::Byzantine(ByzAttack::EquivocateVertices)),
                // Guild-destroying: beyond-threshold crashes — safety-only.
                FaultPlan::crash_from_start([1, 2]),
                // A Byzantine peer lying to a recovering process (forged
                // fetch replies + false confirmed-wave claims).
                FaultPlan::none()
                    .with(1, Fault::Restart { crash_at: 150, recover_at: 1200 })
                    .with(3, Fault::Byzantine(ByzAttack::ForgeFetchReplies)),
                // An attacker lying during its own recovery: swapped
                // equivocating re-SENDs + false CONFIRM re-announcements.
                FaultPlan::none().with(
                    3,
                    Fault::ByzantineRestart {
                        attack: ByzAttack::EquivocateVertices,
                        crash_at: 100,
                        recover_at: 1000,
                    },
                ),
                // Both at once: an honest process recovering while an
                // attacker "recovers" by poisoning catch-up traffic.
                FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1300 }).with(
                    3,
                    Fault::ByzantineRestart {
                        attack: ByzAttack::ForgeFetchReplies,
                        crash_at: 100,
                        recover_at: 1000,
                    },
                ),
            ],
            schedulers: vec![
                SchedulerSpec::Random,
                SchedulerSpec::Fifo,
                SchedulerSpec::RandomLatency { min: 1, max: 25 },
                SchedulerSpec::TargetedDelay { victims: vec![0] },
                SchedulerSpec::Starve { victims: vec![0] },
                SchedulerSpec::Partition {
                    groups: vec![vec![0, 1, 2], vec![3, 4, 5, 6, 7, 8, 9, 10, 11]],
                    heal_at: 600,
                },
            ],
            seeds: vec![0, 1, 2],
            waves: 5,
            blocks_per_process: 1,
            txs_per_block: 2,
            snapshot_cadences: vec![64, 0],
            // PowerlossMem is exercised by the smoke matrix; the full sweep
            // spends its budget on the real-filesystem variants.
            restart_storages: vec![
                StorageSpec::Mem,
                StorageSpec::File,
                StorageSpec::PowerlossFile { seed: 13 },
            ],
            all_pruned_plans: vec![
                // The deep laggard (see Matrix::smoke).
                FaultPlan::none().with(1, Fault::Restart { crash_at: 60, recover_at: 40_000_000 }),
                // Deep laggard vs forged-state liar.
                FaultPlan::none()
                    .with(1, Fault::Restart { crash_at: 60, recover_at: 40_000_000 })
                    .with(3, Fault::Byzantine(ByzAttack::ForgeStateOffers)),
                // Deep laggard vs a liar that also crashes and revives to
                // push unsolicited forged offers mid-recovery.
                FaultPlan::none()
                    .with(1, Fault::Restart { crash_at: 60, recover_at: 40_000_000 })
                    .with(
                        3,
                        Fault::ByzantineRestart {
                            attack: ByzAttack::ForgeStateOffers,
                            crash_at: 100,
                            recover_at: 1000,
                        },
                    ),
            ],
        }
    }

    /// Enumerates every fitting cell (topology-major order). Fault plans
    /// targeting processes a topology does not have are excluded; callers
    /// needing the skip count should use [`Matrix::run`].
    pub fn scenarios(&self) -> Vec<Scenario> {
        self.scenarios_and_skips().0
    }

    /// The persistence-axis variants a fault plan sweeps: restart plans
    /// cross the cadence list with the default storage plus every further
    /// storage with the default cadence; WAL-less plans run once.
    fn wal_variants(&self, plan: &FaultPlan) -> Vec<(usize, StorageSpec)> {
        let default_cadence = self.snapshot_cadences.first().copied().unwrap_or(64);
        let default_storage = self.restart_storages.first().copied().unwrap_or(StorageSpec::Mem);
        if plan.restarts().next().is_none() {
            return vec![(default_cadence, default_storage)];
        }
        let mut variants: Vec<(usize, StorageSpec)> =
            self.snapshot_cadences.iter().map(|c| (*c, default_storage)).collect();
        variants.extend(self.restart_storages.iter().skip(1).map(|s| (default_cadence, *s)));
        if variants.is_empty() {
            variants.push((default_cadence, default_storage));
        }
        variants
    }

    fn scenarios_and_skips(&self) -> (Vec<Scenario>, usize) {
        let mut cells = Vec::new();
        let mut skipped = 0;
        for topology in &self.topologies {
            for plan in &self.fault_plans {
                let variants = self.wal_variants(plan);
                if plan.max_index().is_some_and(|m| m >= topology.n()) {
                    skipped += self.schedulers.len() * self.seeds.len() * variants.len();
                    continue;
                }
                for scheduler in &self.schedulers {
                    for seed in &self.seeds {
                        for (cadence, storage) in &variants {
                            cells.push(
                                Scenario::new(*topology, plan.clone(), scheduler.clone(), *seed)
                                    .waves(self.waves)
                                    .blocks_per_process(self.blocks_per_process)
                                    .txs_per_block(self.txs_per_block)
                                    .snapshot_every(*cadence)
                                    .storage(*storage),
                            );
                        }
                    }
                }
            }
            // The all-pruned cells: every honest process gets a pruning
            // WAL at an aggressive cadence (one cell per plan — the
            // cadence/storage cross is spent on the regular restart plans).
            for plan in &self.all_pruned_plans {
                if plan.max_index().is_some_and(|m| m >= topology.n()) {
                    skipped += self.schedulers.len() * self.seeds.len();
                    continue;
                }
                for scheduler in &self.schedulers {
                    for seed in &self.seeds {
                        cells.push(
                            Scenario::new(*topology, plan.clone(), scheduler.clone(), *seed)
                                .waves(self.waves)
                                .blocks_per_process(self.blocks_per_process)
                                .txs_per_block(self.txs_per_block)
                                .snapshot_every(ALL_PRUNED_CADENCE)
                                .wal_everywhere(true),
                        );
                    }
                }
            }
        }
        (cells, skipped)
    }

    /// Runs every cell under the standard checker suite. Cells are
    /// independent deterministic executions, so they are spread across a
    /// worker pool; the report lists them in sweep order regardless.
    pub fn run(&self) -> MatrixReport {
        let (cells, skipped_unfit) = self.scenarios_and_skips();
        let statuses = run_cells(&cells);
        MatrixReport { cells: cells.into_iter().zip(statuses).collect(), skipped_unfit }
    }
}

/// Executes cells on a worker pool (one worker per available core, capped by
/// the cell count) and returns their statuses in input order.
fn run_cells(cells: &[Scenario]) -> Vec<CellStatus> {
    let run_one = |scenario: &Scenario| match run_and_check_all(scenario) {
        Ok(outcome) => CellStatus::Passed(CellStats::from_outcome(&outcome)),
        Err(failure) if failure.check == "build" => CellStatus::Unbuildable,
        Err(failure) => CellStatus::Failed(Box::new(failure)),
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, cells.len().max(1));
    if workers <= 1 {
        return cells.iter().map(run_one).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut statuses: Vec<Option<CellStatus>> = vec![None; cells.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= cells.len() {
                            return local;
                        }
                        local.push((i, run_one(&cells[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, status) in handle.join().expect("matrix worker panicked") {
                statuses[i] = Some(status);
            }
        }
    });
    statuses.into_iter().map(|s| s.expect("every cell executed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_matrix_covers_the_acceptance_axes() {
        let m = Matrix::smoke();
        let families: std::collections::HashSet<_> =
            m.topologies.iter().map(|t| t.family()).collect();
        assert!(families.len() >= 3, "≥3 topology families");
        assert!(m.fault_plans.len() >= 3, "≥3 fault plans");
        assert!(m.schedulers.len() >= 2, "≥2 schedulers");
        assert!(m.seeds.len() >= 2, "multiple seeds");
        assert!(
            m.fault_plans.iter().any(|p| p.restarts().next().is_some()),
            "tier-1 matrix must sweep the crash-restart axis"
        );
        // The adversarial-recovery axes (this PR's tentpole) stay covered.
        let cells = m.scenarios();
        assert!(
            cells.iter().any(|s| {
                s.faults.restarts().next().is_some()
                    && s.faults.byzantine().any(|(_, a)| a == ByzAttack::ForgeFetchReplies)
            }),
            "no cell with a Byzantine peer lying to a recovering process"
        );
        assert!(
            cells.iter().any(|s| s.faults.byz_restarts().next().is_some()),
            "no cell with a Byzantine process lying during its own recovery"
        );
        assert!(
            cells.iter().any(|s| s.storage.is_powerloss() && s.faults.restarts().next().is_some()),
            "no powerloss-injected restart cell"
        );
        assert!(
            cells.iter().any(|s| s.snapshot_every == 0 && s.faults.restarts().next().is_some()),
            "the never-snapshot cadence edge is not swept"
        );
        assert!(
            cells.iter().any(|s| s.scheduler.needs_flush()),
            "no hard-starvation scheduler cell"
        );
        // The all-pruned delivered-state-transfer axis (this PR's tentpole):
        // a deep laggard with every peer pruning, with and without a
        // forged-state liar.
        assert!(
            cells.iter().any(|s| {
                s.wal_everywhere && s.prune_wal && s.faults.restarts().next().is_some()
            }),
            "no all-pruned deep-catch-up cell"
        );
        assert!(
            cells.iter().any(|s| {
                s.wal_everywhere
                    && s.faults.byzantine().any(|(_, a)| a == ByzAttack::ForgeStateOffers)
            }),
            "no forged-state-offer cell in an all-pruned sweep"
        );
    }

    #[test]
    fn full_matrix_crosses_attacks_with_every_scheduler_family() {
        // The ROADMAP once listed "Byzantine × Partition / TargetedDelay"
        // and "multi-attacker plans" as uncovered; pin the coverage so it
        // cannot silently regress.
        let m = Matrix::full();
        let cells = m.scenarios();
        for scheduler in ["partition", "targeted-delay", "fifo", "random", "latency", "starve"] {
            assert!(
                cells.iter().any(|s| {
                    s.scheduler.name() == scheduler && s.faults.byzantine().next().is_some()
                }),
                "no Byzantine cell under the {scheduler} scheduler"
            );
            assert!(
                cells.iter().any(|s| {
                    s.scheduler.name() == scheduler && s.faults.restarts().next().is_some()
                }),
                "no crash-restart cell under the {scheduler} scheduler"
            );
        }
        assert!(
            cells.iter().any(|s| s.faults.byzantine().count() >= 2),
            "no multi-attacker cell in the full matrix"
        );
        assert!(
            cells.iter().any(|s| {
                s.faults.byzantine().next().is_some()
                    && s.faults.assignments().iter().any(|(_, f)| matches!(f, Fault::Mute))
            }),
            "no equivocator+mute colluder cell in the full matrix"
        );
        // The persistence axis: every configured storage backend and
        // cadence appears on some restart cell (powerloss-mem lives in the
        // smoke matrix).
        for storage in ["mem", "file", "powerloss-file"] {
            assert!(
                cells.iter().any(|s| {
                    s.storage.name() == storage && s.faults.restarts().next().is_some()
                }),
                "no restart cell on the {storage} backend"
            );
        }
        assert!(cells.iter().any(|s| s.snapshot_every == 0));
        // Both-recovering: an honest restart racing a Byzantine restart.
        assert!(
            cells.iter().any(|s| {
                s.faults.restarts().next().is_some() && s.faults.byz_restarts().next().is_some()
            }),
            "no cell with honest and Byzantine recovery racing each other"
        );
        // Restart under churn (once an open ROADMAP gap): overlapping down
        // windows, and a restart whose recovery races the partition heal.
        assert!(
            cells.iter().any(|s| s.faults.restarts().count() >= 2),
            "no overlapping-down-window churn cell"
        );
        assert!(
            cells.iter().any(|s| {
                s.scheduler.name() == "partition"
                    && s.faults.assignments().iter().any(|(_, f)| {
                        matches!(f, Fault::Restart { recover_at, .. } if *recover_at == 610)
                    })
            }),
            "no restart-races-the-heal cell under the partition scheduler"
        );
        // All-pruned deep catch-up, including the lying-recoverer variant.
        assert!(
            cells.iter().any(|s| s.wal_everywhere && s.faults.restarts().next().is_some()),
            "no all-pruned cell in the full sweep"
        );
        assert!(
            cells.iter().any(|s| {
                s.wal_everywhere
                    && s.faults.byz_restarts().any(|(_, a)| a == ByzAttack::ForgeStateOffers)
            }),
            "no all-pruned cell with a forged-state liar that itself restarts"
        );
    }

    #[test]
    fn unfit_plans_are_counted_not_silently_dropped() {
        let m = Matrix {
            topologies: vec![TopologySpec::UniformThreshold { n: 4, f: 1 }],
            fault_plans: vec![FaultPlan::crash_from_start([9])],
            schedulers: vec![SchedulerSpec::Fifo],
            seeds: vec![1, 2],
            waves: 3,
            blocks_per_process: 1,
            txs_per_block: 1,
            snapshot_cadences: vec![64],
            restart_storages: vec![StorageSpec::Mem],
            all_pruned_plans: vec![],
        };
        let (cells, skipped) = m.scenarios_and_skips();
        assert!(cells.is_empty());
        assert_eq!(skipped, 2);
    }

    #[test]
    fn tiny_matrix_runs_and_reports() {
        let m = Matrix {
            topologies: vec![TopologySpec::UniformThreshold { n: 4, f: 1 }],
            fault_plans: vec![FaultPlan::none(), FaultPlan::crash_from_start([3])],
            schedulers: vec![SchedulerSpec::Fifo],
            seeds: vec![1],
            waves: 4,
            blocks_per_process: 1,
            txs_per_block: 1,
            snapshot_cadences: vec![64],
            restart_storages: vec![StorageSpec::Mem],
            all_pruned_plans: vec![],
        };
        let report = m.run();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.passed(), 2, "{}", report.render());
        report.assert_all_passed();
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn wal_variants_cross_at_the_defaults_not_the_full_product() {
        let m = Matrix {
            topologies: vec![TopologySpec::UniformThreshold { n: 4, f: 1 }],
            fault_plans: vec![
                FaultPlan::none(),
                FaultPlan::none().with(1, Fault::Restart { crash_at: 10, recover_at: 100 }),
            ],
            schedulers: vec![SchedulerSpec::Fifo],
            seeds: vec![1],
            waves: 3,
            blocks_per_process: 1,
            txs_per_block: 1,
            snapshot_cadences: vec![64, 0],
            restart_storages: vec![StorageSpec::Mem, StorageSpec::File],
            all_pruned_plans: vec![],
        };
        let cells = m.scenarios();
        // 1 (fault-free, defaults only) + restart plan × (2 cadences + 1
        // extra storage) = 4.
        assert_eq!(cells.len(), 4);
        let restart_cells: Vec<_> =
            cells.iter().filter(|s| s.faults.restarts().next().is_some()).collect();
        assert_eq!(restart_cells.len(), 3);
        assert!(restart_cells
            .iter()
            .any(|s| s.snapshot_every == 0 && s.storage == StorageSpec::Mem));
        assert!(restart_cells
            .iter()
            .any(|s| s.snapshot_every == 64 && s.storage == StorageSpec::File));
    }
}
