//! Wave commitment and total ordering — the `waveReady` / `orderVertices`
//! logic shared by both DAG-Rider variants (Algorithm 6, lines 146–169).
//!
//! The two protocols differ only in their *commit rule* (which round-4
//! vertices must reach the leader by strong paths); everything downstream —
//! the leader stack walk-back, the deterministic causal-history delivery —
//! is identical and lives here.

use std::collections::HashMap;

use asym_crypto::CommonCoin;
use asym_dag::{round_of_wave, DagStore, VertexId, WaveId};

use crate::types::{Block, OrderedVertex};

/// Why a wave boundary did not commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The elected leader's round-1 vertex is not (yet) in the local DAG.
    NoLeaderVertex,
    /// The leader is present but the commit rule was not satisfied.
    RuleNotMet,
    /// The wave committed; `ordered` vertices were atomically delivered.
    Committed {
        /// Number of vertices delivered by this commit (including
        /// walked-back waves).
        ordered: usize,
    },
}

/// Per-process commitment state: the last decided wave, the set of already
/// delivered vertices, and the commit log.
#[derive(Clone, Debug, Default)]
pub struct WaveCommitter {
    decided_wave: WaveId,
    /// Every delivered vertex, tagged with the wave whose commit ordered it
    /// — the per-wave grouping delivered-state transfer ships to deep
    /// laggards.
    delivered: HashMap<VertexId, WaveId>,
    /// `(wave, leader)` pairs in commit order — the experiment harness reads
    /// wave gaps from this log.
    log: Vec<(WaveId, VertexId)>,
}

impl WaveCommitter {
    /// Creates a fresh committer (no wave decided).
    pub fn new() -> Self {
        WaveCommitter::default()
    }

    /// Reconstructs a committer from recovered durable state — the
    /// crash-recovery path. `delivered` is the set of already-delivered
    /// vertices, each tagged with its ordering wave (the guarantee that
    /// nothing is delivered twice across a restart); `log` is the commit
    /// log in commit order.
    ///
    /// # Panics
    ///
    /// Panics if `log` waves are not strictly increasing or exceed
    /// `decided_wave` — state no correct process can have persisted.
    pub fn from_parts(
        decided_wave: WaveId,
        delivered: impl IntoIterator<Item = (VertexId, WaveId)>,
        log: Vec<(WaveId, VertexId)>,
    ) -> Self {
        for w in log.windows(2) {
            assert!(w[0].0 < w[1].0, "recovered commit log must be strictly increasing");
        }
        if let Some((last, _)) = log.last() {
            assert!(*last <= decided_wave, "recovered log extends past the decided wave");
        }
        WaveCommitter { decided_wave, delivered: delivered.into_iter().collect(), log }
    }

    /// The last decided wave (0 = none).
    pub fn decided_wave(&self) -> WaveId {
        self.decided_wave
    }

    /// The commit log: directly committed leaders, in order.
    pub fn log(&self) -> &[(WaveId, VertexId)] {
        &self.log
    }

    /// Number of vertices delivered so far.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// `true` if the identified vertex has been atomically delivered.
    pub fn is_delivered(&self, vid: VertexId) -> bool {
        self.delivered.contains_key(&vid)
    }

    /// The delivered vertices, in no particular order (invariant checkers
    /// cross-reference this against the output stream and the DAG).
    pub fn delivered(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.delivered.keys().copied()
    }

    /// The delivered vertices with the wave whose commit ordered each, in
    /// no particular order — the durable form the WAL snapshot persists.
    pub fn delivered_waves(&self) -> impl Iterator<Item = (VertexId, WaveId)> + '_ {
        self.delivered.iter().map(|(id, w)| (*id, *w))
    }

    /// The vertices ordered by wave `w`'s commit, in the deterministic
    /// `(round, source)` delivery order — one transferable wave segment.
    /// Delivery within a commit walks `causal_history` (sorted) skipping
    /// already-delivered vertices, so this reconstruction *is* the original
    /// delivery order, bit for bit, at every honest process.
    pub fn delivered_in_wave(&self, w: WaveId) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> =
            self.delivered.iter().filter(|(_, dw)| **dw == w).map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids
    }

    /// Installs one transferred wave segment: appends `(wave, leader)` to
    /// the commit log, ratchets the decided wave, and marks `deliveries`
    /// delivered — returning only the entries that were *not* already
    /// delivered (the caller outputs exactly those, so a state install can
    /// never re-deliver). The caller has already certified the segment
    /// against its own quorum system.
    ///
    /// # Panics
    ///
    /// Panics if `wave` is not beyond the decided wave — installs must be
    /// contiguous and forward-only.
    pub fn install_wave(
        &mut self,
        wave: WaveId,
        leader: VertexId,
        deliveries: &[(VertexId, Block)],
    ) -> Vec<(VertexId, Block)> {
        assert!(wave > self.decided_wave, "install_wave({wave}) at decided {}", self.decided_wave);
        self.decided_wave = wave;
        self.log.push((wave, leader));
        let mut fresh = Vec::new();
        for (id, block) in deliveries {
            if id.round == 0 || self.delivered.contains_key(id) {
                continue;
            }
            self.delivered.insert(*id, wave);
            fresh.push((*id, block.clone()));
        }
        fresh
    }

    /// Runs `waveReady(w)`: elects the leader by the common coin, applies
    /// `commit_rule`, and on success walks the leader stack back to the last
    /// decided wave and delivers causal histories in deterministic order.
    ///
    /// `commit_rule(dag, leader)` decides whether the leader vertex may be
    /// committed — the only point where the two protocol variants differ.
    pub fn wave_ready(
        &mut self,
        dag: &DagStore<Block>,
        coin: &CommonCoin,
        w: WaveId,
        commit_rule: impl Fn(&DagStore<Block>, VertexId) -> bool,
        out: &mut Vec<OrderedVertex>,
    ) -> CommitOutcome {
        debug_assert!(w > self.decided_wave, "waveReady({w}) after deciding {}", self.decided_wave);
        let Some(leader) = self.wave_leader(dag, coin, w) else {
            return CommitOutcome::NoLeaderVertex;
        };
        if !commit_rule(dag, leader) {
            return CommitOutcome::RuleNotMet;
        }

        // Lines 150–156: walk back through earlier undecided waves, pushing
        // every leader connected by a strong path.
        let mut stack: Vec<(WaveId, VertexId)> = vec![(w, leader)];
        let mut cur = leader;
        for w_prime in (self.decided_wave + 1..w).rev() {
            if let Some(prev_leader) = self.wave_leader(dag, coin, w_prime) {
                if dag.strong_path(cur, prev_leader) {
                    stack.push((w_prime, prev_leader));
                    cur = prev_leader;
                }
            }
        }
        self.decided_wave = w;

        // Lines 163–169: deliver each leader's yet-undelivered causal
        // history in deterministic (round, source) order; skip genesis.
        let mut ordered = 0;
        while let Some((wave, leader)) = stack.pop() {
            self.log.push((wave, leader));
            for vid in dag.causal_history(leader) {
                if vid.round == 0 || self.delivered.contains_key(&vid) {
                    continue;
                }
                self.delivered.insert(vid, wave);
                let vertex = dag.get(vid).expect("causal history vertices are stored");
                out.push(OrderedVertex {
                    id: vid,
                    block: vertex.block().clone(),
                    committed_in_wave: wave,
                });
                ordered += 1;
            }
        }
        CommitOutcome::Committed { ordered }
    }

    /// The leader *vertex* of wave `w` in this DAG, if present
    /// (`getWaveVertexLeader`).
    pub fn wave_leader(
        &self,
        dag: &DagStore<Block>,
        coin: &CommonCoin,
        w: WaveId,
    ) -> Option<VertexId> {
        let vid = VertexId::new(round_of_wave(w, 1), coin.leader(w));
        dag.contains(vid).then_some(vid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_dag::Vertex;
    use asym_quorum::{ProcessId, ProcessSet};
    use std::collections::HashSet;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// Full DAG over n processes, `rounds` rounds, everyone references all.
    fn full_dag(n: usize, rounds: u64) -> DagStore<Block> {
        let mut dag = DagStore::with_genesis(n, Block::default());
        for r in 1..=rounds {
            for i in 0..n {
                dag.insert(Vertex::new(
                    pid(i),
                    r,
                    Block::new(vec![r * 100 + i as u64]),
                    ProcessSet::full(n),
                    vec![],
                ))
                .unwrap();
            }
        }
        dag
    }

    #[test]
    fn commit_on_full_dag_orders_everything_once() {
        let n = 4;
        let dag = full_dag(n, 4);
        let coin = CommonCoin::new(1, n);
        let mut wc = WaveCommitter::new();
        let mut out = Vec::new();
        let outcome = wc.wave_ready(&dag, &coin, 1, |_, _| true, &mut out);
        match outcome {
            CommitOutcome::Committed { ordered } => {
                // Leader is a round-1 vertex: its causal history is itself +
                // genesis; genesis skipped → exactly 1 vertex ordered.
                assert_eq!(ordered, 1);
                assert_eq!(out.len(), 1);
                assert_eq!(out[0].committed_in_wave, 1);
                assert_eq!(out[0].id.round, 1);
            }
            other => panic!("expected commit, got {other:?}"),
        }
        assert_eq!(wc.decided_wave(), 1);
        assert_eq!(wc.log().len(), 1);
    }

    #[test]
    fn rule_not_met_and_missing_leader() {
        let n = 4;
        let dag = full_dag(n, 4);
        let coin = CommonCoin::new(1, n);
        let mut wc = WaveCommitter::new();
        let mut out = Vec::new();
        assert_eq!(
            wc.wave_ready(&dag, &coin, 1, |_, _| false, &mut out),
            CommitOutcome::RuleNotMet
        );
        assert!(out.is_empty());
        assert_eq!(wc.decided_wave(), 0);
        // Wave 2 leader lives in round 5 — absent from a 4-round DAG.
        assert_eq!(
            wc.wave_ready(&dag, &coin, 2, |_, _| true, &mut out),
            CommitOutcome::NoLeaderVertex
        );
    }

    #[test]
    fn walk_back_commits_skipped_waves_in_order() {
        let n = 4;
        let dag = full_dag(n, 9); // waves 1 and 2 complete, round 9 = wave 3 start
        let coin = CommonCoin::new(7, n);
        let mut wc = WaveCommitter::new();
        let mut out = Vec::new();
        // Skip wave 1 (pretend its rule failed), then commit wave 2: the
        // walk-back must pick up wave 1's leader (full DAG ⇒ strong path).
        assert_eq!(
            wc.wave_ready(&dag, &coin, 1, |_, _| false, &mut out),
            CommitOutcome::RuleNotMet
        );
        let outcome = wc.wave_ready(&dag, &coin, 2, |_, _| true, &mut out);
        assert!(matches!(outcome, CommitOutcome::Committed { .. }));
        assert_eq!(wc.log().len(), 2, "wave 1 committed via walk-back");
        assert_eq!(wc.log()[0].0, 1);
        assert_eq!(wc.log()[1].0, 2);
        // Ordering: all wave-1-leader history delivered before the rest.
        let first_wave: Vec<u64> = out.iter().map(|o| o.committed_in_wave).collect();
        let mut sorted = first_wave.clone();
        sorted.sort();
        assert_eq!(first_wave, sorted, "waves delivered oldest-first");
    }

    #[test]
    fn no_double_delivery_across_commits() {
        let n = 4;
        let dag = full_dag(n, 9);
        let coin = CommonCoin::new(3, n);
        let mut wc = WaveCommitter::new();
        let mut out = Vec::new();
        wc.wave_ready(&dag, &coin, 1, |_, _| true, &mut out);
        wc.wave_ready(&dag, &coin, 2, |_, _| true, &mut out);
        let mut seen = HashSet::new();
        for o in &out {
            assert!(seen.insert(o.id), "vertex {} delivered twice", o.id);
        }
        assert_eq!(wc.delivered_count(), out.len());
    }

    #[test]
    fn delivered_waves_group_the_delivery_order() {
        // Wave tags recorded by commits must reconstruct each wave's
        // delivery sequence exactly (sorted (round, source) within the
        // wave) — the bit-for-bit property state-transfer segments rely on.
        let n = 4;
        let dag = full_dag(n, 9);
        let coin = CommonCoin::new(3, n);
        let mut wc = WaveCommitter::new();
        let mut out = Vec::new();
        wc.wave_ready(&dag, &coin, 1, |_, _| true, &mut out);
        wc.wave_ready(&dag, &coin, 2, |_, _| true, &mut out);
        for w in [1, 2] {
            let expected: Vec<VertexId> =
                out.iter().filter(|o| o.committed_in_wave == w).map(|o| o.id).collect();
            assert!(!expected.is_empty());
            assert_eq!(wc.delivered_in_wave(w), expected, "wave {w} order must round-trip");
        }
        assert_eq!(wc.delivered_waves().count(), out.len());
    }

    #[test]
    fn install_wave_extends_the_log_and_skips_known_deliveries() {
        let mut wc = WaveCommitter::new();
        let l1 = VertexId::new(1, pid(2));
        let a = VertexId::new(1, pid(0));
        let fresh = wc.install_wave(1, l1, &[(a, Block::new(vec![1])), (l1, Block::new(vec![2]))]);
        assert_eq!(fresh.len(), 2);
        assert_eq!(wc.decided_wave(), 1);
        assert_eq!(wc.log(), &[(1, l1)]);
        // A later install never re-delivers what is already known —
        // including entries the previous install brought in.
        let l3 = VertexId::new(9, pid(1));
        let b = VertexId::new(2, pid(3));
        let fresh = wc.install_wave(3, l3, &[(a, Block::new(vec![1])), (b, Block::new(vec![9]))]);
        assert_eq!(fresh, vec![(b, Block::new(vec![9]))]);
        assert_eq!(wc.decided_wave(), 3);
        assert_eq!(wc.delivered_in_wave(3), vec![b]);
        assert_eq!(wc.delivered_in_wave(1), vec![a, l1]);
    }

    #[test]
    #[should_panic(expected = "install_wave")]
    fn install_wave_must_move_forward() {
        let mut wc = WaveCommitter::new();
        wc.install_wave(2, VertexId::new(5, pid(0)), &[]);
        wc.install_wave(2, VertexId::new(5, pid(0)), &[]);
    }

    #[test]
    fn deterministic_across_processes() {
        // Two committers over the same DAG and coin produce identical output
        // sequences even if one decides wave-by-wave and the other jumps.
        let n = 4;
        let dag = full_dag(n, 9);
        let coin = CommonCoin::new(9, n);

        let mut a = WaveCommitter::new();
        let mut out_a = Vec::new();
        a.wave_ready(&dag, &coin, 1, |_, _| true, &mut out_a);
        a.wave_ready(&dag, &coin, 2, |_, _| true, &mut out_a);

        let mut b = WaveCommitter::new();
        let mut out_b = Vec::new();
        b.wave_ready(&dag, &coin, 1, |_, _| false, &mut out_b); // skipped
        b.wave_ready(&dag, &coin, 2, |_, _| true, &mut out_b);

        let ids_a: Vec<VertexId> = out_a.iter().map(|o| o.id).collect();
        let ids_b: Vec<VertexId> = out_b.iter().map(|o| o.id).collect();
        assert_eq!(ids_a, ids_b, "total order must not depend on commit path");
    }
}
