//! DAG-Rider and **asymmetric DAG-Rider**: randomized asynchronous Byzantine
//! atomic broadcast over symmetric and asymmetric quorum systems — the core
//! contribution of *"DAG-based Consensus with Asymmetric Trust"*
//! (Amores-Sesar, Cachin, Villacis, Zanolini; PODC 2025).
//!
//! * [`DagRider`] — the symmetric baseline (Keidar et al.): `n − f` round
//!   advancement, `n − f` commit rule;
//! * [`AsymDagRider`] — Algorithms 4–6: quorum-based round advancement, the
//!   per-wave ACK/READY/CONFIRM control ladder that turns every wave into an
//!   execution of the constant-round asymmetric gather, and the
//!   any-process-quorum commit rule. Commits are expected every
//!   `|P| / c(Q)` waves (Lemma 4.4);
//! * shared substrate: [`DagCore`] (vertex lifecycle), [`WaveCommitter`]
//!   (leader-stack ordering), [`Block`] / [`OrderedVertex`] /
//!   [`RiderConfig`] / [`RiderMetrics`];
//! * crash recovery: [`AsymDagRider::with_storage`] attaches a [`DagLog`]
//!   (an `asym-storage` write-ahead log of inserts, confirms, decisions and
//!   deliveries); after a
//!   [`FaultMode::RestartAfter`](asym_sim::FaultMode::RestartAfter) window
//!   the process replays the log, re-announces its confirmed waves, revives
//!   its stalled broadcasts and fetches missed rounds from peers — without
//!   ever delivering a block twice;
//! * deep catch-up: when every peer has pruned below a laggard's floor,
//!   the [`transfer`] module ships the delivered prefix as certified
//!   outputs (`StateOffer`/`StateRequest`/`StateChunk`), kernel-matched
//!   against the receiver's own quorum system. The full persistence and
//!   recovery lifecycle is documented in `docs/ARCHITECTURE.md` at the
//!   repository root.
//!
//! Both protocols implement [`asym_sim::Protocol`]: inputs are blocks
//! (`aa-broadcast`), outputs are [`OrderedVertex`] events (`aa-deliver`) in
//! an identical total order at every (guild) process.
//!
//! ```
//! use asym_core::{AsymDagRider, Block, RiderConfig};
//! use asym_quorum::{topology, ProcessId};
//! use asym_sim::{scheduler, Simulation};
//!
//! let t = topology::uniform_threshold(4, 1);
//! let config = RiderConfig { max_waves: 4, ..Default::default() };
//! let procs: Vec<AsymDagRider> = (0..4)
//!     .map(|i| AsymDagRider::new(ProcessId::new(i), t.quorums.clone(), 7, config))
//!     .collect();
//! let mut sim = Simulation::new(procs, scheduler::Random::new(1));
//! sim.input(ProcessId::new(0), Block::new(vec![1, 2, 3]));
//! assert!(sim.run(50_000_000).quiescent);
//! assert!(!sim.outputs(ProcessId::new(0)).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asym_rider;
mod dagcore;
mod ordering;
mod rider;
pub mod transfer;
mod types;

pub use asym_rider::{AsymDagRider, AsymRiderMsg};
pub use dagcore::{DagCore, DagLog};
pub use ordering::{CommitOutcome, WaveCommitter};
pub use rider::{DagRider, RiderMsg};
pub use transfer::{TransferState, TransferStats, WaveSegment};
pub use types::{Block, OrderedVertex, RiderConfig, RiderMetrics, Tx};
