//! **Symmetric DAG-Rider** (Keidar et al., PODC 2021) — the baseline the
//! paper generalizes (§4.1).
//!
//! Rounds advance once `n − f` vertices of the current round are in the local
//! DAG; every fourth round closes a *wave*, whose coin-elected round-1 leader
//! commits when `n − f` round-4 vertices reach it by strong paths. Committed
//! leaders atomically deliver their causal history in a deterministic order.

use asym_broadcast::BcastMsg;
use asym_crypto::CommonCoin;
use asym_dag::{round_of_wave, wave_of_round, DagStore, Vertex, VertexId, WaveId};
use asym_quorum::{AsymQuorumSystem, ProcessId, QuorumSystem};
use asym_sim::{Context, Protocol};

use crate::dagcore::DagCore;
use crate::ordering::{CommitOutcome, WaveCommitter};
use crate::types::{Block, OrderedVertex, RiderConfig, RiderMetrics};

/// Wire messages of symmetric DAG-Rider: vertex dissemination only (ordering
/// is zero-message, driven by the DAG structure and the shared coin).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RiderMsg {
    /// Reliable-broadcast layer carrying DAG vertices.
    Arb(BcastMsg<Vertex<Block>>),
}

/// One process of symmetric DAG-Rider.
///
/// *Input*: blocks to `aa-broadcast`. *Output*: [`OrderedVertex`] events in
/// atomic-broadcast order.
#[derive(Clone, Debug)]
pub struct DagRider {
    core: DagCore,
    committer: WaveCommitter,
    coin: CommonCoin,
    n: usize,
    f: usize,
}

impl DagRider {
    /// Creates a symmetric DAG-Rider process for the `f`-of-`n` threshold
    /// model; `coin_seed` must be shared by all processes of the cluster.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f`.
    pub fn new(me: ProcessId, n: usize, f: usize, coin_seed: u64, config: RiderConfig) -> Self {
        assert!(n > 3 * f, "DAG-Rider requires n > 3f");
        let quorums = AsymQuorumSystem::uniform(QuorumSystem::threshold(n, n - f));
        DagRider {
            core: DagCore::new(me, quorums, config),
            committer: WaveCommitter::new(),
            coin: CommonCoin::new(coin_seed, n),
            n,
            f,
        }
    }

    /// The local DAG (observer inspection).
    pub fn dag(&self) -> &DagStore<Block> {
        self.core.dag()
    }

    /// Execution counters.
    pub fn metrics(&self) -> RiderMetrics {
        self.core.metrics()
    }

    /// The last decided wave.
    pub fn decided_wave(&self) -> WaveId {
        self.committer.decided_wave()
    }

    /// Commit log of `(wave, leader)` pairs.
    pub fn commit_log(&self) -> &[(WaveId, VertexId)] {
        self.committer.log()
    }

    fn quota(&self) -> usize {
        self.n - self.f
    }

    /// The DAG-Rider commit rule: `n − f` round-4 vertices with strong paths
    /// to the leader.
    fn commit_rule(dag: &DagStore<Block>, leader: VertexId, quota: usize) -> bool {
        let w = wave_of_round(leader.round);
        let r4 = round_of_wave(w, 4);
        let committers = dag
            .sources_in_round(r4)
            .iter()
            .filter(|p| dag.strong_path(VertexId::new(r4, *p), leader))
            .count();
        committers >= quota
    }

    fn wave_ready(&mut self, w: WaveId, ctx: &mut Context<'_, RiderMsg, OrderedVertex>) {
        if w <= self.committer.decided_wave() {
            return;
        }
        self.core.metrics_mut().waves_attempted += 1;
        let quota = self.quota();
        let mut out = Vec::new();
        let outcome = self.committer.wave_ready(
            self.core.dag(),
            &self.coin,
            w,
            |dag, leader| Self::commit_rule(dag, leader, quota),
            &mut out,
        );
        match outcome {
            CommitOutcome::NoLeaderVertex => self.core.metrics_mut().waves_skipped_no_leader += 1,
            CommitOutcome::RuleNotMet => self.core.metrics_mut().waves_skipped_rule += 1,
            CommitOutcome::Committed { .. } => self.core.metrics_mut().waves_committed += 1,
        }
        for o in out {
            self.core.metrics_mut().vertices_ordered += 1;
            self.core.metrics_mut().txs_ordered += o.block.txs.len() as u64;
            ctx.output(o);
        }
    }

    fn advance(&mut self, ctx: &mut Context<'_, RiderMsg, OrderedVertex>) {
        loop {
            self.core.drain_buffer();
            let cur = self.core.round();
            if cur >= self.core.config().max_round() {
                break;
            }
            if self.core.dag().sources_in_round(cur).len() < self.quota() {
                break;
            }
            if cur > 0 && cur.is_multiple_of(4) {
                self.wave_ready(cur / 4, ctx);
            }
            for m in self.core.advance_and_broadcast(cur + 1) {
                ctx.broadcast(RiderMsg::Arb(m));
            }
        }
    }
}

impl Protocol for DagRider {
    type Msg = RiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.advance(ctx);
    }

    fn on_input(&mut self, block: Block, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.core.enqueue_block(block);
        self.advance(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        let RiderMsg::Arb(inner) = msg;
        let quota = self.quota();
        let (out, _fresh) = self.core.handle_arb(from, inner, |v| v.strong_edges().len() >= quota);
        for m in out {
            ctx.broadcast(RiderMsg::Arb(m));
        }
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_sim::{scheduler, FaultMode, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn cluster(n: usize, f: usize, waves: WaveId) -> Vec<DagRider> {
        let config = RiderConfig { max_waves: waves, ..Default::default() };
        (0..n).map(|i| DagRider::new(pid(i), n, f, 42, config)).collect()
    }

    fn check_total_order(outputs: &[Vec<OrderedVertex>]) {
        // Prefix consistency: any two output sequences agree on their common
        // prefix.
        for a in outputs {
            for b in outputs {
                let common = a.len().min(b.len());
                for k in 0..common {
                    assert_eq!(a[k].id, b[k].id, "total order violated at position {k}");
                }
            }
        }
    }

    #[test]
    fn four_processes_commit_and_agree() {
        for seed in 0..5 {
            let mut sim = Simulation::new(cluster(4, 1, 6), scheduler::Random::new(seed));
            for i in 0..4 {
                sim.input(pid(i), Block::new(vec![i as u64]));
            }
            let report = sim.run(10_000_000);
            assert!(report.quiescent, "seed {seed}");
            let outputs: Vec<Vec<OrderedVertex>> =
                (0..4).map(|i| sim.outputs(pid(i)).to_vec()).collect();
            check_total_order(&outputs);
            // Someone must have committed something in 6 waves.
            assert!(outputs.iter().any(|o| !o.is_empty()), "seed {seed}: no commits in 6 waves");
            // Validity: the injected blocks appear in every (long-enough) output.
            for i in 0..4 {
                let m = sim.process(pid(i)).metrics();
                assert!(m.waves_committed >= 1, "seed {seed} process {i}: {m:?}");
            }
        }
    }

    #[test]
    fn injected_blocks_are_delivered() {
        let mut sim = Simulation::new(cluster(4, 1, 8), scheduler::Random::new(9));
        for i in 0..4 {
            sim.input(pid(i), Block::new(vec![1000 + i as u64]));
        }
        assert!(sim.run(10_000_000).quiescent);
        for i in 0..4 {
            let delivered: Vec<u64> =
                sim.outputs(pid(i)).iter().flat_map(|o| o.block.txs.clone()).collect();
            for tx in 1000..1004 {
                assert!(delivered.contains(&tx), "process {i} missing tx {tx}");
            }
        }
    }

    #[test]
    fn tolerates_f_crashed_processes() {
        for seed in 0..3 {
            let mut sim = Simulation::new(cluster(7, 2, 6), scheduler::Random::new(seed))
                .with_fault(pid(5), FaultMode::CrashedFromStart)
                .with_fault(pid(6), FaultMode::CrashedFromStart);
            for i in 0..5 {
                sim.input(pid(i), Block::new(vec![i as u64]));
            }
            assert!(sim.run(50_000_000).quiescent, "seed {seed}");
            let outputs: Vec<Vec<OrderedVertex>> =
                (0..5).map(|i| sim.outputs(pid(i)).to_vec()).collect();
            check_total_order(&outputs);
            assert!(outputs.iter().any(|o| !o.is_empty()), "seed {seed}: no progress");
        }
    }

    #[test]
    fn commit_rate_approximates_two_thirds() {
        // The leader is in the common core with probability ≥ 2/3 in the
        // threshold model; over many waves most should commit directly.
        let mut sim = Simulation::new(cluster(4, 1, 16), scheduler::Fifo);
        assert!(sim.run(50_000_000).quiescent);
        let m = sim.process(pid(0)).metrics();
        assert!(m.waves_attempted >= 12, "{m:?}");
        let rate = m.waves_committed as f64 / m.waves_attempted as f64;
        assert!(rate > 0.5, "commit rate {rate} suspiciously low: {m:?}");
    }

    #[test]
    fn no_duplicates_in_output() {
        let mut sim = Simulation::new(cluster(4, 1, 6), scheduler::Random::new(3));
        assert!(sim.run(10_000_000).quiescent);
        for i in 0..4 {
            let mut seen = std::collections::HashSet::new();
            for o in sim.outputs(pid(i)) {
                assert!(seen.insert(o.id), "process {i} delivered {} twice", o.id);
            }
        }
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn rejects_unsound_threshold() {
        let _ = DagRider::new(pid(0), 9, 3, 1, RiderConfig::default());
    }
}
