//! **Asymmetric DAG-Rider** — Algorithms 4, 5 and 6 of the paper: the first
//! randomized asynchronous DAG-based consensus protocol with asymmetric
//! quorums.
//!
//! Every 4-round wave executes the constant-round asymmetric gather
//! (Algorithm 3) *structurally*: round 1 plays the candidate-`S` role, the
//! round-2 vertices are the `DISTRIBUTE_S` step (each delivery is ACKed,
//! Algorithm 6 line 142), the transition into round 3 — the `DISTRIBUTE_T`
//! step — is gated on the ACK → READY → CONFIRM ladder (Algorithm 5), and
//! round 4 corresponds to the `U` sets. The gather guarantee yields a common
//! core of round-1 vertices in every wave, so the coin-elected leader is
//! committable with probability at least `c(Q)/|P|` (Lemmas 4.3, 4.4).
//!
//! Differences from the symmetric baseline, per the paper §4.3:
//!
//! * **round change** — a round completes when the vertices of one of *my
//!   quorums* are in my DAG (not `n − f` vertices);
//! * **round 2 → 3 gating** — additionally requires CONFIRMs from one of my
//!   quorums (`tReady`);
//! * **commit rule** — the leader commits when all round-4 vertices of some
//!   quorum `Q ∈ Q_j` (for *any* process `j`, Algorithm 6 line 148) have
//!   strong paths to it.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use asym_broadcast::BcastMsg;
use asym_crypto::CommonCoin;
use asym_dag::{
    position_in_wave, round_of_wave, wave_of_round, DagStore, Round, Vertex, VertexId, WaveId,
};
use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};
use asym_sim::{Context, Protocol};
use asym_storage::{DagEvent, RecoveredState, StorageError};

use crate::dagcore::{DagCore, DagLog};
use crate::ordering::{CommitOutcome, WaveCommitter};
use crate::transfer::{TransferState, TransferStats, WaveSegment};
use crate::types::{Block, OrderedVertex, RiderConfig, RiderMetrics};

/// Wire messages of asymmetric DAG-Rider: the arb layer carrying vertices,
/// plus the per-wave ACK/READY/CONFIRM control ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsymRiderMsg {
    /// Asymmetric-reliable-broadcast layer carrying DAG vertices.
    Arb(BcastMsg<Vertex<Block>>),
    /// Acknowledges the arb-delivery of the sender's round-2 vertex of
    /// `wave` (point-to-point to the vertex creator).
    Ack {
        /// Wave the acknowledged round-2 vertex belongs to.
        wave: WaveId,
    },
    /// The sender received ACKs from one of its quorums for `wave`.
    Ready {
        /// Wave this readiness concerns.
        wave: WaveId,
    },
    /// The sender received READYs from a quorum (or CONFIRMs from a kernel)
    /// for `wave`.
    Confirm {
        /// Wave this confirmation concerns.
        wave: WaveId,
    },
    /// A recovering process asks for every DAG vertex above `above_round`
    /// (plus the responder's confirmed waves) — the catch-up half of the
    /// crash-recovery protocol.
    Fetch {
        /// Only vertices in rounds strictly above this are requested.
        above_round: Round,
    },
    /// Point-to-point reply to [`AsymRiderMsg::Fetch`]: the responder's
    /// stored vertices above the requested round (parents first) and the
    /// waves it has CONFIRMed. Fetched vertices bypass reliable broadcast,
    /// so the requester only accepts a vertex once identical copies arrived
    /// from one of its kernels (a set intersecting all its quorums).
    FetchReply {
        /// Vertices from the responder's DAG, in `(round, source)` order.
        vertices: Vec<Vertex<Block>>,
        /// Waves for which the responder has broadcast CONFIRM.
        confirmed: Vec<WaveId>,
    },
    /// Sent alongside a [`AsymRiderMsg::FetchReply`] when the requested
    /// floor lies below the responder's pruning floor: the responder can no
    /// longer serve those rounds as DAG vertices, but offers the delivered
    /// prefix as certified outputs instead (delivered-state transfer — see
    /// [`crate::transfer`]).
    StateOffer {
        /// The responder can ship certified state through this wave.
        decided_wave: WaveId,
        /// The responder's pruning floor (rounds at or below may be gone).
        floor: Round,
    },
    /// A deep laggard accepting a [`AsymRiderMsg::StateOffer`]: asks for
    /// every decided wave above its own watermark.
    StateRequest {
        /// The requester's last decided wave.
        above_wave: WaveId,
    },
    /// Point-to-point reply to [`AsymRiderMsg::StateRequest`]: per-wave
    /// certified segments of the responder's delivered prefix. The
    /// requester installs a segment only after bit-identical copies arrive
    /// from one of **its own** kernels (≥ 1 honest corroborator under its
    /// trust assumption), so a lone equivocator cannot forge state.
    StateChunk {
        /// Decided waves above the requested watermark, in wave order.
        segments: Vec<WaveSegment>,
    },
}

#[derive(Clone, Debug, Default)]
struct WaveControl {
    acks: ProcessSet,
    readys: ProcessSet,
    confirms: ProcessSet,
    sent_ready: bool,
    sent_confirm: bool,
    t_ready: bool,
}

/// One process of asymmetric DAG-Rider (Algorithms 4–6).
///
/// *Input*: blocks to `aa-broadcast`. *Output*: [`OrderedVertex`] events in
/// atomic-broadcast order. All cluster members must share the same
/// `coin_seed` and asymmetric quorum system array.
#[derive(Clone, Debug)]
pub struct AsymDagRider {
    core: DagCore,
    quorums: AsymQuorumSystem,
    committer: WaveCommitter,
    coin: CommonCoin,
    control: HashMap<WaveId, WaveControl>,
    acked_vertices: HashSet<VertexId>,
    /// `true` once this process has restarted from its log at least once;
    /// enables the stalled-buffer refetch heuristic.
    recovering: bool,
    /// Fetched vertices awaiting identical copies from a kernel of mine
    /// (id → the distinct copies seen, each with who vouched for it; one
    /// vote per responder per id, so the list is bounded by `n` and a
    /// Byzantine first responder cannot veto the genuine copy).
    fetch_pending: HashMap<VertexId, Vec<(Vertex<Block>, ProcessSet)>>,
    /// The missing-parent set of the last refetch, to bound refetch traffic.
    last_missing: BTreeSet<VertexId>,
    /// `true` if the most recent fetch replies added vouching votes — the
    /// signal that one more refetch round may complete a kernel.
    fetch_progress: bool,
    /// Receiver-side delivered-state-transfer bookkeeping: per-wave segment
    /// votes awaiting kernel corroboration, plus activity counters.
    transfer: TransferState,
    /// Block payloads of delivered vertices absent from the DAG (pruned
    /// after delivery, or installed via state transfer) — what this process
    /// serves to deep laggards in place of the garbage-collected vertices.
    delivered_blocks: HashMap<VertexId, Block>,
}

impl AsymDagRider {
    /// Creates an asymmetric DAG-Rider process.
    pub fn new(
        me: ProcessId,
        quorums: AsymQuorumSystem,
        coin_seed: u64,
        config: RiderConfig,
    ) -> Self {
        let n = quorums.n();
        AsymDagRider {
            core: DagCore::new(me, quorums.clone(), config),
            quorums,
            committer: WaveCommitter::new(),
            coin: CommonCoin::new(coin_seed, n),
            control: HashMap::new(),
            acked_vertices: HashSet::new(),
            recovering: false,
            fetch_pending: HashMap::new(),
            last_missing: BTreeSet::new(),
            fetch_progress: false,
            transfer: TransferState::new(),
            delivered_blocks: HashMap::new(),
        }
    }

    /// Attaches a write-ahead log (builder-style): every DAG insertion,
    /// `tReady` milestone, wave decision and atomic delivery is persisted,
    /// and [`Protocol::on_recover`] rebuilds the process from it after a
    /// [`FaultMode::RestartAfter`](asym_sim::FaultMode::RestartAfter) crash.
    #[must_use]
    pub fn with_storage(mut self, log: DagLog) -> Self {
        self.core.set_log(log);
        self
    }

    /// The attached write-ahead log, if any (observer inspection — the
    /// scenario harness replays it to audit WAL/state equivalence).
    pub fn storage(&self) -> Option<&DagLog> {
        self.core.log()
    }

    /// Replays the attached log into recovered state without touching the
    /// live process — what a restart *would* rebuild right now.
    ///
    /// # Errors
    ///
    /// Propagates [`StorageError`] from the log (corruption, I/O).
    pub fn replay_storage(&self) -> Option<Result<RecoveredState<Block>, StorageError>> {
        let log = self.core.log()?;
        Some(log.replay(self.quorums.n(), self.core.me(), Block::default()))
    }

    /// `true` once this process has restarted from its log.
    pub fn has_recovered(&self) -> bool {
        self.recovering
    }

    /// The local DAG (observer inspection).
    pub fn dag(&self) -> &DagStore<Block> {
        self.core.dag()
    }

    /// Execution counters.
    pub fn metrics(&self) -> RiderMetrics {
        self.core.metrics()
    }

    /// The last decided wave.
    pub fn decided_wave(&self) -> WaveId {
        self.committer.decided_wave()
    }

    /// The wave-commitment state (observer inspection: commit log, decided
    /// wave, delivered-vertex set) — what the scenario harness's
    /// `delivery_bookkeeping` invariant checker audits.
    pub fn committer(&self) -> &WaveCommitter {
        &self.committer
    }

    /// Commit log of `(wave, leader)` pairs, in commit order.
    pub fn commit_log(&self) -> &[(WaveId, VertexId)] {
        self.committer.log()
    }

    /// Delivered-state-transfer activity counters (observer inspection —
    /// the scenario harness uses them to prove a deep laggard really
    /// recovered through state transfer rather than plain fetch).
    pub fn transfer_stats(&self) -> TransferStats {
        self.transfer.stats()
    }

    /// The transferable block residue: delivered vertices whose full
    /// vertex this process no longer (or never) holds, `(id, block)` sorted
    /// by id.
    pub fn delivered_block_residue(&self) -> Vec<(VertexId, Block)> {
        let mut v: Vec<(VertexId, Block)> =
            self.delivered_blocks.iter().map(|(id, b)| (*id, b.clone())).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// The asymmetric commit rule (Algorithm 6, line 148): all round-4
    /// vertices of some quorum of *any* process reach the leader by strong
    /// paths.
    fn commit_rule(quorums: &AsymQuorumSystem, dag: &DagStore<Block>, leader: VertexId) -> bool {
        let w = wave_of_round(leader.round);
        let r4 = round_of_wave(w, 4);
        let committers: ProcessSet = dag
            .sources_in_round(r4)
            .iter()
            .filter(|p| dag.strong_path(VertexId::new(r4, *p), leader))
            .collect();
        quorums.contains_quorum_for_any(&committers).is_some()
    }

    fn wave_ready(&mut self, w: WaveId, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        if w <= self.committer.decided_wave() {
            return;
        }
        self.core.metrics_mut().waves_attempted += 1;
        let quorums = self.quorums.clone();
        let mut out = Vec::new();
        let commits_before = self.committer.log().len();
        let outcome = self.committer.wave_ready(
            self.core.dag(),
            &self.coin,
            w,
            |dag, leader| Self::commit_rule(&quorums, dag, leader),
            &mut out,
        );
        match outcome {
            CommitOutcome::NoLeaderVertex => self.core.metrics_mut().waves_skipped_no_leader += 1,
            CommitOutcome::RuleNotMet => self.core.metrics_mut().waves_skipped_rule += 1,
            CommitOutcome::Committed { .. } => self.core.metrics_mut().waves_committed += 1,
        }
        // Persist the decision and every delivery *before* handing the
        // outputs to the environment: on replay, a delivery the WAL lacks
        // was never observable, and one it has is never re-delivered.
        let decided: Vec<(WaveId, VertexId)> = self.committer.log()[commits_before..].to_vec();
        if let Some(log) = self.core.log_mut() {
            for (wave, leader) in decided {
                log.append(&DagEvent::WaveDecided { wave, leader }).expect("WAL append failed");
            }
            for o in &out {
                log.append(&DagEvent::BlockDelivered { id: o.id, wave: o.committed_in_wave })
                    .expect("WAL append failed");
            }
        }
        for o in out {
            self.core.metrics_mut().vertices_ordered += 1;
            self.core.metrics_mut().txs_ordered += o.block.txs.len() as u64;
            ctx.output(o);
        }
    }

    /// The main loop of Algorithm 4 (lines 94–120), event-driven: advance
    /// through as many rounds as the current DAG and control state allow.
    fn advance(&mut self, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        loop {
            self.core.drain_buffer();
            let cur = self.core.round();
            if cur >= self.core.config().max_round() {
                break;
            }
            // Pruned round members count as available: they were delivered
            // (hence fully disseminated) before being garbage-collected, so
            // a process resuming above a delivered-state install floor can
            // still assemble its round quorum out of the gc'd prefix.
            let sources = self.core.dag().sources_in_round_or_pruned(cur);
            if !self.quorums.contains_quorum_for(self.core.me(), &sources) {
                break;
            }
            // Lines 109–116: leaving round 2 of a wave additionally requires
            // CONFIRMs from one of my quorums (tReady).
            if cur > 0 && position_in_wave(cur) == 2 {
                let w = wave_of_round(cur);
                if !self.control.entry(w).or_default().t_ready {
                    break;
                }
            }
            // Lines 100–101: crossing a wave boundary runs the commit rule.
            if cur > 0 && cur.is_multiple_of(4) {
                self.wave_ready(cur / 4, ctx);
            }
            for m in self.core.advance_and_broadcast(cur + 1) {
                ctx.broadcast(AsymRiderMsg::Arb(m));
            }
        }
    }

    /// Runs the ACK → READY → CONFIRM ladder of Algorithm 5 for `wave`.
    fn control_step(&mut self, wave: WaveId, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        let me = self.core.me();
        let amplify = self.core.config().kernel_amplification;
        let ctrl = self.control.entry(wave).or_default();

        // Line 123: READY after ACKs from one of my quorums.
        if !ctrl.sent_ready && self.quorums.contains_quorum_for(me, &ctrl.acks) {
            ctrl.sent_ready = true;
            ctx.broadcast(AsymRiderMsg::Ready { wave });
        }
        // Line 127: CONFIRM after READYs from one of my quorums.
        if !ctrl.sent_confirm && self.quorums.contains_quorum_for(me, &ctrl.readys) {
            ctrl.sent_confirm = true;
            ctx.broadcast(AsymRiderMsg::Confirm { wave });
        }
        // Line 131: CONFIRM after CONFIRMs from one of my kernels.
        if amplify && !ctrl.sent_confirm && self.quorums.hits_kernel_for(me, &ctrl.confirms) {
            ctrl.sent_confirm = true;
            ctx.broadcast(AsymRiderMsg::Confirm { wave });
        }
        // Line 135: tReady after CONFIRMs from one of my quorums.
        let became_ready = !ctrl.t_ready && self.quorums.contains_quorum_for(me, &ctrl.confirms);
        if became_ready {
            ctrl.t_ready = true;
            if let Some(log) = self.core.log_mut() {
                log.append(&DagEvent::WaveConfirmed { wave }).expect("WAL append failed");
            }
        }
    }

    /// Compacts the full durable state into the canonical snapshot event
    /// sequence (the ordering contract lives in
    /// [`asym_storage::snapshot_events`], shared with replay-side
    /// compaction so the two paths cannot drift).
    fn snapshot_events(&self) -> Vec<DagEvent<Block>> {
        asym_storage::snapshot_events(
            self.core.dag(),
            self.control.iter().filter(|(_, c)| c.t_ready).map(|(w, _)| *w),
            self.committer.log(),
            self.committer.delivered_waves(),
            self.delivered_blocks.iter().map(|(id, b)| (*id, b.clone())),
        )
    }

    /// Installs a snapshot when the WAL's cadence asks for one. With
    /// [`RiderConfig::prune_wal`] set, the delivered prefix below the
    /// decided wave's leader round is garbage-collected first — from the
    /// live DAG and hence from the snapshot — so the *vertex* component of
    /// a snapshot tracks the undelivered frontier, not the whole history.
    /// The delivered-set ids and the commit log are never pruned (they are
    /// what makes re-delivery impossible) and still grow with history —
    /// compacting them safely is an open ROADMAP item, because a
    /// per-source watermark is unsound for Byzantine sources.
    fn maybe_snapshot(&mut self) {
        if !self.core.log().is_some_and(DagLog::should_snapshot) {
            return;
        }
        if self.core.config().prune_wal {
            let decided = self.committer.decided_wave();
            if decided >= 1 {
                // Everything delivered lives at or below the decided
                // wave's leader round (a wave-w commit orders history of
                // the round-`4(w-1)+1` leader). The pruned vertices' blocks
                // move into the transferable residue, so the delivered
                // prefix stays servable to deep laggards as certified
                // outputs.
                let floor = round_of_wave(decided, 1);
                let delivered: BTreeSet<VertexId> = self.committer.delivered().collect();
                for v in self.core.prune_delivered(&delivered, floor) {
                    self.delivered_blocks.insert(v.id(), v.into_block());
                }
            }
        }
        let events = self.snapshot_events();
        self.core
            .log_mut()
            .expect("checked above")
            .install_snapshot(&events)
            .expect("WAL snapshot failed");
    }

    /// Discards all in-memory state and rebuilds this process from its
    /// write-ahead log, then rejoins the run: re-announces confirmed waves
    /// (unblocking peers stalled mid-ladder), revives its own stalled
    /// broadcast instances, and fetches everything it missed from peers.
    ///
    /// # Panics
    ///
    /// Panics if the log is corrupt or unreadable: a process that cannot
    /// trust its durable state must not rejoin (fail-stop).
    fn restart_from_log(&mut self, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        let Some(mut log) = self.core.take_log() else {
            return; // no persistence layer: resume with in-memory state
        };
        let me = self.core.me();
        let config = self.core.config();
        // The crash happened *now* as far as storage is concerned: a
        // fault-injecting backend applies its modelled powerloss damage
        // (torn append, lost unsynced suffix, reverted snapshot rename)
        // before we read a single byte back.
        log.powerloss().expect("storage failed while applying crash damage");
        // Repair before the first post-recovery append: a record written
        // after a surviving torn tail would fuse with it into one
        // checksum-mismatching frame, leaving the log unreadable at the
        // *next* restart (found by the powerloss-file matrix cells).
        log.repair_torn_tail().expect("WAL torn-tail repair failed");
        let recovered =
            log.replay(self.quorums.n(), me, Block::default()).expect("WAL replay failed");

        // Everything below derives from static configuration + the log —
        // nothing survives from the pre-crash in-memory state.
        self.core = DagCore::from_recovered(me, self.quorums.clone(), config, &recovered, log);
        self.committer = WaveCommitter::from_parts(
            recovered.decided_wave,
            recovered
                .delivered
                .iter()
                .map(|id| (*id, recovered.delivered_waves.get(id).copied().unwrap_or(0))),
            recovered.commit_log.clone(),
        );
        self.control = HashMap::new();
        self.acked_vertices = HashSet::new();
        self.fetch_pending = HashMap::new();
        self.last_missing = BTreeSet::new();
        self.fetch_progress = false;
        self.transfer = TransferState::new();
        self.delivered_blocks =
            recovered.delivered_blocks.iter().map(|(k, v)| (*k, v.clone())).collect();
        self.recovering = true;
        for w in &recovered.confirmed_waves {
            let ctrl = self.control.entry(*w).or_default();
            ctrl.t_ready = true;
            // Mark the outbound ladder done for finished waves and instead
            // re-announce once, so peers stalled mid-ladder progress and we
            // do not re-broadcast on every late control message.
            ctrl.sent_ready = true;
            ctrl.sent_confirm = true;
            ctx.broadcast(AsymRiderMsg::Confirm { wave: *w });
        }
        for m in self.core.rebroadcast_own() {
            ctx.broadcast(AsymRiderMsg::Arb(m));
        }
        // Full state sync from the pruning floor: most of the reply
        // duplicates the replayed DAG and is discarded on arrival, but any
        // tighter floor can miss old vertices we never held (they surface
        // later as weak edges), forcing refetch round-trips; at simulation
        // sizes the simple, always-correct request wins. Rounds at or
        // below the floor are almost entirely garbage-collected delivered
        // prefix, so they are excluded here; in the rare case an
        // *undelivered* sub-floor vertex is still missing, a buffered
        // child will name it in `missing_parents` and `maybe_refetch`
        // requests it with a matching floor. Replies are cross-validated
        // against a kernel before anything enters the DAG.
        ctx.broadcast(AsymRiderMsg::Fetch { above_round: self.core.dag().pruned_floor() });
        self.advance(ctx);
    }

    /// Builds the reply to a peer's catch-up request.
    fn fetch_reply(&self, above_round: Round) -> AsymRiderMsg {
        let dag = self.core.dag();
        let mut vertices = Vec::new();
        for r in (above_round + 1)..=dag.max_round().unwrap_or(0) {
            vertices.extend(dag.vertices_in_round(r).cloned());
        }
        let mut confirmed: Vec<WaveId> =
            self.control.iter().filter(|(_, c)| c.sent_confirm).map(|(w, _)| *w).collect();
        confirmed.sort_unstable();
        AsymRiderMsg::FetchReply { vertices, confirmed }
    }

    /// Folds one peer's catch-up reply in: every vertex is validated with
    /// the line-140 rule and accepted only once bit-identical copies have
    /// arrived from one of my kernels — a kernel intersects all my quorums,
    /// so at least one vouching process is one my trust assumption counts
    /// on, and a lone equivocator cannot smuggle a forged vertex past
    /// reliable broadcast through the fetch path. Votes are tracked per
    /// *copy* (not just per id), so a forged first reply cannot veto the
    /// genuine copy either; one vote per responder per id bounds the state.
    fn handle_fetch_reply(
        &mut self,
        from: ProcessId,
        vertices: Vec<Vertex<Block>>,
        confirmed: Vec<WaveId>,
        ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>,
    ) {
        let me = self.core.me();
        for v in vertices {
            let id = v.id();
            // Round-0, own, stale (this exact id was delivered and
            // garbage-collected), already-known and quorum-less (line 140)
            // vertices are all discarded unseen. Undelivered old vertices
            // below the pruning floor are *kept*: a later leader can still
            // order them.
            if v.round() == 0
                || self.core.dag().is_pruned(id)
                || v.source() == me
                || self.core.dag().contains(id)
                || self.core.has_buffered(id)
                || self.quorums.contains_quorum_for_any(v.strong_edges()).is_none()
            {
                continue;
            }
            let copies = self.fetch_pending.entry(id).or_default();
            if copies.iter().any(|(_, voters)| voters.contains(from)) {
                continue; // one vote per responder per id (first copy wins)
            }
            let slot = match copies.iter().position(|(copy, _)| *copy == v) {
                Some(i) => i,
                None => {
                    copies.push((v, ProcessSet::new()));
                    copies.len() - 1
                }
            };
            copies[slot].1.insert(from);
            // New evidence arrived: worth one more refetch round if the
            // buffer is still blocked (see `maybe_refetch`).
            self.fetch_progress = true;
            if self.quorums.hits_kernel_for(me, &copies[slot].1) {
                let (v, _) = copies.swap_remove(slot);
                self.fetch_pending.remove(&id);
                self.core.accept_fetched(v);
            }
        }
        for wave in confirmed {
            self.control.entry(wave).or_default().confirms.insert(from);
            self.control_step(wave, ctx);
        }
    }

    /// Builds the per-wave certified segments of this process's delivered
    /// prefix above `above_wave` — the donor half of delivered-state
    /// transfer. Each wave's deliveries are reconstructed in the
    /// deterministic delivery order (sorted ids of the wave's tag group —
    /// see [`WaveCommitter::delivered_in_wave`]); blocks come from the DAG
    /// when the vertex is still stored, and from the transferable residue
    /// when it was garbage-collected. A wave with an unservable block
    /// (impossible for a correct process, defensive) **ends** the chunk:
    /// the receiver installs along the `prev_wave` chain, so segments past
    /// a hole could never install from this donor anyway.
    fn state_chunk(&self, above_wave: WaveId) -> Option<AsymRiderMsg> {
        // One pass over the delivered map groups ids by ordering wave —
        // StateRequests are repeatable and unauthenticated, so the donor
        // must not rescan the whole delivered set once per log entry.
        let mut by_wave: BTreeMap<WaveId, Vec<VertexId>> = BTreeMap::new();
        for (id, wave) in self.committer.delivered_waves() {
            if wave > above_wave {
                by_wave.entry(wave).or_default().push(id);
            }
        }
        let mut segments = Vec::new();
        // Commit logs legitimately skip waves, so each segment names the
        // log entry it chains onto (`prev_wave`) — the receiver installs
        // along this chain, never by wave arithmetic.
        let mut prev = 0;
        for (wave, leader) in self.committer.log() {
            if *wave <= above_wave {
                prev = *wave;
                continue;
            }
            let mut ids = by_wave.remove(wave).unwrap_or_default();
            ids.sort_unstable();
            let mut deliveries = Vec::with_capacity(ids.len());
            let mut servable = true;
            for id in ids {
                let block = self
                    .core
                    .dag()
                    .get(id)
                    .map(|v| v.block().clone())
                    .or_else(|| self.delivered_blocks.get(&id).cloned());
                let Some(block) = block else {
                    servable = false;
                    break;
                };
                deliveries.push((id, block));
            }
            if !servable || deliveries.is_empty() {
                // The receiver installs along the prev_wave chain, so
                // nothing after a hole could ever install from this donor —
                // stop the chunk here rather than ship dead segments.
                break;
            }
            segments.push(WaveSegment {
                wave: *wave,
                prev_wave: prev,
                leader: *leader,
                deliveries,
            });
            prev = *wave;
        }
        (!segments.is_empty()).then_some(AsymRiderMsg::StateChunk { segments })
    }

    /// Shape-and-coin validation of one received segment, before it may
    /// accumulate votes: the wave must still be installable, the leader
    /// must be the coin-elected leader vertex of that wave (a forged
    /// commit-log entry dies here without costing a vote slot), and the
    /// delivery list must be non-empty, strictly `(round, source)`-sorted,
    /// genesis-free and bounded by the leader round — the shape every
    /// honest segment has by construction.
    fn segment_valid(&self, seg: &WaveSegment) -> bool {
        if seg.wave <= self.committer.decided_wave() {
            return false;
        }
        let expected = VertexId::new(round_of_wave(seg.wave, 1), self.coin.leader(seg.wave));
        seg.leader == expected
            && seg.prev_wave < seg.wave
            && !seg.deliveries.is_empty()
            && seg.deliveries.windows(2).all(|w| w[0].0 < w[1].0)
            && seg.deliveries.iter().all(|(id, _)| id.round >= 1 && id.round <= seg.leader.round)
    }

    /// Folds one donor's chunk in (vote per wave per responder) and
    /// installs every contiguously corroborated wave: starting at the
    /// decided-wave watermark, a segment whose copy has votes from one of
    /// my kernels is appended to the commit log, its fresh deliveries are
    /// persisted and output, the missing vertices are recorded as pruned
    /// (their content can never be needed again) and the round counter
    /// fast-forwards past the installed floor. Afterwards the process
    /// resumes normal `Fetch` catch-up just below the new floor.
    fn handle_state_chunk(
        &mut self,
        from: ProcessId,
        segments: Vec<WaveSegment>,
        ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>,
    ) {
        // Unsolicited chunks are dropped before they can pin any state:
        // only donors this process actually sent a StateRequest to may
        // accumulate votes (a forger spraying chunks at everyone gets
        // nothing stored).
        if !self.recovering || !self.transfer.has_requested(from) {
            return;
        }
        for seg in segments {
            self.transfer.note_received();
            if !self.segment_valid(&seg) {
                self.transfer.note_rejected();
                continue;
            }
            self.transfer.vote(from, seg);
        }
        let me = self.core.me();
        let quorums = self.quorums.clone();
        let mut installed_any = false;
        loop {
            let decided = self.committer.decided_wave();
            let Some(seg) = self.transfer.take_ready(decided, &quorums, me) else {
                break;
            };
            let fresh = self.committer.install_wave(seg.wave, seg.leader, &seg.deliveries);
            let absent: Vec<bool> =
                fresh.iter().map(|(id, _)| !self.core.dag().contains(*id)).collect();
            // Persist the decision, every delivery and the block residue of
            // never-received vertices *before* handing outputs to the
            // environment — the same WAL-first discipline as a live commit.
            if let Some(log) = self.core.log_mut() {
                log.append(&DagEvent::WaveDecided { wave: seg.wave, leader: seg.leader })
                    .expect("WAL append failed");
                // The install also earns the wave's tReady milestone (set
                // below) — persist it like every other t_ready transition,
                // or a crash before the next snapshot would silently drop
                // the confirmation a replay cannot re-derive locally.
                log.append(&DagEvent::WaveConfirmed { wave: seg.wave }).expect("WAL append failed");
                for ((id, block), miss) in fresh.iter().zip(&absent) {
                    log.append(&DagEvent::BlockDelivered { id: *id, wave: seg.wave })
                        .expect("WAL append failed");
                    if *miss {
                        log.append(&DagEvent::DeliveredBlock { id: *id, block: block.clone() })
                            .expect("WAL append failed");
                    }
                }
            }
            for ((id, block), miss) in fresh.iter().zip(&absent) {
                if *miss {
                    self.core.note_pruned(*id);
                    self.delivered_blocks.insert(*id, block.clone());
                }
            }
            // Kernel corroboration of the decided wave doubles as its
            // confirmation evidence (the CONFIRM-from-kernel amplification
            // rule): mark the ladder finished so round advancement through
            // the installed wave is not gated on long-gone CONFIRMs.
            let ctrl = self.control.entry(seg.wave).or_default();
            ctrl.t_ready = true;
            ctrl.sent_ready = true;
            ctrl.sent_confirm = true;
            self.transfer.note_installed(fresh.len());
            for (id, block) in fresh {
                self.core.metrics_mut().vertices_ordered += 1;
                self.core.metrics_mut().txs_ordered += block.txs.len() as u64;
                ctx.output(OrderedVertex { id, block, committed_in_wave: seg.wave });
            }
            self.core.fast_forward_round(round_of_wave(seg.wave, 1));
            installed_any = true;
        }
        if installed_any {
            self.transfer.discard_through(self.committer.decided_wave());
            // Resume vertex catch-up one round *below* the new floor: the
            // floor round itself still holds undelivered vertices (only a
            // wave's leader is delivered by its own commit; its round
            // siblings are ordered by the next wave) which the round quorum
            // may need.
            let floor = self.core.dag().pruned_floor();
            ctx.broadcast(AsymRiderMsg::Fetch { above_round: floor.saturating_sub(1) });
        }
    }

    /// If recovery left the insertion buffer blocked on parents nobody has
    /// sent us (a vertex can finish dissemination entirely inside our down
    /// window), ask again. A refetch fires when the missing-parent set
    /// *changes*, or when the last reply round still added vouching votes —
    /// a fetch can race peers that have arb-delivered but not yet inserted
    /// a vertex, so "same missing set but votes grew" must retry until the
    /// kernel threshold is met. Votes per vertex are bounded by `n` and
    /// vertices by the run, so refetch traffic stays finite and the
    /// network still quiesces.
    fn maybe_refetch(&mut self, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        if !self.recovering {
            return;
        }
        let missing = self.core.missing_parents();
        let progress = std::mem::take(&mut self.fetch_progress);
        if missing.is_empty() || (missing == self.last_missing && !progress) {
            return;
        }
        let floor = missing.iter().next().expect("non-empty").round.saturating_sub(1);
        self.last_missing = missing;
        ctx.broadcast(AsymRiderMsg::Fetch { above_round: floor });
    }
}

impl Protocol for AsymDagRider {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.advance(ctx);
        self.maybe_snapshot();
    }

    fn on_input(&mut self, block: Block, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.core.enqueue_block(block);
        self.advance(ctx);
        self.maybe_snapshot();
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.restart_from_log(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match msg {
            AsymRiderMsg::Arb(inner) => {
                // Line 140: accept a vertex only if its strong edges contain
                // a quorum of some process's quorum system.
                let quorums = self.quorums.clone();
                let (out, fresh) = self.core.handle_arb(from, inner, |v| {
                    quorums.contains_quorum_for_any(v.strong_edges()).is_some()
                });
                for m in out {
                    ctx.broadcast(AsymRiderMsg::Arb(m));
                }
                // Line 142: ACK the creator of every delivered round-2
                // vertex (at most once per vertex).
                for vid in fresh {
                    if position_in_wave(vid.round) == 2 && self.acked_vertices.insert(vid) {
                        let wave = wave_of_round(vid.round);
                        ctx.send(vid.source, AsymRiderMsg::Ack { wave });
                    }
                }
            }
            AsymRiderMsg::Ack { wave } => {
                self.control.entry(wave).or_default().acks.insert(from);
                self.control_step(wave, ctx);
            }
            AsymRiderMsg::Ready { wave } => {
                self.control.entry(wave).or_default().readys.insert(from);
                self.control_step(wave, ctx);
            }
            AsymRiderMsg::Confirm { wave } => {
                self.control.entry(wave).or_default().confirms.insert(from);
                self.control_step(wave, ctx);
            }
            AsymRiderMsg::Fetch { above_round } => {
                let reply = self.fetch_reply(above_round);
                ctx.send(from, reply);
                // The requester asked for rounds this process has garbage-
                // collected: the FetchReply above cannot contain them, so
                // offer the delivered prefix as certified outputs instead.
                let floor = self.core.dag().pruned_floor();
                if above_round < floor && self.committer.decided_wave() > 0 {
                    ctx.send(
                        from,
                        AsymRiderMsg::StateOffer {
                            decided_wave: self.committer.decided_wave(),
                            floor,
                        },
                    );
                }
            }
            AsymRiderMsg::FetchReply { vertices, confirmed } => {
                self.handle_fetch_reply(from, vertices, confirmed, ctx);
            }
            AsymRiderMsg::StateOffer { decided_wave, .. } => {
                // Only a recovering process installs transferred state, and
                // only offers extending its watermark are worth a request
                // (one per offerer; the chunk carries everything above it).
                if self.recovering
                    && self.transfer.note_offer(from, decided_wave, self.committer.decided_wave())
                {
                    ctx.send(
                        from,
                        AsymRiderMsg::StateRequest { above_wave: self.committer.decided_wave() },
                    );
                }
            }
            AsymRiderMsg::StateRequest { above_wave } => {
                if let Some(chunk) = self.state_chunk(above_wave) {
                    ctx.send(from, chunk);
                }
            }
            AsymRiderMsg::StateChunk { segments } => {
                self.handle_state_chunk(from, segments, ctx);
            }
        }
        self.advance(ctx);
        self.maybe_refetch(ctx);
        self.maybe_snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::{maximal_guild, topology};
    use asym_sim::{scheduler, FaultMode, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn cluster(t: &topology::Topology, waves: WaveId) -> Vec<AsymDagRider> {
        let config = RiderConfig { max_waves: waves, ..Default::default() };
        (0..t.n()).map(|i| AsymDagRider::new(pid(i), t.quorums.clone(), 42, config)).collect()
    }

    fn check_total_order(outputs: &[Vec<OrderedVertex>]) {
        for a in outputs {
            for b in outputs {
                let common = a.len().min(b.len());
                for k in 0..common {
                    assert_eq!(a[k].id, b[k].id, "total order violated at position {k}");
                }
            }
        }
    }

    /// Runs the protocol over a topology with crashes; checks agreement,
    /// total order, integrity and progress for guild members.
    fn run_and_check(
        t: &topology::Topology,
        crashed: &[usize],
        seed: u64,
        waves: WaveId,
    ) -> Vec<Vec<OrderedVertex>> {
        let faulty: ProcessSet = crashed.iter().copied().collect();
        let guild = maximal_guild(&t.fail_prone, &t.quorums, &faulty)
            .expect("test topology must retain a guild");
        let mut sim = Simulation::new(cluster(t, waves), scheduler::Random::new(seed));
        for c in crashed {
            sim = sim.with_fault(pid(*c), FaultMode::CrashedFromStart);
        }
        for i in 0..t.n() {
            if !crashed.contains(&i) {
                sim.input(pid(i), Block::new(vec![7000 + i as u64]));
            }
        }
        let report = sim.run(200_000_000);
        assert!(report.quiescent, "{} seed {seed}: did not quiesce", t.name);

        let outputs: Vec<Vec<OrderedVertex>> =
            (0..t.n()).map(|i| sim.outputs(pid(i)).to_vec()).collect();
        let guild_outputs: Vec<Vec<OrderedVertex>> =
            guild.iter().map(|g| outputs[g.index()].clone()).collect();
        check_total_order(&guild_outputs);
        // Progress: guild members commit within the wave budget.
        for g in &guild {
            assert!(
                !outputs[g.index()].is_empty(),
                "{} seed {seed}: guild member {g} ordered nothing",
                t.name
            );
        }
        // Integrity: no duplicates.
        for o in &outputs {
            let mut seen = HashSet::new();
            for v in o {
                assert!(seen.insert(v.id), "duplicate delivery of {}", v.id);
            }
        }
        outputs
    }

    #[test]
    fn threshold_topology_commits_and_agrees() {
        let t = topology::uniform_threshold(4, 1);
        for seed in 0..4 {
            run_and_check(&t, &[], seed, 6);
        }
    }

    #[test]
    fn threshold_with_crash() {
        let t = topology::uniform_threshold(4, 1);
        for seed in 0..3 {
            run_and_check(&t, &[3], seed, 8);
        }
    }

    #[test]
    fn seven_processes_two_crashes() {
        let t = topology::uniform_threshold(7, 2);
        run_and_check(&t, &[5, 6], 1, 8);
    }

    #[test]
    fn ripple_topology_commits() {
        let t = topology::ripple_unl(10, 8, 1);
        for seed in 0..2 {
            run_and_check(&t, &[], seed, 6);
        }
    }

    #[test]
    fn ripple_topology_with_crash() {
        let t = topology::ripple_unl(10, 8, 1);
        run_and_check(&t, &[4], 3, 8);
    }

    #[test]
    fn stellar_topology_with_leaf_crashes() {
        let t = topology::stellar_tiers(8, 4, 1);
        run_and_check(&t, &[6, 7], 2, 8);
    }

    #[test]
    fn validity_blocks_eventually_ordered() {
        let t = topology::uniform_threshold(4, 1);
        let outputs = run_and_check(&t, &[], 11, 8);
        for (i, out) in outputs.iter().enumerate() {
            let txs: Vec<u64> = out.iter().flat_map(|o| o.block.txs.clone()).collect();
            for tx in 7000..7004 {
                assert!(txs.contains(&tx), "process {i} missing tx {tx}: {txs:?}");
            }
        }
    }

    #[test]
    fn deterministic_replay() {
        let t = topology::uniform_threshold(4, 1);
        let a = run_and_check(&t, &[], 5, 5);
        let b = run_and_check(&t, &[], 5, 5);
        assert_eq!(a, b, "same seed must replay identically");
    }

    #[test]
    fn outputs_respect_causality() {
        // A vertex is always delivered after its whole (non-genesis) causal
        // history: commits deliver leader histories oldest-wave-first and
        // sorted within a commit, so every parent precedes its child.
        let t = topology::uniform_threshold(4, 1);
        let mut sim = Simulation::new(cluster(&t, 6), scheduler::Random::new(2));
        for i in 0..4 {
            sim.input(pid(i), Block::new(vec![i as u64]));
        }
        assert!(sim.run(200_000_000).quiescent);
        for i in 0..4 {
            let out = sim.outputs(pid(i));
            let dag = sim.process(pid(i)).dag();
            let pos: HashMap<VertexId, usize> =
                out.iter().enumerate().map(|(k, o)| (o.id, k)).collect();
            for o in out {
                let v = dag.get(o.id).expect("delivered vertices are stored");
                for parent in v.parents() {
                    if parent.round == 0 {
                        continue;
                    }
                    let pp = pos.get(&parent).unwrap_or_else(|| {
                        panic!("process {i}: parent {parent} of {} not delivered", o.id)
                    });
                    assert!(pp < &pos[&o.id], "process {i}: {parent} after {}", o.id);
                }
            }
        }
    }

    /// Builds a cluster in which process `restarted` persists to a WAL and
    /// crashes/restarts, runs it, and checks the recovery invariants: no
    /// double delivery, prefix consistency with the always-up processes,
    /// and exact WAL/state equivalence at the end of the run.
    fn run_restart(
        t: &topology::Topology,
        restarted: usize,
        crash_at: u64,
        recover_at: u64,
        seed: u64,
        snapshot_every: usize,
    ) -> Vec<Vec<OrderedVertex>> {
        run_restart_config(t, restarted, crash_at, recover_at, seed, snapshot_every, false)
    }

    fn run_restart_config(
        t: &topology::Topology,
        restarted: usize,
        crash_at: u64,
        recover_at: u64,
        seed: u64,
        snapshot_every: usize,
        prune: bool,
    ) -> Vec<Vec<OrderedVertex>> {
        use asym_storage::StorageBackend;

        let mut procs = cluster(t, 6);
        if prune {
            let config = RiderConfig { max_waves: 6, prune_wal: true, ..RiderConfig::default() };
            procs[restarted] = AsymDagRider::new(pid(restarted), t.quorums.clone(), 42, config);
        }
        procs[restarted] = procs[restarted].clone().with_storage(
            crate::DagLog::new(StorageBackend::in_memory()).with_snapshot_every(snapshot_every),
        );
        let mut sim = Simulation::new(procs, scheduler::Random::new(seed))
            .with_fault(pid(restarted), FaultMode::RestartAfter { crash_at, recover_at });
        for i in 0..t.n() {
            sim.input(pid(i), Block::new(vec![8000 + i as u64]));
        }
        let report = sim.run(200_000_000);
        assert!(report.quiescent, "seed {seed}: did not quiesce");

        let outputs: Vec<Vec<OrderedVertex>> =
            (0..t.n()).map(|i| sim.outputs(pid(i)).to_vec()).collect();
        let r = sim.process(pid(restarted));
        assert!(r.has_recovered(), "restart window never fired");

        // Integrity across the restart: nothing delivered twice.
        let mut seen = HashSet::new();
        for v in &outputs[restarted] {
            assert!(seen.insert(v.id), "{} delivered twice across restart", v.id);
        }
        // Prefix consistency with every always-up process.
        for (i, out) in outputs.iter().enumerate() {
            if i == restarted {
                continue;
            }
            let common = out.len().min(outputs[restarted].len());
            for k in 0..common {
                assert_eq!(out[k].id, outputs[restarted][k].id, "fork at {k} vs p{i}");
            }
        }
        // WAL/state equivalence: replaying the final log reproduces the
        // live state exactly.
        let replayed = r.replay_storage().expect("storage attached").expect("log readable");
        assert_eq!(replayed.dag.len(), r.dag().len());
        assert_eq!(replayed.decided_wave, r.decided_wave());
        assert_eq!(replayed.commit_log, r.commit_log().to_vec());
        let live: std::collections::BTreeSet<VertexId> = r.committer().delivered().collect();
        assert_eq!(replayed.delivered, live);
        outputs
    }

    #[test]
    fn restart_replays_log_and_rejoins() {
        let t = topology::uniform_threshold(4, 1);
        let outputs = run_restart(&t, 2, 150, 1200, 3, 0);
        assert!(!outputs[2].is_empty(), "restarted process must catch up and deliver");
    }

    #[test]
    fn restart_with_snapshots_matches_restart_without() {
        let t = topology::uniform_threshold(4, 1);
        let plain = run_restart(&t, 1, 100, 800, 7, 0);
        let snapped = run_restart(&t, 1, 100, 800, 7, 16);
        assert_eq!(plain, snapped, "snapshot cadence must not change the execution");
    }

    #[test]
    fn restart_after_quiescence_still_catches_up() {
        // recover_at far beyond the run: recovery is forced at quiescence;
        // the restarted process must rebuild purely from WAL + fetch.
        let t = topology::uniform_threshold(4, 1);
        let outputs = run_restart(&t, 3, 120, 50_000_000, 11, 0);
        assert!(!outputs[3].is_empty(), "post-quiescence recovery must still deliver");
        // It must reach the same delivered prefix as an always-up process.
        assert!(
            outputs[3].len() >= outputs[0].len() * 2 / 3,
            "recovered process fell too far behind: {} vs {}",
            outputs[3].len(),
            outputs[0].len()
        );
    }

    #[test]
    fn restart_on_ripple_topology() {
        let t = topology::ripple_unl(7, 6, 1);
        let outputs = run_restart(&t, 5, 200, 1500, 5, 32);
        assert!(!outputs[5].is_empty());
    }

    #[test]
    fn pruned_wal_restart_recovers_post_prefix_state() {
        // Pruning on, aggressive snapshot cadence: the delivered prefix is
        // garbage-collected from live DAG + snapshots, and the restart
        // still recovers, catches up and keeps all invariants (the
        // run_restart_config helper checks no-double-delivery, prefix
        // consistency and exact WAL/state equivalence — which with live
        // pruning stays *equality*, both sides lacking the pruned prefix).
        let t = topology::uniform_threshold(4, 1);
        let outputs = run_restart_config(&t, 2, 150, 1200, 3, 16, true);
        assert!(!outputs[2].is_empty(), "pruned-WAL process must still deliver");
        // Same cell without pruning delivers the same observable outputs
        // for the *other* processes... not guaranteed bit-for-bit for the
        // pruned one (weak edges may differ), so compare only delivery
        // multisets of a fault-free process.
        let unpruned = run_restart(&t, 2, 150, 1200, 3, 16);
        let ids = |o: &[OrderedVertex]| o.iter().map(|v| v.id).collect::<Vec<_>>();
        assert_eq!(ids(&outputs[0]).len(), ids(&unpruned[0]).len());
    }

    #[test]
    fn pruning_bounds_the_snapshot() {
        // Directly exercise the rider's prune-at-snapshot path: after a
        // long run the pruned process's DAG and snapshot must not contain
        // the delivered prefix, and its WAL must record a pruning floor.
        use asym_storage::StorageBackend;
        let t = topology::uniform_threshold(4, 1);
        let config = RiderConfig { max_waves: 6, prune_wal: true, ..RiderConfig::default() };
        let mut procs = cluster(&t, 6);
        procs[1] = AsymDagRider::new(pid(1), t.quorums.clone(), 42, config)
            .with_storage(crate::DagLog::new(StorageBackend::in_memory()).with_snapshot_every(24));
        let mut sim = Simulation::new(procs, scheduler::Random::new(9));
        for i in 0..4 {
            sim.input(pid(i), Block::new(vec![9000 + i as u64]));
        }
        assert!(sim.run(200_000_000).quiescent);
        let r = sim.process(pid(1));
        let floor = r.dag().pruned_floor();
        assert!(floor > 0, "a 6-wave run with cadence 24 must have pruned");
        for round in 1..=floor {
            for v in r.dag().vertices_in_round(round) {
                assert!(
                    !r.committer().is_delivered(v.id()),
                    "delivered {} below the floor survived pruning",
                    v.id()
                );
            }
        }
        let replayed = r.replay_storage().unwrap().unwrap();
        assert_eq!(replayed.pruned_round, floor);
        assert_eq!(replayed.dag.len(), r.dag().len(), "pruned replay = pruned live state");
        // An unpruned twin of the same cell stores strictly more vertices.
        let mut procs = cluster(&t, 6);
        procs[1] = procs[1]
            .clone()
            .with_storage(crate::DagLog::new(StorageBackend::in_memory()).with_snapshot_every(24));
        let mut sim2 = Simulation::new(procs, scheduler::Random::new(9));
        for i in 0..4 {
            sim2.input(pid(i), Block::new(vec![9000 + i as u64]));
        }
        assert!(sim2.run(200_000_000).quiescent);
        assert!(
            r.dag().len() < sim2.process(pid(1)).dag().len(),
            "pruning must actually shrink the stored DAG"
        );
    }

    #[test]
    fn figure1_topology_runs() {
        // The 30-process counterexample system is a valid quorum system; the
        // full consensus protocol must run on it (this is the paper's own
        // setting: all processes correct).
        let t = topology::Topology {
            name: "figure-1".into(),
            fail_prone: asym_quorum::counterexample::fig1_fail_prone(),
            quorums: asym_quorum::counterexample::fig1_quorums(),
        };
        run_and_check(&t, &[], 1, 6);
    }
}
