//! **Asymmetric DAG-Rider** — Algorithms 4, 5 and 6 of the paper: the first
//! randomized asynchronous DAG-based consensus protocol with asymmetric
//! quorums.
//!
//! Every 4-round wave executes the constant-round asymmetric gather
//! (Algorithm 3) *structurally*: round 1 plays the candidate-`S` role, the
//! round-2 vertices are the `DISTRIBUTE_S` step (each delivery is ACKed,
//! Algorithm 6 line 142), the transition into round 3 — the `DISTRIBUTE_T`
//! step — is gated on the ACK → READY → CONFIRM ladder (Algorithm 5), and
//! round 4 corresponds to the `U` sets. The gather guarantee yields a common
//! core of round-1 vertices in every wave, so the coin-elected leader is
//! committable with probability at least `c(Q)/|P|` (Lemmas 4.3, 4.4).
//!
//! Differences from the symmetric baseline, per the paper §4.3:
//!
//! * **round change** — a round completes when the vertices of one of *my
//!   quorums* are in my DAG (not `n − f` vertices);
//! * **round 2 → 3 gating** — additionally requires CONFIRMs from one of my
//!   quorums (`tReady`);
//! * **commit rule** — the leader commits when all round-4 vertices of some
//!   quorum `Q ∈ Q_j` (for *any* process `j`, Algorithm 6 line 148) have
//!   strong paths to it.

use std::collections::{HashMap, HashSet};

use asym_broadcast::BcastMsg;
use asym_crypto::CommonCoin;
use asym_dag::{
    position_in_wave, round_of_wave, wave_of_round, DagStore, Vertex, VertexId, WaveId,
};
use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};
use asym_sim::{Context, Protocol};

use crate::dagcore::DagCore;
use crate::ordering::{CommitOutcome, WaveCommitter};
use crate::types::{Block, OrderedVertex, RiderConfig, RiderMetrics};

/// Wire messages of asymmetric DAG-Rider: the arb layer carrying vertices,
/// plus the per-wave ACK/READY/CONFIRM control ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsymRiderMsg {
    /// Asymmetric-reliable-broadcast layer carrying DAG vertices.
    Arb(BcastMsg<Vertex<Block>>),
    /// Acknowledges the arb-delivery of the sender's round-2 vertex of
    /// `wave` (point-to-point to the vertex creator).
    Ack {
        /// Wave the acknowledged round-2 vertex belongs to.
        wave: WaveId,
    },
    /// The sender received ACKs from one of its quorums for `wave`.
    Ready {
        /// Wave this readiness concerns.
        wave: WaveId,
    },
    /// The sender received READYs from a quorum (or CONFIRMs from a kernel)
    /// for `wave`.
    Confirm {
        /// Wave this confirmation concerns.
        wave: WaveId,
    },
}

#[derive(Clone, Debug, Default)]
struct WaveControl {
    acks: ProcessSet,
    readys: ProcessSet,
    confirms: ProcessSet,
    sent_ready: bool,
    sent_confirm: bool,
    t_ready: bool,
}

/// One process of asymmetric DAG-Rider (Algorithms 4–6).
///
/// *Input*: blocks to `aa-broadcast`. *Output*: [`OrderedVertex`] events in
/// atomic-broadcast order. All cluster members must share the same
/// `coin_seed` and asymmetric quorum system array.
#[derive(Clone, Debug)]
pub struct AsymDagRider {
    core: DagCore,
    quorums: AsymQuorumSystem,
    committer: WaveCommitter,
    coin: CommonCoin,
    control: HashMap<WaveId, WaveControl>,
    acked_vertices: HashSet<VertexId>,
}

impl AsymDagRider {
    /// Creates an asymmetric DAG-Rider process.
    pub fn new(
        me: ProcessId,
        quorums: AsymQuorumSystem,
        coin_seed: u64,
        config: RiderConfig,
    ) -> Self {
        let n = quorums.n();
        AsymDagRider {
            core: DagCore::new(me, quorums.clone(), config),
            quorums,
            committer: WaveCommitter::new(),
            coin: CommonCoin::new(coin_seed, n),
            control: HashMap::new(),
            acked_vertices: HashSet::new(),
        }
    }

    /// The local DAG (observer inspection).
    pub fn dag(&self) -> &DagStore<Block> {
        self.core.dag()
    }

    /// Execution counters.
    pub fn metrics(&self) -> RiderMetrics {
        self.core.metrics()
    }

    /// The last decided wave.
    pub fn decided_wave(&self) -> WaveId {
        self.committer.decided_wave()
    }

    /// The wave-commitment state (observer inspection: commit log, decided
    /// wave, delivered-vertex set) — what the scenario harness's
    /// `delivery_bookkeeping` invariant checker audits.
    pub fn committer(&self) -> &WaveCommitter {
        &self.committer
    }

    /// Commit log of `(wave, leader)` pairs, in commit order.
    pub fn commit_log(&self) -> &[(WaveId, VertexId)] {
        self.committer.log()
    }

    /// The asymmetric commit rule (Algorithm 6, line 148): all round-4
    /// vertices of some quorum of *any* process reach the leader by strong
    /// paths.
    fn commit_rule(quorums: &AsymQuorumSystem, dag: &DagStore<Block>, leader: VertexId) -> bool {
        let w = wave_of_round(leader.round);
        let r4 = round_of_wave(w, 4);
        let committers: ProcessSet = dag
            .sources_in_round(r4)
            .iter()
            .filter(|p| dag.strong_path(VertexId::new(r4, *p), leader))
            .collect();
        quorums.contains_quorum_for_any(&committers).is_some()
    }

    fn wave_ready(&mut self, w: WaveId, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        if w <= self.committer.decided_wave() {
            return;
        }
        self.core.metrics_mut().waves_attempted += 1;
        let quorums = self.quorums.clone();
        let mut out = Vec::new();
        let outcome = self.committer.wave_ready(
            self.core.dag(),
            &self.coin,
            w,
            |dag, leader| Self::commit_rule(&quorums, dag, leader),
            &mut out,
        );
        match outcome {
            CommitOutcome::NoLeaderVertex => self.core.metrics_mut().waves_skipped_no_leader += 1,
            CommitOutcome::RuleNotMet => self.core.metrics_mut().waves_skipped_rule += 1,
            CommitOutcome::Committed { .. } => self.core.metrics_mut().waves_committed += 1,
        }
        for o in out {
            self.core.metrics_mut().vertices_ordered += 1;
            self.core.metrics_mut().txs_ordered += o.block.txs.len() as u64;
            ctx.output(o);
        }
    }

    /// The main loop of Algorithm 4 (lines 94–120), event-driven: advance
    /// through as many rounds as the current DAG and control state allow.
    fn advance(&mut self, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        loop {
            self.core.drain_buffer();
            let cur = self.core.round();
            if cur >= self.core.config().max_round() {
                break;
            }
            let sources = self.core.dag().sources_in_round(cur);
            if !self.quorums.contains_quorum_for(self.core.me(), &sources) {
                break;
            }
            // Lines 109–116: leaving round 2 of a wave additionally requires
            // CONFIRMs from one of my quorums (tReady).
            if cur > 0 && position_in_wave(cur) == 2 {
                let w = wave_of_round(cur);
                if !self.control.entry(w).or_default().t_ready {
                    break;
                }
            }
            // Lines 100–101: crossing a wave boundary runs the commit rule.
            if cur > 0 && cur.is_multiple_of(4) {
                self.wave_ready(cur / 4, ctx);
            }
            for m in self.core.advance_and_broadcast(cur + 1) {
                ctx.broadcast(AsymRiderMsg::Arb(m));
            }
        }
    }

    /// Runs the ACK → READY → CONFIRM ladder of Algorithm 5 for `wave`.
    fn control_step(&mut self, wave: WaveId, ctx: &mut Context<'_, AsymRiderMsg, OrderedVertex>) {
        let me = self.core.me();
        let amplify = self.core.config().kernel_amplification;
        let ctrl = self.control.entry(wave).or_default();

        // Line 123: READY after ACKs from one of my quorums.
        if !ctrl.sent_ready && self.quorums.contains_quorum_for(me, &ctrl.acks) {
            ctrl.sent_ready = true;
            ctx.broadcast(AsymRiderMsg::Ready { wave });
        }
        // Line 127: CONFIRM after READYs from one of my quorums.
        if !ctrl.sent_confirm && self.quorums.contains_quorum_for(me, &ctrl.readys) {
            ctrl.sent_confirm = true;
            ctx.broadcast(AsymRiderMsg::Confirm { wave });
        }
        // Line 131: CONFIRM after CONFIRMs from one of my kernels.
        if amplify && !ctrl.sent_confirm && self.quorums.hits_kernel_for(me, &ctrl.confirms) {
            ctrl.sent_confirm = true;
            ctx.broadcast(AsymRiderMsg::Confirm { wave });
        }
        // Line 135: tReady after CONFIRMs from one of my quorums.
        if !ctrl.t_ready && self.quorums.contains_quorum_for(me, &ctrl.confirms) {
            ctrl.t_ready = true;
        }
    }
}

impl Protocol for AsymDagRider {
    type Msg = AsymRiderMsg;
    type Input = Block;
    type Output = OrderedVertex;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.advance(ctx);
    }

    fn on_input(&mut self, block: Block, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        self.core.enqueue_block(block);
        self.advance(ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match msg {
            AsymRiderMsg::Arb(inner) => {
                // Line 140: accept a vertex only if its strong edges contain
                // a quorum of some process's quorum system.
                let quorums = self.quorums.clone();
                let (out, fresh) = self.core.handle_arb(from, inner, |v| {
                    quorums.contains_quorum_for_any(v.strong_edges()).is_some()
                });
                for m in out {
                    ctx.broadcast(AsymRiderMsg::Arb(m));
                }
                // Line 142: ACK the creator of every delivered round-2
                // vertex (at most once per vertex).
                for vid in fresh {
                    if position_in_wave(vid.round) == 2 && self.acked_vertices.insert(vid) {
                        let wave = wave_of_round(vid.round);
                        ctx.send(vid.source, AsymRiderMsg::Ack { wave });
                    }
                }
            }
            AsymRiderMsg::Ack { wave } => {
                self.control.entry(wave).or_default().acks.insert(from);
                self.control_step(wave, ctx);
            }
            AsymRiderMsg::Ready { wave } => {
                self.control.entry(wave).or_default().readys.insert(from);
                self.control_step(wave, ctx);
            }
            AsymRiderMsg::Confirm { wave } => {
                self.control.entry(wave).or_default().confirms.insert(from);
                self.control_step(wave, ctx);
            }
        }
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::{maximal_guild, topology};
    use asym_sim::{scheduler, FaultMode, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn cluster(t: &topology::Topology, waves: WaveId) -> Vec<AsymDagRider> {
        let config = RiderConfig { max_waves: waves, ..Default::default() };
        (0..t.n()).map(|i| AsymDagRider::new(pid(i), t.quorums.clone(), 42, config)).collect()
    }

    fn check_total_order(outputs: &[Vec<OrderedVertex>]) {
        for a in outputs {
            for b in outputs {
                let common = a.len().min(b.len());
                for k in 0..common {
                    assert_eq!(a[k].id, b[k].id, "total order violated at position {k}");
                }
            }
        }
    }

    /// Runs the protocol over a topology with crashes; checks agreement,
    /// total order, integrity and progress for guild members.
    fn run_and_check(
        t: &topology::Topology,
        crashed: &[usize],
        seed: u64,
        waves: WaveId,
    ) -> Vec<Vec<OrderedVertex>> {
        let faulty: ProcessSet = crashed.iter().copied().collect();
        let guild = maximal_guild(&t.fail_prone, &t.quorums, &faulty)
            .expect("test topology must retain a guild");
        let mut sim = Simulation::new(cluster(t, waves), scheduler::Random::new(seed));
        for c in crashed {
            sim = sim.with_fault(pid(*c), FaultMode::CrashedFromStart);
        }
        for i in 0..t.n() {
            if !crashed.contains(&i) {
                sim.input(pid(i), Block::new(vec![7000 + i as u64]));
            }
        }
        let report = sim.run(200_000_000);
        assert!(report.quiescent, "{} seed {seed}: did not quiesce", t.name);

        let outputs: Vec<Vec<OrderedVertex>> =
            (0..t.n()).map(|i| sim.outputs(pid(i)).to_vec()).collect();
        let guild_outputs: Vec<Vec<OrderedVertex>> =
            guild.iter().map(|g| outputs[g.index()].clone()).collect();
        check_total_order(&guild_outputs);
        // Progress: guild members commit within the wave budget.
        for g in &guild {
            assert!(
                !outputs[g.index()].is_empty(),
                "{} seed {seed}: guild member {g} ordered nothing",
                t.name
            );
        }
        // Integrity: no duplicates.
        for o in &outputs {
            let mut seen = HashSet::new();
            for v in o {
                assert!(seen.insert(v.id), "duplicate delivery of {}", v.id);
            }
        }
        outputs
    }

    #[test]
    fn threshold_topology_commits_and_agrees() {
        let t = topology::uniform_threshold(4, 1);
        for seed in 0..4 {
            run_and_check(&t, &[], seed, 6);
        }
    }

    #[test]
    fn threshold_with_crash() {
        let t = topology::uniform_threshold(4, 1);
        for seed in 0..3 {
            run_and_check(&t, &[3], seed, 8);
        }
    }

    #[test]
    fn seven_processes_two_crashes() {
        let t = topology::uniform_threshold(7, 2);
        run_and_check(&t, &[5, 6], 1, 8);
    }

    #[test]
    fn ripple_topology_commits() {
        let t = topology::ripple_unl(10, 8, 1);
        for seed in 0..2 {
            run_and_check(&t, &[], seed, 6);
        }
    }

    #[test]
    fn ripple_topology_with_crash() {
        let t = topology::ripple_unl(10, 8, 1);
        run_and_check(&t, &[4], 3, 8);
    }

    #[test]
    fn stellar_topology_with_leaf_crashes() {
        let t = topology::stellar_tiers(8, 4, 1);
        run_and_check(&t, &[6, 7], 2, 8);
    }

    #[test]
    fn validity_blocks_eventually_ordered() {
        let t = topology::uniform_threshold(4, 1);
        let outputs = run_and_check(&t, &[], 11, 8);
        for (i, out) in outputs.iter().enumerate() {
            let txs: Vec<u64> = out.iter().flat_map(|o| o.block.txs.clone()).collect();
            for tx in 7000..7004 {
                assert!(txs.contains(&tx), "process {i} missing tx {tx}: {txs:?}");
            }
        }
    }

    #[test]
    fn deterministic_replay() {
        let t = topology::uniform_threshold(4, 1);
        let a = run_and_check(&t, &[], 5, 5);
        let b = run_and_check(&t, &[], 5, 5);
        assert_eq!(a, b, "same seed must replay identically");
    }

    #[test]
    fn outputs_respect_causality() {
        // A vertex is always delivered after its whole (non-genesis) causal
        // history: commits deliver leader histories oldest-wave-first and
        // sorted within a commit, so every parent precedes its child.
        let t = topology::uniform_threshold(4, 1);
        let mut sim = Simulation::new(cluster(&t, 6), scheduler::Random::new(2));
        for i in 0..4 {
            sim.input(pid(i), Block::new(vec![i as u64]));
        }
        assert!(sim.run(200_000_000).quiescent);
        for i in 0..4 {
            let out = sim.outputs(pid(i));
            let dag = sim.process(pid(i)).dag();
            let pos: HashMap<VertexId, usize> =
                out.iter().enumerate().map(|(k, o)| (o.id, k)).collect();
            for o in out {
                let v = dag.get(o.id).expect("delivered vertices are stored");
                for parent in v.parents() {
                    if parent.round == 0 {
                        continue;
                    }
                    let pp = pos.get(&parent).unwrap_or_else(|| {
                        panic!("process {i}: parent {parent} of {} not delivered", o.id)
                    });
                    assert!(pp < &pos[&o.id], "process {i}: {parent} after {}", o.id);
                }
            }
        }
    }

    #[test]
    fn figure1_topology_runs() {
        // The 30-process counterexample system is a valid quorum system; the
        // full consensus protocol must run on it (this is the paper's own
        // setting: all processes correct).
        let t = topology::Topology {
            name: "figure-1".into(),
            fail_prone: asym_quorum::counterexample::fig1_fail_prone(),
            quorums: asym_quorum::counterexample::fig1_quorums(),
        };
        run_and_check(&t, &[], 1, 6);
    }
}
