//! Delivered-state transfer: deep catch-up from pruned peers.
//!
//! WAL pruning (PR 4) garbage-collects every delivered vertex below the
//! decided wave, so a `Fetch`/`FetchReply` catch-up can no longer serve a
//! peer that lags below the pruning floor — in a deployment where *every*
//! process prunes, a deep laggard would be stuck forever. This module ships
//! the delivered prefix **as certified outputs instead of DAG vertices**:
//!
//! 1. a peer answering a [`Fetch`](crate::AsymRiderMsg::Fetch) below its
//!    own pruning floor adds a
//!    [`StateOffer`](crate::AsymRiderMsg::StateOffer) ("I can ship
//!    certified delivered state through wave `decided_wave`");
//! 2. the recovering laggard answers each useful offer with a
//!    [`StateRequest`](crate::AsymRiderMsg::StateRequest) naming its own
//!    decided-wave watermark;
//! 3. the donor replies with a [`StateChunk`](crate::AsymRiderMsg::StateChunk)
//!    of per-wave [`WaveSegment`]s: the wave, its coin-elected leader, and
//!    the wave's deliveries in the deterministic delivery order, blocks
//!    included.
//!
//! **Asymmetric-trust acceptance.** The fetch path for vertices already
//! required bit-identical copies from one of the receiver's *kernels* (a
//! set intersecting all of its quorums); transferred state crosses the
//! network outside the DAG and outside reliable broadcast, so it is held to
//! the same bar: a segment is installed only once identical copies arrived
//! from a kernel of the **receiver's own** quorum system ([`TransferState`]
//! tracks one vote per responder per wave). At least one member of every
//! such kernel is honest under the receiver's trust assumption, so a lone
//! equivocator cannot forge state, and kernel corroboration doubles as the
//! per-wave confirmation evidence (the CONFIRM-from-kernel amplification
//! rule, Algorithm 5 line 131). Agreement makes honest copies bit-identical:
//! per-wave delivery sets and their `(round, source)` order are common to
//! every honest process that decided the wave.
//!
//! # Example: offer → corroborate → install round-trip
//!
//! ```
//! use asym_core::{Block, TransferState, WaveCommitter, WaveSegment};
//! use asym_dag::VertexId;
//! use asym_quorum::{topology, ProcessId};
//!
//! let t = topology::uniform_threshold(4, 1);
//! let me = ProcessId::new(0);
//! let leader = VertexId::new(1, ProcessId::new(2));
//! let segment = WaveSegment {
//!     wave: 1,
//!     prev_wave: 0, // chains onto an empty commit log
//!     leader,
//!     deliveries: vec![(leader, Block::new(vec![7]))],
//! };
//!
//! // Two donors answer a StateRequest with bit-identical segments.
//! let mut xfer = TransferState::new();
//! xfer.vote(ProcessId::new(1), segment.clone());
//! assert!(xfer.take_ready(0, &t.quorums, me).is_none(), "one voucher is never a kernel");
//! xfer.vote(ProcessId::new(2), segment.clone());
//! let ready = xfer.take_ready(0, &t.quorums, me).expect("kernel corroboration reached");
//!
//! // Install: the commit log extends, and only fresh deliveries come back.
//! let mut committer = WaveCommitter::new();
//! let fresh = committer.install_wave(ready.wave, ready.leader, &ready.deliveries);
//! assert_eq!(fresh.len(), 1);
//! assert!(committer.is_delivered(leader));
//! assert_eq!(committer.decided_wave(), 1);
//! // Re-installing is impossible (the wave is decided) and re-delivery too.
//! assert!(committer.install_wave(2, VertexId::new(5, me), &ready.deliveries).is_empty());
//! ```

use std::collections::HashMap;

use asym_dag::{VertexId, WaveId};
use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};

use crate::types::Block;

/// One transferable wave of certified delivered state: the commit-log entry
/// plus the wave's deliveries in the deterministic delivery order.
///
/// Honest processes that decided `wave` agree on this segment bit for bit
/// (same coin-elected leader, same per-wave delivery set, same
/// `(round, source)` order, same blocks) — which is exactly what makes
/// kernel-matched corroboration meaningful.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveSegment {
    /// The decided wave this segment carries.
    pub wave: WaveId,
    /// The wave of the donor's commit-log entry immediately *before* this
    /// one (`0` for the first entry). Commit logs legitimately skip waves —
    /// a wave whose commit rule never fired has no entry, and its history
    /// delivers under a later wave's tag — so installs chain on the log,
    /// not on wave arithmetic: a segment is installable exactly when its
    /// `prev_wave` equals the receiver's decided watermark. Honest logs are
    /// prefix-consistent, so honest donors agree on the chain; a forged
    /// chain dies at kernel matching like any other forged field.
    pub prev_wave: WaveId,
    /// Its coin-elected leader (the commit-log entry).
    pub leader: VertexId,
    /// The wave's deliveries — `(vertex, block)` in delivery order.
    pub deliveries: Vec<(VertexId, Block)>,
}

/// Counters of one process's delivered-state-transfer activity, for the
/// scenario harness and the recovery experiment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// `StateOffer`s received while recovering.
    pub offers_received: u64,
    /// `StateRequest`s sent (one per useful offerer).
    pub requests_sent: u64,
    /// Wave segments received inside `StateChunk`s.
    pub segments_received: u64,
    /// Segments dropped before voting (stale wave, wrong coin leader,
    /// malformed delivery list).
    pub segments_rejected: u64,
    /// Waves installed after kernel corroboration.
    pub waves_installed: u64,
    /// Deliveries output by installs (fresh entries only).
    pub deliveries_installed: u64,
}

/// Receiver-side state of a delivered-state transfer: per-wave segment
/// copies with their vouching responders, one vote per responder per wave.
///
/// A Byzantine donor gets exactly one vote per wave, and votes are tracked
/// per *copy*, so a forged first reply can neither be installed alone nor
/// veto the genuine copy.
#[derive(Clone, Debug, Default)]
pub struct TransferState {
    /// wave → the distinct segment copies seen, each with its vouchers.
    votes: HashMap<WaveId, Vec<(WaveSegment, ProcessSet)>>,
    /// Peers sent a `StateRequest`, with the decided-wave watermark the
    /// request named. A peer is asked again only after the watermark has
    /// advanced past its previous request — so requests stay bounded while
    /// a prefix longer than [`TransferState::MAX_PENDING_WAVES`] can still
    /// be pulled over in installments.
    requested: HashMap<ProcessId, WaveId>,
    stats: TransferStats,
}

impl TransferState {
    /// Most pending (not yet corroborated) waves retained at once. Installs
    /// proceed watermark-upward, so only the lowest pending waves can ever
    /// be next — keeping the lowest `MAX_PENDING_WAVES` bounds the memory a
    /// forged chunk full of far-future waves can pin, and a genuine prefix
    /// longer than the window arrives in installments (the watermark
    /// advances, peers are re-requested).
    pub const MAX_PENDING_WAVES: usize = 64;

    /// Creates empty transfer state.
    pub fn new() -> Self {
        TransferState::default()
    }

    /// Activity counters.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Records an offer and decides whether to answer it with a
    /// `StateRequest`: only when the offered state extends past
    /// `my_decided`, and at most once per offerer *per watermark* — the
    /// same peer is asked again only after installs advanced the watermark
    /// past its previous request.
    pub fn note_offer(&mut self, from: ProcessId, offered: WaveId, my_decided: WaveId) -> bool {
        self.stats.offers_received += 1;
        if offered <= my_decided {
            return false;
        }
        if self.requested.get(&from).is_some_and(|asked_at| *asked_at >= my_decided) {
            return false;
        }
        self.requested.insert(from, my_decided);
        self.stats.requests_sent += 1;
        true
    }

    /// `true` if a `StateRequest` was ever sent to `from` — chunks from
    /// anyone else are unsolicited and dropped before they can pin state.
    pub fn has_requested(&self, from: ProcessId) -> bool {
        self.requested.contains_key(&from)
    }

    /// Records one responder's copy of a segment (first copy per wave per
    /// responder wins; later copies from the same responder are ignored).
    /// When the pending-wave window is full, only waves below the current
    /// highest pending wave are admitted (the highest is evicted) — the
    /// next installable wave is always the lowest, so the window never
    /// starves genuine progress.
    pub fn vote(&mut self, from: ProcessId, segment: WaveSegment) {
        if !self.votes.contains_key(&segment.wave) && self.votes.len() >= Self::MAX_PENDING_WAVES {
            let highest = self.votes.keys().max().copied().expect("non-empty at cap");
            if segment.wave >= highest {
                return;
            }
            self.votes.remove(&highest);
        }
        let copies = self.votes.entry(segment.wave).or_default();
        if copies.iter().any(|(_, voters)| voters.contains(from)) {
            return;
        }
        let slot = match copies.iter().position(|(copy, _)| *copy == segment) {
            Some(i) => i,
            None => {
                copies.push((segment, ProcessSet::new()));
                copies.len() - 1
            }
        };
        copies[slot].1.insert(from);
    }

    /// Counts a segment rejected before voting (stale, wrong leader,
    /// malformed).
    pub fn note_rejected(&mut self) {
        self.stats.segments_rejected += 1;
    }

    /// Counts a segment received (before validation).
    pub fn note_received(&mut self) {
        self.stats.segments_received += 1;
    }

    /// Counts one installed wave with its fresh-delivery count.
    pub fn note_installed(&mut self, fresh: usize) {
        self.stats.waves_installed += 1;
        self.stats.deliveries_installed += fresh as u64;
    }

    /// The next installable segment after the receiver's `decided`
    /// watermark: the lowest pending wave holding a copy that (a) chains
    /// directly onto the watermark (`prev_wave == decided`) and (b) has
    /// been vouched for by one of `me`'s kernels. Removes and returns it —
    /// the caller installs it and calls again with the new watermark.
    pub fn take_ready(
        &mut self,
        decided: WaveId,
        quorums: &AsymQuorumSystem,
        me: ProcessId,
    ) -> Option<WaveSegment> {
        let mut waves: Vec<WaveId> = self.votes.keys().copied().filter(|w| *w > decided).collect();
        waves.sort_unstable();
        for wave in waves {
            let copies = self.votes.get(&wave).expect("key just listed");
            if let Some(slot) = copies.iter().position(|(copy, voters)| {
                copy.prev_wave == decided && quorums.hits_kernel_for(me, voters)
            }) {
                let mut copies = self.votes.remove(&wave).expect("key just listed");
                return Some(copies.swap_remove(slot).0);
            }
        }
        None
    }

    /// Drops pending segments for waves at or below `decided` — they can
    /// never be installed (the watermark already passed them).
    pub fn discard_through(&mut self, decided: WaveId) {
        self.votes.retain(|w, _| *w > decided);
    }

    /// Number of waves with pending, not-yet-corroborated segments.
    pub fn pending_waves(&self) -> usize {
        self.votes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::topology;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn segment(wave: WaveId, tx: u64) -> WaveSegment {
        let leader = VertexId::new(4 * (wave - 1) + 1, pid(2));
        WaveSegment {
            wave,
            prev_wave: wave - 1,
            leader,
            deliveries: vec![(leader, Block::new(vec![tx]))],
        }
    }

    #[test]
    fn kernel_corroboration_gates_take_ready() {
        let t = topology::uniform_threshold(4, 1);
        let mut xfer = TransferState::new();
        xfer.vote(pid(1), segment(1, 7));
        assert!(xfer.take_ready(0, &t.quorums, pid(0)).is_none());
        // The same responder voting twice does not help.
        xfer.vote(pid(1), segment(1, 7));
        assert!(xfer.take_ready(0, &t.quorums, pid(0)).is_none());
        xfer.vote(pid(3), segment(1, 7));
        let ready = xfer.take_ready(0, &t.quorums, pid(0)).expect("two distinct vouchers");
        assert_eq!(ready, segment(1, 7));
        assert_eq!(xfer.pending_waves(), 0, "taking a wave clears its entry");
    }

    #[test]
    fn forged_copy_cannot_veto_or_ride_the_genuine_one() {
        let t = topology::uniform_threshold(4, 1);
        let mut xfer = TransferState::new();
        // The liar answers first with a forged copy.
        xfer.vote(pid(3), segment(1, 666));
        // Honest copies still accumulate on their own slot and win.
        xfer.vote(pid(1), segment(1, 7));
        xfer.vote(pid(2), segment(1, 7));
        let ready = xfer.take_ready(0, &t.quorums, pid(0)).expect("honest kernel");
        assert_eq!(ready.deliveries[0].1.txs, vec![7], "the forged copy must not be installed");
    }

    #[test]
    fn one_request_per_offerer_per_watermark() {
        let mut xfer = TransferState::new();
        assert!(!xfer.note_offer(pid(1), 3, 5), "offer at or below my watermark is useless");
        assert!(xfer.note_offer(pid(1), 8, 5));
        assert!(!xfer.note_offer(pid(1), 9, 5), "already asked p1 at this watermark");
        assert!(xfer.note_offer(pid(2), 8, 5));
        assert!(xfer.has_requested(pid(1)) && xfer.has_requested(pid(2)));
        assert!(!xfer.has_requested(pid(3)));
        // Once installs advance the watermark, the same peer may be asked
        // again — long prefixes arrive in installments.
        assert!(xfer.note_offer(pid(1), 9, 7), "watermark advanced past the previous request");
        assert_eq!(xfer.stats().offers_received, 5);
        assert_eq!(xfer.stats().requests_sent, 3);
    }

    #[test]
    fn pending_wave_window_is_bounded_and_keeps_the_lowest_waves() {
        let t = topology::uniform_threshold(4, 1);
        let mut xfer = TransferState::new();
        // A forger floods far-future waves: the window caps what is stored.
        for wave in 2..2 + 2 * TransferState::MAX_PENDING_WAVES as u64 {
            xfer.vote(pid(3), segment(wave, 666));
        }
        assert_eq!(xfer.pending_waves(), TransferState::MAX_PENDING_WAVES);
        // A *lower* genuine wave still gets in (the highest is evicted), so
        // the flood cannot starve the next installable wave.
        xfer.vote(pid(1), segment(1, 7));
        xfer.vote(pid(2), segment(1, 7));
        assert_eq!(xfer.pending_waves(), TransferState::MAX_PENDING_WAVES);
        let ready = xfer.take_ready(0, &t.quorums, pid(0)).expect("lowest wave installable");
        assert_eq!(ready.deliveries[0].1.txs, vec![7]);
    }

    #[test]
    fn discard_through_drops_stale_waves() {
        let mut xfer = TransferState::new();
        xfer.vote(pid(1), segment(1, 1));
        xfer.vote(pid(1), segment(2, 2));
        xfer.vote(pid(1), segment(3, 3));
        xfer.discard_through(2);
        assert_eq!(xfer.pending_waves(), 1);
        let t = topology::uniform_threshold(4, 1);
        xfer.vote(pid(2), segment(3, 3));
        assert!(xfer.take_ready(2, &t.quorums, pid(0)).is_some());
    }
}
