//! Shared vocabulary of the consensus protocols: blocks, ordered outputs,
//! configuration and per-process metrics.

use asym_dag::{Round, VertexId, WaveId};

/// An opaque transaction identifier (simulation-level payload).
pub type Tx = u64;

/// A block of transactions carried by one DAG vertex.
///
/// `aa-broadcast` enqueues blocks; each new vertex packs the oldest queued
/// block (or an empty one, see [`RiderConfig::allow_empty_blocks`]).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Block {
    /// The transactions in this block.
    pub txs: Vec<Tx>,
}

impl Block {
    /// Creates a block from transactions.
    pub fn new(txs: Vec<Tx>) -> Self {
        Block { txs }
    }

    /// `true` for filler blocks with no transactions.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }
}

impl Block {
    /// Canonical byte encoding (little-endian transaction ids), for
    /// content digests.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * self.txs.len());
        for tx in &self.txs {
            out.extend_from_slice(&tx.to_le_bytes());
        }
        out
    }
}

impl asym_storage::BlockCodec for Block {
    fn encode_block(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.encode());
    }

    fn decode_block(bytes: &[u8]) -> Option<Self> {
        if !bytes.len().is_multiple_of(8) {
            return None;
        }
        let mut txs = Vec::with_capacity(bytes.len() / 8);
        for chunk in bytes.chunks_exact(8) {
            txs.push(Tx::from_le_bytes(chunk.try_into().ok()?));
        }
        Some(Block { txs })
    }
}

/// One atomically delivered vertex: the unit of `aa-deliver`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrderedVertex {
    /// Identity of the ordered vertex.
    pub id: VertexId,
    /// The block it carried.
    pub block: Block,
    /// The wave whose leader commit ordered this vertex.
    pub committed_in_wave: WaveId,
}

/// Configuration shared by both DAG-Rider variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RiderConfig {
    /// Number of waves after which the process stops creating vertices
    /// (bounds a simulation; the protocol itself is infinite).
    pub max_waves: WaveId,
    /// Create empty filler blocks when no client block is queued. Disabling
    /// reproduces the paper's `wait until ¬blocksToPropose.empty()` (which
    /// can stall rounds).
    pub allow_empty_blocks: bool,
    /// Enable the CONFIRM-from-kernel amplification (asymmetric variant
    /// only; ignored by the symmetric baseline).
    pub kernel_amplification: bool,
    /// Garbage-collect the delivered prefix at every WAL snapshot: vertices
    /// of waves below the decided wave that were already delivered are
    /// dropped from the local DAG and from subsequent snapshots (bounding
    /// both), leaving a [`Pruned`](asym_storage::DagEvent::Pruned) marker
    /// so replay tolerates the missing ancestry. Off by default: pruning
    /// changes which old vertices are visible to `setWeakEdges`, so two
    /// runs differing only in snapshot cadence are no longer bit-identical.
    pub prune_wal: bool,
}

impl Default for RiderConfig {
    fn default() -> Self {
        RiderConfig {
            max_waves: 8,
            allow_empty_blocks: true,
            kernel_amplification: true,
            prune_wal: false,
        }
    }
}

impl RiderConfig {
    /// The last round this configuration allows: one past the final wave
    /// boundary, so the final `waveReady` still fires.
    pub fn max_round(&self) -> Round {
        4 * self.max_waves + 1
    }
}

/// Per-process execution counters, used by the experiment harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RiderMetrics {
    /// Highest round this process has entered.
    pub round: Round,
    /// Wave boundaries at which a commit was attempted.
    pub waves_attempted: u64,
    /// Waves committed directly at their boundary.
    pub waves_committed: u64,
    /// Waves skipped because the leader vertex was absent locally.
    pub waves_skipped_no_leader: u64,
    /// Waves skipped because the commit rule was not met.
    pub waves_skipped_rule: u64,
    /// Vertices atomically delivered.
    pub vertices_ordered: u64,
    /// Transactions atomically delivered.
    pub txs_ordered: u64,
    /// Vertices created and broadcast by this process.
    pub vertices_created: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_basics() {
        assert!(Block::default().is_empty());
        let b = Block::new(vec![1, 2, 3]);
        assert!(!b.is_empty());
        assert_eq!(b.txs.len(), 3);
    }

    #[test]
    fn config_max_round_covers_final_wave() {
        let c = RiderConfig { max_waves: 3, ..RiderConfig::default() };
        assert_eq!(c.max_round(), 13);
        assert!(asym_dag::is_wave_boundary(c.max_round() - 1));
    }
}
