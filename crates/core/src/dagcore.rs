//! Vertex lifecycle shared by both DAG-Rider variants: reliable-broadcast
//! dissemination, buffering until the causal history is complete, insertion,
//! and new-vertex creation with strong/weak edges (Algorithm 4, lines 78–98
//! and Algorithm 6, lines 137–143).

use std::collections::{BTreeSet, HashSet, VecDeque};

use asym_broadcast::{BcastMsg, BroadcastHub};
use asym_dag::{DagStore, Round, Vertex, VertexId};
use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};
use asym_storage::{DagEvent, EventLog, RecoveredState, StorageBackend};

use crate::types::{Block, RiderConfig, RiderMetrics};

/// The write-ahead log type the consensus processes persist to: typed DAG
/// events over either storage backend.
pub type DagLog = EventLog<Block, StorageBackend>;

/// The DAG-construction engine of one process: owns the local DAG, the
/// arb hub for vertex dissemination, the insertion buffer and the block
/// queue. The protocol variants supply the validation and round-advance
/// rules.
#[derive(Clone, Debug)]
pub struct DagCore {
    me: ProcessId,
    n: usize,
    hub: BroadcastHub<Vertex<Block>>,
    dag: DagStore<Block>,
    buffer: Vec<Vertex<Block>>,
    round: Round,
    blocks: VecDeque<Block>,
    config: RiderConfig,
    metrics: RiderMetrics,
    log: Option<DagLog>,
}

impl DagCore {
    /// Creates the engine; the DAG starts with the hard-coded genesis round
    /// (one round-0 vertex per process).
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem, config: RiderConfig) -> Self {
        let n = quorums.n();
        DagCore {
            me,
            n,
            hub: BroadcastHub::new(me, quorums),
            dag: DagStore::with_genesis(n, Block::default()),
            buffer: Vec::new(),
            round: 0,
            blocks: VecDeque::new(),
            config,
            metrics: RiderMetrics::default(),
            log: None,
        }
    }

    /// Attaches a write-ahead log (builder-style): from now on every vertex
    /// that enters the DAG is durably recorded in the same step.
    #[must_use]
    pub fn with_log(mut self, log: DagLog) -> Self {
        self.set_log(log);
        self
    }

    /// Attaches a write-ahead log in place (see [`DagCore::with_log`]).
    pub fn set_log(&mut self, log: DagLog) {
        self.log = Some(log);
    }

    /// Rebuilds an engine from crash-recovered state: the replayed DAG and
    /// round counter, plus the (still-attached) log it was replayed from.
    /// The broadcast hub, insertion buffer and block queue restart empty —
    /// they are in-memory transients a real crash loses.
    pub fn from_recovered(
        me: ProcessId,
        quorums: AsymQuorumSystem,
        config: RiderConfig,
        recovered: &RecoveredState<Block>,
        log: DagLog,
    ) -> Self {
        let n = quorums.n();
        DagCore {
            me,
            n,
            hub: BroadcastHub::new(me, quorums),
            dag: recovered.dag.clone(),
            buffer: Vec::new(),
            round: recovered.own_round,
            blocks: VecDeque::new(),
            config,
            metrics: RiderMetrics::default(),
            log: Some(log),
        }
    }

    /// The attached write-ahead log, if any.
    pub fn log(&self) -> Option<&DagLog> {
        self.log.as_ref()
    }

    /// Mutable access to the attached log (wave/delivery events, snapshot
    /// installation).
    pub fn log_mut(&mut self) -> Option<&mut DagLog> {
        self.log.as_mut()
    }

    /// Detaches and returns the log — the durable bytes that survive a
    /// modelled crash while the rest of this engine is dropped.
    pub fn take_log(&mut self) -> Option<DagLog> {
        self.log.take()
    }

    /// This process's identity.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The local DAG (read-only).
    pub fn dag(&self) -> &DagStore<Block> {
        &self.dag
    }

    /// Current round.
    pub fn round(&self) -> Round {
        self.round
    }

    /// Execution counters.
    pub fn metrics(&self) -> RiderMetrics {
        let mut m = self.metrics;
        m.round = self.round;
        m
    }

    /// Mutable access to the counters (for the protocol variants).
    pub fn metrics_mut(&mut self) -> &mut RiderMetrics {
        &mut self.metrics
    }

    /// Number of buffered (not yet insertable) vertices.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// The configured limits.
    pub fn config(&self) -> RiderConfig {
        self.config
    }

    /// Enqueues a client block (`aa-broadcast`).
    pub fn enqueue_block(&mut self, block: Block) {
        self.blocks.push_back(block);
    }

    /// Handles an arb-layer message carrying vertices. Valid deliveries are
    /// buffered; `validate` is the variant-specific strong-edge rule
    /// (Algorithm 6, line 140). Returns the arb messages to broadcast and
    /// the vertices delivered in this step (already buffered).
    pub fn handle_arb(
        &mut self,
        from: ProcessId,
        msg: BcastMsg<Vertex<Block>>,
        validate: impl Fn(&Vertex<Block>) -> bool,
    ) -> (Vec<BcastMsg<Vertex<Block>>>, Vec<VertexId>) {
        let (out, deliveries) = self.hub.on_message(from, msg);
        let mut fresh = Vec::new();
        for d in deliveries {
            let v = d.value;
            // Authenticated identity: the vertex must claim exactly the arb
            // instance it travelled in.
            if v.source() != d.origin || v.round() != d.tag {
                continue;
            }
            if v.round() == 0 {
                continue; // genesis is hard-coded, never broadcast
            }
            if !validate(&v) {
                continue;
            }
            fresh.push(v.id());
            self.buffer.push(v);
        }
        (out, fresh)
    }

    /// Moves every buffered vertex whose round is `≤ current round` and whose
    /// full causal history is present into the DAG (Algorithm 4, lines
    /// 95–98). Loops to a fixpoint; returns `true` if anything was inserted.
    pub fn drain_buffer(&mut self) -> bool {
        let mut progressed = false;
        loop {
            let mut inserted_one = false;
            let mut i = 0;
            while i < self.buffer.len() {
                let v = &self.buffer[i];
                // A buffered copy of a pruned identity is stale: it was
                // delivered (possibly via a state install) and garbage-
                // collected, so re-inserting it would silently diverge the
                // DAG from its log's pruning record.
                if self.dag.is_pruned(v.id()) {
                    self.buffer.swap_remove(i);
                    continue;
                }
                if v.round() <= self.round && self.dag.parents_present(v) {
                    let v = self.buffer.swap_remove(i);
                    let log = &mut self.log;
                    let hook = |v: &Vertex<Block>| {
                        if let Some(log) = log {
                            // A process that cannot persist must stop
                            // (fail-stop) rather than diverge from its log.
                            log.append(&DagEvent::VertexInserted(v.clone()))
                                .expect("WAL append failed");
                        }
                    };
                    match self.dag.insert_with(v, hook) {
                        Ok(()) => inserted_one = true,
                        Err(asym_dag::DagError::Duplicate(_)) => {}
                        Err(e) => unreachable!("parents checked: {e}"),
                    }
                } else {
                    i += 1;
                }
            }
            if !inserted_one {
                break;
            }
            progressed = true;
        }
        progressed
    }

    /// Creates, stores and returns this process's vertex for `round`,
    /// together with the arb messages disseminating it (Algorithm 4,
    /// `createNewVertex` + `arb-broadcast`). Advances the local round
    /// counter.
    ///
    /// # Panics
    ///
    /// Panics if called for a round other than `self.round() + 1`, or past
    /// the configured round bound.
    pub fn advance_and_broadcast(&mut self, round: Round) -> Vec<BcastMsg<Vertex<Block>>> {
        assert_eq!(round, self.round + 1, "rounds advance one at a time");
        assert!(round <= self.config.max_round(), "past configured horizon");
        self.round = round;
        // Without filler blocks the paper's `wait until ¬empty()` would
        // block here; both configurations fall back to an empty block to
        // keep the simulation live (documented deviation).
        let block = self.blocks.pop_front().unwrap_or_default();
        // Pruned previous-round vertices are sound strong-edge targets:
        // they were delivered (hence fully disseminated), so every peer
        // holds them as present-or-pruned too. Without them a process
        // resuming just above a delivered-state install floor could not
        // assemble a quorum of strong edges out of the gc'd round.
        let strong = self.dag.sources_in_round_or_pruned(round - 1);
        let weak = self.compute_weak_edges(round, &strong);
        let v = Vertex::new(self.me, round, block, strong, weak);
        self.metrics.vertices_created += 1;
        // Locally store via the buffer so self-delivery is not required
        // before referencing our own vertex.
        self.buffer.push(v.clone());
        self.drain_buffer();
        self.hub.broadcast(round, v)
    }

    /// Re-initiates reliable broadcast for every own vertex in the DAG —
    /// called once after crash recovery. Instances whose dissemination
    /// completed before the crash ignore the duplicate SEND; instances that
    /// stalled because this process's ECHO/READY died with it are revived
    /// (the fresh hub echoes its own re-SEND, completing the quorum).
    pub fn rebroadcast_own(&mut self) -> Vec<BcastMsg<Vertex<Block>>> {
        let mut out = Vec::new();
        for r in 1..=self.round {
            if let Some(v) = self.dag.get(VertexId::new(r, self.me)) {
                let v = v.clone();
                out.extend(self.hub.broadcast(r, v));
            }
        }
        out
    }

    /// Accepts a vertex obtained through the recovery fetch protocol
    /// (bypassing reliable broadcast — the caller has already established
    /// that enough processes vouch for it). Buffered like an arb delivery;
    /// insertion still waits for the round bound and the causal history.
    /// Vertices whose exact identity was pruned are *stale* — they belong
    /// to a garbage-collected delivered prefix whose content can never be
    /// needed again — and are dropped: re-buffering one would wedge on its
    /// equally-pruned parents and re-grow the log. (An *undelivered* old
    /// vertex this process never received is NOT stale, even below the
    /// pruning floor: a later leader may still order it, so it must be
    /// accepted.)
    pub fn accept_fetched(&mut self, v: Vertex<Block>) {
        if v.round() == 0 || self.dag.is_pruned(v.id()) || self.dag.contains(v.id()) {
            return;
        }
        if self.buffer.iter().any(|b| b.id() == v.id()) {
            return;
        }
        self.buffer.push(v);
    }

    /// `true` if a vertex with this identity is waiting in the insertion
    /// buffer.
    pub fn has_buffered(&self, id: VertexId) -> bool {
        self.buffer.iter().any(|b| b.id() == id)
    }

    /// Parents referenced by buffered vertices that are neither stored nor
    /// themselves buffered — the vertices a recovering process must fetch
    /// before its buffer can drain. Pruned parents are never missing: they
    /// were delivered and garbage-collected, and asking peers for them
    /// would refetch a prefix we promised to forget.
    pub fn missing_parents(&self) -> BTreeSet<VertexId> {
        let buffered: HashSet<VertexId> = self.buffer.iter().map(Vertex::id).collect();
        let mut missing = BTreeSet::new();
        for v in &self.buffer {
            for p in v.parents() {
                if !self.dag.is_pruned(p) && !self.dag.contains(p) && !buffered.contains(&p) {
                    missing.insert(p);
                }
            }
        }
        missing
    }

    /// Garbage-collects the delivered prefix from the live DAG: every
    /// vertex in `delivered` with round `<= up_to_round` is removed and the
    /// pruning floor ratchets up (see [`asym_storage::prune_dag`]). Called
    /// by the rider at snapshot time so the live DAG, the snapshot and a
    /// future replay all agree on what was forgotten. Returns the pruned
    /// vertices so the rider can harvest their blocks into its transferable
    /// delivered-state store (deep laggards are served outputs, not
    /// vertices).
    #[must_use]
    pub fn prune_delivered(
        &mut self,
        delivered: &BTreeSet<VertexId>,
        up_to_round: Round,
    ) -> Vec<Vertex<Block>> {
        asym_storage::prune_dag(&mut self.dag, delivered, up_to_round)
    }

    /// Records `id` as delivered-and-garbage-collected without requiring
    /// it to be present (see [`asym_dag::DagStore::note_pruned`]) — the
    /// delivered-state install path marks vertices it will never receive,
    /// so children referencing them still insert.
    pub fn note_pruned(&mut self, id: VertexId) {
        self.dag.note_pruned(id);
    }

    /// Jumps the round counter forward (never backward) — called after a
    /// delivered-state install so the process resumes creating vertices
    /// just above the installed floor instead of trying to re-run rounds
    /// whose vertices the whole system has garbage-collected.
    pub fn fast_forward_round(&mut self, round: Round) {
        self.round = self.round.max(round);
    }

    /// `setWeakEdges` (Algorithm 4, lines 84–88): weak edges to every vertex
    /// in rounds `1..round−1` not already reachable from the strong parents.
    fn compute_weak_edges(&self, round: Round, strong: &ProcessSet) -> Vec<VertexId> {
        if round < 3 {
            return Vec::new();
        }
        // Everything reachable from the strong parents.
        let mut reach: HashSet<VertexId> = HashSet::new();
        let mut queue: VecDeque<VertexId> =
            strong.iter().map(|s| VertexId::new(round - 1, s)).collect();
        reach.extend(queue.iter().copied());
        while let Some(cur) = queue.pop_front() {
            if let Some(v) = self.dag.get(cur) {
                for p in v.parents() {
                    if reach.insert(p) {
                        queue.push_back(p);
                    }
                }
            }
        }
        let mut weak = Vec::new();
        for r in (1..round - 1).rev() {
            for v in self.dag.vertices_in_round(r) {
                let id = v.id();
                if reach.contains(&id) {
                    continue;
                }
                weak.push(id);
                // The new weak edge makes id's causal history reachable too.
                let mut queue: VecDeque<VertexId> = VecDeque::new();
                queue.push_back(id);
                reach.insert(id);
                while let Some(cur) = queue.pop_front() {
                    if let Some(v) = self.dag.get(cur) {
                        for p in v.parents() {
                            if reach.insert(p) {
                                queue.push_back(p);
                            }
                        }
                    }
                }
            }
        }
        weak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::topology;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn core(i: usize) -> DagCore {
        let t = topology::uniform_threshold(4, 1);
        DagCore::new(pid(i), t.quorums, RiderConfig::default())
    }

    #[test]
    fn genesis_preloaded() {
        let c = core(0);
        assert_eq!(c.dag().len(), 4);
        assert_eq!(c.dag().sources_in_round(0), ProcessSet::full(4));
        assert_eq!(c.round(), 0);
    }

    #[test]
    fn advance_creates_and_self_inserts() {
        let mut c = core(0);
        c.enqueue_block(Block::new(vec![42]));
        let msgs = c.advance_and_broadcast(1);
        assert_eq!(msgs.len(), 1, "one SEND to all");
        assert_eq!(c.round(), 1);
        let own = c.dag().get(VertexId::new(1, pid(0))).expect("own vertex stored");
        assert_eq!(own.block().txs, vec![42]);
        assert_eq!(own.strong_edges().len(), 4, "references all genesis vertices");
        assert_eq!(c.metrics().vertices_created, 1);
    }

    #[test]
    fn empty_queue_creates_filler_block() {
        let mut c = core(0);
        c.advance_and_broadcast(1);
        let own = c.dag().get(VertexId::new(1, pid(0))).unwrap();
        assert!(own.block().is_empty());
    }

    #[test]
    #[should_panic(expected = "one at a time")]
    fn rounds_cannot_skip() {
        let mut c = core(0);
        c.advance_and_broadcast(2);
    }

    #[test]
    fn future_vertices_stay_buffered_until_round_reached() {
        let mut a = core(0);
        let mut b = core(1);
        // b advances to round 1; its vertex reaches a through the arb layer.
        let msgs = b.advance_and_broadcast(1);
        let mut inflight: Vec<(ProcessId, BcastMsg<Vertex<Block>>)> =
            msgs.into_iter().map(|m| (pid(1), m)).collect();
        // A crude arb pump: deliver everything to `a` (and echo back a's own
        // responses as if the other three processes behaved identically).
        let mut fresh = Vec::new();
        while let Some((from, m)) = inflight.pop() {
            let (out, f) = a.handle_arb(from, m, |_| true);
            fresh.extend(f);
            for m in out {
                // Simulate the other 3 processes sending the same message.
                for i in 0..4 {
                    if let BcastMsg::Echo { .. } | BcastMsg::Ready { .. } = &m {
                        inflight.push((pid(i), m.clone()));
                    }
                }
            }
        }
        assert_eq!(fresh.len(), 1, "vertex delivered by arb");
        // a is still at round 0: round-1 vertex is insertable only after a
        // advances... per Algorithm 4 the bound is `v.round ≤ r`; round 1 > 0.
        assert_eq!(a.buffered(), 1);
        assert!(!a.dag().contains(VertexId::new(1, pid(1))));
        a.advance_and_broadcast(1);
        assert!(a.drain_buffer() || a.dag().contains(VertexId::new(1, pid(1))));
        assert!(a.dag().contains(VertexId::new(1, pid(1))));
    }

    #[test]
    fn vertex_identity_must_match_arb_instance() {
        let mut a = core(0);
        // A vertex claiming source p2 travelling in p1's arb instance is
        // discarded even when the arb layer delivers it.
        let forged = Vertex::new(pid(2), 1, Block::default(), ProcessSet::full(4), vec![]);
        // Drive a's hub directly to delivery: 3 echoes + 3 readies.
        let msgs: Vec<BcastMsg<Vertex<Block>>> = vec![
            BcastMsg::Echo { origin: pid(1), tag: 1, value: forged.clone() },
            BcastMsg::Ready { origin: pid(1), tag: 1, value: forged.clone() },
        ];
        let mut fresh_total = 0;
        for m in &msgs {
            for s in 0..4 {
                let (_, fresh) = a.handle_arb(pid(s), m.clone(), |_| true);
                fresh_total += fresh.len();
            }
        }
        assert_eq!(fresh_total, 0, "mismatched identity must be dropped");
    }

    #[test]
    fn weak_edges_cover_unreachable_older_vertices() {
        // Build: p0 references only p0's chain strongly; p3's round-1 vertex
        // exists but is never referenced → becomes a weak edge at round 3.
        let t = topology::uniform_threshold(4, 1);
        let mut c = DagCore::new(
            pid(0),
            t.quorums,
            RiderConfig { allow_empty_blocks: true, ..Default::default() },
        );
        c.advance_and_broadcast(1);
        // Hand-insert p3's round-1 vertex (bypassing arb for the test).
        c.buffer.push(Vertex::new(pid(3), 1, Block::default(), ProcessSet::full(4), vec![]));
        c.drain_buffer();
        c.advance_and_broadcast(2); // strong edges = {p0, p3} (both in round 1)
        c.advance_and_broadcast(3);
        let v3 = c.dag().get(VertexId::new(3, pid(0))).unwrap();
        // Round-2 has only p0's vertex; its strong edges cover rounds 1.
        // Everything is reachable → no weak edges needed.
        assert!(v3.weak_edges().is_empty());

        // Now insert p2's round-1 vertex late: the round-4 vertex must weakly
        // reference it (not reachable through p0's chain).
        c.buffer.push(Vertex::new(pid(2), 1, Block::default(), ProcessSet::full(4), vec![]));
        c.drain_buffer();
        c.advance_and_broadcast(4);
        let v4 = c.dag().get(VertexId::new(4, pid(0))).unwrap();
        assert_eq!(v4.weak_edges(), &[VertexId::new(1, pid(2))]);
    }
}
