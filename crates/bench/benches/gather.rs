//! LAT-G: cost of the gather protocols — the symmetric 3-round gather
//! (Algorithm 1) vs. the constant-round asymmetric gather (Algorithm 3),
//! which pays the ACK/READY/CONFIRM control layer for asymmetric soundness.
//!
//! Criterion reports wall time per full protocol execution (all processes to
//! `ag-deliver`, simulation to quiescence); message counts are reported by
//! `cargo run -p asym-bench --bin exp_latency`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asym_dag_rider::prelude::*;
use asym_gather::{AsymGather, NaiveGather, SymGather};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn run_sym(n: usize, f: usize, seed: u64) -> u64 {
    let procs: Vec<SymGather<u64>> = (0..n).map(|i| SymGather::new(pid(i), n, f)).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    for i in 0..n {
        sim.input(pid(i), i as u64);
    }
    let r = sim.run(u64::MAX);
    assert!(r.quiescent);
    r.steps
}

fn run_asym(t: &topology::Topology, seed: u64) -> u64 {
    let procs: Vec<AsymGather<u64>> =
        (0..t.n()).map(|i| AsymGather::new(pid(i), t.quorums.clone())).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    for i in 0..t.n() {
        sim.input(pid(i), i as u64);
    }
    let r = sim.run(u64::MAX);
    assert!(r.quiescent);
    r.steps
}

fn run_naive(t: &topology::Topology, seed: u64) -> u64 {
    let procs: Vec<NaiveGather<u64>> =
        (0..t.n()).map(|i| NaiveGather::new(pid(i), t.quorums.clone())).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    for i in 0..t.n() {
        sim.input(pid(i), i as u64);
    }
    sim.run(u64::MAX).steps
}

fn bench_gather_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather-full-run");
    g.sample_size(10);
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
        g.bench_with_input(BenchmarkId::new("algorithm1-symmetric", n), &n, |b, _| {
            b.iter(|| black_box(run_sym(n, f, 1)))
        });
        let t = topology::uniform_threshold(n, f);
        g.bench_with_input(BenchmarkId::new("algorithm3-asymmetric", n), &n, |b, _| {
            b.iter(|| black_box(run_asym(&t, 1)))
        });
        g.bench_with_input(BenchmarkId::new("algorithm2-naive", n), &n, |b, _| {
            b.iter(|| black_box(run_naive(&t, 1)))
        });
    }
    g.finish();
}

fn bench_gather_topologies(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather-asym-topologies");
    g.sample_size(10);
    let fig1 = topology::Topology {
        name: "fig1".into(),
        fail_prone: asym_quorum::counterexample::fig1_fail_prone(),
        quorums: asym_quorum::counterexample::fig1_quorums(),
    };
    for t in [topology::ripple_unl(10, 8, 1), topology::stellar_tiers(10, 4, 1), fig1] {
        let name = t.name.clone();
        g.bench_function(&name, |b| b.iter(|| black_box(run_asym(&t, 1))));
    }
    g.finish();
}

criterion_group!(benches, bench_gather_protocols, bench_gather_topologies);
criterion_main!(benches);
