//! Cost of the DAG substrate: vertex insertion, strong-path queries (the
//! commit rule's hot loop) and causal-history traversal (ordering).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asym_core::Block;
use asym_dag::{DagStore, Vertex, VertexId};
use asym_quorum::{ProcessId, ProcessSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Fully connected DAG: n processes, `rounds` rounds.
fn full_dag(n: usize, rounds: u64) -> DagStore<Block> {
    let mut dag = DagStore::with_genesis(n, Block::default());
    for r in 1..=rounds {
        for i in 0..n {
            dag.insert(Vertex::new(
                pid(i),
                r,
                Block::new(vec![r * 1000 + i as u64]),
                ProcessSet::full(n),
                vec![],
            ))
            .unwrap();
        }
    }
    dag
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag-insert");
    for n in [4usize, 10, 30] {
        g.bench_with_input(BenchmarkId::new("build-20-rounds", n), &n, |b, _| {
            b.iter(|| black_box(full_dag(n, 20)))
        });
    }
    g.finish();
}

fn bench_strong_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag-strong-path");
    for n in [4usize, 10, 30] {
        let dag = full_dag(n, 40);
        let from = VertexId::new(40, pid(0));
        let to = VertexId::new(1, pid(n - 1));
        g.bench_with_input(BenchmarkId::new("depth-40", n), &n, |b, _| {
            b.iter(|| black_box(dag.strong_path(from, to)))
        });
        g.bench_with_input(BenchmarkId::new("reach-sources-wave", n), &n, |b, _| {
            b.iter(|| black_box(dag.strong_reachable_sources(VertexId::new(8, pid(0)), 5)))
        });
    }
    g.finish();
}

fn bench_causal_history(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag-causal-history");
    g.sample_size(30);
    for n in [4usize, 10, 30] {
        let dag = full_dag(n, 40);
        let from = VertexId::new(40, pid(0));
        g.bench_with_input(BenchmarkId::new("depth-40", n), &n, |b, _| {
            b.iter(|| black_box(dag.causal_history(from).len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert, bench_strong_path, bench_causal_history);
criterion_main!(benches);
