//! Microbenchmarks of the quorum-system substrate: set algebra, quorum
//! membership tests (the hot path of every protocol step), B³ validation and
//! guild computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asym_quorum::{counterexample, maximal_guild, topology, ProcessId, ProcessSet};

fn bench_set_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("process-set");
    for n in [32usize, 128, 512] {
        let a: ProcessSet = (0..n).step_by(2).collect();
        let b: ProcessSet = (0..n).step_by(3).collect();
        g.bench_with_input(BenchmarkId::new("union", n), &n, |bench, _| {
            bench.iter(|| black_box(a.union(&b)))
        });
        g.bench_with_input(BenchmarkId::new("is_subset", n), &n, |bench, _| {
            bench.iter(|| black_box(a.is_subset(&b)))
        });
        g.bench_with_input(BenchmarkId::new("iter-collect", n), &n, |bench, _| {
            bench.iter(|| black_box(a.to_index_vec()))
        });
    }
    g.finish();
}

fn bench_quorum_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("quorum-membership");
    // Threshold representation: O(1) popcount path.
    let t = topology::uniform_threshold(31, 10);
    let observed: ProcessSet = (0..21).collect();
    g.bench_function("threshold-n31", |b| {
        b.iter(|| black_box(t.quorums.contains_quorum_for(ProcessId::new(0), &observed)))
    });
    // Explicit single-quorum representation (Figure-1 style).
    let fig1 = counterexample::fig1_quorums();
    let observed = counterexample::fig1_quorum_of(ProcessId::new(0));
    g.bench_function("explicit-fig1", |b| {
        b.iter(|| black_box(fig1.contains_quorum_for(ProcessId::new(0), &observed)))
    });
    g.bench_function("explicit-fig1-any", |b| {
        b.iter(|| black_box(fig1.contains_quorum_for_any(&observed).is_some()))
    });
    // Slice-threshold (Ripple UNL) representation.
    let r = topology::ripple_unl(30, 24, 3);
    let observed: ProcessSet = (0..24).collect();
    g.bench_function("slice-ripple-n30", |b| {
        b.iter(|| black_box(r.quorums.contains_quorum_for(ProcessId::new(0), &observed)))
    });
    g.finish();
}

fn bench_b3_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("b3-validation");
    g.sample_size(20);
    let fig1 = counterexample::fig1_fail_prone();
    g.bench_function("fig1-explicit-n30", |b| b.iter(|| black_box(fig1.satisfies_b3())));
    let thr = topology::uniform_threshold(100, 33).fail_prone;
    g.bench_function("threshold-n100-fastpath", |b| b.iter(|| black_box(thr.satisfies_b3())));
    let ripple = topology::ripple_unl(12, 10, 1).fail_prone;
    g.bench_function("ripple-n12", |b| b.iter(|| black_box(ripple.satisfies_b3())));
    g.finish();
}

fn bench_guild(c: &mut Criterion) {
    let mut g = c.benchmark_group("maximal-guild");
    for (name, t, faulty) in [
        ("threshold-n10", topology::uniform_threshold(10, 3), vec![8, 9]),
        ("ripple-n10", topology::ripple_unl(10, 8, 1), vec![4]),
        (
            "fig1-n30",
            topology::Topology {
                name: "fig1".into(),
                fail_prone: counterexample::fig1_fail_prone(),
                quorums: counterexample::fig1_quorums(),
            },
            vec![],
        ),
    ] {
        let f: ProcessSet = faulty.into_iter().collect();
        g.bench_function(name, |b| {
            b.iter(|| black_box(maximal_guild(&t.fail_prone, &t.quorums, &f)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_set_ops, bench_quorum_checks, bench_b3_validation, bench_guild);
criterion_main!(benches);
