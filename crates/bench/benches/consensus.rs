//! LAT-C / BASE: end-to-end consensus cost — asymmetric DAG-Rider
//! (Algorithms 4–6) vs. the symmetric DAG-Rider baseline, across system
//! sizes and trust topologies. Wall time per bounded execution (fixed wave
//! budget, run to quiescence); the derived observables (waves per commit,
//! message counts, simulated latency) are printed by
//! `cargo run -p asym-bench --bin exp_waves` / `exp_latency`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asym_dag_rider::prelude::*;

fn run_asym(t: &topology::Topology, waves: u64) -> u64 {
    let report = Cluster::new(t.clone())
        .adversary(Adversary::Random(1))
        .waves(waves)
        .blocks_per_process(1)
        .run_asymmetric();
    assert!(report.quiescent);
    report.steps
}

fn run_sym(t: &topology::Topology, f: usize, waves: u64) -> u64 {
    let report = Cluster::new(t.clone())
        .adversary(Adversary::Random(1))
        .waves(waves)
        .blocks_per_process(1)
        .run_baseline(f);
    assert!(report.quiescent);
    report.steps
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus-3-waves");
    g.sample_size(10);
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let t = topology::uniform_threshold(n, f);
        g.bench_with_input(BenchmarkId::new("asym-dag-rider", n), &n, |b, _| {
            b.iter(|| black_box(run_asym(&t, 3)))
        });
        g.bench_with_input(BenchmarkId::new("dag-rider-baseline", n), &n, |b, _| {
            b.iter(|| black_box(run_sym(&t, f, 3)))
        });
    }
    g.finish();
}

fn bench_topologies(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus-topologies");
    g.sample_size(10);
    for t in [topology::ripple_unl(10, 8, 1), topology::stellar_tiers(10, 4, 1)] {
        let name = t.name.clone();
        g.bench_function(&name, |b| b.iter(|| black_box(run_asym(&t, 3))));
    }
    g.finish();
}

fn bench_crash_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus-with-crash");
    g.sample_size(10);
    let t = topology::uniform_threshold(7, 2);
    g.bench_function("no-crash", |b| b.iter(|| black_box(run_asym(&t, 3))));
    g.bench_function("two-crashes", |b| {
        b.iter(|| {
            let report = Cluster::new(t.clone())
                .adversary(Adversary::Random(1))
                .crash([5, 6])
                .waves(3)
                .run_asymmetric();
            black_box(report.steps)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scaling, bench_topologies, bench_crash_overhead);
criterion_main!(benches);
