//! Cost of the broadcast layer: one asymmetric reliable broadcast to full
//! delivery (all processes), across system sizes and quorum representations,
//! plus the cheaper consistent broadcast for contrast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use asym_broadcast::{ArbProcess, CbProcess};
use asym_dag_rider::prelude::*;

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn run_arb(quorums: &AsymQuorumSystem, seed: u64) -> u64 {
    let n = quorums.n();
    let procs: Vec<ArbProcess> = (0..n).map(|i| ArbProcess::new(pid(i), quorums.clone())).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    sim.input(pid(0), (0, 7));
    let r = sim.run(u64::MAX);
    assert!(r.quiescent);
    r.steps
}

fn run_cb(quorums: &AsymQuorumSystem, seed: u64) -> u64 {
    let n = quorums.n();
    let procs: Vec<CbProcess> = (0..n).map(|i| CbProcess::new(pid(i), quorums.clone())).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    sim.input(pid(0), (0, 7));
    let r = sim.run(u64::MAX);
    assert!(r.quiescent);
    r.steps
}

fn bench_reliable(c: &mut Criterion) {
    let mut g = c.benchmark_group("reliable-broadcast");
    g.sample_size(20);
    for (n, f) in [(4usize, 1usize), (10, 3), (16, 5)] {
        let t = topology::uniform_threshold(n, f);
        g.bench_with_input(BenchmarkId::new("threshold", n), &n, |b, _| {
            b.iter(|| black_box(run_arb(&t.quorums, 1)))
        });
    }
    let fig1 = asym_quorum::counterexample::fig1_quorums();
    g.bench_function("fig1-n30", |b| b.iter(|| black_box(run_arb(&fig1, 1))));
    g.finish();
}

fn bench_consistent_vs_reliable(c: &mut Criterion) {
    let mut g = c.benchmark_group("consistent-vs-reliable");
    g.sample_size(20);
    let t = topology::uniform_threshold(10, 3);
    g.bench_function("reliable-n10", |b| b.iter(|| black_box(run_arb(&t.quorums, 1))));
    g.bench_function("consistent-n10", |b| b.iter(|| black_box(run_cb(&t.quorums, 1))));
    g.finish();
}

criterion_group!(benches, bench_reliable, bench_consistent_vs_reliable);
criterion_main!(benches);
