//! FIG1–FIG4 + LST1 + SMALL (see the repository `README.md`): regenerates every figure
//! of the paper and the Listing-1 verdict, then sweeps small systems to
//! corroborate the "< 16 processes always reach a common core" remark.
//!
//! ```bash
//! cargo run -p asym-bench --bin fig_counterexample
//! ```

use asym_bench::{render_table, Row};
use asym_gather::dataflow;
use asym_quorum::counterexample::{
    fig1_fail_prone, fig1_quorum_of, fig1_quorums, render_grid, FIG1_N,
};
use asym_quorum::{ProcessId, ProcessSet};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let fps = fig1_fail_prone();
    let qs = fig1_quorums();
    assert!(fps.satisfies_b3());
    qs.validate(&fps).expect("Theorem 2.4");

    let quorums: Vec<ProcessSet> = (0..FIG1_N).map(|i| fig1_quorum_of(ProcessId::new(i))).collect();

    println!("=== FIGURE 1: fail-prone system (complement of each row's quorum) ===\n");
    println!("{}", render_grid(&quorums));
    println!("B3: ✓   consistency: ✓   availability: ✓\n");

    let sets = dataflow::three_rounds(&quorums);
    println!("=== FIGURE 2: S sets after round 1 ===\n{}", render_grid(&sets.s));
    println!("=== FIGURE 3: T sets after round 2 ===\n{}", render_grid(&sets.t));
    println!("=== FIGURE 4: U sets after round 3 ===\n{}", render_grid(&sets.u));

    let candidates = dataflow::common_core_candidates(&sets.s, &sets.u);
    println!("=== LISTING 1: all_candidates = {candidates} ===");
    assert!(candidates.is_empty());
    println!("empty ⇒ NO common core after 3 rounds (Lemma 3.2) ✓\n");

    let rounds = dataflow::rounds_to_common_core(&quorums, 16).unwrap();
    println!("rounds of quorum-union until a common core appears on Figure 1: {rounds}\n");

    // SMALL: random majority-quorum systems below 16 processes never fail.
    println!("=== SMALL: 3-round common core on random majority-quorum systems ===\n");
    let mut rows = Vec::new();
    for n in 4..=15usize {
        let trials = 2_000;
        let mut failures = 0u64;
        let q = n / 2 + 1;
        let mut rng = SmallRng::seed_from_u64(n as u64);
        for _ in 0..trials {
            let choice: Vec<ProcessSet> = (0..n)
                .map(|_| {
                    let mut ids: Vec<usize> = (0..n).collect();
                    ids.shuffle(&mut rng);
                    ids.into_iter().take(q).collect()
                })
                .collect();
            if !dataflow::has_common_core(&choice) {
                failures += 1;
            }
        }
        rows.push(Row {
            label: format!("n={n}, |Q|={q}"),
            values: vec![("trials".into(), trials as f64), ("no-core".into(), failures as f64)],
        });
    }
    println!("{}", render_table("random majority-quorum systems, 3 dataflow rounds", &rows));
    println!("0 failures across every n < 16, matching the paper's §3.2 remark;");
    println!("the 30-process Figure-1 system is the published counterexample above.");
}
