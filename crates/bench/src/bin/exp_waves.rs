//! WAVES (Lemma 4.4): measures the observed number of wave boundaries per
//! direct commit against the paper's bound `|P| / c(Q)`, under three
//! delivery regimes:
//!
//! * **fair** — seeded random delivery: DAGs become complete, every wave
//!   commits (the benign floor of 1.0);
//! * **delay** — a targeted-delay adversary starves `f` victims' messages as
//!   long as anything else is deliverable, so leader vertices are often
//!   missing at wave boundaries — the adversarial regime the lemma bounds;
//! * **crash** — `f` processes crash: elected-but-dead leaders always skip
//!   (threshold topologies; crash patterns that keep a guild).
//!
//! `--symmetric` adds the DAG-Rider baseline (classic bound 3/2).
//!
//! ```bash
//! cargo run -p asym-bench --bin exp_waves [-- --symmetric]
//! ```

use asym_bench::{render_table, standard_topologies, Row};
use asym_dag_rider::prelude::*;

const WAVES: u64 = 16;
const SEEDS: std::ops::RangeInclusive<u64> = 1..=5;

fn mean_wpc(reports: &[ClusterReport]) -> f64 {
    let wpcs: Vec<f64> = reports.iter().filter_map(ClusterReport::waves_per_commit).collect();
    if wpcs.is_empty() {
        return f64::INFINITY;
    }
    wpcs.iter().sum::<f64>() / wpcs.len() as f64
}

fn skip_rate(reports: &[ClusterReport]) -> f64 {
    let (mut skipped, mut attempted) = (0u64, 0u64);
    for r in reports {
        for m in &r.metrics {
            skipped += m.waves_skipped_no_leader + m.waves_skipped_rule;
            attempted += m.waves_attempted;
        }
    }
    if attempted == 0 {
        return f64::NAN;
    }
    100.0 * skipped as f64 / attempted as f64
}

fn run_suite(t: &topology::Topology, adversary: impl Fn(u64) -> Adversary) -> Vec<ClusterReport> {
    SEEDS
        .map(|seed| {
            Cluster::new(t.clone())
                .adversary(adversary(seed))
                .coin_seed(seed * 101)
                .waves(WAVES)
                .blocks_per_process(1)
                .run_asymmetric()
        })
        .collect()
}

/// Victims for the delay adversary: a small tolerable set (delaying is not
/// crashing, so any size is *safe*, but starving many processes mostly slows
/// the simulation without sharpening the measurement).
fn victims(t: &topology::Topology) -> ProcessSet {
    let n = t.n();
    let tolerable = (n - t.quorums.min_quorum_size()).clamp(1, 3);
    (n - tolerable..n).collect()
}

fn main() {
    let symmetric = std::env::args().any(|a| a == "--symmetric");

    let mut rows = Vec::new();
    for t in standard_topologies() {
        let n = t.n() as f64;
        let c_q = t.quorums.min_quorum_size() as f64;
        let fair = run_suite(&t, Adversary::Random);
        // The O(pending)-per-step delay adversary is too slow for the
        // 30-process figure-1 system; its adversarial regime is covered by
        // the crash table below and the experiment notes in the README.
        let delay = (t.n() <= 10).then(|| run_suite(&t, |_| Adversary::TargetedDelay(victims(&t))));
        rows.push(Row {
            label: t.name.clone(),
            values: vec![
                ("bound |P|/c(Q)".into(), n / c_q),
                ("fair w/c".into(), mean_wpc(&fair)),
                ("delay w/c".into(), delay.as_ref().map_or(f64::NAN, |d| mean_wpc(d))),
                ("delay skip%".into(), delay.as_ref().map_or(f64::NAN, |d| skip_rate(d))),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            &format!(
                "WAVES — asymmetric DAG-Rider, {WAVES} waves × {} seeds.\n\
                 w/c = wave boundaries per direct commit (Lemma 4.4 bound: |P|/c(Q))",
                SEEDS.count()
            ),
            &rows
        )
    );

    // Crash regime: threshold topologies with f crashes — an elected dead
    // leader has no vertex, so commit probability is (n−f)/n.
    let mut rows = Vec::new();
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let t = topology::uniform_threshold(n, f);
        let crashed: Vec<usize> = (n - f..n).collect();
        let reports: Vec<ClusterReport> = SEEDS
            .map(|seed| {
                Cluster::new(t.clone())
                    .adversary(Adversary::Random(seed))
                    .coin_seed(seed * 101)
                    .crash(crashed.iter().copied())
                    .waves(WAVES)
                    .run_asymmetric()
            })
            .collect();
        rows.push(Row {
            label: format!("threshold n={n}, {f} crashed"),
            values: vec![
                ("bound |P|/c(Q)".into(), n as f64 / (n - f) as f64),
                ("expected n/(n−f)".into(), n as f64 / (n - f) as f64),
                ("observed w/c".into(), mean_wpc(&reports)),
                ("skip%".into(), skip_rate(&reports)),
            ],
        });
    }
    println!(
        "{}",
        render_table("WAVES/crash — dead leaders force skips (geometric retries)", &rows)
    );

    if symmetric {
        let mut rows = Vec::new();
        for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
            let t = topology::uniform_threshold(n, f);
            let reports: Vec<ClusterReport> = SEEDS
                .map(|seed| {
                    Cluster::new(t.clone())
                        .adversary(Adversary::Random(seed))
                        .coin_seed(seed * 101)
                        .waves(WAVES)
                        .run_baseline(f)
                })
                .collect();
            rows.push(Row {
                label: format!("baseline n={n}, f={f}"),
                values: vec![
                    ("bound 3/2".into(), 1.5),
                    ("observed w/c".into(), mean_wpc(&reports)),
                ],
            });
        }
        println!("{}", render_table("BASE — symmetric DAG-Rider under fair delivery", &rows));
    }

    println!(
        "shape: fair delivery sits at the 1.0 floor; adversarial delay and crashes\n\
         push the rate toward (never beyond twice) the |P|/c(Q) bound, and the\n\
         ordering across topologies follows the bound — the §4.3 constant at work."
    );
}
