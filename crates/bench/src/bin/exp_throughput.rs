//! THRU: throughput under increasing load — the paper's motivation for DAG
//! protocols is that transaction dissemination parallelizes (every process
//! contributes one vertex per round), unlike single-leader chains. This
//! experiment scales the injected load and reports ordered transactions per
//! simulated time unit for asymmetric DAG-Rider and the symmetric baseline.
//!
//! ```bash
//! cargo run --release -p asym-bench --bin exp_throughput
//! ```

use asym_bench::{render_table, Row};
use asym_dag_rider::prelude::*;

fn run(topo: &topology::Topology, f: Option<usize>, blocks: usize, txs: usize) -> (u64, u64, f64) {
    let c = Cluster::new(topo.clone())
        .adversary(Adversary::Latency { seed: 11, min: 1, max: 20 })
        .waves(8)
        .blocks_per_process(blocks)
        .txs_per_block(txs);
    let report = match f {
        None => c.run_asymmetric(),
        Some(f) => c.run_baseline(f),
    };
    let txs_ordered = report.max_txs_ordered();
    let time = report.time.max(1);
    (txs_ordered, time, txs_ordered as f64 / time as f64)
}

fn main() {
    let mut rows = Vec::new();
    let t = topology::uniform_threshold(7, 2);
    for (blocks, txs) in [(1usize, 4usize), (2, 16), (4, 64), (8, 128)] {
        let injected = 7 * blocks * txs;
        let (a_txs, a_time, a_tput) = run(&t, None, blocks, txs);
        let (s_txs, s_time, s_tput) = run(&t, Some(2), blocks, txs);
        rows.push(Row {
            label: format!("load {injected} txs"),
            values: vec![
                ("asym ordered".into(), a_txs as f64),
                ("asym time".into(), a_time as f64),
                ("asym tput".into(), a_tput),
                ("sym ordered".into(), s_txs as f64),
                ("sym time".into(), s_time as f64),
                ("sym tput".into(), s_tput),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            "THRU — n=7, 8 waves, random 1–20 unit link latency; \
             tput = ordered txs per simulated time unit",
            &rows
        )
    );

    // Topology sweep at fixed load: asymmetric trust does not tax throughput.
    let mut rows = Vec::new();
    for t in [
        topology::uniform_threshold(7, 2),
        topology::ripple_unl(10, 8, 1),
        topology::stellar_tiers(10, 4, 1),
    ] {
        let (txs, time, tput) = run(&t, None, 4, 64);
        rows.push(Row {
            label: t.name.clone(),
            values: vec![
                ("ordered".into(), txs as f64),
                ("time".into(), time as f64),
                ("tput".into(), tput),
            ],
        });
    }
    println!("{}", render_table("THRU/topologies — asymmetric DAG-Rider, load 4×64", &rows));
    println!(
        "shape: throughput rises with load (vertices batch whatever is queued) and\n\
         the asymmetric variant tracks the baseline within its constant control-\n\
         message overhead — trust heterogeneity costs latency constants, not\n\
         throughput. This mirrors the paper's §1 motivation for DAG protocols."
    );
}
