//! REC: the persistence & crash-recovery experiment — WAL append
//! throughput (in-memory and file backends), snapshot size vs. DAG height,
//! and recovery (replay) latency vs. DAG height, plus an end-to-end
//! restart scenario reporting how much work recovery actually performed.
//!
//! Exits non-zero if any replayed state diverges from its source.
//!
//! ```bash
//! cargo run --release -p asym-bench --bin exp_recovery            # full sweep
//! cargo run --release -p asym-bench --bin exp_recovery -- --smoke # CI subset
//! ```

use std::time::Instant;

use asym_bench::{render_table, Row};
use asym_core::Block;
use asym_dag::{Vertex, VertexId};
use asym_quorum::{ProcessId, ProcessSet};
use asym_scenarios::{checks, Fault, FaultPlan, Scenario, SchedulerSpec, TopologySpec};
use asym_storage::{DagEvent, EventLog, StorageBackend, RECORD_HEADER_BYTES};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

type Log = EventLog<Block, StorageBackend>;

/// The event stream of a full `n`-process DAG of `rounds` rounds, with one
/// delivery + decision per wave — the synthetic workload all measurements
/// share.
fn workload(n: usize, rounds: u64) -> Vec<DagEvent<Block>> {
    let mut events = Vec::new();
    for r in 1..=rounds {
        for i in 0..n {
            events.push(DagEvent::VertexInserted(Vertex::new(
                pid(i),
                r,
                Block::new(vec![r * 100 + i as u64, r, i as u64]),
                ProcessSet::full(n),
                vec![],
            )));
        }
        if r.is_multiple_of(4) {
            let wave = r / 4;
            let leader = VertexId::new(4 * (wave - 1) + 1, pid((wave as usize) % n));
            events.push(DagEvent::WaveConfirmed { wave });
            events.push(DagEvent::WaveDecided { wave, leader });
            events.push(DagEvent::BlockDelivered { id: leader, wave });
        }
    }
    events
}

fn append_all(log: &mut Log, events: &[DagEvent<Block>]) {
    for ev in events {
        log.append(ev).expect("append");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 8;
    let heights: &[u64] = if smoke { &[8, 16] } else { &[8, 16, 32, 64, 128] };
    let throughput_rounds = if smoke { 32 } else { 256 };

    // ── WAL append throughput, per backend ────────────────────────────────
    let events = workload(n, throughput_rounds);
    let total_bytes: u64 =
        events.iter().map(|e| (e.encode().len() + RECORD_HEADER_BYTES) as u64).sum();
    let mut rows = Vec::new();
    let file_dir = std::env::temp_dir().join(format!("exp-recovery-{}", std::process::id()));
    let backends: Vec<(&str, Log)> = vec![
        ("mem", Log::new(StorageBackend::in_memory()).with_snapshot_every(0)),
        (
            "file",
            Log::new(StorageBackend::file(&file_dir).expect("temp dir writable"))
                .with_snapshot_every(0),
        ),
    ];
    for (name, mut log) in backends {
        let start = Instant::now();
        append_all(&mut log, &events);
        let dt = start.elapsed().as_secs_f64().max(1e-9);
        rows.push(Row {
            label: format!("append/{name}"),
            values: vec![
                ("events".into(), events.len() as f64),
                ("kB".into(), total_bytes as f64 / 1024.0),
                ("events/ms".into(), events.len() as f64 / (dt * 1e3)),
                ("MB/s".into(), total_bytes as f64 / (1024.0 * 1024.0) / dt),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            &format!(
                "REC-1 — WAL append throughput (n={n}, {throughput_rounds} rounds; \
                 framed little-endian records, FNV-1a-64 checksums)"
            ),
            &rows
        )
    );

    // ── Snapshot size and recovery latency vs. DAG height ─────────────────
    let mut rows = Vec::new();
    for &h in heights {
        let events = workload(n, h);
        let mut log = Log::new(StorageBackend::in_memory()).with_snapshot_every(0);
        append_all(&mut log, &events);
        let log_bytes = log.stats().bytes_appended;

        let t0 = Instant::now();
        let replayed = log.replay(n, pid(0), Block::default()).expect("replay");
        let replay_log_us = t0.elapsed().as_secs_f64() * 1e6;
        assert_eq!(replayed.dag.len(), n + (n as u64 * h) as usize, "replay lost vertices");

        // Compact into a snapshot and measure both its size and how fast
        // recovery gets when it replays the snapshot instead of the log.
        let mut snapped = Log::new(StorageBackend::in_memory());
        snapped.install_snapshot(&replayed.to_snapshot_events()).expect("snapshot");
        let snap_bytes = snapped.stats().last_snapshot_bytes;
        let t1 = Instant::now();
        let re = snapped.replay(n, pid(0), Block::default()).expect("replay snapshot");
        let replay_snap_us = t1.elapsed().as_secs_f64() * 1e6;
        assert_eq!(re.dag.len(), replayed.dag.len(), "snapshot replay diverged");
        assert_eq!(re.delivered, replayed.delivered, "snapshot lost deliveries");

        rows.push(Row {
            label: format!("height={h} ({} waves)", h / 4),
            values: vec![
                ("log kB".into(), log_bytes as f64 / 1024.0),
                ("snap kB".into(), snap_bytes as f64 / 1024.0),
                ("replay µs".into(), replay_log_us),
                ("snap-replay µs".into(), replay_snap_us),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            &format!(
                "REC-2 — snapshot size and recovery latency vs. DAG height (n={n}).\n\
                 replay µs = folding the raw WAL back into DAG + delivered set + commit log"
            ),
            &rows
        )
    );

    // ── End-to-end: a restart cell, with recovery work accounting ─────────
    let waves = if smoke { 5 } else { 6 };
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1200 }),
        SchedulerSpec::Random,
        3,
    )
    .waves(waves);
    let t0 = Instant::now();
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| {
        eprintln!("restart scenario violated an invariant:\n{e}");
        std::process::exit(1);
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = outcome.wal_stats[1].expect("restart process has a WAL");
    let replay = outcome.wal_replays[1].as_ref().unwrap().as_ref().unwrap();
    let rows = vec![Row {
        label: scenario.cell(),
        values: vec![
            ("wall ms".into(), wall_ms),
            ("wal records".into(), stats.records_appended as f64),
            ("wal kB".into(), stats.bytes_appended as f64 / 1024.0),
            ("snapshots".into(), stats.snapshots_written as f64),
            ("delivered".into(), outcome.outputs[1].len() as f64),
            ("replay dag".into(), replay.dag.len() as f64),
        ],
    }];
    println!(
        "{}",
        render_table(
            "REC-3 — end-to-end restart cell (crash at 150 deliveries, recover at step 1200):\n\
             the process rebuilds from its WAL, refetches, and rejoins — all invariant\n\
             checkers (incl. no-double-delivery and WAL/state equivalence) pass",
            &rows
        )
    );

    let _ = std::fs::remove_dir_all(&file_dir);
    println!("REC: all replays equivalent; recovery invariants hold ✓");
}
