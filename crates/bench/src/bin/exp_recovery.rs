//! REC: the persistence & crash-recovery experiment — WAL append
//! throughput (in-memory and file backends), snapshot size vs. DAG height
//! with and without delivered-prefix pruning, recovery (replay) latency
//! vs. DAG height, an end-to-end restart scenario reporting how much work
//! recovery actually performed, and the per-snapshot size sequence of a
//! live pruned run (bounded sawtooth) vs. an unpruned one (monotone
//! growth).
//!
//! Exits non-zero if any replayed state diverges from its source.
//!
//! ```bash
//! cargo run --release -p asym-bench --bin exp_recovery            # full sweep
//! cargo run --release -p asym-bench --bin exp_recovery -- --smoke # CI subset
//! ```

use std::time::Instant;

use asym_bench::{render_table, Row};
use asym_core::Block;
use asym_dag::{Vertex, VertexId};
use asym_quorum::{ProcessId, ProcessSet};
use asym_scenarios::{checks, Fault, FaultPlan, Scenario, SchedulerSpec, TopologySpec};
use asym_storage::{DagEvent, EventLog, StorageBackend, RECORD_HEADER_BYTES};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

type Log = EventLog<Block, StorageBackend>;

/// The event stream of a full `n`-process DAG of `rounds` rounds, with one
/// delivery + decision per wave — the synthetic workload all measurements
/// share.
fn workload(n: usize, rounds: u64) -> Vec<DagEvent<Block>> {
    let mut events = Vec::new();
    for r in 1..=rounds {
        for i in 0..n {
            events.push(DagEvent::VertexInserted(Vertex::new(
                pid(i),
                r,
                Block::new(vec![r * 100 + i as u64, r, i as u64]),
                ProcessSet::full(n),
                vec![],
            )));
        }
        if r.is_multiple_of(4) {
            let wave = r / 4;
            let leader = VertexId::new(4 * (wave - 1) + 1, pid((wave as usize) % n));
            events.push(DagEvent::WaveConfirmed { wave });
            events.push(DagEvent::WaveDecided { wave, leader });
            events.push(DagEvent::BlockDelivered { id: leader, wave });
        }
    }
    events
}

fn append_all(log: &mut Log, events: &[DagEvent<Block>]) {
    for ev in events {
        log.append(ev).expect("append");
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = 8;
    let heights: &[u64] = if smoke { &[8, 16] } else { &[8, 16, 32, 64, 128] };
    let throughput_rounds = if smoke { 32 } else { 256 };

    // ── WAL append throughput, per backend ────────────────────────────────
    let events = workload(n, throughput_rounds);
    let total_bytes: u64 =
        events.iter().map(|e| (e.encode().len() + RECORD_HEADER_BYTES) as u64).sum();
    let mut rows = Vec::new();
    let file_dir = std::env::temp_dir().join(format!("exp-recovery-{}", std::process::id()));
    let backends: Vec<(&str, Log)> = vec![
        ("mem", Log::new(StorageBackend::in_memory()).with_snapshot_every(0)),
        (
            "file",
            Log::new(StorageBackend::file(&file_dir).expect("temp dir writable"))
                .with_snapshot_every(0),
        ),
    ];
    for (name, mut log) in backends {
        let start = Instant::now();
        append_all(&mut log, &events);
        let dt = start.elapsed().as_secs_f64().max(1e-9);
        rows.push(Row {
            label: format!("append/{name}"),
            values: vec![
                ("events".into(), events.len() as f64),
                ("kB".into(), total_bytes as f64 / 1024.0),
                ("events/ms".into(), events.len() as f64 / (dt * 1e3)),
                ("MB/s".into(), total_bytes as f64 / (1024.0 * 1024.0) / dt),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            &format!(
                "REC-1 — WAL append throughput (n={n}, {throughput_rounds} rounds; \
                 framed little-endian records, FNV-1a-64 checksums)"
            ),
            &rows
        )
    );

    // ── Snapshot size and recovery latency vs. DAG height ─────────────────
    let mut rows = Vec::new();
    for &h in heights {
        let events = workload(n, h);
        let mut log = Log::new(StorageBackend::in_memory()).with_snapshot_every(0);
        append_all(&mut log, &events);
        let log_bytes = log.stats().bytes_appended;

        let t0 = Instant::now();
        let replayed = log.replay(n, pid(0), Block::default()).expect("replay");
        let replay_log_us = t0.elapsed().as_secs_f64() * 1e6;
        assert_eq!(replayed.dag.len(), n + (n as u64 * h) as usize, "replay lost vertices");

        // Compact into a snapshot and measure both its size and how fast
        // recovery gets when it replays the snapshot instead of the log.
        let mut snapped = Log::new(StorageBackend::in_memory());
        snapped.install_snapshot(&replayed.to_snapshot_events()).expect("snapshot");
        let snap_bytes = snapped.stats().last_snapshot_bytes;
        let t1 = Instant::now();
        let re = snapped.replay(n, pid(0), Block::default()).expect("replay snapshot");
        let replay_snap_us = t1.elapsed().as_secs_f64() * 1e6;
        assert_eq!(re.dag.len(), replayed.dag.len(), "snapshot replay diverged");
        assert_eq!(re.delivered, replayed.delivered, "snapshot lost deliveries");

        // Prune the delivered prefix the way a long-running node would
        // (everything below the decided wave's leader round delivered) and
        // measure the snapshot again: the pruned blob carries only the
        // undelivered frontier plus bookkeeping.
        let mut pruned_state = replayed.clone();
        let decided = pruned_state.decided_wave;
        let floor = if decided >= 1 { asym_dag::round_of_wave(decided, 1) } else { 0 };
        for r in 1..=floor {
            for i in 0..n {
                pruned_state.delivered.insert(VertexId::new(r, pid(i)));
            }
        }
        pruned_state.prune_delivered(floor);
        let mut pruned_log = Log::new(StorageBackend::in_memory());
        pruned_log.install_snapshot(&pruned_state.to_snapshot_events()).expect("pruned snapshot");
        let pruned_bytes = pruned_log.stats().last_snapshot_bytes;
        assert!(
            floor == 0 || pruned_bytes < snap_bytes,
            "pruning must shrink the snapshot ({pruned_bytes} !< {snap_bytes})"
        );
        // Pruned replay still reproduces the post-prefix state exactly.
        let rep = pruned_log.replay(n, pid(0), Block::default()).expect("replay pruned");
        assert_eq!(rep.dag.len(), pruned_state.dag.len(), "pruned replay diverged");
        assert_eq!(rep.pruned_round, floor, "pruning marker lost");
        assert_eq!(rep.delivered, pruned_state.delivered, "pruned replay lost deliveries");
        assert_eq!(rep.commit_log, pruned_state.commit_log, "pruned replay lost commits");

        rows.push(Row {
            label: format!("height={h} ({} waves)", h / 4),
            values: vec![
                ("log kB".into(), log_bytes as f64 / 1024.0),
                ("snap kB".into(), snap_bytes as f64 / 1024.0),
                ("pruned kB".into(), pruned_bytes as f64 / 1024.0),
                ("replay µs".into(), replay_log_us),
                ("snap-replay µs".into(), replay_snap_us),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            &format!(
                "REC-2 — snapshot size and recovery latency vs. DAG height (n={n}).\n\
                 replay µs = folding the raw WAL back into DAG + delivered set + commit log;\n\
                 pruned kB = the same snapshot after garbage-collecting the delivered prefix"
            ),
            &rows
        )
    );

    // ── End-to-end: a restart cell, with recovery work accounting ─────────
    let waves = if smoke { 5 } else { 6 };
    let scenario = Scenario::new(
        TopologySpec::UniformThreshold { n: 4, f: 1 },
        FaultPlan::none().with(1, Fault::Restart { crash_at: 150, recover_at: 1200 }),
        SchedulerSpec::Random,
        3,
    )
    .waves(waves);
    let t0 = Instant::now();
    let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| {
        eprintln!("restart scenario violated an invariant:\n{e}");
        std::process::exit(1);
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = outcome.wal_stats[1].expect("restart process has a WAL");
    let replay = outcome.wal_replays[1].as_ref().unwrap().as_ref().unwrap();
    let rows = vec![Row {
        label: scenario.cell(),
        values: vec![
            ("wall ms".into(), wall_ms),
            ("wal records".into(), stats.records_appended as f64),
            ("wal kB".into(), stats.bytes_appended as f64 / 1024.0),
            ("snapshots".into(), stats.snapshots_written as f64),
            ("delivered".into(), outcome.outputs[1].len() as f64),
            ("replay dag".into(), replay.dag.len() as f64),
        ],
    }];
    println!(
        "{}",
        render_table(
            "REC-3 — end-to-end restart cell (crash at 150 deliveries, recover at step 1200):\n\
             the process rebuilds from its WAL, refetches, and rejoins — all invariant\n\
             checkers (incl. no-double-delivery and WAL/state equivalence) pass",
            &rows
        )
    );

    // ── REC-4: snapshot size over a live run — pruning bounds the sequence ─
    let mk = |prune: bool| {
        Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(1, Fault::Restart { crash_at: 120, recover_at: 900 }),
            SchedulerSpec::Random,
            5,
        )
        .waves(if smoke { 6 } else { 8 })
        .snapshot_every(12)
        .prune_wal(prune)
    };
    let pruned_outcome = checks::run_and_check_all(&mk(true)).unwrap_or_else(|e| {
        eprintln!("pruned REC-4 cell violated an invariant:\n{e}");
        std::process::exit(1);
    });
    let unpruned_outcome = checks::run_and_check_all(&mk(false)).unwrap_or_else(|e| {
        eprintln!("unpruned REC-4 cell violated an invariant:\n{e}");
        std::process::exit(1);
    });
    let pruned_sizes = pruned_outcome.wal_snapshot_sizes[1].clone().expect("WAL attached");
    let unpruned_sizes = unpruned_outcome.wal_snapshot_sizes[1].clone().expect("WAL attached");
    println!("REC-4 — per-snapshot blob sizes over one restart cell (cadence 12):");
    println!("  pruned   : {pruned_sizes:?}");
    println!("  unpruned : {unpruned_sizes:?}");
    assert!(
        unpruned_sizes.windows(2).all(|w| w[1] >= w[0]),
        "without pruning the snapshot sequence grows monotonically"
    );
    // Pruning drops the delivered vertices' *edges* but — since the
    // delivered-state-transfer PR — retains their blocks as transferable
    // residue (DagEvent::DeliveredBlock), so the pruned sequence still
    // grows with history; the claim is that it grows strictly slower and
    // the per-snapshot savings widen as more history is pruned. (Squeezing
    // the residue further via watermark + exception lists is the open
    // delivered-set-growth ROADMAP item.)
    let common = pruned_sizes.len().min(unpruned_sizes.len());
    assert!(common > 2, "need a few snapshots to compare");
    for k in 1..common {
        assert!(
            pruned_sizes[k] < unpruned_sizes[k],
            "pruned snapshot {k} not smaller: {} !< {}",
            pruned_sizes[k],
            unpruned_sizes[k]
        );
    }
    let savings: Vec<i64> =
        (0..common).map(|k| unpruned_sizes[k] as i64 - pruned_sizes[k] as i64).collect();
    assert!(
        savings.last() > savings.first(),
        "pruning savings must widen with history: {savings:?}"
    );
    assert!(
        pruned_sizes.iter().max() < unpruned_sizes.iter().max(),
        "the pruned sequence must stay below the unpruned peak"
    );
    println!(
        "  pruned peak {} B < unpruned peak {} B; savings widen {} B → {} B ✓",
        pruned_sizes.iter().max().unwrap(),
        unpruned_sizes.iter().max().unwrap(),
        savings.first().unwrap(),
        savings.last().unwrap()
    );

    // ── REC-5: deep catch-up latency vs. lag depth (all-pruned cells) ─────
    // Every honest process prunes (wal_everywhere + cadence 8); the laggard
    // crashes after `crash_at` deliveries and recovers only at quiescence.
    // Smaller crash_at = deeper lag below the common pruning floor, so more
    // of the recovery arrives via delivered-state transfer instead of
    // fetch. `xfer waves`/`xfer blocks` = state installed through
    // StateChunk segments; `delivered` = the laggard's total output.
    let depths: &[u64] = if smoke { &[30, 150] } else { &[30, 80, 150, 400] };
    let mut rows = Vec::new();
    for &crash_at in depths {
        let scenario = Scenario::new(
            TopologySpec::UniformThreshold { n: 4, f: 1 },
            FaultPlan::none().with(1, Fault::Restart { crash_at, recover_at: 40_000_000 }),
            SchedulerSpec::Random,
            3,
        )
        .waves(waves)
        .snapshot_every(8)
        .wal_everywhere(true);
        let t0 = Instant::now();
        let outcome = checks::run_and_check_all(&scenario).unwrap_or_else(|e| {
            eprintln!("all-pruned catch-up cell violated an invariant:\n{e}");
            std::process::exit(1);
        });
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = outcome.transfers[1].expect("honest laggard has transfer counters");
        rows.push(Row {
            label: format!("crash_at={crash_at}"),
            values: vec![
                ("xfer waves".into(), stats.waves_installed as f64),
                ("xfer blocks".into(), stats.deliveries_installed as f64),
                ("offers".into(), stats.offers_received as f64),
                ("delivered".into(), outcome.outputs[1].len() as f64),
                ("steps".into(), outcome.steps as f64),
                ("wall ms".into(), wall_ms),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            "REC-5 — deep catch-up vs. lag depth: every peer prunes (all-pruned cells), the\n\
             laggard recovers at quiescence. Deeper lag (smaller crash_at) ⇒ more state\n\
             arrives as certified outputs (delivered-state transfer) instead of DAG vertices",
            &rows
        )
    );

    let _ = std::fs::remove_dir_all(&file_dir);
    println!("REC: all replays equivalent; recovery invariants hold ✓");
}
