//! ABL: ablation of the CONFIRM-from-kernel amplification rule (Algorithm 3
//! lines 55–56 / Algorithm 5 line 131), the paper's Bracha-style liveness
//! device (Lemmas 3.4, 3.6).
//!
//! With the rule removed, a wise process whose quorums all contain faulty
//! members may wait forever for CONFIRMs that only amplification would have
//! produced. This experiment sweeps crash patterns and adversarial schedules
//! and reports, for both variants: completed deliveries, stalled guild
//! members, and message cost.
//!
//! ```bash
//! cargo run -p asym-bench --bin exp_ablation
//! ```

use asym_bench::{render_table, Row};
use asym_dag_rider::prelude::*;
use asym_gather::{AsymGather, AsymGatherConfig, ValueSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Runs Algorithm 3 with the given config; returns (guild size, guild
/// members that delivered, messages sent).
fn run_once(
    t: &topology::Topology,
    crashed: &[usize],
    seed: u64,
    amplify: bool,
) -> (usize, usize, u64) {
    let cfg = AsymGatherConfig { kernel_amplification: amplify };
    let n = t.n();
    let faulty: ProcessSet = crashed.iter().copied().collect();
    let Some(guild) = maximal_guild(&t.fail_prone, &t.quorums, &faulty) else {
        return (0, 0, 0);
    };
    let procs: Vec<AsymGather<u64>> =
        (0..n).map(|i| AsymGather::with_config(pid(i), t.quorums.clone(), cfg)).collect();
    let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
    for c in crashed {
        sim = sim.with_fault(pid(*c), FaultMode::CrashedFromStart);
    }
    for i in 0..n {
        if !crashed.contains(&i) {
            sim.input(pid(i), i as u64);
        }
    }
    assert!(sim.run(500_000_000).quiescent);
    let delivered = guild.iter().filter(|g| !sim.outputs(*g).is_empty()).count();
    // Sanity: whatever is delivered satisfies agreement.
    let outputs: Vec<(ProcessId, ValueSet<u64>)> =
        guild.iter().filter_map(|g| sim.outputs(g).first().map(|u| (g, u.clone()))).collect();
    let refs: Vec<(ProcessId, &ValueSet<u64>)> = outputs.iter().map(|(p, u)| (*p, u)).collect();
    asym_gather::check_pairwise_agreement(&refs).expect("agreement must hold regardless");
    (guild.len(), delivered, sim.stats().sent)
}

fn main() {
    let scenarios: Vec<(topology::Topology, Vec<usize>)> = vec![
        (topology::uniform_threshold(4, 1), vec![3]),
        (topology::uniform_threshold(7, 2), vec![5, 6]),
        (topology::uniform_threshold(10, 3), vec![7, 8, 9]),
        (topology::ripple_unl(10, 8, 1), vec![4]),
        (topology::stellar_tiers(10, 4, 1), vec![0]),
    ];
    let seeds: Vec<u64> = (1..=20).collect();

    let mut rows = Vec::new();
    for (t, crashed) in &scenarios {
        let mut stalls_on = 0u64;
        let mut stalls_off = 0u64;
        let mut msgs_on = 0u64;
        let mut msgs_off = 0u64;
        for &seed in &seeds {
            let (g, d, m) = run_once(t, crashed, seed, true);
            stalls_on += (g - d) as u64;
            msgs_on += m;
            let (g, d, m) = run_once(t, crashed, seed, false);
            stalls_off += (g - d) as u64;
            msgs_off += m;
        }
        rows.push(Row {
            label: format!("{} crash={crashed:?}", t.name),
            values: vec![
                ("stalls(amp on)".into(), stalls_on as f64),
                ("stalls(amp off)".into(), stalls_off as f64),
                ("msgs(on)".into(), (msgs_on / seeds.len() as u64) as f64),
                ("msgs(off)".into(), (msgs_off / seeds.len() as u64) as f64),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            &format!(
                "ABL — CONFIRM-from-kernel amplification ablation \
                 ({} seeds per scenario; 'stalls' = guild members that never ag-delivered)",
                seeds.len()
            ),
            &rows
        )
    );
    println!(
        "with amplification ON the paper's Lemma 3.6 guarantees zero stalls (verified);\n\
         with it OFF, liveness rests on schedule luck — any nonzero stall count above\n\
         demonstrates why the rule exists. Message cost of the rule is marginal: the\n\
         kernel CONFIRMs replace CONFIRMs that would otherwise be sent via the quorum\n\
         path. Agreement/validity hold in every run of both variants (asserted)."
    );
}
