//! LAT-G / LAT-C: message complexity and simulated-time latency.
//!
//! * gather: Algorithm 1 vs Algorithm 3 vs the (unsound) Algorithm 2 —
//!   messages and simulated time to everyone's `ag-deliver`;
//! * consensus: asymmetric DAG-Rider vs the symmetric baseline — simulated
//!   time per committed wave and per ordered transaction.
//!
//! ```bash
//! cargo run -p asym-bench --bin exp_latency
//! ```

use asym_bench::{measure_asym, measure_sym, render_table, Row};
use asym_dag_rider::prelude::*;
use asym_gather::{AsymGather, NaiveGather, SymGather};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

fn gather_cost<P, F>(n: usize, make: F, seed: u64) -> (u64, u64)
where
    P: asym_sim::Protocol<Input = u64>,
    P::Msg: Clone + core::fmt::Debug + 'static,
    F: Fn(usize) -> P,
{
    let procs: Vec<P> = (0..n).map(make).collect();
    let mut sim = Simulation::new(procs, scheduler::RandomLatency::new(seed, 1, 20));
    for i in 0..n {
        sim.input(pid(i), i as u64);
    }
    let r = sim.run(u64::MAX);
    assert!(r.quiescent);
    (sim.stats().sent, sim.now())
}

fn main() {
    // ---- LAT-G: gather protocols. ----
    let mut rows = Vec::new();
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3), (16, 5)] {
        let t = topology::uniform_threshold(n, f);
        let (m1, t1) = gather_cost(n, |i| SymGather::<u64>::new(pid(i), n, f), 7);
        let (m2, t2) = gather_cost(n, |i| NaiveGather::<u64>::new(pid(i), t.quorums.clone()), 7);
        let (m3, t3) = gather_cost(n, |i| AsymGather::<u64>::new(pid(i), t.quorums.clone()), 7);
        rows.push(Row {
            label: format!("n={n}, f={f}"),
            values: vec![
                ("alg1 msgs".into(), m1 as f64),
                ("alg2 msgs".into(), m2 as f64),
                ("alg3 msgs".into(), m3 as f64),
                ("alg1 time".into(), t1 as f64),
                ("alg2 time".into(), t2 as f64),
                ("alg3 time".into(), t3 as f64),
            ],
        });
    }
    println!(
        "{}",
        render_table(
            "LAT-G — gather cost to full delivery (random 1–20 unit link latency).\n\
             alg1 = symmetric 3-round; alg2 = quorum-replacement (UNSOUND, for cost \
             reference only); alg3 = constant-round asymmetric (sound)",
            &rows
        )
    );
    println!(
        "shape: alg3 pays a constant-factor message overhead (ACK/READY/CONFIRM are\n\
         O(n²) like the distribute rounds) and stays within a small constant of the\n\
         3-round latency — the paper's 'constant-round' claim. alg2 is as cheap as\n\
         alg1 but provides no common-core guarantee (Lemma 3.2).\n"
    );

    // ---- LAT-C: consensus. ----
    let mut rows = Vec::new();
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let t = topology::uniform_threshold(n, f);
        let waves = 8;
        let (wpc_a, msgs_a, time_a) = measure_asym(&t, waves, 3);
        let (wpc_s, msgs_s, time_s) = measure_sym(&t, f, waves, 3);
        rows.push(Row {
            label: format!("n={n}, f={f}"),
            values: vec![
                ("asym w/commit".into(), wpc_a),
                ("sym w/commit".into(), wpc_s),
                ("asym msgs".into(), msgs_a as f64),
                ("sym msgs".into(), msgs_s as f64),
                ("asym time".into(), time_a as f64),
                ("sym time".into(), time_s as f64),
            ],
        });
    }
    println!(
        "{}",
        render_table("LAT-C — consensus over 8 waves (random 1–20 unit link latency)", &rows)
    );
    println!(
        "shape: on uniform thresholds both protocols commit every ≈3/2 waves; the\n\
         asymmetric variant's simulated time per wave stays within a constant factor\n\
         (the extra CONFIRM gating between rounds 2 and 3), matching §4.3."
    );
}
