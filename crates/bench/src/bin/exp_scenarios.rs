//! SCN: the scenario-matrix sweep — topology × fault-plan × scheduler ×
//! seed, every cell audited by the full invariant-checker suite, with
//! commit-latency and message-count measurements per cell.
//!
//! Exits non-zero if any cell violates an invariant, printing the exact
//! `(topology, fault plan, scheduler, seed)` reproduction tuple.
//!
//! ```bash
//! cargo run -p asym-bench --bin exp_scenarios            # full CI sweep
//! cargo run -p asym-bench --bin exp_scenarios -- --smoke # tier-1 subset
//! ```

use std::collections::BTreeMap;

use asym_bench::{render_table, Row};
use asym_scenarios::{CellStatus, Matrix};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let matrix = if smoke { Matrix::smoke() } else { Matrix::full() };
    let label = if smoke { "smoke" } else { "full" };

    eprintln!(
        "SCN — {label} sweep: {} topologies × {} fault plans × {} schedulers × {} seeds",
        matrix.topologies.len(),
        matrix.fault_plans.len(),
        matrix.schedulers.len(),
        matrix.seeds.len(),
    );
    let report = matrix.run();

    // Aggregate seeds away: one row per (topology, fault plan, scheduler).
    #[derive(Default)]
    struct Agg {
        cells: u64,
        commits: u64,
        sent: u64,
        time: u64,
        ordered: u64,
    }
    let mut rows: BTreeMap<String, Agg> = BTreeMap::new();
    for (scenario, status) in &report.cells {
        if let CellStatus::Passed(stats) = status {
            let key =
                format!("{} | {} | {}", scenario.topology, scenario.faults, scenario.scheduler);
            let agg = rows.entry(key).or_default();
            agg.cells += 1;
            agg.commits += stats.commits as u64;
            agg.sent += stats.sent;
            agg.time += stats.time;
            agg.ordered += stats.ordered;
        }
    }
    let table: Vec<Row> = rows
        .into_iter()
        .map(|(label, a)| Row {
            label,
            values: vec![
                ("seeds".into(), a.cells as f64),
                ("commits".into(), a.commits as f64 / a.cells as f64),
                ("ordered".into(), a.ordered as f64 / a.cells as f64),
                ("msgs".into(), a.sent as f64 / a.cells as f64),
                (
                    "time/commit".into(),
                    if a.commits > 0 { a.time as f64 / a.commits as f64 } else { f64::INFINITY },
                ),
            ],
        })
        .collect();
    println!(
        "{}",
        render_table(
            "SCN — scenario matrix: per-cell means over seeds (passed cells only).\n\
             commits = committed waves; time/commit = simulated time per committed wave",
            &table
        )
    );

    println!(
        "{} cells: {} passed, {} failed, {} unbuildable, {} unfit combinations skipped",
        report.cells.len(),
        report.passed(),
        report.failures().len(),
        report.unbuildable(),
        report.skipped_unfit
    );

    let failures = report.failures();
    if !failures.is_empty() {
        eprintln!("\nFAILING CELLS ({}):", failures.len());
        for f in &failures {
            eprintln!("{f}\n");
        }
        std::process::exit(1);
    }
}
