//! Shared helpers for the benchmark suite and the experiment/figure
//! regeneration binaries (see the repository `README.md` for the
//! experiment index).

#![warn(missing_docs)]

use asym_dag_rider::prelude::*;

/// A labelled measurement row for plain-text experiment tables.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (configuration).
    pub label: String,
    /// `(column name, value)` pairs.
    pub values: Vec<(String, f64)>,
}

/// Renders rows as an aligned plain-text table.
pub fn render_table(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if rows.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap().max(12);
    out.push_str(&format!("{:label_w$}", "config"));
    for (name, _) in &rows[0].values {
        out.push_str(&format!("  {name:>14}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(label_w + rows[0].values.len() * 16));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:label_w$}", r.label));
        for (_, v) in &r.values {
            if v.fract() == 0.0 && v.abs() < 1e12 {
                out.push_str(&format!("  {:>14}", *v as i64));
            } else {
                out.push_str(&format!("  {v:>14.3}"));
            }
        }
        out.push('\n');
    }
    out
}

/// The standard topology sweep used by several experiments.
pub fn standard_topologies() -> Vec<topology::Topology> {
    vec![
        topology::uniform_threshold(4, 1),
        topology::uniform_threshold(7, 2),
        topology::uniform_threshold(10, 3),
        topology::ripple_unl(10, 8, 1),
        topology::stellar_tiers(10, 4, 1),
        topology::Topology {
            name: "figure-1(n=30)".into(),
            fail_prone: asym_quorum::counterexample::fig1_fail_prone(),
            quorums: asym_quorum::counterexample::fig1_quorums(),
        },
    ]
}

/// Runs asymmetric DAG-Rider and returns `(waves per commit, sent messages,
/// simulated time)` — the observables of Lemma 4.4 and the latency claims.
pub fn measure_asym(topo: &topology::Topology, waves: u64, seed: u64) -> (f64, u64, u64) {
    let report = Cluster::new(topo.clone())
        .adversary(Adversary::Latency { seed, min: 1, max: 20 })
        .waves(waves)
        .blocks_per_process(1)
        .run_asymmetric();
    (report.waves_per_commit().unwrap_or(f64::INFINITY), report.net.sent, report.time)
}

/// Runs the symmetric baseline with threshold `f`; same observables.
pub fn measure_sym(topo: &topology::Topology, f: usize, waves: u64, seed: u64) -> (f64, u64, u64) {
    let report = Cluster::new(topo.clone())
        .adversary(Adversary::Latency { seed, min: 1, max: 20 })
        .waves(waves)
        .blocks_per_process(1)
        .run_baseline(f);
    (report.waves_per_commit().unwrap_or(f64::INFINITY), report.net.sent, report.time)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let rows = vec![
            Row { label: "a".into(), values: vec![("x".into(), 1.0), ("y".into(), 2.5)] },
            Row { label: "long-label".into(), values: vec![("x".into(), 3.0), ("y".into(), 4.0)] },
        ];
        let t = render_table("demo", &rows);
        assert!(t.contains("demo"));
        assert!(t.contains("long-label"));
        assert!(t.contains("2.500"));
    }

    #[test]
    fn standard_topologies_are_valid() {
        for t in standard_topologies() {
            assert!(t.fail_prone.satisfies_b3(), "{}", t.name);
        }
    }

    #[test]
    fn measurement_smoke() {
        let t = topology::uniform_threshold(4, 1);
        let (wpc, sent, time) = measure_asym(&t, 3, 1);
        assert!(wpc >= 1.0);
        assert!(sent > 0);
        assert!(time > 0);
        let (wpc, _, _) = measure_sym(&t, 1, 3, 1);
        assert!(wpc >= 1.0);
    }
}
