//! The common coin: shared randomness for leader election.
//!
//! DAG-Rider (and our asymmetric variant) elects one wave leader through a
//! *common coin* `chooseLeader_i(w)` with three properties:
//!
//! * **Matching** — all (wise) processes obtain the same value for wave `w`;
//! * **Unpredictability** — the adversary cannot bias its schedule on coin
//!   values of unfinished waves;
//! * **Termination** — the coin always outputs.
//!
//! The paper instantiates this with the asymmetric common coin of Alpos et
//! al., which rests on threshold cryptography. Following the substitution
//! policy of `DESIGN.md` (§4), this crate provides a **trusted-dealer
//! simulation**: the coin value for wave `w` is `SHA-256(seed ‖ w)`, mapped
//! uniformly onto the process set. Matching holds because the seed is shared;
//! unpredictability holds in the simulation because adversarial schedulers
//! are seeded independently of (and fixed before) the coin seed; termination
//! is immediate. The [`CoinTracker`] additionally enforces the reveal
//! discipline DAG-Rider relies on: a process may query the coin for wave `w`
//! only once its own wave-`w` gather finished.

use asym_quorum::ProcessId;

use crate::{Digest, Sha256};

/// A trusted-dealer common coin producing one uniformly distributed process
/// id per wave.
///
/// # Examples
///
/// ```
/// use asym_crypto::CommonCoin;
///
/// let coin = CommonCoin::new(7, 10);
/// // Matching: every holder of the same seed sees the same leader.
/// assert_eq!(coin.leader(3), CommonCoin::new(7, 10).leader(3));
/// assert!(coin.leader(3).index() < 10);
/// ```
#[derive(Clone, Debug)]
pub struct CommonCoin {
    seed: u64,
    n: usize,
}

impl CommonCoin {
    /// Creates a coin for a system of `n` processes from a dealer seed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(seed: u64, n: usize) -> Self {
        assert!(n > 0, "coin needs a non-empty process set");
        CommonCoin { seed, n }
    }

    /// Number of processes the coin draws from.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Raw 256-bit coin value for `wave`.
    pub fn value(&self, wave: u64) -> Digest {
        let mut h = Sha256::new();
        h.update(b"asym-dag-rider/coin/v1");
        h.update(&self.seed.to_be_bytes());
        h.update(&wave.to_be_bytes());
        h.finalize()
    }

    /// The elected leader of `wave`: `value(wave) mod n`.
    ///
    /// The modulo bias is at most `n / 2^128` — negligible for any realistic
    /// `n` (the paper only needs uniformity for the `c(Q)/|P|` commit-rate
    /// bound of Lemma 4.4).
    pub fn leader(&self, wave: u64) -> ProcessId {
        ProcessId::new((self.value(wave).to_u128() % self.n as u128) as usize)
    }
}

/// Enforces the coin-reveal discipline: a wave's coin may be queried only
/// after the caller has *released* that wave (finished its gather), mirroring
/// DAG-Rider's rule of revealing the coin only when enough processes finished
/// the wave.
///
/// This is a per-process guard used by the consensus implementations; it
/// turns accidental premature queries into panics in tests rather than
/// silent unsound executions.
#[derive(Clone, Debug)]
pub struct CoinTracker {
    coin: CommonCoin,
    released_up_to: u64,
}

impl CoinTracker {
    /// Wraps a coin with the reveal guard; initially no wave is released.
    pub fn new(coin: CommonCoin) -> Self {
        CoinTracker { coin, released_up_to: 0 }
    }

    /// Marks `wave` (and everything below) as released.
    pub fn release(&mut self, wave: u64) {
        self.released_up_to = self.released_up_to.max(wave);
    }

    /// Highest released wave (0 = none).
    pub fn released(&self) -> u64 {
        self.released_up_to
    }

    /// Queries the leader of `wave`.
    ///
    /// # Panics
    ///
    /// Panics if `wave` has not been released — a protocol bug.
    pub fn leader(&self, wave: u64) -> ProcessId {
        assert!(
            wave <= self.released_up_to,
            "coin for wave {wave} queried before release (released up to {})",
            self.released_up_to
        );
        self.coin.leader(wave)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_across_instances() {
        let a = CommonCoin::new(99, 30);
        let b = CommonCoin::new(99, 30);
        for w in 0..100 {
            assert_eq!(a.leader(w), b.leader(w));
            assert_eq!(a.value(w), b.value(w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CommonCoin::new(1, 30);
        let b = CommonCoin::new(2, 30);
        let same = (0..64).filter(|w| a.leader(*w) == b.leader(*w)).count();
        assert!(same < 16, "independent seeds should rarely agree ({same}/64)");
    }

    #[test]
    fn leaders_in_range_and_roughly_uniform() {
        let coin = CommonCoin::new(42, 10);
        let mut counts = [0usize; 10];
        let draws = 10_000;
        for w in 0..draws {
            let l = coin.leader(w).index();
            assert!(l < 10);
            counts[l] += 1;
        }
        // Each process should get ~1000 draws; allow generous slack (±35%).
        for (i, c) in counts.iter().enumerate() {
            assert!((650..=1350).contains(c), "process {i} drawn {c} times out of {draws}");
        }
    }

    #[test]
    fn tracker_allows_released_waves() {
        let mut t = CoinTracker::new(CommonCoin::new(5, 4));
        t.release(3);
        let _ = t.leader(1);
        let _ = t.leader(3);
        assert_eq!(t.released(), 3);
        t.release(1); // does not regress
        assert_eq!(t.released(), 3);
    }

    #[test]
    #[should_panic(expected = "queried before release")]
    fn tracker_panics_on_premature_query() {
        let t = CoinTracker::new(CommonCoin::new(5, 4));
        let _ = t.leader(1);
    }

    #[test]
    #[should_panic(expected = "non-empty process set")]
    fn zero_process_coin_rejected() {
        let _ = CommonCoin::new(0, 0);
    }
}
