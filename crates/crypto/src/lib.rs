//! Self-contained cryptographic substrate for the `asym-dag-rider`
//! reproduction: SHA-256, content digests, and the simulated common coin.
//!
//! The offline build policy disallows external crypto crates, so [`Sha256`]
//! is implemented from scratch (validated against NIST vectors). [`Digest`]
//! is the 32-byte identity used for DAG vertices; [`CommonCoin`] /
//! [`CoinTracker`] provide the shared-randomness leader election that
//! DAG-Rider-style protocols require (see `DESIGN.md` §4 for the substitution
//! argument relative to the paper's threshold-cryptography coin).
//!
//! ```
//! use asym_crypto::{sha256, CommonCoin};
//!
//! let digest = sha256(b"block payload");
//! let coin = CommonCoin::new(digest.to_u64(), 7);
//! assert!(coin.leader(1).index() < 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coin;
mod digest;
mod sha256;

pub use coin::{CoinTracker, CommonCoin};
pub use digest::Digest;
pub use sha256::{sha256, Sha256};
