//! 256-bit digests used as content identities (DAG vertices, coin values).

use core::fmt;

/// A 32-byte content digest.
///
/// Produced by [`Sha256`](crate::Sha256); used as the identity of DAG
/// vertices and as raw coin material.
///
/// # Examples
///
/// ```
/// use asym_crypto::{sha256, Digest};
///
/// let d = sha256(b"vertex");
/// assert_eq!(d, Digest::from_hex(&d.to_hex()).unwrap());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The all-zero digest (placeholder / genesis marker).
    pub const ZERO: Digest = Digest([0; 32]);

    /// Wraps raw bytes as a digest.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the first 8 bytes as a big-endian `u64` — handy for
    /// deriving uniform pseudo-random values from a digest.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("8 bytes"))
    }

    /// Interprets the first 16 bytes as a big-endian `u128`.
    pub fn to_u128(&self) -> u128 {
        u128::from_be_bytes(self.0[..16].try_into().expect("16 bytes"))
    }

    /// Lowercase hex encoding (64 chars).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-char hex string.
    ///
    /// Returns `None` on wrong length or non-hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviated form for logs; full form via {:?} or to_hex().
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…")
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(bytes: [u8; 32]) -> Self {
        Digest(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(Digest::from_hex("abc"), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(32)), None);
    }

    #[test]
    fn zero_digest() {
        assert_eq!(Digest::ZERO.to_hex(), "0".repeat(64));
        assert_eq!(Digest::ZERO.to_u64(), 0);
    }

    #[test]
    fn numeric_views_consistent() {
        let d = sha256(b"x");
        assert_eq!(d.to_u64() as u128, d.to_u128() >> 64);
    }

    #[test]
    fn display_is_abbreviated() {
        let d = sha256(b"abc");
        let s = d.to_string();
        assert!(s.ends_with('…'));
        assert_eq!(s.len(), "ba7816bf".len() + '…'.len_utf8());
    }
}
