//! Property-based tests of the DAG substrate: reachability relations on
//! randomly generated (but well-formed) DAGs.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use asym_dag::{DagStore, Vertex, VertexId};
use asym_quorum::{ProcessId, ProcessSet};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Builds a random DAG: each process creates a vertex in each round with
/// probability `presence`, strongly referencing a random non-empty subset of
/// the previous round's vertices, plus weak edges to a few older ones.
fn random_dag(n: usize, rounds: u64, presence: f64, seed: u64) -> DagStore<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut dag: DagStore<u64> = DagStore::with_genesis(n, 0);
    for r in 1..=rounds {
        let prev: Vec<ProcessId> = dag.sources_in_round(r - 1).to_vec();
        if prev.is_empty() {
            break;
        }
        for i in 0..n {
            if rng.random_bool(presence) || r == 1 {
                let mut parents = prev.clone();
                parents.shuffle(&mut rng);
                let k = rng.random_range(1..=parents.len());
                let strong: ProcessSet = parents.into_iter().take(k).collect();
                // Occasional weak edge to a round-(r-2) vertex.
                let mut weak = Vec::new();
                if r >= 3 && rng.random_bool(0.3) {
                    let old: Vec<ProcessId> = dag.sources_in_round(r - 2).to_vec();
                    if let Some(w) = old.first() {
                        weak.push(VertexId::new(r - 2, *w));
                    }
                }
                let v = Vertex::new(pid(i), r, r * 100 + i as u64, strong, weak);
                dag.insert(v).expect("parents chosen from stored vertices");
            }
        }
    }
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strong_path_implies_path(n in 2usize..6, rounds in 1u64..8, seed in 0u64..500) {
        let dag = random_dag(n, rounds, 0.7, seed);
        let max_r = dag.max_round().unwrap();
        for from in dag.vertices_in_round(max_r).map(Vertex::id).collect::<Vec<_>>() {
            for r in 0..max_r {
                for to in dag.vertices_in_round(r).map(Vertex::id).collect::<Vec<_>>() {
                    if dag.strong_path(from, to) {
                        prop_assert!(dag.path(from, to), "{from} strong-reaches {to} but path() denies");
                    }
                }
            }
        }
    }

    #[test]
    fn causal_history_is_path_closed(n in 2usize..6, rounds in 1u64..8, seed in 0u64..500) {
        let dag = random_dag(n, rounds, 0.7, seed);
        let max_r = dag.max_round().unwrap();
        let Some(top) = dag.vertices_in_round(max_r).map(Vertex::id).next() else {
            return Ok(());
        };
        let hist = dag.causal_history(top);
        // Every member is reachable, and every parent of a member is a member.
        for id in &hist {
            prop_assert!(dag.path(top, *id));
            let v = dag.get(*id).unwrap();
            for p in v.parents() {
                prop_assert!(hist.contains(&p), "parent {p} of {id} missing from history");
            }
        }
        // Nothing outside the history is reachable.
        for r in 0..=max_r {
            for v in dag.vertices_in_round(r) {
                if !hist.contains(&v.id()) {
                    prop_assert!(!dag.path(top, v.id()));
                }
            }
        }
    }

    #[test]
    fn strong_reachable_sources_agrees_with_strong_path(
        n in 2usize..6, rounds in 2u64..8, seed in 0u64..500,
    ) {
        let dag = random_dag(n, rounds, 0.7, seed);
        let max_r = dag.max_round().unwrap();
        for from in dag.vertices_in_round(max_r).map(Vertex::id).collect::<Vec<_>>() {
            for target in 0..max_r {
                let bulk = dag.strong_reachable_sources(from, target);
                for i in 0..n {
                    let to = VertexId::new(target, pid(i));
                    let individually = dag.contains(to) && dag.strong_path(from, to);
                    prop_assert_eq!(
                        bulk.contains(pid(i)),
                        individually,
                        "mismatch for {} -> {}", from, to
                    );
                }
            }
        }
    }

    #[test]
    fn reflexivity_and_antisymmetry(n in 2usize..5, rounds in 1u64..6, seed in 0u64..200) {
        let dag = random_dag(n, rounds, 0.8, seed);
        let all: Vec<VertexId> = (0..=dag.max_round().unwrap())
            .flat_map(|r| dag.vertices_in_round(r).map(Vertex::id).collect::<Vec<_>>())
            .collect();
        for &a in &all {
            prop_assert!(dag.path(a, a));
            prop_assert!(dag.strong_path(a, a));
            for &b in &all {
                if a != b && dag.path(a, b) {
                    prop_assert!(!dag.path(b, a), "cycle between {a} and {b}");
                }
            }
        }
    }
}
