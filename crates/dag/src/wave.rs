//! Wave arithmetic: DAG-Rider groups rounds into 4-round *waves*.
//!
//! Waves are numbered from 1; wave `w` spans rounds
//! `4(w−1)+1 .. 4w`. Round 0 is the genesis round and belongs to no wave.

use crate::vertex::Round;

/// Wave number (1-based).
pub type WaveId = u64;

/// Number of rounds per wave in DAG-Rider-style protocols.
pub const ROUNDS_PER_WAVE: u64 = 4;

/// The `k`-th round of wave `w` (`k ∈ 1..=4`) — the paper's `round(w, k)`.
///
/// # Panics
///
/// Panics if `w == 0` or `k` is not in `1..=4`.
pub fn round_of_wave(w: WaveId, k: u64) -> Round {
    assert!(w >= 1, "waves are numbered from 1");
    assert!((1..=ROUNDS_PER_WAVE).contains(&k), "wave rounds are 1..=4");
    ROUNDS_PER_WAVE * (w - 1) + k
}

/// The wave containing `round` — the paper's `waveOfRound`.
///
/// # Panics
///
/// Panics on round 0 (genesis belongs to no wave).
pub fn wave_of_round(round: Round) -> WaveId {
    assert!(round >= 1, "round 0 is genesis");
    (round - 1) / ROUNDS_PER_WAVE + 1
}

/// Position of `round` within its wave (`1..=4`).
///
/// # Panics
///
/// Panics on round 0.
pub fn position_in_wave(round: Round) -> u64 {
    assert!(round >= 1, "round 0 is genesis");
    (round - 1) % ROUNDS_PER_WAVE + 1
}

/// `true` if `round` is the last round of its wave (a wave boundary where the
/// commit rule runs).
pub fn is_wave_boundary(round: Round) -> bool {
    round >= 1 && position_in_wave(round) == ROUNDS_PER_WAVE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_wave_roundtrip() {
        for w in 1..=10 {
            for k in 1..=4 {
                let r = round_of_wave(w, k);
                assert_eq!(wave_of_round(r), w);
                assert_eq!(position_in_wave(r), k);
            }
        }
    }

    #[test]
    fn first_wave_spans_rounds_1_to_4() {
        assert_eq!(round_of_wave(1, 1), 1);
        assert_eq!(round_of_wave(1, 4), 4);
        assert_eq!(round_of_wave(2, 1), 5);
        assert_eq!(wave_of_round(4), 1);
        assert_eq!(wave_of_round(5), 2);
    }

    #[test]
    fn boundaries() {
        assert!(is_wave_boundary(4));
        assert!(is_wave_boundary(8));
        assert!(!is_wave_boundary(1));
        assert!(!is_wave_boundary(7));
        assert!(!is_wave_boundary(0));
    }

    #[test]
    #[should_panic(expected = "genesis")]
    fn wave_of_round_zero_panics() {
        let _ = wave_of_round(0);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn wave_zero_panics() {
        let _ = round_of_wave(0, 1);
    }
}
