//! DAG vertices: one per `(source, round)`, carrying a block of transactions
//! and strong/weak edges.
//!
//! Because vertices are disseminated through (asymmetric) *reliable*
//! broadcast, a correct process never observes two different vertices from
//! the same source in the same round — `(source, round)` is a sound vertex
//! identity (the certified-DAG property DAG-Rider relies on).

use asym_crypto::{Digest, Sha256};
use asym_quorum::{ProcessId, ProcessSet};

/// Round number; round 0 holds the hard-coded genesis vertices.
pub type Round = u64;

/// Identity of a vertex in a certified DAG.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId {
    /// Round the vertex belongs to.
    pub round: Round,
    /// The process that created (and reliably broadcast) the vertex.
    pub source: ProcessId,
}

impl VertexId {
    /// Creates a vertex id.
    pub const fn new(round: Round, source: ProcessId) -> Self {
        VertexId { round, source }
    }
}

impl core::fmt::Display for VertexId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "v({}, r{})", self.source, self.round)
    }
}

impl core::fmt::Debug for VertexId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Display::fmt(self, f)
    }
}

/// A DAG vertex: a block plus references to earlier vertices.
///
/// *Strong edges* point to vertices of the previous round (stored as the set
/// of their sources — the round is implicit). *Weak edges* point to older
/// vertices not yet reachable, guaranteeing that every broadcast vertex is
/// eventually ordered (validity, Lemma 4.10).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Vertex<B> {
    source: ProcessId,
    round: Round,
    block: B,
    strong_edges: ProcessSet,
    weak_edges: Vec<VertexId>,
}

impl<B> Vertex<B> {
    /// Creates a vertex.
    ///
    /// # Panics
    ///
    /// Panics if a weak edge points to round `round − 1` or later (those must
    /// be strong edges), or if `round == 0` and any edge is present (genesis
    /// vertices are edge-free).
    pub fn new(
        source: ProcessId,
        round: Round,
        block: B,
        strong_edges: ProcessSet,
        weak_edges: Vec<VertexId>,
    ) -> Self {
        if round == 0 {
            assert!(
                strong_edges.is_empty() && weak_edges.is_empty(),
                "genesis vertices carry no edges"
            );
        }
        for w in &weak_edges {
            assert!(
                w.round + 1 < round,
                "weak edge {w} of a round-{round} vertex must point below round {}",
                round.saturating_sub(1)
            );
        }
        Vertex { source, round, block, strong_edges, weak_edges }
    }

    /// Creates a genesis (round-0) vertex.
    pub fn genesis(source: ProcessId, block: B) -> Self {
        Vertex::new(source, 0, block, ProcessSet::new(), Vec::new())
    }

    /// The vertex identity.
    pub fn id(&self) -> VertexId {
        VertexId::new(self.round, self.source)
    }

    /// The creating process.
    pub fn source(&self) -> ProcessId {
        self.source
    }

    /// The round this vertex belongs to.
    pub fn round(&self) -> Round {
        self.round
    }

    /// The carried block.
    pub fn block(&self) -> &B {
        &self.block
    }

    /// Consumes the vertex and returns the block.
    pub fn into_block(self) -> B {
        self.block
    }

    /// Sources of the previous-round vertices this vertex strongly
    /// references.
    pub fn strong_edges(&self) -> &ProcessSet {
        &self.strong_edges
    }

    /// Weak edges to rounds `< round − 1`.
    pub fn weak_edges(&self) -> &[VertexId] {
        &self.weak_edges
    }

    /// All parents (strong first, then weak), as vertex ids.
    pub fn parents(&self) -> impl Iterator<Item = VertexId> + '_ {
        let prev = self.round.saturating_sub(1);
        self.strong_edges
            .iter()
            .map(move |s| VertexId::new(prev, s))
            .chain(self.weak_edges.iter().copied())
    }
}

impl<B: AsRef<[u8]>> Vertex<B> {
    /// Content digest of the vertex (block + edges + identity); the identity
    /// a production implementation would sign and reference.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"asym-dag-rider/vertex/v1");
        h.update(&(self.source.index() as u64).to_be_bytes());
        h.update(&self.round.to_be_bytes());
        h.update(self.block.as_ref());
        for s in &self.strong_edges {
            h.update(&(s.index() as u64).to_be_bytes());
        }
        for w in &self.weak_edges {
            h.update(&w.round.to_be_bytes());
            h.update(&(w.source.index() as u64).to_be_bytes());
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn accessors() {
        let v = Vertex::new(
            pid(2),
            3,
            vec![1u8, 2],
            ProcessSet::from_indices([0, 1]),
            vec![VertexId::new(1, pid(3))],
        );
        assert_eq!(v.id(), VertexId::new(3, pid(2)));
        assert_eq!(v.source(), pid(2));
        assert_eq!(v.round(), 3);
        assert_eq!(v.block(), &vec![1, 2]);
        assert_eq!(v.strong_edges().len(), 2);
        assert_eq!(v.weak_edges().len(), 1);
        let parents: Vec<VertexId> = v.parents().collect();
        assert_eq!(
            parents,
            vec![VertexId::new(2, pid(0)), VertexId::new(2, pid(1)), VertexId::new(1, pid(3)),]
        );
    }

    #[test]
    fn genesis_has_no_parents() {
        let g = Vertex::genesis(pid(0), Vec::<u8>::new());
        assert_eq!(g.round(), 0);
        assert_eq!(g.parents().count(), 0);
    }

    #[test]
    #[should_panic(expected = "weak edge")]
    fn weak_edge_to_previous_round_rejected() {
        let _ = Vertex::new(
            pid(0),
            3,
            Vec::<u8>::new(),
            ProcessSet::new(),
            vec![VertexId::new(2, pid(1))],
        );
    }

    #[test]
    #[should_panic(expected = "genesis")]
    fn genesis_with_edges_rejected() {
        let _ = Vertex::new(pid(0), 0, Vec::<u8>::new(), ProcessSet::from_indices([1]), Vec::new());
    }

    #[test]
    fn digest_changes_with_content() {
        let mk = |block: &[u8], round| {
            Vertex::new(pid(1), round, block.to_vec(), ProcessSet::from_indices([0]), vec![])
        };
        assert_ne!(mk(b"a", 2).digest(), mk(b"b", 2).digest());
        assert_ne!(mk(b"a", 2).digest(), mk(b"a", 3).digest());
        assert_eq!(mk(b"a", 2).digest(), mk(b"a", 2).digest());
    }

    #[test]
    fn display_format() {
        let id = VertexId::new(5, pid(3));
        assert_eq!(id.to_string(), "v(p3, r5)");
    }
}
