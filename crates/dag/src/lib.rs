//! The certified-DAG substrate of the DAG-Rider family: vertices with
//! strong/weak edges, a round-indexed store with reachability queries, and
//! wave arithmetic.
//!
//! Both consensus protocols in this repository — symmetric DAG-Rider and the
//! paper's asymmetric variant — build their local DAGs out of these types.
//! Because vertices travel over reliable broadcast, `(source, round)` is a
//! sound identity ([`VertexId`]), and the store can enforce the
//! "causal history present before insertion" invariant that the ordering
//! logic relies on.
//!
//! ```
//! use asym_dag::{round_of_wave, wave_of_round, DagStore, Vertex};
//! use asym_quorum::{ProcessId, ProcessSet};
//!
//! let mut dag: DagStore<&'static str> = DagStore::with_genesis(4, "genesis");
//! let v = Vertex::new(
//!     ProcessId::new(1),
//!     1,
//!     "block",
//!     ProcessSet::from_indices([0, 1, 2]),
//!     vec![],
//! );
//! dag.insert(v)?;
//! assert_eq!(wave_of_round(1), 1);
//! assert_eq!(round_of_wave(1, 4), 4);
//! # Ok::<(), asym_dag::DagError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod store;
mod vertex;
mod wave;

pub use store::{DagError, DagStore};
pub use vertex::{Round, Vertex, VertexId};
pub use wave::{
    is_wave_boundary, position_in_wave, round_of_wave, wave_of_round, WaveId, ROUNDS_PER_WAVE,
};
