//! The round-indexed DAG store with reachability queries.
//!
//! The store enforces the invariant both DAG-Rider variants rely on: a vertex
//! is inserted only after its entire causal history is present (Algorithm 4,
//! line 96). Under that invariant, reachability queries never encounter
//! dangling references.

use std::collections::{BTreeMap, HashSet, VecDeque};

use asym_quorum::{ProcessId, ProcessSet};

use crate::vertex::{Round, Vertex, VertexId};

/// Errors returned by [`DagStore::insert`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// A vertex with the same `(source, round)` identity is already stored.
    Duplicate(VertexId),
    /// A referenced parent vertex is missing from the store.
    MissingParent {
        /// The vertex being inserted.
        vertex: VertexId,
        /// The absent parent.
        parent: VertexId,
    },
}

impl core::fmt::Display for DagError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DagError::Duplicate(v) => write!(f, "vertex {v} already present"),
            DagError::MissingParent { vertex, parent } => {
                write!(f, "vertex {vertex} references missing parent {parent}")
            }
        }
    }
}

impl std::error::Error for DagError {}

/// A local certified DAG: rounds of vertices, one per source, with
/// strong/weak-edge reachability queries.
///
/// # Examples
///
/// ```
/// use asym_dag::{DagStore, Vertex, VertexId};
/// use asym_quorum::{ProcessId, ProcessSet};
///
/// let mut dag: DagStore<Vec<u8>> = DagStore::with_genesis(3, Vec::new());
/// let v = Vertex::new(
///     ProcessId::new(0),
///     1,
///     vec![1],
///     ProcessSet::from_indices([0, 1, 2]),
///     vec![],
/// );
/// dag.insert(v)?;
/// assert!(dag.contains(VertexId::new(1, ProcessId::new(0))));
/// # Ok::<(), asym_dag::DagError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DagStore<B> {
    rounds: BTreeMap<Round, BTreeMap<ProcessId, Vertex<B>>>,
    len: usize,
    /// Identities garbage-collected after delivery. A missing parent is
    /// tolerated on insert **iff its exact id is recorded here** — a
    /// round-based floor would also excuse a slow old vertex this process
    /// simply never received, silently breaking delivery completeness.
    pruned: HashSet<VertexId>,
    /// The same identities indexed per round — round advancement queries
    /// pruned membership on every message, so the per-round form must be
    /// O(round lookup), not a scan of the whole pruned set.
    pruned_by_round: BTreeMap<Round, ProcessSet>,
    /// Highest round of any pruned vertex (`0` = nothing pruned) — the
    /// metadata the snapshot marker and the recovery fetch floor use.
    pruned_floor: Round,
}

impl<B> DagStore<B> {
    /// Creates an empty store (no genesis).
    pub fn new() -> Self {
        DagStore {
            rounds: BTreeMap::new(),
            len: 0,
            pruned: HashSet::new(),
            pruned_by_round: BTreeMap::new(),
            pruned_floor: 0,
        }
    }

    /// Creates a store pre-populated with round-0 genesis vertices for all
    /// `n` processes, each carrying a clone of `genesis_block` (Algorithm 4,
    /// line 67: "DAG\[0\] ← hardcoded quorum of vertices").
    pub fn with_genesis(n: usize, genesis_block: B) -> Self
    where
        B: Clone,
    {
        let mut store = DagStore::new();
        for i in 0..n {
            store
                .insert(Vertex::genesis(ProcessId::new(i), genesis_block.clone()))
                .expect("fresh store accepts genesis");
        }
        store
    }

    /// Number of stored vertices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no vertex is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Highest round containing at least one vertex (`None` when empty).
    pub fn max_round(&self) -> Option<Round> {
        self.rounds.iter().rev().find(|(_, m)| !m.is_empty()).map(|(r, _)| *r)
    }

    /// The pruning floor: the highest round of any garbage-collected
    /// vertex. `0` means nothing was pruned. (Metadata only — insert
    /// tolerance is decided per-id via [`DagStore::is_pruned`].)
    pub fn pruned_floor(&self) -> Round {
        self.pruned_floor
    }

    /// `true` if this exact identity was garbage-collected after delivery
    /// (its content can never be needed again).
    pub fn is_pruned(&self, id: VertexId) -> bool {
        self.pruned.contains(&id)
    }

    /// Number of pruned identities recorded.
    pub fn pruned_len(&self) -> usize {
        self.pruned.len()
    }

    /// Records `id` as a garbage-collected delivered vertex *without*
    /// requiring it to be present — the replay path reconstructs the
    /// pruned set as "delivered but absent from the snapshot". Ratchets
    /// the floor.
    pub fn note_pruned(&mut self, id: VertexId) {
        self.pruned_floor = self.pruned_floor.max(id.round);
        self.pruned.insert(id);
        self.pruned_by_round.entry(id.round).or_default().insert(id.source);
    }

    /// Ratchets the floor metadata without recording an id — used when
    /// replaying a snapshot's pruning marker.
    pub fn set_pruned_floor(&mut self, floor: Round) {
        self.pruned_floor = self.pruned_floor.max(floor);
    }

    /// Garbage-collects one delivered vertex: removes it and records its
    /// identity so children referencing it still insert. The caller is
    /// responsible for only pruning *delivered* vertices — pruning an
    /// undelivered one would silently drop it from every later leader's
    /// causal history.
    pub fn prune(&mut self, id: VertexId) -> Option<Vertex<B>> {
        let v = self.remove(id)?;
        self.note_pruned(id);
        Some(v)
    }

    /// Inserts a vertex.
    ///
    /// # Errors
    ///
    /// [`DagError::Duplicate`] if the identity is taken;
    /// [`DagError::MissingParent`] if any strong or weak edge references an
    /// absent vertex (callers buffer such vertices — Algorithm 4 line 95).
    pub fn insert(&mut self, vertex: Vertex<B>) -> Result<(), DagError> {
        self.insert_with(vertex, |_| {})
    }

    /// Inserts a vertex, invoking `on_insert` on the stored vertex iff the
    /// insertion succeeds — the event-emitting hook a write-ahead log
    /// attaches to, so every vertex that enters the DAG is durably recorded
    /// in the same step.
    ///
    /// # Errors
    ///
    /// Same as [`DagStore::insert`]; `on_insert` is *not* called on error.
    pub fn insert_with(
        &mut self,
        vertex: Vertex<B>,
        on_insert: impl FnOnce(&Vertex<B>),
    ) -> Result<(), DagError> {
        let id = vertex.id();
        if self.contains(id) {
            return Err(DagError::Duplicate(id));
        }
        for parent in vertex.parents() {
            if !self.contains(parent) && !self.pruned.contains(&parent) {
                return Err(DagError::MissingParent { vertex: id, parent });
            }
        }
        let slot = self.rounds.entry(id.round).or_default().entry(id.source).or_insert(vertex);
        self.len += 1;
        on_insert(slot);
        Ok(())
    }

    /// Removes a vertex without recording it as pruned (prefer
    /// [`DagStore::prune`] for garbage collection — children referencing a
    /// plainly-removed vertex will no longer insert).
    pub fn remove(&mut self, id: VertexId) -> Option<Vertex<B>> {
        let slot = self.rounds.get_mut(&id.round)?;
        let v = slot.remove(&id.source)?;
        if slot.is_empty() {
            self.rounds.remove(&id.round);
        }
        self.len -= 1;
        Some(v)
    }

    /// Returns `true` if all parents of `vertex` are present (the insert
    /// precondition). Pruned parents count as present — they were
    /// delivered and garbage-collected.
    pub fn parents_present(&self, vertex: &Vertex<B>) -> bool {
        vertex.parents().all(|p| self.contains(p) || self.pruned.contains(&p))
    }

    /// `true` if the identified vertex is stored.
    pub fn contains(&self, id: VertexId) -> bool {
        self.rounds.get(&id.round).is_some_and(|m| m.contains_key(&id.source))
    }

    /// Fetches a vertex by identity.
    pub fn get(&self, id: VertexId) -> Option<&Vertex<B>> {
        self.rounds.get(&id.round).and_then(|m| m.get(&id.source))
    }

    /// The sources with a vertex in `round`.
    pub fn sources_in_round(&self, round: Round) -> ProcessSet {
        self.rounds.get(&round).map(|m| m.keys().copied().collect()).unwrap_or_default()
    }

    /// The sources whose round-`round` vertex was garbage-collected after
    /// delivery — the floor-aware complement of
    /// [`DagStore::sources_in_round`].
    pub fn pruned_sources_in_round(&self, round: Round) -> ProcessSet {
        self.pruned_by_round.get(&round).cloned().unwrap_or_default()
    }

    /// The sources of round-`round` vertices that are either stored **or**
    /// pruned (delivered and garbage-collected). This is the availability
    /// set round advancement must use after a delivered-state install: a
    /// pruned vertex existed, completed dissemination and was delivered, so
    /// it is a sound strong-edge target even though its content is gone —
    /// every peer holds it as present-or-pruned too.
    pub fn sources_in_round_or_pruned(&self, round: Round) -> ProcessSet {
        let mut s = self.sources_in_round(round);
        s.union_with(&self.pruned_sources_in_round(round));
        s
    }

    /// Iterates over the vertices of `round` in source order.
    pub fn vertices_in_round(&self, round: Round) -> impl Iterator<Item = &Vertex<B>> {
        self.rounds.get(&round).into_iter().flat_map(|m| m.values())
    }

    /// `true` if there is a path from `from` to `to` following **strong edges
    /// only** (edges between consecutive rounds) — the paper's
    /// `strong_path(u, v)`.
    pub fn strong_path(&self, from: VertexId, to: VertexId) -> bool {
        if from == to {
            return true;
        }
        if from.round <= to.round {
            return false;
        }
        // Walk down one round at a time, tracking reachable sources.
        let mut frontier = ProcessSet::singleton(from.source);
        let mut round = from.round;
        while round > to.round {
            let mut next = ProcessSet::new();
            if let Some(m) = self.rounds.get(&round) {
                for s in &frontier {
                    if let Some(v) = m.get(&s) {
                        next.union_with(v.strong_edges());
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            frontier = next;
            round -= 1;
        }
        frontier.contains(to.source)
    }

    /// The sources of round-`target_round` vertices reachable from `from`
    /// via strong edges (bulk form of [`DagStore::strong_path`]).
    pub fn strong_reachable_sources(&self, from: VertexId, target_round: Round) -> ProcessSet {
        if target_round > from.round {
            return ProcessSet::new();
        }
        if target_round == from.round {
            return ProcessSet::singleton(from.source);
        }
        let mut frontier = ProcessSet::singleton(from.source);
        let mut round = from.round;
        while round > target_round {
            let mut next = ProcessSet::new();
            if let Some(m) = self.rounds.get(&round) {
                for s in &frontier {
                    if let Some(v) = m.get(&s) {
                        next.union_with(v.strong_edges());
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
            round -= 1;
        }
        frontier
    }

    /// `true` if there is a path from `from` to `to` following strong **or**
    /// weak edges — the paper's `path(u, v)`.
    pub fn path(&self, from: VertexId, to: VertexId) -> bool {
        if from == to {
            return true;
        }
        if from.round <= to.round {
            return false;
        }
        let mut seen: HashSet<VertexId> = HashSet::new();
        let mut queue: VecDeque<VertexId> = VecDeque::new();
        queue.push_back(from);
        seen.insert(from);
        while let Some(cur) = queue.pop_front() {
            let Some(v) = self.get(cur) else { continue };
            for p in v.parents() {
                if p == to {
                    return true;
                }
                if p.round >= to.round && seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        false
    }

    /// All vertices reachable from `from` (inclusive) via strong or weak
    /// edges, in deterministic `(round, source)` order — the traversal behind
    /// `orderVertices`.
    pub fn causal_history(&self, from: VertexId) -> Vec<VertexId> {
        let mut seen: HashSet<VertexId> = HashSet::new();
        let mut queue: VecDeque<VertexId> = VecDeque::new();
        if self.contains(from) {
            queue.push_back(from);
            seen.insert(from);
        }
        while let Some(cur) = queue.pop_front() {
            let Some(v) = self.get(cur) else { continue };
            for p in v.parents() {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        let mut out: Vec<VertexId> = seen.into_iter().collect();
        out.sort();
        out
    }
}

impl<B> Default for DagStore<B> {
    fn default() -> Self {
        DagStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn vid(round: Round, source: usize) -> VertexId {
        VertexId::new(round, pid(source))
    }

    /// Builds a 4-process DAG with `rounds` full rounds where every vertex
    /// strongly references all vertices of the previous round.
    fn full_dag(n: usize, rounds: Round) -> DagStore<u64> {
        let mut dag = DagStore::with_genesis(n, 0u64);
        for r in 1..=rounds {
            for i in 0..n {
                let v = Vertex::new(pid(i), r, r * 100 + i as u64, ProcessSet::full(n), vec![]);
                dag.insert(v).unwrap();
            }
        }
        dag
    }

    #[test]
    fn insert_and_query() {
        let dag = full_dag(4, 3);
        assert_eq!(dag.len(), 16);
        assert_eq!(dag.max_round(), Some(3));
        assert!(dag.contains(vid(2, 1)));
        assert!(!dag.contains(vid(4, 0)));
        assert_eq!(dag.sources_in_round(1), ProcessSet::full(4));
        assert_eq!(dag.vertices_in_round(2).count(), 4);
        assert_eq!(dag.get(vid(3, 2)).unwrap().block(), &302);
    }

    #[test]
    fn duplicate_rejected() {
        let mut dag = full_dag(4, 1);
        let v = Vertex::new(pid(0), 1, 9u64, ProcessSet::full(4), vec![]);
        assert_eq!(dag.insert(v), Err(DagError::Duplicate(vid(1, 0))));
    }

    #[test]
    fn insert_hook_fires_only_on_success() {
        let mut dag: DagStore<u64> = DagStore::with_genesis(3, 0);
        let mut seen = Vec::new();
        let v = Vertex::new(pid(0), 1, 7u64, ProcessSet::full(3), vec![]);
        dag.insert_with(v.clone(), |v| seen.push(v.id())).unwrap();
        assert_eq!(seen, vec![vid(1, 0)]);
        // Duplicate: error, hook not fired.
        assert!(dag.insert_with(v, |v| seen.push(v.id())).is_err());
        let orphan = Vertex::new(pid(1), 2, 8u64, ProcessSet::from_indices([2]), vec![]);
        assert!(dag.insert_with(orphan, |v| seen.push(v.id())).is_err());
        assert_eq!(seen.len(), 1);
    }

    #[test]
    fn missing_parent_rejected() {
        let mut dag: DagStore<u64> = DagStore::with_genesis(4, 0);
        let v = Vertex::new(pid(0), 2, 9u64, ProcessSet::from_indices([1]), vec![]);
        assert_eq!(
            dag.insert(v.clone()),
            Err(DagError::MissingParent { vertex: vid(2, 0), parent: vid(1, 1) })
        );
        assert!(!dag.parents_present(&v));
    }

    #[test]
    fn strong_path_full_dag() {
        let dag = full_dag(4, 4);
        assert!(dag.strong_path(vid(4, 0), vid(1, 3)));
        assert!(dag.strong_path(vid(4, 0), vid(4, 0)), "reflexive");
        assert!(!dag.strong_path(vid(1, 0), vid(4, 0)), "no upward paths");
        assert_eq!(dag.strong_reachable_sources(vid(4, 2), 1), ProcessSet::full(4));
    }

    #[test]
    fn strong_path_sparse() {
        // Chain: only p0 creates vertices, each referencing only p0.
        let mut dag: DagStore<u64> = DagStore::with_genesis(3, 0);
        for r in 1..=3 {
            dag.insert(Vertex::new(pid(0), r, r, ProcessSet::from_indices([0]), vec![])).unwrap();
        }
        assert!(dag.strong_path(vid(3, 0), vid(1, 0)));
        assert!(!dag.strong_path(vid(3, 0), vid(1, 1)), "p1 has no round-1 vertex");
        assert_eq!(dag.strong_reachable_sources(vid(3, 0), 0), ProcessSet::from_indices([0]));
    }

    #[test]
    fn weak_edges_counted_by_path_not_strong_path() {
        let mut dag: DagStore<u64> = DagStore::with_genesis(3, 0);
        // p1 creates rounds 1-2; p0 skips round 1-2 and joins at round 3 with
        // a strong edge to p1's round-2 vertex and a weak edge to genesis p2.
        dag.insert(Vertex::new(pid(1), 1, 1, ProcessSet::from_indices([1]), vec![])).unwrap();
        dag.insert(Vertex::new(pid(1), 2, 2, ProcessSet::from_indices([1]), vec![])).unwrap();
        let v = Vertex::new(pid(0), 3, 3, ProcessSet::from_indices([1]), vec![vid(0, 2)]);
        dag.insert(v).unwrap();
        assert!(dag.path(vid(3, 0), vid(0, 2)), "weak edge gives a path");
        assert!(!dag.strong_path(vid(3, 0), vid(0, 2)), "but not a strong path");
        assert!(dag.strong_path(vid(3, 0), vid(1, 1)));
    }

    #[test]
    fn causal_history_is_complete_and_sorted() {
        let dag = full_dag(3, 2);
        let hist = dag.causal_history(vid(2, 0));
        // Everything from rounds 0..2 plus the vertex itself is reachable.
        assert_eq!(hist.len(), 3 + 3 + 1);
        let mut sorted = hist.clone();
        sorted.sort();
        assert_eq!(hist, sorted);
        assert!(hist.contains(&vid(0, 2)));
        assert!(hist.contains(&vid(2, 0)));
        assert!(!hist.contains(&vid(2, 1)));
    }

    #[test]
    fn causal_history_of_missing_vertex_is_empty() {
        let dag = full_dag(3, 1);
        assert!(dag.causal_history(vid(5, 0)).is_empty());
    }

    #[test]
    fn pruning_tolerates_exactly_the_pruned_parents() {
        let mut dag = full_dag(3, 2);
        assert_eq!(dag.pruned_floor(), 0);
        // Garbage-collect round 1 (pretend it was all delivered).
        for i in 0..3 {
            let v = dag.prune(vid(1, i)).expect("present");
            assert_eq!(v.id(), vid(1, i));
        }
        assert_eq!(dag.len(), 3 + 3, "genesis + round 2 remain");
        assert_eq!(dag.pruned_floor(), 1);
        assert_eq!(dag.pruned_len(), 3);
        assert!(dag.is_pruned(vid(1, 0)));
        // A round-2 latecomer referencing the pruned round still inserts…
        let v = Vertex::new(pid(0), 3, 3u64, ProcessSet::from_indices([0, 1]), vec![]);
        assert!(dag.parents_present(&v), "pruned parents count as present");
        dag.insert(v).unwrap();
        // …but a parent that was merely never received is NOT excused,
        // even in an already-pruned round: tolerance is per exact id.
        let mut sparse: DagStore<u64> = DagStore::with_genesis(3, 0);
        sparse.insert(Vertex::new(pid(0), 1, 1, ProcessSet::from_indices([0]), vec![])).unwrap();
        sparse.prune(vid(1, 0)).unwrap();
        let orphan = Vertex::new(pid(1), 2, 2, ProcessSet::from_indices([0, 1]), vec![]);
        assert!(!sparse.parents_present(&orphan), "v(p1,r1) was never received, not pruned");
        assert_eq!(
            sparse.insert(orphan),
            Err(DagError::MissingParent { vertex: vid(2, 1), parent: vid(1, 1) })
        );
        // Replay-side reconstruction: recording an absent id as pruned.
        sparse.note_pruned(vid(1, 1));
        assert!(sparse.is_pruned(vid(1, 1)));
        // Floor-aware queries: pruned sources are reported separately and
        // merged by the or-pruned form (what round advancement uses after
        // a delivered-state install).
        assert_eq!(dag.pruned_sources_in_round(1), ProcessSet::from_indices([0, 1, 2]));
        assert_eq!(dag.sources_in_round(1), ProcessSet::new());
        assert_eq!(dag.sources_in_round_or_pruned(1), ProcessSet::from_indices([0, 1, 2]));
        assert_eq!(dag.sources_in_round_or_pruned(2), ProcessSet::from_indices([0, 1, 2]));
        // `causal_history` still *names* pruned parents (their ids are
        // reachable) but cannot expand them — callers skip them via the
        // delivered set, which is never pruned.
        assert_eq!(
            dag.causal_history(vid(3, 0)),
            vec![vid(1, 0), vid(1, 1), vid(1, 2), vid(2, 0), vid(2, 1), vid(3, 0)]
        );
    }

    #[test]
    fn path_respects_round_bounds() {
        let dag = full_dag(3, 2);
        assert!(!dag.path(vid(1, 0), vid(2, 0)));
        assert!(dag.path(vid(2, 1), vid(2, 1)));
    }
}
