//! Engine-level integration tests: budget exhaustion, statistics accounting,
//! and determinism guarantees of the simulation core.

use asym_quorum::ProcessId;
use asym_sim::{scheduler, Context, FaultMode, Protocol, Simulation};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Ping-pong forever between processes 0 and 1 (never quiesces on its own).
struct PingPong;

impl Protocol for PingPong {
    type Msg = u64;
    type Input = u64;
    type Output = u64;

    fn on_input(&mut self, v: u64, ctx: &mut Context<'_, u64, u64>) {
        ctx.send(pid(1), v);
    }

    fn on_message(&mut self, from: ProcessId, v: u64, ctx: &mut Context<'_, u64, u64>) {
        ctx.output(v);
        ctx.send(from, v + 1);
    }
}

#[test]
fn budget_exhaustion_reports_non_quiescent() {
    let mut sim = Simulation::new(vec![PingPong, PingPong], scheduler::Fifo);
    sim.input(pid(0), 0);
    let report = sim.run(100);
    assert_eq!(report.steps, 100);
    assert!(!report.quiescent, "infinite ping-pong cannot quiesce");
    assert!(sim.in_flight() > 0);
    // Resuming continues exactly where it stopped.
    let before = sim.outputs(pid(1)).len() + sim.outputs(pid(0)).len();
    sim.run(50);
    let after = sim.outputs(pid(1)).len() + sim.outputs(pid(0)).len();
    assert_eq!(after - before, 50);
}

#[test]
fn stats_account_for_every_message() {
    let mut sim = Simulation::new(vec![PingPong, PingPong], scheduler::Fifo);
    sim.input(pid(0), 0);
    sim.run(73);
    let s = sim.stats();
    assert_eq!(s.delivered, 73);
    // Every delivery spawned one send, plus the initial input send.
    assert_eq!(s.sent, 74);
    assert_eq!(s.dropped, 0);
    assert!(s.max_in_flight >= 1);
}

#[test]
fn dropped_messages_are_counted_not_delivered() {
    let mut sim = Simulation::new(vec![PingPong, PingPong], scheduler::Fifo)
        .with_fault(pid(1), FaultMode::CrashedFromStart);
    sim.input(pid(0), 0);
    let report = sim.run(1_000);
    assert!(report.quiescent);
    let s = sim.stats();
    assert_eq!(s.delivered, 0, "the only recipient is crashed");
    assert_eq!(s.dropped, 1);
}

#[test]
fn identical_seeds_identical_traces() {
    let run = |seed: u64| {
        let mut sim = Simulation::new(vec![PingPong, PingPong], scheduler::Random::new(seed));
        sim.input(pid(0), 0);
        sim.run(500);
        (sim.outputs(pid(0)).to_vec(), sim.outputs(pid(1)).to_vec(), sim.stats(), sim.now())
    };
    assert_eq!(run(9), run(9));
}

#[test]
fn correct_processes_reflects_crash_progression() {
    let mut sim = Simulation::new(vec![PingPong, PingPong], scheduler::Fifo)
        .with_fault(pid(1), FaultMode::CrashAfter(5));
    sim.input(pid(0), 0);
    assert!(sim.correct_processes().contains(pid(1)));
    sim.run(4);
    // p1 processed at most 4 deliveries so far (inputs don't count).
    assert!(sim.correct_processes().contains(pid(1)));
    sim.run(1_000);
    assert!(!sim.correct_processes().contains(pid(1)));
    assert!(sim.correct_processes().contains(pid(0)));
}
