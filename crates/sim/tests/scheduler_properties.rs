//! Scheduler guarantees the scenario harness leans on: executions are
//! replayable (same seed ⇒ identical delivery order) and no adversary except
//! the explicitly-starving ones leaves correct-to-correct traffic undelivered
//! in a completed (quiescent) run.

use asym_quorum::{ProcessId, ProcessSet};
use asym_sim::{scheduler, Adversary, Context, FaultMode, Protocol, Simulation};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Gossip with one relay hop: enough traffic that delivery order is
/// observable and schedulers have real choices to make.
#[derive(Clone, Debug)]
struct Relay;

impl Protocol for Relay {
    type Msg = (u8, u64);
    type Input = u64;
    type Output = (ProcessId, u8, u64);

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        ctx.broadcast((0, ctx.id().index() as u64));
    }

    fn on_input(&mut self, input: u64, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        ctx.broadcast((0, input));
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        (hop, value): Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        ctx.output((from, hop, value));
        if hop == 0 {
            ctx.broadcast((1, value));
        }
    }
}

fn all_adversaries(n: usize) -> Vec<Adversary> {
    vec![
        Adversary::Fifo,
        Adversary::Random(11),
        Adversary::Latency { seed: 11, min: 1, max: 25 },
        Adversary::TargetedDelay(ProcessSet::from_indices([0, 1])),
        Adversary::Partition {
            groups: vec![ProcessSet::from_indices(0..n / 2), ProcessSet::from_indices(n / 2..n)],
            heal_at: 40,
        },
    ]
}

/// Runs the relay protocol under one adversary and returns per-process
/// outputs (the observable image of the delivery order) plus leftover
/// `(from, to)` endpoints.
fn run(
    n: usize,
    adversary: &Adversary,
    faults: &[(usize, FaultMode)],
) -> (Vec<Vec<(ProcessId, u8, u64)>>, Vec<(ProcessId, ProcessId)>) {
    let procs = vec![Relay; n];
    let mut sim = Simulation::new(procs, adversary.build())
        .with_faults(faults.iter().map(|(i, m)| (pid(*i), *m)));
    for i in 0..n {
        sim.input(pid(i), 100 + i as u64);
    }
    let report = sim.run(1_000_000);
    assert!(report.quiescent, "{adversary}: run must quiesce");
    let outputs = (0..n).map(|i| sim.outputs(pid(i)).to_vec()).collect();
    (outputs, sim.pending_endpoints().collect())
}

#[test]
fn same_seed_same_delivery_order() {
    for adversary in all_adversaries(6) {
        let (a, _) = run(6, &adversary, &[]);
        let (b, _) = run(6, &adversary, &[]);
        assert_eq!(a, b, "{adversary}: same description must replay identically");
    }
}

#[test]
fn same_seed_same_delivery_order_under_faults() {
    let faults = [(4usize, FaultMode::Mute), (5usize, FaultMode::CrashAfter(7))];
    for adversary in all_adversaries(6) {
        let (a, _) = run(6, &adversary, &faults);
        let (b, _) = run(6, &adversary, &faults);
        assert_eq!(a, b, "{adversary}: fault plan must not break determinism");
    }
}

#[test]
fn different_random_seeds_usually_differ() {
    let (a, _) = run(6, &Adversary::Random(1), &[]);
    let (b, _) = run(6, &Adversary::Random(2), &[]);
    // Not guaranteed in principle, but with 6 relaying processes the orders
    // coincide only with negligible probability — a regression here means
    // the seed is being ignored.
    assert_ne!(a, b, "distinct seeds should explore distinct schedules");
}

#[test]
fn no_starvation_of_correct_to_correct_messages() {
    // Every eventually-delivering adversary must leave zero correct-to-correct
    // messages pending once the run quiesces.
    for adversary in all_adversaries(6) {
        let (_, leftovers) = run(6, &adversary, &[]);
        assert!(
            leftovers.is_empty(),
            "{adversary}: {} message(s) starved between correct processes",
            leftovers.len()
        );
    }
}

#[test]
fn no_starvation_between_surviving_processes_under_faults() {
    // With crashed/mute processes in the mix, traffic between the *remaining*
    // correct processes must still be fully delivered at quiescence.
    let faults = [(5usize, FaultMode::CrashedFromStart)];
    for adversary in all_adversaries(6) {
        let (_, leftovers) = run(6, &adversary, &faults);
        let correct_pair: Vec<_> =
            leftovers.iter().filter(|(f, t)| f.index() != 5 && t.index() != 5).collect();
        assert!(
            correct_pair.is_empty(),
            "{adversary}: correct-to-correct traffic starved: {correct_pair:?}"
        );
    }
}

#[test]
fn filtered_scheduler_starves_only_disallowed_traffic() {
    // The deliberately-starving adversary: everything it leaves behind must
    // violate its own predicate — it may not starve allowed traffic.
    let allow = |from: ProcessId, _to: ProcessId| from.index() != 2;
    let mut sim = Simulation::new(vec![Relay; 4], scheduler::Filtered::new(allow));
    for i in 0..4 {
        sim.input(pid(i), i as u64);
    }
    assert!(sim.run(1_000_000).quiescent);
    let leftovers: Vec<_> = sim.pending_endpoints().collect();
    assert!(!leftovers.is_empty(), "the filter must have starved something");
    for (from, _to) in leftovers {
        assert_eq!(from.index(), 2, "only disallowed traffic may be starved");
    }
}
