//! The protocol abstraction: event-driven state machines.
//!
//! Every protocol in this repository — reliable broadcast, gather, DAG
//! consensus — is an implementation of [`Protocol`]: a deterministic state
//! machine that reacts to a start signal, client inputs, and received
//! messages by mutating local state and emitting sends through a [`Context`].
//! No async runtime is involved; the [`Simulation`](crate::Simulation) event
//! loop owns delivery order, which is exactly the asynchronous-adversary
//! model of the paper (§2.1).

use core::fmt;

use asym_quorum::ProcessId;

/// Logical simulation time: the number of delivery steps executed so far, or
/// — under a latency-modelling scheduler — the simulated clock.
pub type Step = u64;

/// A deterministic, event-driven protocol state machine.
///
/// The simulation owns `n` instances (one per process). Instances communicate
/// only through messages emitted via [`Context::send`] /
/// [`Context::broadcast`]; the network attaches the authenticated sender
/// identity on delivery (messages cannot be forged, matching the paper's
/// authenticated point-to-point links).
pub trait Protocol {
    /// Messages exchanged between processes.
    type Msg: Clone + fmt::Debug;
    /// Client inputs injected by the environment (e.g. a block to broadcast).
    type Input;
    /// Outputs delivered to the environment (e.g. `ag-deliver`, `aa-deliver`).
    type Output;

    /// Invoked once before any message is delivered.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        let _ = ctx;
    }

    /// Invoked when the environment injects an input.
    fn on_input(&mut self, input: Self::Input, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        let _ = (input, ctx);
    }

    /// Invoked when a message from `from` is delivered to this process.
    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    );

    /// Invoked when this process restarts after a
    /// [`FaultMode::RestartAfter`](crate::FaultMode::RestartAfter) crash
    /// window.
    ///
    /// A crash destroys in-memory state: implementations modelling real
    /// recovery must rebuild themselves from durable storage here (and may
    /// send catch-up requests through `ctx`). The default keeps the
    /// in-memory state as-is — "the process was merely unreachable" — which
    /// is the right semantics for protocols without a persistence layer.
    fn on_recover(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        let _ = ctx;
    }
}

/// Destination of an emitted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// A single process.
    To(ProcessId),
    /// Every process in the system, **including the sender** (the paper's
    /// "send to all `p ∈ P`").
    All,
}

/// Execution context handed to a [`Protocol`] callback.
///
/// Collects sends and outputs; the simulation drains them after the callback
/// returns. `Context` also exposes the process's own identity, the system
/// size and the current simulation time.
#[derive(Debug)]
pub struct Context<'a, M, O> {
    id: ProcessId,
    n: usize,
    now: Step,
    sends: &'a mut Vec<(Dest, M)>,
    outputs: &'a mut Vec<O>,
}

impl<'a, M, O> Context<'a, M, O> {
    /// Creates a context; used by the simulation and by unit tests that drive
    /// a protocol instance directly.
    pub fn new(
        id: ProcessId,
        n: usize,
        now: Step,
        sends: &'a mut Vec<(Dest, M)>,
        outputs: &'a mut Vec<O>,
    ) -> Self {
        Context { id, n, now, sends, outputs }
    }

    /// This process's identity.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Number of processes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulation time.
    pub fn now(&self) -> Step {
        self.now
    }

    /// Sends `msg` to a single process over the authenticated point-to-point
    /// link.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.sends.push((Dest::To(to), msg));
    }

    /// Sends `msg` to every process, including this one.
    pub fn broadcast(&mut self, msg: M) {
        self.sends.push((Dest::All, msg));
    }

    /// Delivers an output to the environment.
    pub fn output(&mut self, out: O) {
        self.outputs.push(out);
    }
}

/// Drives a single [`Protocol`] instance outside a full simulation — useful
/// for unit-testing one state machine in isolation.
///
/// # Examples
///
/// ```
/// use asym_quorum::ProcessId;
/// use asym_sim::{Harness, Protocol, Context};
///
/// struct Echo(ProcessId);
/// impl Protocol for Echo {
///     type Msg = u32;
///     type Input = ();
///     type Output = u32;
///     fn on_message(&mut self, _f: ProcessId, m: u32, ctx: &mut Context<'_, u32, u32>) {
///         ctx.output(m);
///     }
/// }
///
/// let mut h = Harness::new(Echo(ProcessId::new(0)), ProcessId::new(0), 3);
/// h.deliver(ProcessId::new(1), 7);
/// assert_eq!(h.outputs, vec![7]);
/// ```
#[derive(Debug)]
pub struct Harness<P: Protocol> {
    /// The protocol instance under test.
    pub protocol: P,
    /// Identity the instance runs as.
    pub id: ProcessId,
    /// System size reported through the context.
    pub n: usize,
    /// Simulated time, incremented per delivery.
    pub now: Step,
    /// All sends emitted so far, in order.
    pub sends: Vec<(Dest, P::Msg)>,
    /// All outputs emitted so far, in order.
    pub outputs: Vec<P::Output>,
}

impl<P: Protocol> Harness<P> {
    /// Wraps a protocol instance for direct driving.
    pub fn new(protocol: P, id: ProcessId, n: usize) -> Self {
        Harness { protocol, id, n, now: 0, sends: Vec::new(), outputs: Vec::new() }
    }

    /// Calls `on_start`.
    pub fn start(&mut self) {
        let mut ctx = Context::new(self.id, self.n, self.now, &mut self.sends, &mut self.outputs);
        self.protocol.on_start(&mut ctx);
    }

    /// Calls `on_input`.
    pub fn input(&mut self, input: P::Input) {
        let mut ctx = Context::new(self.id, self.n, self.now, &mut self.sends, &mut self.outputs);
        self.protocol.on_input(input, &mut ctx);
    }

    /// Delivers one message and advances time.
    pub fn deliver(&mut self, from: ProcessId, msg: P::Msg) {
        self.now += 1;
        let mut ctx = Context::new(self.id, self.n, self.now, &mut self.sends, &mut self.outputs);
        self.protocol.on_message(from, msg, &mut ctx);
    }

    /// Drains and returns the sends emitted so far.
    pub fn take_sends(&mut self) -> Vec<(Dest, P::Msg)> {
        core::mem::take(&mut self.sends)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        seen: u32,
    }

    impl Protocol for Counter {
        type Msg = u32;
        type Input = u32;
        type Output = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
            ctx.broadcast(0);
        }

        fn on_input(&mut self, input: u32, ctx: &mut Context<'_, u32, u32>) {
            ctx.send(ProcessId::new(1), input);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut Context<'_, u32, u32>) {
            self.seen += msg;
            ctx.output(self.seen);
        }
    }

    #[test]
    fn harness_drives_all_callbacks() {
        let mut h = Harness::new(Counter { seen: 0 }, ProcessId::new(0), 4);
        h.start();
        assert_eq!(h.sends, vec![(Dest::All, 0)]);
        h.input(9);
        assert_eq!(h.sends.last(), Some(&(Dest::To(ProcessId::new(1)), 9)));
        h.deliver(ProcessId::new(2), 5);
        h.deliver(ProcessId::new(3), 6);
        assert_eq!(h.outputs, vec![5, 11]);
        assert_eq!(h.now, 2);
        let drained = h.take_sends();
        assert_eq!(drained.len(), 2);
        assert!(h.sends.is_empty());
    }

    #[test]
    fn context_reports_identity() {
        let mut sends: Vec<(Dest, u32)> = Vec::new();
        let mut outs: Vec<u32> = Vec::new();
        let ctx = Context::new(ProcessId::new(3), 7, 42, &mut sends, &mut outs);
        assert_eq!(ctx.id(), ProcessId::new(3));
        assert_eq!(ctx.n(), 7);
        assert_eq!(ctx.now(), 42);
    }
}
