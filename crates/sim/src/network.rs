//! The deterministic discrete-event simulation engine.
//!
//! A [`Simulation`] owns one [`Protocol`] instance per process, a bag of
//! in-flight messages, and a [`Scheduler`] (the asynchronous adversary). Each
//! [`Simulation::step`] asks the scheduler for the next message, delivers it,
//! and enqueues whatever the receiving process sends in response. Executions
//! are fully deterministic given the protocol, fault plan and scheduler seed.

use asym_quorum::{ProcessId, ProcessSet};

use crate::process::{Context, Dest, Protocol, Step};
use crate::scheduler::{InFlight, Scheduler};

/// Fault mode of a process, applied by the network layer.
///
/// Byzantine *behaviour* (protocol-level deviation) is modelled inside the
/// protocol type itself (e.g. a malicious variant of the state machine);
/// the network layer provides the generic crash/omission faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Never starts: sends nothing, receives nothing.
    CrashedFromStart,
    /// Behaves correctly until it has processed `0..k` deliveries, then
    /// silently stops (no sends, deliveries dropped).
    CrashAfter(u64),
    /// Receives messages but all its sends are dropped (send-omission).
    Mute,
    /// Crashes like [`FaultMode::CrashAfter`]`(crash_at)`, but restarts once
    /// the simulation has executed `recover_at` delivery steps (or at
    /// quiescence, if the network drains first): the engine then invokes
    /// [`Protocol::on_recover`], which is where a persistence-backed
    /// protocol replays its log and rejoins. Messages sent to or by the
    /// process during the down window are dropped, exactly as for a crash.
    RestartAfter {
        /// Deliveries this process handles before crashing.
        crash_at: u64,
        /// Global delivery step at which the process restarts.
        recover_at: u64,
    },
}

/// Counters describing an execution; useful for message-complexity
/// experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network (unicasts; a broadcast counts `n`).
    pub sent: u64,
    /// Messages delivered to a process.
    pub delivered: u64,
    /// Messages dropped because the recipient (or sender) was faulty.
    pub dropped: u64,
    /// Largest number of simultaneously in-flight messages observed.
    pub max_in_flight: usize,
}

/// Result of [`Simulation::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Delivery steps executed during this call.
    pub steps: u64,
    /// `true` if the run stopped because no message was deliverable
    /// (quiescence), `false` if the step budget was exhausted.
    pub quiescent: bool,
}

/// A deterministic simulation of `n` processes exchanging messages through an
/// adversarial scheduler.
///
/// # Examples
///
/// ```
/// use asym_quorum::ProcessId;
/// use asym_sim::{scheduler, Context, Protocol, Simulation};
///
/// // Every process broadcasts a ping on start and outputs each ping heard.
/// struct Ping;
/// impl Protocol for Ping {
///     type Msg = ();
///     type Input = ();
///     type Output = ProcessId;
///     fn on_start(&mut self, ctx: &mut Context<'_, (), ProcessId>) {
///         ctx.broadcast(());
///     }
///     fn on_message(&mut self, from: ProcessId, _m: (), ctx: &mut Context<'_, (), ProcessId>) {
///         ctx.output(from);
///     }
/// }
///
/// let mut sim = Simulation::new(vec![Ping, Ping, Ping], scheduler::Fifo);
/// let report = sim.run(10_000);
/// assert!(report.quiescent);
/// assert_eq!(sim.outputs(ProcessId::new(0)).len(), 3);
/// ```
pub struct Simulation<P: Protocol, S> {
    nodes: Vec<P>,
    faults: Vec<FaultMode>,
    deliveries: Vec<u64>,
    recovered: Vec<bool>,
    steps_done: u64,
    pending: Vec<InFlight<P::Msg>>,
    scheduler: S,
    now: Step,
    seq: u64,
    started: bool,
    outputs: Vec<Vec<P::Output>>,
    stats: NetStats,
}

impl<P: Protocol, S: Scheduler<P::Msg>> Simulation<P, S> {
    /// Creates a simulation over the given processes (process `i` runs
    /// `processes[i]`) and scheduler. All processes start [`FaultMode::Correct`].
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty.
    pub fn new(processes: Vec<P>, scheduler: S) -> Self {
        assert!(!processes.is_empty(), "simulation needs at least one process");
        let n = processes.len();
        Simulation {
            nodes: processes,
            faults: vec![FaultMode::Correct; n],
            deliveries: vec![0; n],
            recovered: vec![false; n],
            steps_done: 0,
            pending: Vec::new(),
            scheduler,
            now: 0,
            seq: 0,
            started: false,
            outputs: (0..n).map(|_| Vec::new()).collect(),
            stats: NetStats::default(),
        }
    }

    /// Sets the fault mode of one process (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started.
    pub fn with_fault(mut self, p: ProcessId, mode: FaultMode) -> Self {
        assert!(!self.started, "fault plan must be fixed before the run starts");
        self.faults[p.index()] = mode;
        self
    }

    /// Applies a whole fault plan — `(process, mode)` assignments — at once
    /// (builder-style). The form sweep harnesses use.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started.
    pub fn with_faults<I: IntoIterator<Item = (ProcessId, FaultMode)>>(mut self, plan: I) -> Self {
        assert!(!self.started, "fault plan must be fixed before the run starts");
        for (p, mode) in plan {
            self.faults[p.index()] = mode;
        }
        self
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> Step {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The set of processes that are (still) correct right now. A
    /// [`FaultMode::RestartAfter`] process counts as correct outside its
    /// down window (before the crash, and again after recovery).
    pub fn correct_processes(&self) -> ProcessSet {
        (0..self.n())
            .filter(|i| match self.faults[*i] {
                FaultMode::Correct => true,
                FaultMode::CrashedFromStart | FaultMode::Mute => false,
                FaultMode::CrashAfter(k) => self.deliveries[*i] < k,
                FaultMode::RestartAfter { crash_at, .. } => {
                    self.recovered[*i] || self.deliveries[*i] < crash_at
                }
            })
            .collect()
    }

    /// `true` if a [`FaultMode::RestartAfter`] process's crash window
    /// actually opened and the engine fired its recovery. Stays `false`
    /// when the run ended before the process reached `crash_at` deliveries
    /// (the fault was vacuous) — harnesses use this to tell "never crashed"
    /// from "crashed and restarted".
    pub fn was_recovered(&self, p: ProcessId) -> bool {
        self.recovered[p.index()]
    }

    /// Immutable access to a process's state (observer inspection).
    pub fn process(&self, p: ProcessId) -> &P {
        &self.nodes[p.index()]
    }

    /// Outputs a process has produced so far, in order.
    pub fn outputs(&self, p: ProcessId) -> &[P::Output] {
        &self.outputs[p.index()]
    }

    /// Drains the outputs of a process.
    pub fn take_outputs(&mut self, p: ProcessId) -> Vec<P::Output> {
        core::mem::take(&mut self.outputs[p.index()])
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// `(from, to)` endpoints of every message still in flight, in no
    /// particular order — the observable behind starvation checks ("did the
    /// adversary leave correct-to-correct traffic undelivered?").
    pub fn pending_endpoints(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.pending.iter().map(|m| (m.from, m.to))
    }

    fn is_silent(&self, i: usize) -> bool {
        match self.faults[i] {
            FaultMode::Correct | FaultMode::Mute => false,
            FaultMode::CrashedFromStart => true,
            FaultMode::CrashAfter(k) => self.deliveries[i] >= k,
            FaultMode::RestartAfter { crash_at, .. } => {
                !self.recovered[i] && self.deliveries[i] >= crash_at
            }
        }
    }

    /// Fires [`Protocol::on_recover`] for every crashed [`FaultMode::RestartAfter`]
    /// process whose `recover_at` step has been reached.
    fn fire_due_recoveries(&mut self) {
        for i in 0..self.n() {
            let FaultMode::RestartAfter { crash_at, recover_at } = self.faults[i] else {
                continue;
            };
            if self.recovered[i] || self.deliveries[i] < crash_at || self.steps_done < recover_at {
                continue;
            }
            self.recover_process(i);
        }
    }

    fn recover_process(&mut self, i: usize) {
        self.recovered[i] = true;
        let mut sends = Vec::new();
        let n = self.n();
        let mut ctx =
            Context::new(ProcessId::new(i), n, self.now, &mut sends, &mut self.outputs[i]);
        self.nodes[i].on_recover(&mut ctx);
        self.enqueue(i, sends);
    }

    /// If the network drained while a crashed restartable process is still
    /// waiting for its `recover_at` step, fast-forward and restart it now —
    /// "eventually the operator brings the node back". Returns `true` if a
    /// recovery fired.
    fn force_pending_recovery(&mut self) -> bool {
        let due = (0..self.n()).find(|i| {
            matches!(self.faults[*i], FaultMode::RestartAfter { .. })
                && !self.recovered[*i]
                && self.is_silent(*i)
        });
        match due {
            Some(i) => {
                self.recover_process(i);
                true
            }
            None => false,
        }
    }

    fn sends_dropped(&self, i: usize) -> bool {
        matches!(self.faults[i], FaultMode::Mute) || self.is_silent(i)
    }

    fn enqueue(&mut self, from: usize, sends: Vec<(Dest, P::Msg)>) {
        let n = self.n();
        if self.sends_dropped(from) {
            self.stats.dropped += sends
                .iter()
                .map(|(d, _)| if matches!(d, Dest::All) { n as u64 } else { 1 })
                .sum::<u64>();
            return;
        }
        for (dest, msg) in sends {
            match dest {
                Dest::To(to) => {
                    self.stats.sent += 1;
                    self.pending.push(InFlight {
                        seq: self.seq,
                        from: ProcessId::new(from),
                        to,
                        sent_at: self.now,
                        msg,
                    });
                    self.seq += 1;
                }
                Dest::All => {
                    for to in 0..n {
                        self.stats.sent += 1;
                        self.pending.push(InFlight {
                            seq: self.seq,
                            from: ProcessId::new(from),
                            to: ProcessId::new(to),
                            sent_at: self.now,
                            msg: msg.clone(),
                        });
                        self.seq += 1;
                    }
                }
            }
        }
        self.stats.max_in_flight = self.stats.max_in_flight.max(self.pending.len());
    }

    /// Starts all correct processes (idempotent; called automatically by the
    /// first [`Simulation::step`] / [`Simulation::run`]).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.n() {
            if matches!(self.faults[i], FaultMode::CrashedFromStart) {
                continue;
            }
            let mut sends = Vec::new();
            let n = self.n();
            let mut ctx =
                Context::new(ProcessId::new(i), n, self.now, &mut sends, &mut self.outputs[i]);
            self.nodes[i].on_start(&mut ctx);
            self.enqueue(i, sends);
        }
    }

    /// Injects a client input into process `p` (e.g. `g-propose`,
    /// `aa-broadcast`).
    pub fn input(&mut self, p: ProcessId, input: P::Input) {
        self.start();
        let i = p.index();
        if self.is_silent(i) {
            return;
        }
        let mut sends = Vec::new();
        let n = self.n();
        let mut ctx = Context::new(p, n, self.now, &mut sends, &mut self.outputs[i]);
        self.nodes[i].on_input(input, &mut ctx);
        self.enqueue(i, sends);
    }

    /// Delivers one message chosen by the scheduler. Returns `false` if the
    /// scheduler starved (no deliverable message) and no process restart is
    /// pending.
    pub fn step(&mut self) -> bool {
        self.start();
        self.fire_due_recoveries();
        let Some(idx) = self.scheduler.next(&self.pending, self.now) else {
            // A drained network still wakes crashed-but-restartable
            // processes; their recovery sends usually refill it.
            return self.force_pending_recovery();
        };
        let m = self.pending.swap_remove(idx);
        self.steps_done += 1;
        self.now = self.scheduler.delivery_time(&m, self.now);
        let i = m.to.index();
        if self.is_silent(i) {
            self.stats.dropped += 1;
            return true;
        }
        self.deliveries[i] += 1;
        self.stats.delivered += 1;
        let mut sends = Vec::new();
        let n = self.n();
        let mut ctx = Context::new(m.to, n, self.now, &mut sends, &mut self.outputs[i]);
        self.nodes[i].on_message(m.from, m.msg, &mut ctx);
        self.enqueue(i, sends);
        true
    }

    /// Runs until quiescence or until `max_steps` deliveries, whichever comes
    /// first.
    pub fn run(&mut self, max_steps: u64) -> RunReport {
        self.start();
        let mut steps = 0;
        while steps < max_steps {
            if !self.step() {
                return RunReport { steps, quiescent: true };
            }
            steps += 1;
        }
        RunReport { steps, quiescent: !self.step_would_progress() }
    }

    fn step_would_progress(&mut self) -> bool {
        self.scheduler.next(&self.pending, self.now).is_some()
            || (0..self.n()).any(|i| {
                matches!(self.faults[i], FaultMode::RestartAfter { .. })
                    && !self.recovered[i]
                    && self.is_silent(i)
            })
    }

    /// Runs until `pred` holds (checked after every delivery) or the budget
    /// is exhausted; returns `true` if the predicate held.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        mut pred: impl FnMut(&Simulation<P, S>) -> bool,
    ) -> bool {
        self.start();
        if pred(self) {
            return true;
        }
        for _ in 0..max_steps {
            if !self.step() {
                return pred(self);
            }
            if pred(self) {
                return true;
            }
        }
        false
    }

    /// Delivers all still-pending messages in FIFO order, bypassing the
    /// scheduler — models "the delayed messages eventually arrive" after a
    /// starving adversary has achieved its goal.
    pub fn flush_starved(&mut self, max_steps: u64) -> RunReport {
        self.start();
        let mut steps = 0;
        while steps < max_steps {
            // Restartable processes recover during a flush exactly as they
            // do in `step`: on schedule, or forced once the bag drains.
            self.fire_due_recoveries();
            if self.pending.is_empty() && !self.force_pending_recovery() {
                break;
            }
            if self.pending.is_empty() {
                continue; // a recovery fired but sent nothing
            }
            let idx = self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, m)| m.seq)
                .map(|(i, _)| i)
                .expect("pending is non-empty");
            let m = self.pending.swap_remove(idx);
            self.now += 1;
            self.steps_done += 1;
            let i = m.to.index();
            if self.is_silent(i) {
                self.stats.dropped += 1;
            } else {
                self.deliveries[i] += 1;
                self.stats.delivered += 1;
                let mut sends = Vec::new();
                let n = self.n();
                let mut ctx = Context::new(m.to, n, self.now, &mut sends, &mut self.outputs[i]);
                self.nodes[i].on_message(m.from, m.msg, &mut ctx);
                self.enqueue(i, sends);
            }
            steps += 1;
        }
        RunReport { steps, quiescent: self.pending.is_empty() }
    }
}

impl<P: Protocol + core::fmt::Debug, S: core::fmt::Debug> core::fmt::Debug for Simulation<P, S>
where
    P::Msg: core::fmt::Debug,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.nodes.len())
            .field("now", &self.now)
            .field("in_flight", &self.pending.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler;

    /// Gossip: every process broadcasts `round` on start; on hearing a value
    /// it outputs `(from, value)`.
    #[derive(Debug)]
    struct Gossip;

    impl Protocol for Gossip {
        type Msg = u32;
        type Input = u32;
        type Output = (ProcessId, u32);

        fn on_start(&mut self, ctx: &mut Context<'_, u32, (ProcessId, u32)>) {
            ctx.broadcast(1);
        }

        fn on_input(&mut self, input: u32, ctx: &mut Context<'_, u32, (ProcessId, u32)>) {
            ctx.broadcast(input);
        }

        fn on_message(
            &mut self,
            from: ProcessId,
            msg: u32,
            ctx: &mut Context<'_, u32, (ProcessId, u32)>,
        ) {
            ctx.output((from, msg));
        }
    }

    #[test]
    fn all_broadcasts_delivered_under_fifo() {
        let mut sim = Simulation::new(vec![Gossip, Gossip, Gossip, Gossip], scheduler::Fifo);
        let report = sim.run(1_000);
        assert!(report.quiescent);
        assert_eq!(report.steps, 16, "4 broadcasts × 4 recipients");
        for i in 0..4 {
            assert_eq!(sim.outputs(ProcessId::new(i)).len(), 4);
        }
        assert_eq!(sim.stats().sent, 16);
        assert_eq!(sim.stats().delivered, 16);
    }

    #[test]
    fn deterministic_under_random_scheduler() {
        let run = |seed| {
            let mut sim =
                Simulation::new(vec![Gossip, Gossip, Gossip], scheduler::Random::new(seed));
            sim.run(1_000);
            (0..3).map(|i| sim.outputs(ProcessId::new(i)).to_vec()).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        // Different seeds usually give different delivery orders.
        // (Not asserted: could coincide; just ensure both complete.)
        let _ = run(6);
    }

    #[test]
    fn crashed_from_start_sends_and_receives_nothing() {
        let mut sim = Simulation::new(vec![Gossip, Gossip, Gossip], scheduler::Fifo)
            .with_fault(ProcessId::new(2), FaultMode::CrashedFromStart);
        sim.run(1_000);
        // p2 broadcast suppressed: others see 2 messages each.
        assert_eq!(sim.outputs(ProcessId::new(0)).len(), 2);
        assert_eq!(sim.outputs(ProcessId::new(2)).len(), 0);
        assert!(sim.stats().dropped > 0);
    }

    #[test]
    fn mute_receives_but_never_sends() {
        let mut sim = Simulation::new(vec![Gossip, Gossip, Gossip], scheduler::Fifo)
            .with_fault(ProcessId::new(1), FaultMode::Mute);
        sim.run(1_000);
        assert_eq!(sim.outputs(ProcessId::new(1)).len(), 2, "mute still receives");
        assert_eq!(sim.outputs(ProcessId::new(0)).len(), 2, "mute's broadcast dropped");
    }

    #[test]
    fn crash_after_k_deliveries() {
        let mut sim = Simulation::new(vec![Gossip, Gossip, Gossip], scheduler::Fifo)
            .with_fault(ProcessId::new(0), FaultMode::CrashAfter(1));
        sim.run(1_000);
        assert_eq!(sim.outputs(ProcessId::new(0)).len(), 1, "processed one delivery only");
        assert!(!sim.correct_processes().contains(ProcessId::new(0)));
        assert!(sim.correct_processes().contains(ProcessId::new(1)));
    }

    /// Gossips `1` on start, outputs everything heard, and broadcasts a
    /// recovery marker `99` when restarted.
    #[derive(Debug)]
    struct Restartable;

    impl Protocol for Restartable {
        type Msg = u32;
        type Input = u32;
        type Output = u32;

        fn on_start(&mut self, ctx: &mut Context<'_, u32, u32>) {
            ctx.broadcast(1);
        }

        fn on_message(&mut self, _from: ProcessId, msg: u32, ctx: &mut Context<'_, u32, u32>) {
            ctx.output(msg);
        }

        fn on_recover(&mut self, ctx: &mut Context<'_, u32, u32>) {
            ctx.broadcast(99);
        }
    }

    #[test]
    fn restart_after_crash_window_rejoins() {
        let mut sim = Simulation::new(vec![Restartable, Restartable, Restartable], scheduler::Fifo)
            .with_fault(ProcessId::new(0), FaultMode::RestartAfter { crash_at: 1, recover_at: 4 });
        let report = sim.run(1_000);
        assert!(report.quiescent);
        // p0 heard its own 1, crashed (dropping p1's 1), recovered at step 4
        // and then heard p2's 1 plus its own recovery marker.
        assert_eq!(sim.outputs(ProcessId::new(0)), &[1, 1, 99]);
        // The live processes saw all three 1s plus the marker.
        assert_eq!(sim.outputs(ProcessId::new(1)), &[1, 1, 1, 99]);
        assert!(sim.stats().dropped > 0, "down-window deliveries are dropped");
        assert!(sim.correct_processes().contains(ProcessId::new(0)), "recovered = correct");
    }

    #[test]
    fn recovery_is_forced_at_quiescence_if_network_drains_first() {
        // recover_at far beyond the traffic: the drained network must still
        // bring the process back ("the operator eventually restarts it").
        let mut sim = Simulation::new(vec![Restartable, Restartable, Restartable], scheduler::Fifo)
            .with_fault(
                ProcessId::new(2),
                FaultMode::RestartAfter { crash_at: 0, recover_at: 1_000_000 },
            );
        let report = sim.run(1_000);
        assert!(report.quiescent);
        let out2 = sim.outputs(ProcessId::new(2));
        assert_eq!(out2, &[99], "everything before the forced restart was dropped");
        assert!(sim.outputs(ProcessId::new(0)).contains(&99));
    }

    #[test]
    fn restart_is_deterministic() {
        let run = || {
            let mut sim = Simulation::new(
                vec![Restartable, Restartable, Restartable],
                scheduler::Random::new(7),
            )
            .with_fault(ProcessId::new(1), FaultMode::RestartAfter { crash_at: 1, recover_at: 5 });
            let report = sim.run(1_000);
            let outs: Vec<Vec<u32>> =
                (0..3).map(|i| sim.outputs(ProcessId::new(i)).to_vec()).collect();
            (report, outs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inputs_reach_the_network() {
        let mut sim = Simulation::new(vec![Gossip, Gossip], scheduler::Fifo);
        sim.run(100);
        sim.input(ProcessId::new(0), 42);
        sim.run(100);
        let out1 = sim.outputs(ProcessId::new(1));
        assert!(out1.contains(&(ProcessId::new(0), 42)));
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Simulation::new(vec![Gossip, Gossip, Gossip], scheduler::Fifo);
        let ok = sim.run_until(1_000, |s| s.outputs(ProcessId::new(1)).len() >= 2);
        assert!(ok);
        assert!(sim.in_flight() > 0, "stopped before quiescence");
    }

    #[test]
    fn filtered_scheduler_starves_then_flush_delivers() {
        let allow = |from: ProcessId, _to: ProcessId| from.index() != 0;
        let mut sim =
            Simulation::new(vec![Gossip, Gossip, Gossip], scheduler::Filtered::new(allow));
        let report = sim.run(1_000);
        assert!(report.quiescent);
        // p0's 3 broadcast copies starved.
        assert_eq!(sim.in_flight(), 3);
        let flush = sim.flush_starved(1_000);
        assert!(flush.quiescent);
        assert_eq!(sim.outputs(ProcessId::new(1)).len(), 3);
    }

    #[test]
    fn latency_scheduler_advances_clock_beyond_steps() {
        let mut sim =
            Simulation::new(vec![Gossip, Gossip], scheduler::RandomLatency::new(3, 10, 20));
        let report = sim.run(1_000);
        assert!(report.quiescent);
        assert!(sim.now() >= 10, "clock advanced by latency, got {}", sim.now());
    }

    #[test]
    fn take_outputs_drains() {
        let mut sim = Simulation::new(vec![Gossip, Gossip], scheduler::Fifo);
        sim.run(100);
        let got = sim.take_outputs(ProcessId::new(0));
        assert_eq!(got.len(), 2);
        assert!(sim.outputs(ProcessId::new(0)).is_empty());
    }
}
