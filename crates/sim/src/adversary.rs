//! Declarative adversary descriptions, buildable into [`Scheduler`]s.
//!
//! An [`Adversary`] is the data describing one scheduler strategy — the form
//! a sweep harness can enumerate, store in a scenario descriptor, print in a
//! failure report and rebuild bit-for-bit. [`Adversary::build`] turns the
//! description into a boxed [`Scheduler`] for a concrete message type.

use crate::scheduler::{self, Scheduler};
use asym_quorum::ProcessSet;

/// Which adversary schedules message delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Adversary {
    /// Send-order delivery.
    Fifo,
    /// Seeded uniformly random delivery order.
    Random(u64),
    /// Per-message random latency in `min..=max` simulated time units
    /// (measure latency with this one).
    Latency {
        /// RNG seed.
        seed: u64,
        /// Minimum per-message latency.
        min: u64,
        /// Maximum per-message latency.
        max: u64,
    },
    /// Messages to/from the victims are starved as long as possible.
    TargetedDelay(ProcessSet),
    /// Messages to/from the victims are starved **forever** (the run
    /// quiesces with them still in flight); pair with
    /// [`crate::Simulation::flush_starved`].
    Starve(ProcessSet),
    /// Cross-group messages are blocked until `heal_at` (delivery steps).
    Partition {
        /// The isolated groups.
        groups: Vec<ProcessSet>,
        /// Step at which the partition heals.
        heal_at: u64,
    },
}

impl Adversary {
    /// Builds the described scheduler for message type `M`. Deterministic:
    /// equal descriptions build schedulers producing identical executions.
    pub fn build<M: Clone + core::fmt::Debug + 'static>(&self) -> Box<dyn Scheduler<M>> {
        match self {
            Adversary::Fifo => Box::new(scheduler::Fifo),
            Adversary::Random(seed) => Box::new(scheduler::Random::new(*seed)),
            Adversary::Latency { seed, min, max } => {
                Box::new(scheduler::RandomLatency::new(*seed, *min, *max))
            }
            Adversary::TargetedDelay(victims) => {
                Box::new(scheduler::TargetedDelay::new(victims.clone()))
            }
            Adversary::Starve(victims) => Box::new(scheduler::Starve::new(victims.clone())),
            Adversary::Partition { groups, heal_at } => {
                Box::new(scheduler::Partition::new(groups.clone(), *heal_at))
            }
        }
    }
}

impl core::fmt::Display for Adversary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Adversary::Fifo => write!(f, "fifo"),
            Adversary::Random(seed) => write!(f, "random(seed={seed})"),
            Adversary::Latency { seed, min, max } => {
                write!(f, "latency(seed={seed},{min}..={max})")
            }
            Adversary::TargetedDelay(victims) => write!(f, "targeted-delay({victims})"),
            Adversary::Starve(victims) => write!(f, "starve({victims})"),
            Adversary::Partition { groups, heal_at } => {
                write!(f, "partition(heal_at={heal_at},groups=[")?;
                for (i, g) in groups.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, "])")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::InFlight;
    use asym_quorum::ProcessId;

    fn msg(seq: u64, from: usize, to: usize) -> InFlight<u8> {
        InFlight { seq, from: ProcessId::new(from), to: ProcessId::new(to), sent_at: 0, msg: 0 }
    }

    #[test]
    fn built_schedulers_are_deterministic_per_description() {
        let pending: Vec<_> = (0..8).map(|i| msg(i, 0, 1)).collect();
        for adv in [
            Adversary::Fifo,
            Adversary::Random(9),
            Adversary::Latency { seed: 9, min: 1, max: 20 },
            Adversary::TargetedDelay(ProcessSet::from_indices([0])),
            Adversary::Partition { groups: vec![ProcessSet::from_indices([0, 1])], heal_at: 5 },
        ] {
            let mut a = adv.build::<u8>();
            let mut b = adv.build::<u8>();
            let picks_a: Vec<_> = (0..20).map(|_| a.next(&pending, 0)).collect();
            let picks_b: Vec<_> = (0..20).map(|_| b.next(&pending, 0)).collect();
            assert_eq!(picks_a, picks_b, "{adv}");
        }
    }

    #[test]
    fn display_names_the_strategy() {
        assert_eq!(Adversary::Random(3).to_string(), "random(seed=3)");
        assert_eq!(
            Adversary::Latency { seed: 1, min: 2, max: 9 }.to_string(),
            "latency(seed=1,2..=9)"
        );
    }
}
