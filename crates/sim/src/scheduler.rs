//! Delivery schedulers: the asynchronous adversary.
//!
//! In the asynchronous model the adversary controls message delivery order
//! subject only to *eventual delivery between correct processes*. A
//! [`Scheduler`] realizes one adversary strategy: given the multiset of
//! in-flight messages it picks the next one to deliver (or `None` to starve
//! the remainder, which models "delayed beyond the end of the observed
//! execution" — legal in an asynchronous system as long as the run has
//! finished its observable work).
//!
//! All schedulers are deterministic given their seed, so every execution in
//! tests and benchmarks is replayable.

use asym_quorum::{ProcessId, ProcessSet};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::process::Step;

/// A message in flight: sent but not yet delivered.
#[derive(Clone, Debug)]
pub struct InFlight<M> {
    /// Monotone sequence number (send order).
    pub seq: u64,
    /// Authenticated sender.
    pub from: ProcessId,
    /// Recipient.
    pub to: ProcessId,
    /// Time at which the message was sent.
    pub sent_at: Step,
    /// Payload.
    pub msg: M,
}

/// An adversary strategy choosing the next message to deliver.
pub trait Scheduler<M> {
    /// Returns the index (into `pending`) of the next message to deliver, or
    /// `None` to leave all remaining messages undelivered for now.
    ///
    /// `now` is the current simulation time.
    fn next(&mut self, pending: &[InFlight<M>], now: Step) -> Option<usize>;

    /// Advisory simulated delivery time for the chosen message; the default
    /// advances the clock by one step. Latency-modelling schedulers override
    /// this to report the message's arrival time.
    fn delivery_time(&mut self, chosen: &InFlight<M>, now: Step) -> Step {
        let _ = chosen;
        now + 1
    }
}

impl<M, S: Scheduler<M> + ?Sized> Scheduler<M> for Box<S> {
    fn next(&mut self, pending: &[InFlight<M>], now: Step) -> Option<usize> {
        (**self).next(pending, now)
    }

    fn delivery_time(&mut self, chosen: &InFlight<M>, now: Step) -> Step {
        (**self).delivery_time(chosen, now)
    }
}

/// Delivers messages in send order — the synchronous-looking baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fifo;

impl<M> Scheduler<M> for Fifo {
    fn next(&mut self, pending: &[InFlight<M>], _now: Step) -> Option<usize> {
        pending.iter().enumerate().min_by_key(|(_, m)| m.seq).map(|(i, _)| i)
    }
}

/// Delivers a uniformly random pending message — the classic "oblivious"
/// asynchronous adversary. Deterministic given its seed.
#[derive(Clone, Debug)]
pub struct Random {
    rng: SmallRng,
}

impl Random {
    /// Creates a seeded random scheduler.
    pub fn new(seed: u64) -> Self {
        Random { rng: SmallRng::seed_from_u64(seed) }
    }
}

impl<M> Scheduler<M> for Random {
    fn next(&mut self, pending: &[InFlight<M>], _now: Step) -> Option<usize> {
        if pending.is_empty() {
            None
        } else {
            Some(self.rng.random_range(0..pending.len()))
        }
    }
}

/// Assigns every message an independent random latency in `min..=max` and
/// delivers in arrival-time order; the simulation clock jumps to each arrival
/// time. Use this scheduler for latency measurements in "simulated time
/// units" rather than delivery steps.
#[derive(Clone, Debug)]
pub struct RandomLatency {
    rng: SmallRng,
    min: Step,
    max: Step,
    /// Assigned arrival times, keyed by message `seq`; lazily populated.
    deadlines: std::collections::HashMap<u64, Step>,
}

impl RandomLatency {
    /// Creates a seeded latency scheduler with per-message latency drawn
    /// uniformly from `min..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `max == 0`.
    pub fn new(seed: u64, min: Step, max: Step) -> Self {
        assert!(min <= max && max > 0, "latency range must be non-empty and positive");
        RandomLatency {
            rng: SmallRng::seed_from_u64(seed),
            min,
            max,
            deadlines: Default::default(),
        }
    }

    fn deadline(&mut self, m: &InFlight<impl Sized>) -> Step {
        let (rng, min, max) = (&mut self.rng, self.min, self.max);
        *self.deadlines.entry(m.seq).or_insert_with(|| m.sent_at + rng.random_range(min..=max))
    }
}

impl<M> Scheduler<M> for RandomLatency {
    fn next(&mut self, pending: &[InFlight<M>], _now: Step) -> Option<usize> {
        let mut best: Option<(usize, Step, u64)> = None;
        for (i, m) in pending.iter().enumerate() {
            let d = self.deadline(m);
            let better = match best {
                None => true,
                Some((_, bd, bseq)) => (d, m.seq) < (bd, bseq),
            };
            if better {
                best = Some((i, d, m.seq));
            }
        }
        best.map(|(i, _, _)| i)
    }

    fn delivery_time(&mut self, chosen: &InFlight<M>, now: Step) -> Step {
        let d = self.deadline(chosen);
        self.deadlines.remove(&chosen.seq);
        d.max(now)
    }
}

/// Starves every message to or from the `victims` for as long as any other
/// message is pending, then delivers victim messages oldest-first — a
/// targeted-delay adversary that still guarantees eventual delivery.
#[derive(Clone, Debug)]
pub struct TargetedDelay {
    victims: ProcessSet,
}

impl TargetedDelay {
    /// Creates a targeted-delay adversary against the given victims.
    pub fn new(victims: ProcessSet) -> Self {
        TargetedDelay { victims }
    }

    fn targets(&self, m: &InFlight<impl Sized>) -> bool {
        self.victims.contains(m.from) || self.victims.contains(m.to)
    }
}

impl<M> Scheduler<M> for TargetedDelay {
    fn next(&mut self, pending: &[InFlight<M>], _now: Step) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .filter(|(_, m)| !self.targets(*m))
            .min_by_key(|(_, m)| m.seq)
            .or_else(|| pending.iter().enumerate().min_by_key(|(_, m)| m.seq))
            .map(|(i, _)| i)
    }
}

/// A network partition: until the heal, only messages within the same group
/// are deliverable. The partition heals at step `heal_at`, or **earlier** if
/// no intra-group message is left (simulated time only advances on
/// deliveries, and an asynchronous partition may delay messages only
/// finitely). Cross-group messages queue up — none are lost, modelling an
/// asynchronous partition rather than a crash.
#[derive(Clone, Debug)]
pub struct Partition {
    groups: Vec<ProcessSet>,
    heal_at: Step,
    healed: bool,
}

impl Partition {
    /// Creates a partition of the given groups healing at step `heal_at`
    /// (or earlier on intra-group quiescence). Processes not in any group
    /// are isolated until the heal.
    pub fn new(groups: Vec<ProcessSet>, heal_at: Step) -> Self {
        Partition { groups, heal_at, healed: false }
    }

    /// `true` once the partition has healed.
    pub fn healed(&self) -> bool {
        self.healed
    }

    fn same_group(&self, a: ProcessId, b: ProcessId) -> bool {
        self.groups.iter().any(|g| g.contains(a) && g.contains(b))
    }
}

impl<M> Scheduler<M> for Partition {
    fn next(&mut self, pending: &[InFlight<M>], now: Step) -> Option<usize> {
        if now >= self.heal_at {
            self.healed = true;
        }
        if !self.healed {
            let intra = pending
                .iter()
                .enumerate()
                .filter(|(_, m)| self.same_group(m.from, m.to))
                .min_by_key(|(_, m)| m.seq)
                .map(|(i, _)| i);
            if intra.is_some() {
                return intra;
            }
            if pending.is_empty() {
                return None;
            }
            // Both sides quiesced: the partition cannot starve any longer.
            self.healed = true;
        }
        pending.iter().enumerate().min_by_key(|(_, m)| m.seq).map(|(i, _)| i)
    }
}

/// Starves every message to or from the `victims` **forever**: unlike
/// [`TargetedDelay`] it never falls back to delivering victim traffic, so
/// the run quiesces with victim messages still pending — the Appendix-A
/// starvation shape as a plain-data adversary. Harnesses must follow up
/// with [`crate::Simulation::flush_starved`] ("the delayed messages
/// eventually arrive") before checking liveness properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Starve {
    victims: ProcessSet,
}

impl Starve {
    /// Creates a hard-starvation adversary against the given victims.
    pub fn new(victims: ProcessSet) -> Self {
        Starve { victims }
    }
}

impl<M> Scheduler<M> for Starve {
    fn next(&mut self, pending: &[InFlight<M>], _now: Step) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .filter(|(_, m)| !self.victims.contains(m.from) && !self.victims.contains(m.to))
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)
    }
}

/// Delivers (oldest-first) only messages satisfying a predicate; the rest are
/// starved until [`crate::Simulation::flush_starved`] or forever. This is the
/// scheduler used to realize the paper's Appendix-A execution, where every
/// process hears **exactly its own quorum** in each round.
pub struct Filtered<F> {
    allow: F,
}

impl<F> Filtered<F> {
    /// Creates a filtered scheduler from an `allow(from, to) -> bool`
    /// predicate.
    pub fn new(allow: F) -> Self {
        Filtered { allow }
    }
}

impl<M, F: FnMut(ProcessId, ProcessId) -> bool> Scheduler<M> for Filtered<F> {
    fn next(&mut self, pending: &[InFlight<M>], _now: Step) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .filter(|(_, m)| (self.allow)(m.from, m.to))
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)
    }
}

impl<F> core::fmt::Debug for Filtered<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("Filtered(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(seq: u64, from: usize, to: usize) -> InFlight<u8> {
        InFlight { seq, from: ProcessId::new(from), to: ProcessId::new(to), sent_at: 0, msg: 0 }
    }

    #[test]
    fn fifo_picks_lowest_seq() {
        let pending = vec![msg(5, 0, 1), msg(2, 1, 0), msg(9, 2, 0)];
        assert_eq!(Scheduler::<u8>::next(&mut Fifo, &pending, 0), Some(1));
        assert_eq!(Scheduler::<u8>::next(&mut Fifo, &[], 0), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let pending: Vec<_> = (0..10).map(|i| msg(i, 0, 1)).collect();
        let picks_a: Vec<_> = (0..20).map(|_| Random::new(7).next(&pending, 0).unwrap()).collect();
        let picks_b: Vec<_> = (0..20).map(|_| Random::new(7).next(&pending, 0).unwrap()).collect();
        assert_eq!(picks_a, picks_b);
    }

    #[test]
    fn random_covers_range() {
        let pending: Vec<_> = (0..5).map(|i| msg(i, 0, 1)).collect();
        let mut r = Random::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(Scheduler::<u8>::next(&mut r, &pending, 0).unwrap());
        }
        assert_eq!(seen.len(), 5, "all pending messages eventually pickable");
    }

    #[test]
    fn latency_scheduler_orders_by_deadline_and_advances_clock() {
        let mut s = RandomLatency::new(1, 10, 20);
        let pending = vec![msg(0, 0, 1), msg(1, 1, 0)];
        let i = s.next(&pending, 0).unwrap();
        let t = s.delivery_time(&pending[i], 0);
        assert!((10..=20).contains(&t));
        // Deterministic per seed.
        let mut s2 = RandomLatency::new(1, 10, 20);
        let i2 = s2.next(&pending, 0).unwrap();
        assert_eq!(i, i2);
    }

    #[test]
    fn targeted_delay_starves_victims_until_last() {
        let mut s = TargetedDelay::new(ProcessSet::from_indices([2]));
        let pending = vec![msg(0, 2, 1), msg(1, 0, 1), msg(2, 1, 2)];
        // Picks seq 1 (only non-victim message) first.
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 0), Some(1));
        // With only victim messages left, delivers oldest.
        let pending = vec![msg(0, 2, 1), msg(2, 1, 2)];
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 0), Some(0));
    }

    #[test]
    fn partition_prefers_intra_group_until_heal() {
        let g1 = ProcessSet::from_indices([0, 1]);
        let g2 = ProcessSet::from_indices([2, 3]);
        let mut s = Partition::new(vec![g1.clone(), g2.clone()], 100);
        let pending = vec![msg(0, 0, 2), msg(1, 0, 1)];
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 5), Some(1));
        assert!(!s.healed());
        // After the heal time, cross-group traffic flows (oldest first).
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 100), Some(0));
        assert!(s.healed());
    }

    #[test]
    fn partition_self_heals_on_intra_group_quiescence() {
        let g1 = ProcessSet::from_indices([0, 1]);
        let g2 = ProcessSet::from_indices([2, 3]);
        let mut s = Partition::new(vec![g1, g2], 1_000_000);
        // Only a cross-group message is pending: the partition cannot starve
        // it forever — it heals early instead of deadlocking the run.
        let pending = vec![msg(0, 0, 2)];
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 5), Some(0));
        assert!(s.healed());
        assert_eq!(Scheduler::<u8>::next(&mut s, &[], 6), None);
    }

    #[test]
    fn starve_never_delivers_victim_traffic() {
        let mut s = Starve::new(ProcessSet::from_indices([2]));
        let pending = vec![msg(0, 2, 1), msg(1, 0, 1), msg(2, 1, 2)];
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 0), Some(1));
        // Unlike TargetedDelay there is NO fallback: victim-only traffic
        // starves forever.
        let pending = vec![msg(0, 2, 1), msg(2, 1, 2)];
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 0), None);
    }

    #[test]
    fn filtered_starves_disallowed() {
        let allow_from_0 = |from: ProcessId, _to: ProcessId| from.index() == 0;
        let mut s = Filtered::new(allow_from_0);
        let pending = vec![msg(0, 1, 2), msg(1, 0, 2)];
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 0), Some(1));
        let pending = vec![msg(0, 1, 2)];
        assert_eq!(Scheduler::<u8>::next(&mut s, &pending, 0), None);
    }
}
