//! A threaded runtime: the same [`Protocol`] state machines, executed on one
//! OS thread per process with real (crossbeam) channels instead of the
//! deterministic event loop.
//!
//! The deterministic [`Simulation`](crate::Simulation) is the reference
//! executor — replayable, adversary-programmable. This runtime exists for a
//! different purpose: it subjects the protocols to *genuine* concurrency and
//! OS-scheduler nondeterminism, so safety properties (agreement, total
//! order) are exercised under schedules no seeded adversary enumerates.
//! Tests assert the same invariants on both executors.
//!
//! Termination: the runtime detects distributed quiescence with an in-flight
//! counter — every enqueued message increments it, and a handler decrements
//! it only *after* enqueueing its own sends, so the counter reaches zero
//! exactly when no message is in a channel or being processed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use asym_quorum::ProcessId;

use crate::process::{Context, Dest, Protocol, Step};

/// A message travelling between node threads.
struct Envelope<M> {
    from: ProcessId,
    msg: M,
}

/// Result of a threaded run for one process.
#[derive(Debug)]
pub struct NodeResult<P: Protocol> {
    /// The process's final state.
    pub protocol: P,
    /// Outputs in the order the process emitted them.
    pub outputs: Vec<P::Output>,
    /// Messages this node processed.
    pub delivered: u64,
}

/// Runs one protocol instance per OS thread until global quiescence, and
/// returns each node's final state and outputs.
///
/// `inputs[i]` is injected into process `i` before its message loop starts
/// (the threaded runtime has no mid-run injection; model client traffic as
/// start-time inputs or via protocol state).
///
/// # Panics
///
/// Panics if `processes` is empty or a node thread panics.
///
/// # Examples
///
/// ```
/// use asym_quorum::ProcessId;
/// use asym_sim::{threaded, Context, Protocol};
///
/// struct Ping;
/// impl Protocol for Ping {
///     type Msg = ();
///     type Input = ();
///     type Output = ProcessId;
///     fn on_start(&mut self, ctx: &mut Context<'_, (), ProcessId>) {
///         ctx.broadcast(());
///     }
///     fn on_message(&mut self, from: ProcessId, _m: (), ctx: &mut Context<'_, (), ProcessId>) {
///         ctx.output(from);
///     }
/// }
///
/// let results = threaded::run(vec![Ping, Ping, Ping], vec![vec![], vec![], vec![]]);
/// assert_eq!(results[0].outputs.len(), 3);
/// ```
pub fn run<P>(processes: Vec<P>, inputs: Vec<Vec<P::Input>>) -> Vec<NodeResult<P>>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Input: Send,
    P::Output: Send,
{
    assert!(!processes.is_empty(), "threaded runtime needs at least one process");
    assert_eq!(processes.len(), inputs.len(), "one input batch per process");
    let n = processes.len();

    let mut senders: Vec<Sender<Envelope<P::Msg>>> = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Envelope<P::Msg>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    // Pre-charge the counter with one "starting" token per node so no node
    // can observe quiescence before every peer has run its start phase —
    // regardless of OS scheduling.
    let in_flight = Arc::new(AtomicU64::new(n as u64));

    let mut handles = Vec::with_capacity(n);
    for (i, (mut protocol, input_batch)) in
        processes.into_iter().zip(inputs).enumerate().collect::<Vec<_>>()
    {
        let me = ProcessId::new(i);
        let senders = senders.clone();
        let rx = receivers[i].clone();
        let in_flight = Arc::clone(&in_flight);
        handles.push(std::thread::spawn(move || {
            let mut outputs: Vec<P::Output> = Vec::new();
            let mut delivered: u64 = 0;
            let mut now: Step = 0;

            let dispatch = |me: ProcessId,
                            sends: Vec<(Dest, P::Msg)>,
                            in_flight: &AtomicU64,
                            senders: &[Sender<Envelope<P::Msg>>]| {
                for (dest, msg) in sends {
                    match dest {
                        Dest::To(to) => {
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            senders[to.index()]
                                .send(Envelope { from: me, msg })
                                .expect("receiver alive until quiescence");
                        }
                        Dest::All => {
                            for (t, tx) in senders.iter().enumerate() {
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                let _ = t;
                                tx.send(Envelope { from: me, msg: msg.clone() })
                                    .expect("receiver alive until quiescence");
                            }
                        }
                    }
                }
            };

            // Start + inputs; the pre-charged token is released only after
            // the start-phase sends are enqueued (and counted).
            let mut sends = Vec::new();
            {
                let mut ctx = Context::new(me, n, now, &mut sends, &mut outputs);
                protocol.on_start(&mut ctx);
                for input in input_batch {
                    protocol.on_input(input, &mut ctx);
                }
            }
            dispatch(me, sends, &in_flight, &senders);
            in_flight.fetch_sub(1, Ordering::SeqCst);

            loop {
                match rx.recv_timeout(std::time::Duration::from_millis(1)) {
                    Ok(envelope) => {
                        delivered += 1;
                        now += 1;
                        let mut sends = Vec::new();
                        {
                            let mut ctx = Context::new(me, n, now, &mut sends, &mut outputs);
                            protocol.on_message(envelope.from, envelope.msg, &mut ctx);
                        }
                        // Enqueue children BEFORE decrementing: the counter
                        // stays positive while any causal descendant exists.
                        dispatch(me, sends, &in_flight, &senders);
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        if in_flight.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                    }
                }
            }
            NodeResult { protocol, outputs, delivered }
        }));
    }
    drop(senders);
    drop(receivers);

    handles.into_iter().map(|h| h.join().expect("node thread must not panic")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood: each process broadcasts `fanout` generations of messages.
    struct Flood {
        generations: u32,
        heard: Vec<(ProcessId, u32)>,
    }

    impl Protocol for Flood {
        type Msg = u32;
        type Input = ();
        type Output = usize;

        fn on_start(&mut self, ctx: &mut Context<'_, u32, usize>) {
            ctx.broadcast(0);
        }

        fn on_message(&mut self, from: ProcessId, gen: u32, ctx: &mut Context<'_, u32, usize>) {
            self.heard.push((from, gen));
            // Re-broadcast the next generation only for our own lineage to
            // bound the traffic: each delivery of gen g from p0 triggers one
            // (g+1) broadcast by everyone, up to `generations`.
            if gen < self.generations && from == ProcessId::new(0) {
                ctx.broadcast(gen + 1);
            }
            ctx.output(self.heard.len());
        }
    }

    #[test]
    fn quiescence_detection_terminates() {
        let n = 4;
        let procs: Vec<Flood> =
            (0..n).map(|_| Flood { generations: 3, heard: Vec::new() }).collect();
        let results = run(procs, vec![vec![]; n]);
        assert_eq!(results.len(), n);
        // Every node processed at least the n start broadcasts.
        for r in &results {
            assert!(r.delivered >= n as u64, "delivered {}", r.delivered);
        }
    }

    #[test]
    fn all_messages_delivered_exactly_once() {
        // One generation: everyone broadcasts once at start; every process
        // must hear exactly n messages of generation 0 and respond to p0's.
        let n = 6;
        let procs: Vec<Flood> =
            (0..n).map(|_| Flood { generations: 0, heard: Vec::new() }).collect();
        let results = run(procs, vec![vec![]; n]);
        for r in &results {
            let gen0 = r.protocol.heard.iter().filter(|(_, g)| *g == 0).count();
            assert_eq!(gen0, n, "each start broadcast heard exactly once");
        }
    }

    /// Echo counter used to verify input injection.
    struct Collect {
        seen: Vec<u64>,
    }

    impl Protocol for Collect {
        type Msg = u64;
        type Input = u64;
        type Output = u64;

        fn on_input(&mut self, input: u64, ctx: &mut Context<'_, u64, u64>) {
            ctx.broadcast(input);
        }

        fn on_message(&mut self, _from: ProcessId, v: u64, ctx: &mut Context<'_, u64, u64>) {
            self.seen.push(v);
            ctx.output(v);
        }
    }

    #[test]
    fn inputs_injected_before_loop() {
        let n = 3;
        let procs: Vec<Collect> = (0..n).map(|_| Collect { seen: Vec::new() }).collect();
        let inputs = vec![vec![10u64, 11], vec![20], vec![]];
        let results = run(procs, inputs);
        for r in &results {
            let mut seen = r.protocol.seen.clone();
            seen.sort_unstable();
            assert_eq!(seen, vec![10, 11, 20], "all inputs broadcast and heard");
        }
    }
}
