//! A deterministic discrete-event simulator for asynchronous message-passing
//! protocols — the execution substrate of the `asym-dag-rider` reproduction.
//!
//! The paper (*"DAG-based Consensus with Asymmetric Trust"*, PODC 2025)
//! assumes the standard asynchronous model: reliable authenticated
//! point-to-point links, delivery order controlled by an adversary. This
//! crate realizes that model exactly:
//!
//! * [`Protocol`] — event-driven state machines (`on_start`, `on_input`,
//!   `on_message`) emitting sends and outputs through a [`Context`];
//! * [`Simulation`] — the event loop: one protocol instance per process, a
//!   bag of in-flight messages, deterministic replayable executions;
//! * [`scheduler`] — adversary strategies: FIFO, seeded-random, random
//!   latency (for simulated-time measurements), targeted delay, partitions,
//!   and arbitrary predicate-filtered starvation (used to realize the paper's
//!   Appendix-A schedule);
//! * [`FaultMode`] — crash/omission fault injection at the network layer
//!   (Byzantine *behaviour* is modelled inside protocol types themselves);
//! * [`Adversary`] — declarative scheduler descriptions that sweep harnesses
//!   enumerate, print in failure reports, and rebuild deterministically.
//!
//! Executions are deterministic given seeds, so every test — including the
//! adversarial ones — replays bit-for-bit.
//!
//! # Example: three processes gossiping
//!
//! ```
//! use asym_quorum::ProcessId;
//! use asym_sim::{scheduler, Context, Protocol, Simulation};
//!
//! struct Hello;
//! impl Protocol for Hello {
//!     type Msg = &'static str;
//!     type Input = ();
//!     type Output = (ProcessId, &'static str);
//!     fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
//!         ctx.broadcast("hello");
//!     }
//!     fn on_message(
//!         &mut self,
//!         from: ProcessId,
//!         msg: Self::Msg,
//!         ctx: &mut Context<'_, Self::Msg, Self::Output>,
//!     ) {
//!         ctx.output((from, msg));
//!     }
//! }
//!
//! let mut sim = Simulation::new(vec![Hello, Hello, Hello], scheduler::Random::new(42));
//! assert!(sim.run(1_000).quiescent);
//! assert_eq!(sim.outputs(ProcessId::new(2)).len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod network;
mod process;
pub mod scheduler;
pub mod threaded;

pub use adversary::Adversary;
pub use network::{FaultMode, NetStats, RunReport, Simulation};
pub use process::{Context, Dest, Harness, Protocol, Step};
pub use scheduler::{InFlight, Scheduler};
