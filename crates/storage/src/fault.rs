//! Powerloss fault injection: a [`Storage`] wrapper that models what a
//! power failure leaves on disk.
//!
//! `MemStorage` tests tear *bytes*; real crashes damage storage along
//! different seams, all of which [`FaultyStorage`] reproduces
//! deterministically from a seed at the moment [`Storage::powerloss`] is
//! invoked (a recovering owner calls it once before replaying):
//!
//! * **torn final append** — the last surviving record keeps only a strict
//!   prefix of its framed bytes (the process died mid-`write`);
//! * **dropped unsynced suffix** — a run of trailing appends vanishes
//!   entirely (they were buffered, never flushed). The damage window is
//!   governed by a [`VolatilePolicy`]: either *everything* is volatile
//!   (storage-layer proptests) or records a correct process must have
//!   fsynced before acting on them serve as barriers the damage cannot
//!   cross;
//! * **snapshot rename lost** — the most recent
//!   [`Storage::write_snapshot`] never happened: the previous snapshot and
//!   the never-truncated log come back;
//! * **snapshot rename reordered** — the new snapshot persisted but the
//!   subsequent log truncation was lost, leaving snapshot and log
//!   overlapping (replay must be idempotent over the overlap).
//!
//! In every case the surviving log is a *prefix* of what was appended
//! (possibly re-extended by pre-snapshot history), so a correct replay
//! recovers a consistent earlier state or hard-errors — it never silently
//! diverges. The property tests in `tests/powerloss_properties.rs` pin
//! exactly that, over both the in-memory and the file backend.

use asym_quorum::ProcessId;

use crate::backend::{Storage, StorageError};
use crate::event::payload_is_volatile;
use crate::wal::RECORD_HEADER_BYTES;

/// Which records a powerloss may destroy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VolatilePolicy {
    /// Every appended record may be torn or dropped — the storage-layer
    /// adversary. Replay must still yield a consistent prefix or a hard
    /// error; higher layers may observe lost-but-externalized state.
    AllVolatile,
    /// Only records whose loss process `me` survives without observable
    /// divergence (see [`payload_is_volatile`]): decisions, deliveries and
    /// `me`'s own vertices act as fsync barriers the damage cannot cross —
    /// the discipline a correct process must implement anyway (fsync before
    /// externalizing an output or broadcasting an own vertex).
    FsyncBarriers {
        /// The process whose write-ahead log this is.
        me: ProcessId,
    },
}

impl VolatilePolicy {
    fn is_volatile(&self, payload: &[u8]) -> bool {
        match self {
            VolatilePolicy::AllVolatile => true,
            VolatilePolicy::FsyncBarriers { me } => payload_is_volatile(payload, *me),
        }
    }
}

/// A deterministic, seed-driven powerloss: which damage modes fire and how
/// deep they cut is derived from `seed` alone, so a damaged execution
/// replays bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PowerlossPlan {
    /// Drives every damage decision (splitmix64 stream).
    pub seed: u64,
    /// The records the damage may touch.
    pub policy: VolatilePolicy,
}

impl PowerlossPlan {
    /// A plan damaging anything (storage-layer proptests).
    pub fn all_volatile(seed: u64) -> Self {
        PowerlossPlan { seed, policy: VolatilePolicy::AllVolatile }
    }

    /// A plan respecting process `me`'s fsync barriers (scenario cells).
    pub fn fsync_barriers(seed: u64, me: ProcessId) -> Self {
        PowerlossPlan { seed, policy: VolatilePolicy::FsyncBarriers { me } }
    }
}

/// splitmix64: tiny, dependency-free, well-distributed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Shadow of the state a snapshot rename may revert to.
#[derive(Clone, Debug)]
struct SnapshotShadow {
    /// The snapshot area before the latest `write_snapshot` (`None` if
    /// there was none; reverting then writes an empty blob, which decodes
    /// to zero records).
    prev_snapshot: Option<Vec<u8>>,
    /// The log bytes at the instant of the latest `write_snapshot` — what
    /// a lost truncation resurrects.
    log_at_install: Vec<u8>,
}

/// A [`Storage`] wrapper that applies a [`PowerlossPlan`] when
/// [`Storage::powerloss`] fires (once; later crashes of an already-damaged
/// store change nothing). All other operations pass straight through.
#[derive(Clone, Debug)]
pub struct FaultyStorage<S> {
    inner: S,
    plan: PowerlossPlan,
    shadow: Option<SnapshotShadow>,
    fired: bool,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wraps `inner` so the next [`Storage::powerloss`] applies `plan`.
    pub fn new(inner: S, plan: PowerlossPlan) -> Self {
        FaultyStorage { inner, plan, shadow: None, fired: false }
    }

    /// The configured plan.
    pub fn plan(&self) -> PowerlossPlan {
        self.plan
    }

    /// `true` once the powerloss damage has been applied.
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The wrapped backend (test observability).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Byte offsets `(start, end)` of every *complete* frame in `log`
    /// (an existing torn tail is left alone — it is already damage).
    fn frames(log: &[u8]) -> Vec<(usize, usize)> {
        let mut frames = Vec::new();
        let mut offset = 0usize;
        while log.len() - offset >= RECORD_HEADER_BYTES {
            let len =
                u32::from_le_bytes(log[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            let end = offset + RECORD_HEADER_BYTES + len;
            if end > log.len() {
                break;
            }
            frames.push((offset, end));
            offset = end;
        }
        frames
    }

    fn apply_powerloss(&mut self) -> Result<(), StorageError> {
        let mut rng = Rng(self.plan.seed);
        // 1. The most recent snapshot rename may be lost or reordered.
        if let Some(shadow) = self.shadow.take() {
            match rng.next() % 4 {
                0 => {
                    // Rename lost: the pre-install snapshot returns and the
                    // log was never truncated. Appends that happened after
                    // the install survive at the tail.
                    let tail = self.inner.read_log()?;
                    let mut log = shadow.log_at_install;
                    log.extend_from_slice(&tail);
                    self.inner.write_snapshot(&shadow.prev_snapshot.unwrap_or_default())?;
                    self.inner.replace_log(&log)?;
                }
                1 => {
                    // Rename reordered: the new snapshot persisted but the
                    // log truncation was lost — snapshot and log overlap.
                    let tail = self.inner.read_log()?;
                    let mut log = shadow.log_at_install;
                    log.extend_from_slice(&tail);
                    self.inner.replace_log(&log)?;
                }
                _ => {}
            }
        }
        // 2. A trailing run of volatile records is dropped (the unsynced
        //    buffer), and the write that died mid-flight may leave a torn
        //    prefix of the first dropped frame.
        let log = self.inner.read_log()?;
        let frames = Self::frames(&log);
        let window = frames
            .iter()
            .rev()
            .take_while(|(s, e)| self.plan.policy.is_volatile(&log[s + RECORD_HEADER_BYTES..*e]))
            .count();
        let dropped = if window == 0 { 0 } else { (rng.next() as usize) % (window + 1) };
        if dropped > 0 {
            let (first_start, first_end) = frames[frames.len() - dropped];
            let mut new_log = log[..first_start].to_vec();
            if rng.next() % 2 == 0 {
                let frame = &log[first_start..first_end];
                let torn = 1 + (rng.next() as usize) % (frame.len() - 1);
                new_log.extend_from_slice(&frame[..torn]);
            }
            self.inner.replace_log(&new_log)?;
        }
        Ok(())
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn append_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner.append_log(bytes)
    }

    fn read_log(&self) -> Result<Vec<u8>, StorageError> {
        self.inner.read_log()
    }

    fn replace_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.inner.replace_log(bytes)
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        // Capture the revert shadow *before* the rename happens.
        self.shadow = Some(SnapshotShadow {
            prev_snapshot: self.inner.read_snapshot()?,
            log_at_install: self.inner.read_log()?,
        });
        self.inner.write_snapshot(bytes)
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError> {
        self.inner.read_snapshot()
    }

    fn powerloss(&mut self) -> Result<(), StorageError> {
        if self.fired {
            return Ok(());
        }
        self.fired = true;
        self.apply_powerloss()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStorage;
    use crate::wal::{frame_record, Wal};

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        frame_record(payload, &mut out);
        out
    }

    #[test]
    fn powerloss_is_deterministic_per_seed() {
        let build = |seed| {
            let mut s = FaultyStorage::new(MemStorage::new(), PowerlossPlan::all_volatile(seed));
            for i in 0u8..6 {
                s.append_log(&framed(&[i; 5])).unwrap();
            }
            s.powerloss().unwrap();
            s.read_log().unwrap()
        };
        assert_eq!(build(7), build(7), "same seed, same damage");
        let distinct: std::collections::HashSet<Vec<u8>> = (0..32).map(build).collect();
        assert!(distinct.len() > 1, "seeds must actually vary the damage");
    }

    #[test]
    fn all_volatile_drop_leaves_a_prefix() {
        // For every seed, after powerloss the surviving complete records
        // are a prefix of what was appended.
        let payloads: Vec<Vec<u8>> = (0u8..7).map(|i| vec![i; 3 + i as usize]).collect();
        for seed in 0..64u64 {
            let mut wal =
                Wal::new(FaultyStorage::new(MemStorage::new(), PowerlossPlan::all_volatile(seed)));
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.backend_mut().powerloss().unwrap();
            let contents = wal.read().unwrap();
            assert!(contents.log.len() <= payloads.len(), "seed {seed}");
            for (i, rec) in contents.log.iter().enumerate() {
                assert_eq!(rec, &payloads[i], "seed {seed}: record {i} is not a prefix match");
            }
        }
    }

    #[test]
    fn second_powerloss_is_a_no_op() {
        let mut s = FaultyStorage::new(MemStorage::new(), PowerlossPlan::all_volatile(3));
        s.append_log(&framed(b"a")).unwrap();
        s.append_log(&framed(b"b")).unwrap();
        s.powerloss().unwrap();
        let after_first = s.read_log().unwrap();
        s.powerloss().unwrap();
        assert_eq!(s.read_log().unwrap(), after_first);
        assert!(s.fired());
    }

    #[test]
    fn snapshot_rename_faults_revert_or_overlap() {
        // Find seeds exercising both rename-fault arms and verify the
        // resulting (snapshot, log) pair is one of the three legal states.
        let mut seen_lost = false;
        let mut seen_reordered = false;
        for seed in 0..64u64 {
            let mut wal =
                Wal::new(FaultyStorage::new(MemStorage::new(), PowerlossPlan::all_volatile(seed)))
                    .with_snapshot_every(0);
            wal.append(b"old-1").unwrap();
            wal.append(b"old-2").unwrap();
            wal.install_snapshot(&[b"snap"]).unwrap();
            wal.append(b"new-1").unwrap();
            wal.backend_mut().powerloss().unwrap();
            let contents = wal.read().unwrap();
            match (contents.snapshot.len(), contents.log.first().map(Vec::as_slice)) {
                // Rename lost: empty snapshot, full old log back.
                (0, first) => {
                    seen_lost = true;
                    if let Some(first) = first {
                        assert_eq!(first, b"old-1", "seed {seed}");
                    }
                }
                // Rename survived; the log either overlaps (reordered) or
                // holds only post-snapshot appends (no fault).
                (1, Some(first)) => {
                    assert_eq!(contents.snapshot[0], b"snap", "seed {seed}");
                    if first == b"old-1" {
                        seen_reordered = true;
                    } else {
                        assert_eq!(first, b"new-1", "seed {seed}");
                    }
                }
                (1, None) => assert_eq!(contents.snapshot[0], b"snap", "seed {seed}"),
                other => panic!("seed {seed}: impossible state {other:?}"),
            }
        }
        assert!(seen_lost, "no seed exercised the rename-lost arm");
        assert!(seen_reordered, "no seed exercised the rename-reordered arm");
    }

    #[test]
    fn fsync_barriers_stop_the_damage() {
        use crate::event::DagEvent;
        use asym_quorum::ProcessId;
        // Log: [other-vertex][DELIVERED][confirmed][confirmed] — the
        // delivered record is a barrier, so at most the two trailing
        // confirms may be damaged, for every seed.
        let me = ProcessId::new(1);
        let other = DagEvent::VertexInserted(asym_dag::Vertex::new(
            ProcessId::new(0),
            1,
            vec![1u8],
            asym_quorum::ProcessSet::from_indices([0, 1, 2]),
            vec![],
        ));
        let delivered = DagEvent::<Vec<u8>>::BlockDelivered {
            id: asym_dag::VertexId::new(1, ProcessId::new(0)),
            wave: 1,
        };
        let confirms =
            [DagEvent::<Vec<u8>>::WaveConfirmed { wave: 1 }, DagEvent::WaveConfirmed { wave: 2 }];
        for seed in 0..64u64 {
            let mut wal = Wal::new(FaultyStorage::new(
                MemStorage::new(),
                PowerlossPlan::fsync_barriers(seed, me),
            ));
            wal.append(&other.encode()).unwrap();
            wal.append(&delivered.encode()).unwrap();
            for c in &confirms {
                wal.append(&c.encode()).unwrap();
            }
            wal.backend_mut().powerloss().unwrap();
            let contents = wal.read().unwrap();
            assert!(contents.log.len() >= 2, "seed {seed}: damage crossed a barrier");
            assert_eq!(contents.log[0], other.encode(), "seed {seed}");
            assert_eq!(contents.log[1], delivered.encode(), "seed {seed}");
        }
    }
}
