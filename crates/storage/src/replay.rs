//! The typed event log and the recovery protocol's first half: replaying a
//! WAL back into DAG-consensus state.
//!
//! [`EventLog`] is the handle a running process holds: it appends
//! [`DagEvent`]s, suggests when to compact, and installs snapshots (which
//! are themselves just compacted event sequences — one codec, one replay
//! path). [`RecoveredState::replay`] is what a restarted process calls: it
//! reads snapshot + log, drops a torn tail, rejects corruption, and folds
//! the surviving events into the DAG, the delivered set, the commit log and
//! the confirmed-wave set. Replay is idempotent (duplicate events are
//! skipped), so a crash between "write snapshot" and "truncate log" still
//! recovers.

use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;

use asym_dag::{DagError, DagStore, Round, Vertex, VertexId, WaveId};
use asym_quorum::ProcessId;

use crate::backend::{Storage, StorageError};
use crate::event::{BlockCodec, DagEvent};
use crate::wal::{Wal, WalStats};

/// A write-ahead log of [`DagEvent`]s over any [`Storage`] backend.
///
/// # Examples
///
/// ```
/// use asym_quorum::ProcessId;
/// use asym_storage::{DagEvent, EventLog, MemStorage};
///
/// let mut log: EventLog<Vec<u8>, MemStorage> = EventLog::new(MemStorage::new());
/// log.append(&DagEvent::WaveConfirmed { wave: 1 })?;
/// let state = log.replay(4, ProcessId::new(0), Vec::new())?;
/// assert!(state.confirmed_waves.contains(&1));
/// # Ok::<(), asym_storage::StorageError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EventLog<B, S> {
    wal: Wal<S>,
    _block: PhantomData<fn() -> B>,
}

impl<B: BlockCodec + Clone, S: Storage> EventLog<B, S> {
    /// Wraps a backend (default snapshot cadence).
    pub fn new(backend: S) -> Self {
        EventLog { wal: Wal::new(backend), _block: PhantomData }
    }

    /// Overrides the snapshot cadence (`0` disables suggestions).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.wal = self.wal.with_snapshot_every(every);
        self
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the backend rejects the write.
    pub fn append(&mut self, event: &DagEvent<B>) -> Result<(), StorageError> {
        self.wal.append(&event.encode())
    }

    /// `true` once enough events accumulated that the owner should compact
    /// its full state into [`EventLog::install_snapshot`].
    pub fn should_snapshot(&self) -> bool {
        self.wal.should_snapshot()
    }

    /// Installs a snapshot: `events` must be a compacted encoding of the
    /// owner's *entire* current state, because the log is truncated.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the backend rejects the writes.
    pub fn install_snapshot(&mut self, events: &[DagEvent<B>]) -> Result<(), StorageError> {
        let encoded: Vec<Vec<u8>> = events.iter().map(DagEvent::encode).collect();
        self.wal.install_snapshot(&encoded)
    }

    /// Decodes every persisted event, snapshot first, in append order.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] on checksum mismatch, torn snapshot, or a
    /// checksummed-valid record that does not decode as an event.
    pub fn events(&self) -> Result<ReadEvents<B>, StorageError> {
        let contents = self.wal.read()?;
        let mut events = Vec::with_capacity(contents.len());
        for (i, record) in contents.all_records().enumerate() {
            events.push(DagEvent::decode(record).ok_or_else(|| StorageError::Corrupt {
                offset: i,
                detail: "checksummed record is not a valid DagEvent".into(),
            })?);
        }
        Ok(ReadEvents {
            from_snapshot: contents.snapshot.len(),
            torn_tail_bytes: contents.torn_tail_bytes,
            events,
        })
    }

    /// Replays the log into recovered state (see [`RecoveredState::replay`]).
    ///
    /// # Errors
    ///
    /// Propagates corruption and I/O errors from [`EventLog::events`].
    pub fn replay(
        &self,
        n: usize,
        me: ProcessId,
        genesis: B,
    ) -> Result<RecoveredState<B>, StorageError> {
        let read = self.events()?;
        RecoveredState::replay(&read, n, me, genesis)
    }

    /// WAL activity counters.
    pub fn stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Size of every snapshot installed through this handle, in order.
    pub fn snapshot_sizes(&self) -> &[u64] {
        self.wal.snapshot_sizes()
    }

    /// Applies the backend's modelled powerloss damage — a no-op for the
    /// durable backends, the injection point for
    /// [`FaultyStorage`](crate::FaultyStorage). A recovering owner calls
    /// this once before replaying.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if applying the modelled damage itself fails.
    pub fn powerloss(&mut self) -> Result<(), StorageError> {
        self.wal.backend_mut().powerloss()
    }

    /// Truncates a torn final record off the log (see
    /// [`Wal::repair_torn_tail`]) — mandatory before a recovered owner
    /// appends again.
    ///
    /// # Errors
    ///
    /// Propagates corruption and I/O errors from the repair.
    pub fn repair_torn_tail(&mut self) -> Result<usize, StorageError> {
        self.wal.repair_torn_tail()
    }

    /// The backend (test hooks: truncation, corruption).
    pub fn backend_mut(&mut self) -> &mut S {
        self.wal.backend_mut()
    }

    /// The backend, read-only.
    pub fn backend(&self) -> &S {
        self.wal.backend()
    }
}

/// Every decoded event plus provenance counters.
#[derive(Clone, Debug)]
pub struct ReadEvents<B> {
    /// The events, snapshot records first, then the log tail.
    pub events: Vec<DagEvent<B>>,
    /// How many of them came from the snapshot area.
    pub from_snapshot: usize,
    /// Torn bytes dropped from the end of the log.
    pub torn_tail_bytes: usize,
}

/// Consensus state rebuilt from a WAL — the data a restarted process needs
/// to rejoin without violating safety.
#[derive(Clone, Debug)]
pub struct RecoveredState<B> {
    /// The local DAG, rebuilt vertex by vertex.
    pub dag: DagStore<B>,
    /// The highest round in which `me` created a vertex (the round counter
    /// to resume from).
    pub own_round: Round,
    /// Every vertex already atomically delivered — the set that prevents
    /// double delivery across the restart.
    pub delivered: BTreeSet<VertexId>,
    /// For each delivered vertex, the wave whose commit ordered it — the
    /// per-wave grouping delivered-state transfer segments ship. `0` only
    /// for deliveries recorded before wave tags were persisted (none in a
    /// log written by this version).
    pub delivered_waves: BTreeMap<VertexId, WaveId>,
    /// Block payloads of delivered vertices *absent from the DAG* (pruned
    /// after delivery, or installed via delivered-state transfer without
    /// ever receiving the vertex) — the transferable residue this process
    /// can still serve to deep laggards.
    pub delivered_blocks: BTreeMap<VertexId, B>,
    /// The commit log of `(wave, leader)` pairs, in commit order.
    pub commit_log: Vec<(WaveId, VertexId)>,
    /// The last decided wave.
    pub decided_wave: WaveId,
    /// Waves whose CONFIRM quorum (`tReady`) had been observed.
    pub confirmed_waves: BTreeSet<WaveId>,
    /// The pruning floor inherited from the snapshot: delivered vertices in
    /// rounds `<= pruned_round` may be absent from `dag` (they were
    /// garbage-collected after delivery). `0` = nothing pruned.
    pub pruned_round: Round,
    /// Total events folded in.
    pub events_total: usize,
    /// Events that came from the snapshot area.
    pub events_from_snapshot: usize,
    /// Torn bytes dropped from the log tail.
    pub torn_tail_bytes: usize,
}

impl<B: BlockCodec + Clone> RecoveredState<B> {
    /// Folds decoded events into recovered state.
    ///
    /// Idempotent per event: duplicate vertex inserts, deliveries, confirms
    /// and already-decided waves are skipped, so snapshot/log overlap after
    /// a mid-compaction crash is harmless.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] if a vertex event references a parent that
    /// no prior event inserted — an append-order violation that a correct
    /// process can never have written.
    pub fn replay(
        read: &ReadEvents<B>,
        n: usize,
        me: ProcessId,
        genesis: B,
    ) -> Result<Self, StorageError> {
        let mut state = RecoveredState {
            dag: DagStore::with_genesis(n, genesis),
            own_round: 0,
            delivered: BTreeSet::new(),
            delivered_waves: BTreeMap::new(),
            delivered_blocks: BTreeMap::new(),
            commit_log: Vec::new(),
            decided_wave: 0,
            confirmed_waves: BTreeSet::new(),
            pruned_round: 0,
            events_total: read.events.len(),
            events_from_snapshot: read.from_snapshot,
            torn_tail_bytes: read.torn_tail_bytes,
        };
        // Pre-pass: reconstruct the pruned set. An id the log *delivers*
        // but never *inserts* was garbage-collected after delivery — its
        // children must still insert, and only those exact ids may be
        // excused (a round-based floor would also excuse vertices this
        // process simply never received).
        {
            let mut inserted = BTreeSet::new();
            let mut delivered_ids = BTreeSet::new();
            for event in &read.events {
                match event {
                    DagEvent::VertexInserted(v) => {
                        inserted.insert(v.id());
                    }
                    DagEvent::BlockDelivered { id, .. } => {
                        delivered_ids.insert(*id);
                    }
                    _ => {}
                }
            }
            for id in delivered_ids.difference(&inserted) {
                if id.round > 0 {
                    state.dag.note_pruned(*id);
                }
            }
        }
        for (i, event) in read.events.iter().enumerate() {
            match event {
                DagEvent::VertexInserted(v) => {
                    if v.round() == 0 {
                        continue; // genesis is hard-coded, never logged
                    }
                    match state.dag.insert(v.clone()) {
                        Ok(()) => {
                            if v.source() == me {
                                state.own_round = state.own_round.max(v.round());
                            }
                        }
                        Err(DagError::Duplicate(_)) => {}
                        Err(e) => {
                            return Err(StorageError::Corrupt {
                                offset: i,
                                detail: format!("log not replayable in order: {e}"),
                            })
                        }
                    }
                }
                DagEvent::WaveConfirmed { wave } => {
                    state.confirmed_waves.insert(*wave);
                }
                DagEvent::WaveDecided { wave, leader } => {
                    if *wave > state.decided_wave
                        && !state.commit_log.iter().any(|(w, _)| w == wave)
                    {
                        state.commit_log.push((*wave, *leader));
                    }
                    state.decided_wave = state.decided_wave.max(*wave);
                }
                DagEvent::BlockDelivered { id, wave } => {
                    state.delivered.insert(*id);
                    // Keep the strongest wave tag seen (snapshot/log overlap
                    // after a mid-compaction crash may record both).
                    let tag = state.delivered_waves.entry(*id).or_insert(*wave);
                    if *tag == 0 {
                        *tag = *wave;
                    }
                }
                DagEvent::Pruned { up_to_round } => {
                    // Floor metadata (the pruned *ids* were reconstructed
                    // in the pre-pass above).
                    state.dag.set_pruned_floor(*up_to_round);
                }
                DagEvent::DeliveredBlock { id, block } => {
                    state.delivered_blocks.insert(*id, block.clone());
                }
            }
        }
        state.pruned_round = state.dag.pruned_floor();
        // A pruned own prefix must never shrink the round counter: reusing
        // a round number after recovery would be honest equivocation. The
        // pruning policy only drops rounds strictly below the decided
        // wave's span, so retained own vertices normally dominate; the max
        // is the defensive backstop.
        state.own_round = state.own_round.max(state.pruned_round);
        Ok(state)
    }

    /// Compacts this state back into the minimal event sequence that
    /// replays to it — what [`EventLog::install_snapshot`] persists.
    ///
    /// Vertices are emitted in `(round, source)` order (parents always
    /// precede children), then confirmed waves, then the commit log in
    /// order, then the delivered set. A state recovered from a pruned
    /// snapshot keeps its [`DagEvent::Pruned`] marker (the DAG carries the
    /// floor), so re-compacting never silently promises vertices the DAG no
    /// longer holds.
    pub fn to_snapshot_events(&self) -> Vec<DagEvent<B>> {
        snapshot_events(
            &self.dag,
            self.confirmed_waves.iter().copied(),
            &self.commit_log,
            self.delivered
                .iter()
                .map(|id| (*id, self.delivered_waves.get(id).copied().unwrap_or(0))),
            self.delivered_blocks.iter().map(|(id, b)| (*id, b.clone())),
        )
    }

    /// Garbage-collects the delivered prefix: drops every *delivered*
    /// vertex in rounds `<= up_to_round` from the DAG (retaining each
    /// pruned vertex's block in [`RecoveredState::delivered_blocks`], so
    /// the delivered prefix stays transferable as certified outputs) and
    /// ratchets the pruning floor. The delivered set, commit log and
    /// confirmed waves are untouched — they are what keeps re-delivery
    /// impossible — so replay of a subsequently compacted snapshot
    /// reproduces exactly this state.
    /// Undelivered old vertices are retained: they may still enter a later
    /// leader's causal history via weak edges (and every path to an
    /// undelivered vertex runs through undelivered vertices only — a
    /// delivered intermediate would have delivered its whole ancestry —
    /// so pruning the delivered set can never hide one).
    pub fn prune_delivered(&mut self, up_to_round: Round) {
        for v in prune_dag(&mut self.dag, &self.delivered, up_to_round) {
            self.delivered_blocks.insert(v.id(), v.into_block());
        }
        self.pruned_round = self.dag.pruned_floor();
    }
}

/// Drops every *delivered* vertex in rounds `<= up_to_round` from `dag`,
/// recording each pruned identity — the in-place half of WAL pruning,
/// shared by [`RecoveredState::prune_delivered`] and live snapshot
/// compaction. Undelivered old vertices are untouched. Returns the pruned
/// vertices so the caller can harvest their blocks into a transferable
/// delivered-state store (dropping them entirely would make the delivered
/// prefix unservable to deep laggards).
pub fn prune_dag<B>(
    dag: &mut DagStore<B>,
    delivered: &BTreeSet<VertexId>,
    up_to_round: Round,
) -> Vec<Vertex<B>> {
    if up_to_round == 0 {
        return Vec::new();
    }
    let prunable: Vec<VertexId> = (1..=up_to_round.min(dag.max_round().unwrap_or(0)))
        .flat_map(|r| dag.vertices_in_round(r).map(|v| v.id()).collect::<Vec<_>>())
        .filter(|id| delivered.contains(id))
        .collect();
    let mut pruned = Vec::with_capacity(prunable.len());
    for id in prunable {
        pruned.extend(dag.prune(id));
    }
    dag.set_pruned_floor(up_to_round);
    pruned
}

/// Compacts consensus state into the canonical snapshot event sequence —
/// the single definition of the snapshot ordering contract, shared by
/// [`RecoveredState::to_snapshot_events`] and by live processes that
/// compact without materializing a `RecoveredState`. A pruned DAG
/// (non-zero [`DagStore::pruned_floor`]) leads with its
/// [`DagEvent::Pruned`] marker; then vertices in `(round, source)` order
/// (parents always precede children), then the confirmed waves and the
/// commit log in order, then the delivered set (sorted, each entry tagged
/// with the wave whose commit ordered it — the grouping delivered-state
/// transfer serves), then the transferable block residue
/// ([`DagEvent::DeliveredBlock`], sorted) of delivered vertices absent
/// from the DAG.
pub fn snapshot_events<B: Clone>(
    dag: &DagStore<B>,
    confirmed_waves: impl IntoIterator<Item = WaveId>,
    commit_log: &[(WaveId, VertexId)],
    delivered: impl IntoIterator<Item = (VertexId, WaveId)>,
    delivered_blocks: impl IntoIterator<Item = (VertexId, B)>,
) -> Vec<DagEvent<B>> {
    let mut events = Vec::new();
    if dag.pruned_floor() > 0 {
        events.push(DagEvent::Pruned { up_to_round: dag.pruned_floor() });
    }
    for r in 1..=dag.max_round().unwrap_or(0) {
        for v in dag.vertices_in_round(r) {
            events.push(DagEvent::VertexInserted(v.clone()));
        }
    }
    let mut confirmed: Vec<WaveId> = confirmed_waves.into_iter().collect();
    confirmed.sort_unstable();
    for wave in confirmed {
        events.push(DagEvent::WaveConfirmed { wave });
    }
    for (wave, leader) in commit_log {
        events.push(DagEvent::WaveDecided { wave: *wave, leader: *leader });
    }
    let mut delivered: Vec<(VertexId, WaveId)> = delivered.into_iter().collect();
    delivered.sort_unstable_by_key(|(id, _)| *id);
    for (id, wave) in delivered {
        events.push(DagEvent::BlockDelivered { id, wave });
    }
    // The residue only covers vertices the DAG no longer (or never) held —
    // blocks of stored vertices ride along inside VertexInserted.
    let mut residue: Vec<(VertexId, B)> =
        delivered_blocks.into_iter().filter(|(id, _)| !dag.contains(*id)).collect();
    residue.sort_unstable_by_key(|(id, _)| *id);
    for (id, block) in residue {
        events.push(DagEvent::DeliveredBlock { id, block });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStorage;
    use asym_dag::Vertex;
    use asym_quorum::ProcessSet;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type Log = EventLog<Vec<u8>, MemStorage>;

    /// Logs a full 4-process DAG of `rounds` rounds plus wave bookkeeping.
    fn populated_log(rounds: u64) -> Log {
        let mut log = Log::new(MemStorage::new()).with_snapshot_every(0);
        for r in 1..=rounds {
            for i in 0..4 {
                log.append(&DagEvent::VertexInserted(Vertex::new(
                    pid(i),
                    r,
                    vec![r as u8, i as u8],
                    ProcessSet::full(4),
                    vec![],
                )))
                .unwrap();
            }
        }
        log.append(&DagEvent::WaveConfirmed { wave: 1 }).unwrap();
        log.append(&DagEvent::WaveDecided { wave: 1, leader: VertexId::new(1, pid(2)) }).unwrap();
        log.append(&DagEvent::BlockDelivered { id: VertexId::new(1, pid(2)), wave: 1 }).unwrap();
        log
    }

    #[test]
    fn replay_rebuilds_dag_and_bookkeeping() {
        let log = populated_log(4);
        let state = log.replay(4, pid(1), Vec::new()).unwrap();
        assert_eq!(state.dag.len(), 4 + 16, "genesis + 4 rounds");
        assert_eq!(state.own_round, 4);
        assert_eq!(state.decided_wave, 1);
        assert_eq!(state.commit_log, vec![(1, VertexId::new(1, pid(2)))]);
        assert!(state.delivered.contains(&VertexId::new(1, pid(2))));
        assert_eq!(state.confirmed_waves, BTreeSet::from([1]));
        assert_eq!(state.events_from_snapshot, 0);
        assert_eq!(state.torn_tail_bytes, 0);
    }

    #[test]
    fn snapshot_compaction_replays_to_the_same_state() {
        let log = populated_log(8);
        let state = log.replay(4, pid(0), Vec::new()).unwrap();

        let mut compacted = Log::new(MemStorage::new());
        compacted.install_snapshot(&state.to_snapshot_events()).unwrap();
        // New activity lands in the log tail after the snapshot.
        compacted
            .append(&DagEvent::VertexInserted(Vertex::new(
                pid(0),
                9,
                vec![9],
                ProcessSet::full(4),
                vec![],
            )))
            .unwrap();
        let re = compacted.replay(4, pid(0), Vec::new()).unwrap();
        assert_eq!(re.dag.len(), state.dag.len() + 1);
        assert_eq!(re.own_round, 9);
        assert_eq!(re.commit_log, state.commit_log);
        assert_eq!(re.delivered, state.delivered);
        assert_eq!(re.confirmed_waves, state.confirmed_waves);
        assert!(re.events_from_snapshot > 0);
    }

    #[test]
    fn replay_is_idempotent_over_snapshot_log_overlap() {
        // Crash between snapshot write and log truncation: the log still
        // holds events the snapshot already covers.
        let log = populated_log(4);
        let state = log.replay(4, pid(0), Vec::new()).unwrap();
        let mut overlapped = log.clone();
        // Install the snapshot but resurrect the old log bytes afterwards.
        let old_log = log.backend().log_bytes().to_vec();
        overlapped.install_snapshot(&state.to_snapshot_events()).unwrap();
        overlapped.backend_mut().append_log_raw(&old_log);
        let re = overlapped.replay(4, pid(0), Vec::new()).unwrap();
        assert_eq!(re.dag.len(), state.dag.len());
        assert_eq!(re.commit_log, state.commit_log);
        assert_eq!(re.delivered, state.delivered);
    }

    #[test]
    fn pruned_snapshot_replays_to_post_prefix_state() {
        // Build 8 rounds, deliver everything in rounds <= 4, prune, compact
        // and replay: the pruned snapshot must reproduce the post-prefix
        // state exactly and be strictly smaller than the unpruned one.
        let log = populated_log(8);
        let mut state = log.replay(4, pid(1), Vec::new()).unwrap();
        for r in 1..=4u64 {
            for i in 0..4 {
                state.delivered.insert(VertexId::new(r, pid(i)));
            }
        }
        let unpruned_len: usize = state.to_snapshot_events().iter().map(|e| e.encode().len()).sum();
        state.prune_delivered(4);
        assert_eq!(state.pruned_round, 4);
        assert_eq!(state.dag.pruned_floor(), 4);
        assert_eq!(state.dag.len(), 4 + 16, "genesis + rounds 5..=8 retained");
        let pruned_len: usize = state.to_snapshot_events().iter().map(|e| e.encode().len()).sum();
        assert!(pruned_len < unpruned_len, "{pruned_len} !< {unpruned_len}");

        let mut compacted = Log::new(MemStorage::new());
        compacted.install_snapshot(&state.to_snapshot_events()).unwrap();
        // New activity above the prune horizon still lands in the log tail.
        compacted
            .append(&DagEvent::VertexInserted(Vertex::new(
                pid(1),
                9,
                vec![9],
                ProcessSet::full(4),
                vec![],
            )))
            .unwrap();
        let re = compacted.replay(4, pid(1), Vec::new()).unwrap();
        assert_eq!(re.pruned_round, 4);
        assert_eq!(re.dag.pruned_floor(), 4);
        assert_eq!(re.dag.len(), state.dag.len() + 1);
        assert_eq!(re.own_round, 9, "own rounds above the floor survive");
        assert_eq!(re.delivered, state.delivered, "delivered set is never pruned");
        assert_eq!(re.commit_log, state.commit_log);
        assert_eq!(re.confirmed_waves, state.confirmed_waves);
        // The round-9 vertex inserted although its round-8 parents are in
        // the snapshot and its pruned ancestry is gone — floor semantics.
        assert!(re.dag.get(VertexId::new(9, pid(1))).is_some());
    }

    #[test]
    fn pruning_retains_undelivered_old_vertices() {
        let log = populated_log(4);
        let mut state = log.replay(4, pid(0), Vec::new()).unwrap();
        // Only p2's vertices were delivered; the rest must survive a prune.
        for r in 1..=4u64 {
            state.delivered.insert(VertexId::new(r, pid(2)));
        }
        state.prune_delivered(4);
        assert_eq!(state.dag.len(), 4 + 12, "genesis + 3 undelivered per round");
        for r in 1..=4u64 {
            assert!(!state.dag.contains(VertexId::new(r, pid(2))), "delivered r{r} pruned");
            assert!(state.dag.contains(VertexId::new(r, pid(0))), "undelivered r{r} kept");
        }
        // Re-compaction round-trips the partial prune.
        let mut compacted = Log::new(MemStorage::new());
        compacted.install_snapshot(&state.to_snapshot_events()).unwrap();
        let re = compacted.replay(4, pid(0), Vec::new()).unwrap();
        assert_eq!(re.dag.len(), state.dag.len());
        assert_eq!(re.pruned_round, 4);
    }

    #[test]
    fn missing_parent_in_log_order_is_corruption() {
        let mut log = Log::new(MemStorage::new());
        // Round-2 vertex whose round-1 parent was never logged.
        log.append(&DagEvent::VertexInserted(Vertex::new(
            pid(0),
            2,
            vec![],
            ProcessSet::from_indices([1]),
            vec![],
        )))
        .unwrap();
        assert!(matches!(log.replay(4, pid(0), Vec::new()), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn valid_frame_invalid_event_is_corruption() {
        let mut log = Log::new(MemStorage::new());
        let mut framed = Vec::new();
        crate::wal::frame_record(&[42, 0, 1], &mut framed);
        log.backend_mut().append_log_raw(&framed);
        assert!(matches!(log.events(), Err(StorageError::Corrupt { .. })));
    }

    impl MemStorage {
        /// Test-only raw append (bypasses framing).
        fn append_log_raw(&mut self, bytes: &[u8]) {
            use crate::backend::Storage as _;
            self.append_log(bytes).unwrap();
        }
    }
}
