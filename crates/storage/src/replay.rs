//! The typed event log and the recovery protocol's first half: replaying a
//! WAL back into DAG-consensus state.
//!
//! [`EventLog`] is the handle a running process holds: it appends
//! [`DagEvent`]s, suggests when to compact, and installs snapshots (which
//! are themselves just compacted event sequences — one codec, one replay
//! path). [`RecoveredState::replay`] is what a restarted process calls: it
//! reads snapshot + log, drops a torn tail, rejects corruption, and folds
//! the surviving events into the DAG, the delivered set, the commit log and
//! the confirmed-wave set. Replay is idempotent (duplicate events are
//! skipped), so a crash between "write snapshot" and "truncate log" still
//! recovers.

use std::collections::BTreeSet;
use std::marker::PhantomData;

use asym_dag::{DagError, DagStore, Round, VertexId, WaveId};
use asym_quorum::ProcessId;

use crate::backend::{Storage, StorageError};
use crate::event::{BlockCodec, DagEvent};
use crate::wal::{Wal, WalStats};

/// A write-ahead log of [`DagEvent`]s over any [`Storage`] backend.
///
/// # Examples
///
/// ```
/// use asym_quorum::ProcessId;
/// use asym_storage::{DagEvent, EventLog, MemStorage};
///
/// let mut log: EventLog<Vec<u8>, MemStorage> = EventLog::new(MemStorage::new());
/// log.append(&DagEvent::WaveConfirmed { wave: 1 })?;
/// let state = log.replay(4, ProcessId::new(0), Vec::new())?;
/// assert!(state.confirmed_waves.contains(&1));
/// # Ok::<(), asym_storage::StorageError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EventLog<B, S> {
    wal: Wal<S>,
    _block: PhantomData<fn() -> B>,
}

impl<B: BlockCodec + Clone, S: Storage> EventLog<B, S> {
    /// Wraps a backend (default snapshot cadence).
    pub fn new(backend: S) -> Self {
        EventLog { wal: Wal::new(backend), _block: PhantomData }
    }

    /// Overrides the snapshot cadence (`0` disables suggestions).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.wal = self.wal.with_snapshot_every(every);
        self
    }

    /// Appends one event.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the backend rejects the write.
    pub fn append(&mut self, event: &DagEvent<B>) -> Result<(), StorageError> {
        self.wal.append(&event.encode())
    }

    /// `true` once enough events accumulated that the owner should compact
    /// its full state into [`EventLog::install_snapshot`].
    pub fn should_snapshot(&self) -> bool {
        self.wal.should_snapshot()
    }

    /// Installs a snapshot: `events` must be a compacted encoding of the
    /// owner's *entire* current state, because the log is truncated.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the backend rejects the writes.
    pub fn install_snapshot(&mut self, events: &[DagEvent<B>]) -> Result<(), StorageError> {
        let encoded: Vec<Vec<u8>> = events.iter().map(DagEvent::encode).collect();
        self.wal.install_snapshot(&encoded)
    }

    /// Decodes every persisted event, snapshot first, in append order.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] on checksum mismatch, torn snapshot, or a
    /// checksummed-valid record that does not decode as an event.
    pub fn events(&self) -> Result<ReadEvents<B>, StorageError> {
        let contents = self.wal.read()?;
        let mut events = Vec::with_capacity(contents.len());
        for (i, record) in contents.all_records().enumerate() {
            events.push(DagEvent::decode(record).ok_or_else(|| StorageError::Corrupt {
                offset: i,
                detail: "checksummed record is not a valid DagEvent".into(),
            })?);
        }
        Ok(ReadEvents {
            from_snapshot: contents.snapshot.len(),
            torn_tail_bytes: contents.torn_tail_bytes,
            events,
        })
    }

    /// Replays the log into recovered state (see [`RecoveredState::replay`]).
    ///
    /// # Errors
    ///
    /// Propagates corruption and I/O errors from [`EventLog::events`].
    pub fn replay(
        &self,
        n: usize,
        me: ProcessId,
        genesis: B,
    ) -> Result<RecoveredState<B>, StorageError> {
        let read = self.events()?;
        RecoveredState::replay(&read, n, me, genesis)
    }

    /// WAL activity counters.
    pub fn stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// The backend (test hooks: truncation, corruption).
    pub fn backend_mut(&mut self) -> &mut S {
        self.wal.backend_mut()
    }

    /// The backend, read-only.
    pub fn backend(&self) -> &S {
        self.wal.backend()
    }
}

/// Every decoded event plus provenance counters.
#[derive(Clone, Debug)]
pub struct ReadEvents<B> {
    /// The events, snapshot records first, then the log tail.
    pub events: Vec<DagEvent<B>>,
    /// How many of them came from the snapshot area.
    pub from_snapshot: usize,
    /// Torn bytes dropped from the end of the log.
    pub torn_tail_bytes: usize,
}

/// Consensus state rebuilt from a WAL — the data a restarted process needs
/// to rejoin without violating safety.
#[derive(Clone, Debug)]
pub struct RecoveredState<B> {
    /// The local DAG, rebuilt vertex by vertex.
    pub dag: DagStore<B>,
    /// The highest round in which `me` created a vertex (the round counter
    /// to resume from).
    pub own_round: Round,
    /// Every vertex already atomically delivered — the set that prevents
    /// double delivery across the restart.
    pub delivered: BTreeSet<VertexId>,
    /// The commit log of `(wave, leader)` pairs, in commit order.
    pub commit_log: Vec<(WaveId, VertexId)>,
    /// The last decided wave.
    pub decided_wave: WaveId,
    /// Waves whose CONFIRM quorum (`tReady`) had been observed.
    pub confirmed_waves: BTreeSet<WaveId>,
    /// Total events folded in.
    pub events_total: usize,
    /// Events that came from the snapshot area.
    pub events_from_snapshot: usize,
    /// Torn bytes dropped from the log tail.
    pub torn_tail_bytes: usize,
}

impl<B: BlockCodec + Clone> RecoveredState<B> {
    /// Folds decoded events into recovered state.
    ///
    /// Idempotent per event: duplicate vertex inserts, deliveries, confirms
    /// and already-decided waves are skipped, so snapshot/log overlap after
    /// a mid-compaction crash is harmless.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] if a vertex event references a parent that
    /// no prior event inserted — an append-order violation that a correct
    /// process can never have written.
    pub fn replay(
        read: &ReadEvents<B>,
        n: usize,
        me: ProcessId,
        genesis: B,
    ) -> Result<Self, StorageError> {
        let mut state = RecoveredState {
            dag: DagStore::with_genesis(n, genesis),
            own_round: 0,
            delivered: BTreeSet::new(),
            commit_log: Vec::new(),
            decided_wave: 0,
            confirmed_waves: BTreeSet::new(),
            events_total: read.events.len(),
            events_from_snapshot: read.from_snapshot,
            torn_tail_bytes: read.torn_tail_bytes,
        };
        for (i, event) in read.events.iter().enumerate() {
            match event {
                DagEvent::VertexInserted(v) => {
                    if v.round() == 0 {
                        continue; // genesis is hard-coded, never logged
                    }
                    match state.dag.insert(v.clone()) {
                        Ok(()) => {
                            if v.source() == me {
                                state.own_round = state.own_round.max(v.round());
                            }
                        }
                        Err(DagError::Duplicate(_)) => {}
                        Err(e) => {
                            return Err(StorageError::Corrupt {
                                offset: i,
                                detail: format!("log not replayable in order: {e}"),
                            })
                        }
                    }
                }
                DagEvent::WaveConfirmed { wave } => {
                    state.confirmed_waves.insert(*wave);
                }
                DagEvent::WaveDecided { wave, leader } => {
                    if *wave > state.decided_wave
                        && !state.commit_log.iter().any(|(w, _)| w == wave)
                    {
                        state.commit_log.push((*wave, *leader));
                    }
                    state.decided_wave = state.decided_wave.max(*wave);
                }
                DagEvent::BlockDelivered { id, .. } => {
                    state.delivered.insert(*id);
                }
            }
        }
        Ok(state)
    }

    /// Compacts this state back into the minimal event sequence that
    /// replays to it — what [`EventLog::install_snapshot`] persists.
    ///
    /// Vertices are emitted in `(round, source)` order (parents always
    /// precede children), then confirmed waves, then the commit log in
    /// order, then the delivered set.
    pub fn to_snapshot_events(&self) -> Vec<DagEvent<B>> {
        snapshot_events(
            &self.dag,
            self.confirmed_waves.iter().copied(),
            &self.commit_log,
            self.delivered.iter().copied(),
        )
    }
}

/// Compacts consensus state into the canonical snapshot event sequence —
/// the single definition of the snapshot ordering contract, shared by
/// [`RecoveredState::to_snapshot_events`] and by live processes that
/// compact without materializing a `RecoveredState`. Vertices come first in
/// `(round, source)` order (parents always precede children), then the
/// confirmed waves and the commit log in order, then the delivered set
/// (sorted; the ordering wave is not part of the durable delivered set, so
/// it is stored as `0` and ignored on replay).
pub fn snapshot_events<B: Clone>(
    dag: &DagStore<B>,
    confirmed_waves: impl IntoIterator<Item = WaveId>,
    commit_log: &[(WaveId, VertexId)],
    delivered: impl IntoIterator<Item = VertexId>,
) -> Vec<DagEvent<B>> {
    let mut events = Vec::new();
    for r in 1..=dag.max_round().unwrap_or(0) {
        for v in dag.vertices_in_round(r) {
            events.push(DagEvent::VertexInserted(v.clone()));
        }
    }
    let mut confirmed: Vec<WaveId> = confirmed_waves.into_iter().collect();
    confirmed.sort_unstable();
    for wave in confirmed {
        events.push(DagEvent::WaveConfirmed { wave });
    }
    for (wave, leader) in commit_log {
        events.push(DagEvent::WaveDecided { wave: *wave, leader: *leader });
    }
    let mut delivered: Vec<VertexId> = delivered.into_iter().collect();
    delivered.sort_unstable();
    for id in delivered {
        events.push(DagEvent::BlockDelivered { id, wave: 0 });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStorage;
    use asym_dag::Vertex;
    use asym_quorum::ProcessSet;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    type Log = EventLog<Vec<u8>, MemStorage>;

    /// Logs a full 4-process DAG of `rounds` rounds plus wave bookkeeping.
    fn populated_log(rounds: u64) -> Log {
        let mut log = Log::new(MemStorage::new()).with_snapshot_every(0);
        for r in 1..=rounds {
            for i in 0..4 {
                log.append(&DagEvent::VertexInserted(Vertex::new(
                    pid(i),
                    r,
                    vec![r as u8, i as u8],
                    ProcessSet::full(4),
                    vec![],
                )))
                .unwrap();
            }
        }
        log.append(&DagEvent::WaveConfirmed { wave: 1 }).unwrap();
        log.append(&DagEvent::WaveDecided { wave: 1, leader: VertexId::new(1, pid(2)) }).unwrap();
        log.append(&DagEvent::BlockDelivered { id: VertexId::new(1, pid(2)), wave: 1 }).unwrap();
        log
    }

    #[test]
    fn replay_rebuilds_dag_and_bookkeeping() {
        let log = populated_log(4);
        let state = log.replay(4, pid(1), Vec::new()).unwrap();
        assert_eq!(state.dag.len(), 4 + 16, "genesis + 4 rounds");
        assert_eq!(state.own_round, 4);
        assert_eq!(state.decided_wave, 1);
        assert_eq!(state.commit_log, vec![(1, VertexId::new(1, pid(2)))]);
        assert!(state.delivered.contains(&VertexId::new(1, pid(2))));
        assert_eq!(state.confirmed_waves, BTreeSet::from([1]));
        assert_eq!(state.events_from_snapshot, 0);
        assert_eq!(state.torn_tail_bytes, 0);
    }

    #[test]
    fn snapshot_compaction_replays_to_the_same_state() {
        let log = populated_log(8);
        let state = log.replay(4, pid(0), Vec::new()).unwrap();

        let mut compacted = Log::new(MemStorage::new());
        compacted.install_snapshot(&state.to_snapshot_events()).unwrap();
        // New activity lands in the log tail after the snapshot.
        compacted
            .append(&DagEvent::VertexInserted(Vertex::new(
                pid(0),
                9,
                vec![9],
                ProcessSet::full(4),
                vec![],
            )))
            .unwrap();
        let re = compacted.replay(4, pid(0), Vec::new()).unwrap();
        assert_eq!(re.dag.len(), state.dag.len() + 1);
        assert_eq!(re.own_round, 9);
        assert_eq!(re.commit_log, state.commit_log);
        assert_eq!(re.delivered, state.delivered);
        assert_eq!(re.confirmed_waves, state.confirmed_waves);
        assert!(re.events_from_snapshot > 0);
    }

    #[test]
    fn replay_is_idempotent_over_snapshot_log_overlap() {
        // Crash between snapshot write and log truncation: the log still
        // holds events the snapshot already covers.
        let log = populated_log(4);
        let state = log.replay(4, pid(0), Vec::new()).unwrap();
        let mut overlapped = log.clone();
        // Install the snapshot but resurrect the old log bytes afterwards.
        let old_log = log.backend().log_bytes().to_vec();
        overlapped.install_snapshot(&state.to_snapshot_events()).unwrap();
        overlapped.backend_mut().append_log_raw(&old_log);
        let re = overlapped.replay(4, pid(0), Vec::new()).unwrap();
        assert_eq!(re.dag.len(), state.dag.len());
        assert_eq!(re.commit_log, state.commit_log);
        assert_eq!(re.delivered, state.delivered);
    }

    #[test]
    fn missing_parent_in_log_order_is_corruption() {
        let mut log = Log::new(MemStorage::new());
        // Round-2 vertex whose round-1 parent was never logged.
        log.append(&DagEvent::VertexInserted(Vertex::new(
            pid(0),
            2,
            vec![],
            ProcessSet::from_indices([1]),
            vec![],
        )))
        .unwrap();
        assert!(matches!(log.replay(4, pid(0), Vec::new()), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn valid_frame_invalid_event_is_corruption() {
        let mut log = Log::new(MemStorage::new());
        let mut framed = Vec::new();
        crate::wal::frame_record(&[42, 0, 1], &mut framed);
        log.backend_mut().append_log_raw(&framed);
        assert!(matches!(log.events(), Err(StorageError::Corrupt { .. })));
    }

    impl MemStorage {
        /// Test-only raw append (bypasses framing).
        fn append_log_raw(&mut self, bytes: &[u8]) {
            use crate::backend::Storage as _;
            self.append_log(bytes).unwrap();
        }
    }
}
