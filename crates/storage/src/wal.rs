//! Record framing: the length-prefixed, checksummed write-ahead log.
//!
//! Every record is stored as
//!
//! ```text
//! ┌───────────┬─────────────────┬───────────────┐
//! │ len: u32  │ checksum: u64   │ payload bytes │
//! │ (LE)      │ FNV-1a-64 (LE)  │ (len bytes)   │
//! └───────────┴─────────────────┴───────────────┘
//! ```
//!
//! and the read path distinguishes the two corruption modes a crash can
//! leave behind:
//!
//! * a **torn tail** — the final record's bytes end early (the process died
//!   mid-`write`). The torn bytes are dropped and everything before them
//!   replays; this is the expected shape of a crash.
//! * a **checksum mismatch** on a *complete* record — bit rot or a foreign
//!   writer. This is a hard [`StorageError::Corrupt`] error, never a silent
//!   skip: replaying *around* a corrupt record would silently fork the
//!   recovered state from what the process had acknowledged.
//!
//! A [`Wal`] pairs the framing with a [`Storage`] backend and a snapshot
//! area: [`Wal::install_snapshot`] rewrites the snapshot blob (itself a
//! sequence of framed records) and truncates the log, bounding recovery
//! work. The snapshot area tolerates no torn tail — it is written
//! atomically, so any damage there is real corruption.

use crate::backend::{Storage, StorageError};

/// Bytes of framing overhead per record (`u32` length + `u64` checksum).
pub const RECORD_HEADER_BYTES: usize = 4 + 8;

/// FNV-1a 64-bit checksum — small, fast, dependency-free, and plenty to
/// detect torn writes and bit rot (this is not a cryptographic integrity
/// boundary; vertices carry content digests at the protocol layer).
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Frames one payload into `out`.
pub fn frame_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Result of decoding one framed area.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DecodedArea {
    /// The payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn (incomplete) final record that were dropped.
    pub torn_tail_bytes: usize,
}

/// Decodes a framed byte area.
///
/// `allow_torn_tail` is `true` for the log area (crashes tear tails) and
/// `false` for the snapshot area (written atomically; a short read there is
/// corruption).
///
/// # Errors
///
/// [`StorageError::Corrupt`] on a checksum mismatch of a complete record,
/// or on a torn tail when `allow_torn_tail` is `false`.
pub fn decode_area(bytes: &[u8], allow_torn_tail: bool) -> Result<DecodedArea, StorageError> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < RECORD_HEADER_BYTES {
            return torn(offset, remaining, allow_torn_tail, records);
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let expected = u64::from_le_bytes(
            bytes[offset + 4..offset + RECORD_HEADER_BYTES].try_into().expect("8 bytes"),
        );
        if remaining - RECORD_HEADER_BYTES < len {
            return torn(offset, remaining, allow_torn_tail, records);
        }
        let start = offset + RECORD_HEADER_BYTES;
        let payload = &bytes[start..start + len];
        if checksum(payload) != expected {
            return Err(StorageError::Corrupt {
                offset,
                detail: format!(
                    "checksum mismatch on a complete {len}-byte record (stored {expected:#x}, \
                     computed {:#x})",
                    checksum(payload)
                ),
            });
        }
        records.push(payload.to_vec());
        offset = start + len;
    }
    Ok(DecodedArea { records, torn_tail_bytes: 0 })
}

fn torn(
    offset: usize,
    remaining: usize,
    allow: bool,
    records: Vec<Vec<u8>>,
) -> Result<DecodedArea, StorageError> {
    if allow {
        Ok(DecodedArea { records, torn_tail_bytes: remaining })
    } else {
        Err(StorageError::Corrupt {
            offset,
            detail: format!("area ends mid-record ({remaining} trailing bytes)"),
        })
    }
}

/// Counters a [`Wal`] keeps about its own activity (the `exp_recovery`
/// bench reads these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since this handle was created.
    pub records_appended: u64,
    /// Framed bytes appended since this handle was created.
    pub bytes_appended: u64,
    /// Snapshots installed since this handle was created.
    pub snapshots_written: u64,
    /// Size in bytes of the most recent snapshot blob.
    pub last_snapshot_bytes: u64,
}

/// Everything persisted: the snapshot records followed by the log tail.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WalContents {
    /// Records restored from the snapshot area (empty if no snapshot).
    pub snapshot: Vec<Vec<u8>>,
    /// Records from the log tail, in append order.
    pub log: Vec<Vec<u8>>,
    /// Torn bytes dropped from the end of the log.
    pub torn_tail_bytes: usize,
}

impl WalContents {
    /// Snapshot records followed by log records — full replay order.
    pub fn all_records(&self) -> impl Iterator<Item = &[u8]> {
        self.snapshot.iter().chain(self.log.iter()).map(Vec::as_slice)
    }

    /// Total number of persisted records.
    pub fn len(&self) -> usize {
        self.snapshot.len() + self.log.len()
    }

    /// `true` when nothing is persisted.
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_empty() && self.log.is_empty()
    }
}

/// A framed write-ahead log with a snapshot area over any [`Storage`].
///
/// # Examples
///
/// ```
/// use asym_storage::{MemStorage, Wal};
///
/// let mut wal = Wal::new(MemStorage::new());
/// wal.append(b"event-1")?;
/// wal.append(b"event-2")?;
/// let contents = wal.read()?;
/// assert_eq!(contents.log.len(), 2);
/// assert_eq!(contents.log[0], b"event-1");
/// # Ok::<(), asym_storage::StorageError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Wal<S> {
    backend: S,
    stats: WalStats,
    records_since_snapshot: usize,
    snapshot_every: usize,
    /// Size in bytes of every snapshot blob installed through this handle,
    /// in order — the observable behind "pruning bounds snapshot size"
    /// (without pruning this sequence grows monotonically; with pruning it
    /// is a sawtooth).
    snapshot_sizes: Vec<u64>,
}

/// Default snapshot cadence: one snapshot per this many appended records.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 256;

impl<S: Storage> Wal<S> {
    /// Wraps a backend with the default snapshot cadence.
    pub fn new(backend: S) -> Self {
        Wal {
            backend,
            stats: WalStats::default(),
            records_since_snapshot: 0,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            snapshot_sizes: Vec::new(),
        }
    }

    /// Overrides the snapshot cadence: [`Wal::should_snapshot`] suggests a
    /// compaction once `every` records accumulated since the last snapshot.
    ///
    /// **`every == 0` means "never"**: `should_snapshot` stays `false`
    /// forever and the log grows without bound (replay work is then linear
    /// in the whole history). Callers may still [`Wal::install_snapshot`]
    /// manually.
    #[must_use]
    pub fn with_snapshot_every(mut self, every: usize) -> Self {
        self.snapshot_every = every;
        self
    }

    /// The configured snapshot cadence (`0` = never).
    pub fn snapshot_every(&self) -> usize {
        self.snapshot_every
    }

    /// The backend (test/bench observability).
    pub fn backend(&self) -> &S {
        &self.backend
    }

    /// Mutable backend access (test hooks: truncation, corruption).
    pub fn backend_mut(&mut self) -> &mut S {
        &mut self.backend
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Appends one payload as a framed record.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the backend rejects the write.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        let mut framed = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
        frame_record(payload, &mut framed);
        self.backend.append_log(&framed)?;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += framed.len() as u64;
        // Saturating: with the cadence disabled (`0` = never snapshot) this
        // counter is never reset, and a pathological `usize::MAX` wrap
        // would otherwise turn "overdue for a snapshot" into "just took
        // one" (or panic in debug builds).
        self.records_since_snapshot = self.records_since_snapshot.saturating_add(1);
        Ok(())
    }

    /// `true` once enough records accumulated since the last snapshot that
    /// the owner should compact state into [`Wal::install_snapshot`]. A
    /// cadence of `0` means never: this always returns `false` then.
    pub fn should_snapshot(&self) -> bool {
        self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every
    }

    /// Replaces the snapshot area with `records` (a compacted encoding of
    /// the owner's full state) and truncates the log.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the backend rejects either write. A crash
    /// between the two writes leaves the old log alongside the new
    /// snapshot; replay is idempotent, so recovery still converges.
    pub fn install_snapshot<R: AsRef<[u8]>>(&mut self, records: &[R]) -> Result<(), StorageError> {
        let mut blob = Vec::new();
        for r in records {
            frame_record(r.as_ref(), &mut blob);
        }
        self.backend.write_snapshot(&blob)?;
        self.backend.replace_log(&[])?;
        self.stats.snapshots_written += 1;
        self.stats.last_snapshot_bytes = blob.len() as u64;
        self.snapshot_sizes.push(blob.len() as u64);
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// Size of every snapshot installed through this handle, in order.
    pub fn snapshot_sizes(&self) -> &[u64] {
        &self.snapshot_sizes
    }

    /// Truncates a torn final record off the log area, returning how many
    /// bytes were dropped — the repair a recovering process **must** apply
    /// before it resumes appending. Reading tolerates a torn tail, but a
    /// fresh record appended *after* torn bytes fuses with them into one
    /// complete-looking frame whose checksum cannot match, turning a
    /// survivable crash into unreadable corruption on the next restart
    /// (found by the powerloss-file matrix cells).
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] if a complete record fails its checksum
    /// (the log is damaged beyond a torn tail — fail-stop, do not append);
    /// [`StorageError::Io`] if the backend cannot be read or rewritten.
    pub fn repair_torn_tail(&mut self) -> Result<usize, StorageError> {
        let bytes = self.backend.read_log()?;
        let torn = decode_area(&bytes, true)?.torn_tail_bytes;
        if torn > 0 {
            self.backend.replace_log(&bytes[..bytes.len() - torn])?;
        }
        Ok(torn)
    }

    /// Reads and verifies everything persisted: the snapshot records, the
    /// log tail, and how many torn tail bytes were dropped.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] if a complete record fails its checksum
    /// (either area) or the snapshot area is torn; [`StorageError::Io`] if
    /// the backend cannot be read.
    pub fn read(&self) -> Result<WalContents, StorageError> {
        let snapshot = match self.backend.read_snapshot()? {
            Some(bytes) => decode_area(&bytes, false)?.records,
            None => Vec::new(),
        };
        let log_area = decode_area(&self.backend.read_log()?, true)?;
        Ok(WalContents {
            snapshot,
            log: log_area.records,
            torn_tail_bytes: log_area.torn_tail_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemStorage;

    #[test]
    fn empty_wal_reads_empty() {
        let wal = Wal::new(MemStorage::new());
        let c = wal.read().unwrap();
        assert!(c.is_empty());
        assert_eq!(c.torn_tail_bytes, 0);
    }

    #[test]
    fn append_read_round_trip() {
        let mut wal = Wal::new(MemStorage::new());
        for payload in [&b"a"[..], &b""[..], &[0xFFu8; 100][..]] {
            wal.append(payload).unwrap();
        }
        let c = wal.read().unwrap();
        assert_eq!(c.log.len(), 3);
        assert_eq!(c.log[0], b"a");
        assert_eq!(c.log[1], b"");
        assert_eq!(c.log[2], vec![0xFF; 100]);
        assert_eq!(wal.stats().records_appended, 3);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut wal = Wal::new(MemStorage::new());
        wal.append(b"keep-me").unwrap();
        wal.append(b"torn-me").unwrap();
        let full = wal.backend().log_bytes().len();
        // Tear the final record at every possible byte boundary.
        for cut in 1..(RECORD_HEADER_BYTES + 7) {
            let mut torn = wal.clone();
            torn.backend_mut().truncate_log(full - cut);
            let c = torn.read().unwrap();
            assert_eq!(c.log, vec![b"keep-me".to_vec()], "cut={cut}");
            assert_eq!(c.torn_tail_bytes, RECORD_HEADER_BYTES + 7 - cut, "cut={cut}");
        }
    }

    #[test]
    fn corrupt_complete_record_is_a_hard_error() {
        let mut wal = Wal::new(MemStorage::new());
        wal.append(b"good").unwrap();
        wal.append(b"bad!").unwrap();
        // Flip a payload byte of the *first* record: complete + wrong sum.
        wal.backend_mut().corrupt_log_byte(RECORD_HEADER_BYTES);
        match wal.read() {
            Err(StorageError::Corrupt { offset: 0, detail }) => {
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_truncates_log_and_replays_first() {
        let mut wal = Wal::new(MemStorage::new()).with_snapshot_every(2);
        wal.append(b"e1").unwrap();
        assert!(!wal.should_snapshot());
        wal.append(b"e2").unwrap();
        assert!(wal.should_snapshot());
        wal.install_snapshot(&[b"compact-state"]).unwrap();
        assert!(!wal.should_snapshot());
        wal.append(b"e3").unwrap();
        let c = wal.read().unwrap();
        assert_eq!(c.snapshot, vec![b"compact-state".to_vec()]);
        assert_eq!(c.log, vec![b"e3".to_vec()]);
        let replayed: Vec<&[u8]> = c.all_records().collect();
        assert_eq!(replayed, vec![&b"compact-state"[..], &b"e3"[..]]);
        assert_eq!(wal.stats().snapshots_written, 1);
        assert!(wal.stats().last_snapshot_bytes > 0);
    }

    #[test]
    fn appending_after_a_torn_tail_requires_repair() {
        // The bug the powerloss-file matrix cells found: a torn tail is
        // survivable to *read*, but appending after it fuses torn bytes
        // with the new record into one complete-looking frame whose
        // checksum mismatches — unreadable corruption at the next restart.
        let mut wal = Wal::new(MemStorage::new());
        wal.append(b"durable").unwrap();
        wal.append(b"torn-me-please").unwrap();
        let full = wal.backend().log_bytes().len();
        wal.backend_mut().truncate_log(full - 5);

        // Without repair: the post-recovery append corrupts the log.
        let mut unrepaired = wal.clone();
        unrepaired.append(b"post-recovery").unwrap();
        assert!(
            matches!(unrepaired.read(), Err(StorageError::Corrupt { .. })),
            "the fused frame must fail its checksum"
        );

        // With repair: the torn bytes are dropped first and appends resume
        // on a clean boundary.
        let dropped = wal.repair_torn_tail().unwrap();
        assert_eq!(dropped, RECORD_HEADER_BYTES + 14 - 5);
        assert_eq!(wal.repair_torn_tail().unwrap(), 0, "repair is idempotent");
        wal.append(b"post-recovery").unwrap();
        let contents = wal.read().unwrap();
        assert_eq!(contents.log, vec![b"durable".to_vec(), b"post-recovery".to_vec()]);
        assert_eq!(contents.torn_tail_bytes, 0);
    }

    #[test]
    fn snapshot_cadence_zero_means_never() {
        let mut wal = Wal::new(MemStorage::new()).with_snapshot_every(0);
        assert_eq!(wal.snapshot_every(), 0);
        for _ in 0..(4 * DEFAULT_SNAPSHOT_EVERY) {
            wal.append(b"e").unwrap();
            assert!(!wal.should_snapshot(), "cadence 0 must never suggest a snapshot");
        }
        // Manual compaction still works and resets nothing it shouldn't.
        wal.install_snapshot(&[b"state"]).unwrap();
        assert!(!wal.should_snapshot());
        assert_eq!(wal.stats().snapshots_written, 1);
    }

    #[test]
    fn records_since_snapshot_saturates_instead_of_wrapping() {
        let mut wal = Wal::new(MemStorage::new()).with_snapshot_every(8);
        wal.records_since_snapshot = usize::MAX;
        wal.append(b"overflow-me").unwrap();
        assert!(wal.should_snapshot(), "an overdue log must stay overdue at usize::MAX");
        wal.install_snapshot(&[b"s"]).unwrap();
        assert!(!wal.should_snapshot(), "the snapshot resets the counter");
    }

    #[test]
    fn torn_snapshot_area_is_corruption() {
        let mut wal = Wal::new(MemStorage::new());
        wal.install_snapshot(&[b"state"]).unwrap();
        // Manually shorten the snapshot blob: atomic writes cannot tear, so
        // a short snapshot must be reported as corruption.
        let snap = wal.backend().snapshot_bytes().unwrap().to_vec();
        wal.backend_mut().write_snapshot(&snap[..snap.len() - 2]).unwrap();
        assert!(matches!(wal.read(), Err(StorageError::Corrupt { .. })));
    }

    #[test]
    fn checksum_is_stable_and_content_sensitive() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
        assert_eq!(checksum(b"abc"), checksum(b"abc"));
    }
}
