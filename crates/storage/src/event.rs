//! The DAG event vocabulary and its binary codec.
//!
//! A process's durable state is an append-only sequence of [`DagEvent`]s:
//! every vertex inserted into the local DAG, every wave whose CONFIRM
//! quorum was observed (`tReady`), every wave decided, and every block
//! atomically delivered. Replaying the sequence rebuilds the DAG, the
//! delivered set and the commit log exactly — which is what makes a crashed
//! process able to rejoin without ever delivering a block twice.
//!
//! The codec is a hand-rolled little-endian binary format (no serde — the
//! workspace builds offline). Blocks are opaque to this crate; the carrying
//! protocol supplies a [`BlockCodec`] for its block type.

use asym_dag::{Round, Vertex, VertexId, WaveId};
use asym_quorum::{ProcessId, ProcessSet};

/// En/decoding of the block payload a vertex carries.
///
/// Implemented by the consensus crate for its `Block` type; this crate
/// ships an implementation for `Vec<u8>` (raw bytes) used by its own tests
/// and benches.
pub trait BlockCodec: Sized {
    /// Appends the canonical byte encoding of `self` to `out`.
    fn encode_block(&self, out: &mut Vec<u8>);

    /// Decodes a block from exactly `bytes` (`None` on malformed input).
    fn decode_block(bytes: &[u8]) -> Option<Self>;
}

impl BlockCodec for Vec<u8> {
    fn encode_block(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    fn decode_block(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

/// One durable state transition of a DAG consensus process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagEvent<B> {
    /// A vertex entered the local DAG (its full content, so the DAG can be
    /// rebuilt without the network).
    VertexInserted(Vertex<B>),
    /// CONFIRMs from one of this process's quorums were observed for
    /// `wave` — the `tReady` milestone of the Algorithm-5 control ladder.
    WaveConfirmed {
        /// The confirmed wave.
        wave: WaveId,
    },
    /// The wave was decided with `leader` (one commit-log entry).
    WaveDecided {
        /// The decided wave.
        wave: WaveId,
        /// Its coin-elected leader vertex.
        leader: VertexId,
    },
    /// The block carried by `id` was atomically delivered.
    BlockDelivered {
        /// The delivered vertex.
        id: VertexId,
        /// The wave whose commit ordered it.
        wave: WaveId,
    },
    /// Garbage-collection marker: *delivered* vertices in rounds
    /// `<= up_to_round` may have been dropped from this snapshot. Replay
    /// sets the DAG's pruned floor so surviving vertices whose parents fell
    /// below the floor still insert; the delivered set and commit log are
    /// never pruned, so re-delivery stays impossible. Emitted first in a
    /// pruned snapshot; never written to the log tail by a live process.
    Pruned {
        /// Rounds at or below this may be missing delivered vertices.
        up_to_round: Round,
    },
    /// The block content of a delivered vertex whose full vertex is *not*
    /// in this process's DAG — the transferable residue of pruning (the
    /// edges are dropped, the output is kept) and of a delivered-state
    /// install (the vertex was never received at all). Retaining these is
    /// what lets a pruned process serve deep catch-up as certified outputs
    /// instead of DAG vertices, and replaying them rebuilds the
    /// transferable store.
    DeliveredBlock {
        /// The delivered vertex this block belonged to.
        id: VertexId,
        /// Its block payload.
        block: B,
    },
}

const TAG_VERTEX: u8 = 1;
const TAG_CONFIRMED: u8 = 2;
const TAG_DECIDED: u8 = 3;
const TAG_DELIVERED: u8 = 4;
const TAG_PRUNED: u8 = 5;
const TAG_DELIVERED_BLOCK: u8 = 6;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_vid(out: &mut Vec<u8>, id: VertexId) {
    put_u64(out, id.round);
    put_u64(out, id.source.index() as u64);
}

fn put_set(out: &mut Vec<u8>, set: &ProcessSet) {
    put_u64(out, set.len() as u64);
    for p in set {
        put_u64(out, p.index() as u64);
    }
}

/// A bounded little-endian reader over a payload slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn vid(&mut self) -> Option<VertexId> {
        let round = self.u64()?;
        let source = usize::try_from(self.u64()?).ok()?;
        Some(VertexId::new(round, ProcessId::new(source)))
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
}

impl<B: BlockCodec> DagEvent<B> {
    /// Encodes this event as one WAL payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            DagEvent::VertexInserted(v) => {
                out.push(TAG_VERTEX);
                put_u64(&mut out, v.source().index() as u64);
                put_u64(&mut out, v.round());
                put_set(&mut out, v.strong_edges());
                put_u64(&mut out, v.weak_edges().len() as u64);
                for w in v.weak_edges() {
                    put_vid(&mut out, *w);
                }
                let mut block = Vec::new();
                v.block().encode_block(&mut block);
                put_u64(&mut out, block.len() as u64);
                out.extend_from_slice(&block);
            }
            DagEvent::WaveConfirmed { wave } => {
                out.push(TAG_CONFIRMED);
                put_u64(&mut out, *wave);
            }
            DagEvent::WaveDecided { wave, leader } => {
                out.push(TAG_DECIDED);
                put_u64(&mut out, *wave);
                put_vid(&mut out, *leader);
            }
            DagEvent::BlockDelivered { id, wave } => {
                out.push(TAG_DELIVERED);
                put_vid(&mut out, *id);
                put_u64(&mut out, *wave);
            }
            DagEvent::Pruned { up_to_round } => {
                out.push(TAG_PRUNED);
                put_u64(&mut out, *up_to_round);
            }
            DagEvent::DeliveredBlock { id, block } => {
                out.push(TAG_DELIVERED_BLOCK);
                put_vid(&mut out, *id);
                let mut bytes = Vec::new();
                block.encode_block(&mut bytes);
                put_u64(&mut out, bytes.len() as u64);
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Decodes one event from exactly `payload` — `None` on any structural
    /// problem (unknown tag, short field, trailing bytes, or a vertex
    /// violating the vertex invariants).
    pub fn decode(payload: &[u8]) -> Option<Self> {
        let mut r = Reader::new(payload);
        let event = match r.u8()? {
            TAG_VERTEX => {
                let source = usize::try_from(r.u64()?).ok()?;
                let round: Round = r.u64()?;
                let strong_len = usize::try_from(r.u64()?).ok()?;
                // Each member costs ≥8 bytes; reject absurd counts early.
                if strong_len > r.remaining() / 8 {
                    return None;
                }
                let mut strong = ProcessSet::new();
                for _ in 0..strong_len {
                    strong.insert(ProcessId::new(usize::try_from(r.u64()?).ok()?));
                }
                if strong.len() != strong_len {
                    return None; // duplicate member: not canonical
                }
                let weak_len = usize::try_from(r.u64()?).ok()?;
                if weak_len > r.remaining() / 16 {
                    return None;
                }
                let mut weak = Vec::with_capacity(weak_len);
                for _ in 0..weak_len {
                    weak.push(r.vid()?);
                }
                let block_len = usize::try_from(r.u64()?).ok()?;
                if block_len > r.remaining() {
                    return None;
                }
                let block = B::decode_block(r.take(block_len)?)?;
                // Re-check the Vertex constructor invariants so hostile
                // bytes cannot reach its panics.
                if round == 0 && (!strong.is_empty() || !weak.is_empty()) {
                    return None;
                }
                if weak.iter().any(|w| w.round + 1 >= round) {
                    return None;
                }
                DagEvent::VertexInserted(Vertex::new(
                    ProcessId::new(source),
                    round,
                    block,
                    strong,
                    weak,
                ))
            }
            TAG_CONFIRMED => DagEvent::WaveConfirmed { wave: r.u64()? },
            TAG_DECIDED => DagEvent::WaveDecided { wave: r.u64()?, leader: r.vid()? },
            TAG_DELIVERED => DagEvent::BlockDelivered { id: r.vid()?, wave: r.u64()? },
            TAG_PRUNED => DagEvent::Pruned { up_to_round: r.u64()? },
            TAG_DELIVERED_BLOCK => {
                let id = r.vid()?;
                let block_len = usize::try_from(r.u64()?).ok()?;
                if block_len > r.remaining() {
                    return None;
                }
                DagEvent::DeliveredBlock { id, block: B::decode_block(r.take(block_len)?)? }
            }
            _ => return None,
        };
        (r.remaining() == 0).then_some(event)
    }
}

/// Classifies one encoded WAL payload for the powerloss fault model: `true`
/// when losing this record in a crash is *observationally safe* for process
/// `me` — the event carries state that was never externalized, so a correct
/// process recovers a consistent (merely older) view without it.
///
/// The classification encodes the fsync barriers a production process must
/// honor:
///
/// * another process's vertex ([`DagEvent::VertexInserted`]) — volatile:
///   the recovery fetch re-obtains it from peers;
/// * a `tReady` milestone ([`DagEvent::WaveConfirmed`]) — volatile: the
///   control ladder re-runs idempotently;
/// * **own** vertices — a barrier: a process must fsync its own vertex
///   before broadcasting it, or a restart would mint a *different* vertex
///   for an already-used round (honest equivocation);
/// * decisions and deliveries ([`DagEvent::WaveDecided`],
///   [`DagEvent::BlockDelivered`], [`DagEvent::DeliveredBlock`]) —
///   barriers: they are persisted *before* the delivery is handed to the
///   environment, and a delivery the application saw must survive the
///   crash or it would be re-delivered;
/// * malformed payloads and [`DagEvent::Pruned`] markers — barriers
///   (conservative: never widen the damage window on bytes we do not
///   understand).
#[must_use]
pub fn payload_is_volatile(payload: &[u8], me: ProcessId) -> bool {
    match payload.first() {
        Some(&TAG_CONFIRMED) => true,
        Some(&TAG_VERTEX) => {
            let mut r = Reader::new(&payload[1..]);
            r.u64().and_then(|s| usize::try_from(s).ok()).is_some_and(|s| s != me.index())
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn sample_vertex() -> Vertex<Vec<u8>> {
        Vertex::new(
            pid(2),
            5,
            vec![1, 2, 3],
            ProcessSet::from_indices([0, 1, 3]),
            vec![VertexId::new(2, pid(3)), VertexId::new(1, pid(0))],
        )
    }

    #[test]
    fn all_event_kinds_round_trip() {
        let events: Vec<DagEvent<Vec<u8>>> = vec![
            DagEvent::VertexInserted(sample_vertex()),
            DagEvent::VertexInserted(Vertex::genesis(pid(0), vec![])),
            DagEvent::WaveConfirmed { wave: 3 },
            DagEvent::WaveDecided { wave: 2, leader: VertexId::new(5, pid(1)) },
            DagEvent::BlockDelivered { id: VertexId::new(4, pid(2)), wave: 2 },
            DagEvent::Pruned { up_to_round: 8 },
            DagEvent::DeliveredBlock { id: VertexId::new(3, pid(1)), block: vec![9, 8, 7] },
            DagEvent::DeliveredBlock { id: VertexId::new(2, pid(0)), block: vec![] },
        ];
        for ev in events {
            let bytes = ev.encode();
            assert_eq!(DagEvent::<Vec<u8>>::decode(&bytes), Some(ev));
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = DagEvent::<Vec<u8>>::WaveConfirmed { wave: 1 }.encode();
        bytes.push(0);
        assert_eq!(DagEvent::<Vec<u8>>::decode(&bytes), None);
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = DagEvent::VertexInserted(sample_vertex()).encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                DagEvent::<Vec<u8>>::decode(&bytes[..cut]),
                None,
                "decode accepted a {cut}-byte prefix"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        assert_eq!(DagEvent::<Vec<u8>>::decode(&[99, 0, 0]), None);
        assert_eq!(DagEvent::<Vec<u8>>::decode(&[]), None);
    }

    #[test]
    fn invariant_violating_vertex_rejected_not_panicking() {
        // A round-1 vertex with a weak edge to round 0 violates the weak-edge
        // invariant; hand-craft its encoding.
        let mut bytes = vec![1u8]; // TAG_VERTEX
        for v in [0u64, 1, 0, 1, 0, 0, 0] {
            // source=0, round=1, strong_len=0, weak_len=1, weak=(r0,p0), block_len=0
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(DagEvent::<Vec<u8>>::decode(&bytes), None);
    }

    #[test]
    fn volatility_classification_follows_the_fsync_barriers() {
        let me = pid(2);
        // Another process's vertex: volatile (refetched on recovery).
        let other = DagEvent::VertexInserted(sample_vertex_from(pid(3))).encode();
        assert!(payload_is_volatile(&other, me));
        // My own vertex: a barrier (fsync-before-broadcast).
        let own = DagEvent::VertexInserted(sample_vertex_from(me)).encode();
        assert!(!payload_is_volatile(&own, me));
        // tReady: volatile; decisions/deliveries/prune markers: barriers.
        assert!(payload_is_volatile(&DagEvent::<Vec<u8>>::WaveConfirmed { wave: 2 }.encode(), me));
        let decided =
            DagEvent::<Vec<u8>>::WaveDecided { wave: 2, leader: VertexId::new(5, pid(0)) };
        assert!(!payload_is_volatile(&decided.encode(), me));
        let delivered =
            DagEvent::<Vec<u8>>::BlockDelivered { id: VertexId::new(4, pid(0)), wave: 1 };
        assert!(!payload_is_volatile(&delivered.encode(), me));
        assert!(!payload_is_volatile(&DagEvent::<Vec<u8>>::Pruned { up_to_round: 4 }.encode(), me));
        let residue =
            DagEvent::<Vec<u8>>::DeliveredBlock { id: VertexId::new(2, pid(1)), block: vec![1] };
        assert!(!payload_is_volatile(&residue.encode(), me), "transferable residue is a barrier");
        // Garbage: a barrier, never widening the damage window.
        assert!(!payload_is_volatile(&[], me));
        assert!(!payload_is_volatile(&[99, 1, 2], me));
        assert!(!payload_is_volatile(&[TAG_VERTEX, 3], me), "truncated source field");
    }

    fn sample_vertex_from(source: ProcessId) -> Vertex<Vec<u8>> {
        Vertex::new(source, 5, vec![7], ProcessSet::from_indices([0, 1, 3]), vec![])
    }

    #[test]
    fn absurd_length_fields_rejected() {
        let mut bytes = vec![1u8];
        for v in [0u64, 3, u64::MAX] {
            // source, round, strong_len = u64::MAX
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(DagEvent::<Vec<u8>>::decode(&bytes), None);
    }
}
