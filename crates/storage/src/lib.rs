//! Persistent DAG log + crash recovery for the asym-dag-rider reproduction.
//!
//! The paper (like DAG-Rider before it) models a crashed process as gone
//! forever, but deployed asymmetric-trust systems (Stellar, Ripple) survive
//! operator restarts by persisting what they have delivered: safety must
//! hold for a correct process *across its whole execution*, which a
//! recovering process can only honor by remembering its delivered set. This
//! crate provides that durability layer:
//!
//! * [`Storage`] — the backend trait, with [`MemStorage`] (deterministic,
//!   for the simulator), [`FileStorage`] (`std::fs`, no extra deps) and the
//!   type-erasing [`StorageBackend`] enum;
//! * [`Wal`] — length-prefixed + FNV-1a-checksummed record framing with a
//!   snapshot area; torn tails are dropped, corrupt records are hard
//!   errors;
//! * [`DagEvent`] — the durable event vocabulary (vertex inserted, wave
//!   confirmed, wave decided, block delivered) with a hand-rolled binary
//!   codec ([`BlockCodec`] abstracts the block payload);
//! * [`EventLog`] — the typed WAL a running process appends to, with
//!   cadence-driven snapshot compaction;
//! * [`RecoveredState`] — replay: fold snapshot + log back into a
//!   [`DagStore`](asym_dag::DagStore), the delivered set, the commit log
//!   and the confirmed-wave set, so a restarted process rejoins without
//!   ever delivering a block twice;
//! * **WAL pruning** — [`RecoveredState::prune_delivered`] /
//!   [`prune_dag`] garbage-collect the delivered-prefix *vertices* (the
//!   [`DagEvent::Pruned`] marker makes pruned snapshots self-describing),
//!   the way production DAG BFTs bound their stores; the delivered-set
//!   ids themselves are retained — they are what blocks re-delivery — so
//!   snapshots shrink to frontier-plus-bookkeeping rather than a hard
//!   constant bound;
//! * [`FaultyStorage`] — deterministic powerloss injection (torn final
//!   append, dropped unsynced suffix, lost/reordered snapshot rename)
//!   behind the [`Storage::powerloss`] hook, so crash-recovery is tested
//!   against what real disks do, not only clean shutdowns.
//!
//! The consensus crate (`asym-core`) implements [`BlockCodec`] for its
//! block type and drives the log from its insert/deliver/decide hooks; the
//! scenario harness (`asym-scenarios`) turns all of this into a restart
//! fault axis with recovery-specific invariant checkers. The end-to-end
//! persistence & recovery lifecycle — including the emit/replay/checker
//! table for every [`DagEvent`] variant and the delivered-state-transfer
//! path that serves deep laggards once everyone prunes — is documented in
//! `docs/ARCHITECTURE.md` at the repository root (CI keeps that table in
//! sync with the enum).
//!
//! # Example: log, crash, replay
//!
//! ```
//! use asym_quorum::{ProcessId, ProcessSet};
//! use asym_storage::{DagEvent, EventLog, MemStorage};
//! use asym_dag::Vertex;
//!
//! let mut log: EventLog<Vec<u8>, MemStorage> = EventLog::new(MemStorage::new());
//! log.append(&DagEvent::VertexInserted(Vertex::new(
//!     ProcessId::new(0),
//!     1,
//!     b"block".to_vec(),
//!     ProcessSet::from_indices([0, 1, 2]),
//!     vec![],
//! )))?;
//!
//! // The process dies; its in-memory state is gone. Replay the log:
//! let state = log.replay(3, ProcessId::new(0), Vec::new())?;
//! assert_eq!(state.own_round, 1);
//! assert_eq!(state.dag.len(), 3 + 1, "genesis + the logged vertex");
//! # Ok::<(), asym_storage::StorageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod event;
mod fault;
mod replay;
mod wal;

pub use backend::{FileStorage, MemStorage, Storage, StorageBackend, StorageError};
pub use event::{payload_is_volatile, BlockCodec, DagEvent};
pub use fault::{FaultyStorage, PowerlossPlan, VolatilePolicy};
pub use replay::{prune_dag, snapshot_events, EventLog, ReadEvents, RecoveredState};
pub use wal::{
    checksum, decode_area, frame_record, DecodedArea, Wal, WalContents, WalStats,
    DEFAULT_SNAPSHOT_EVERY, RECORD_HEADER_BYTES,
};
