//! Storage backends: where WAL bytes physically live.
//!
//! The [`Wal`](crate::Wal) framing layer is backend-agnostic; a [`Storage`]
//! implementation only has to provide two byte areas — an append-only *log*
//! and an atomically-replaced *snapshot* blob. Two backends ship:
//!
//! * [`MemStorage`] — a deterministic in-memory backend for the simulator
//!   (and for modelling crashes: clone the bytes, drop the process);
//! * [`FileStorage`] — a file-backed backend (`wal.log` + `snapshot.bin` in
//!   a directory) built on `std::fs` only, so it needs no extra
//!   dependencies.
//!
//! [`StorageBackend`] packs both behind one concrete type so protocol state
//! machines can hold "some storage" without becoming generic.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Why a storage operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// An I/O error from the backing medium (message of the OS error).
    Io(String),
    /// The stored bytes are unreadable: a complete record failed its
    /// checksum, or a snapshot/log area is structurally invalid.
    Corrupt {
        /// Byte offset (within the failing area) of the bad record.
        offset: usize,
        /// What exactly was wrong.
        detail: String,
    },
}

impl core::fmt::Display for StorageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { offset, detail } => {
                write!(f, "corrupt record at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

/// An append-only log area plus an atomically-replaced snapshot area.
///
/// Implementations must preserve append order and must make
/// [`Storage::write_snapshot`] + [`Storage::replace_log`] appear atomic
/// *per call*; the [`Wal`](crate::Wal) layer tolerates a crash between the
/// two calls (replay is idempotent).
pub trait Storage {
    /// Appends raw bytes to the end of the log area.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the medium rejects the write.
    fn append_log(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Reads the entire log area.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the medium cannot be read.
    fn read_log(&self) -> Result<Vec<u8>, StorageError>;

    /// Replaces the log area wholesale (used to truncate after a snapshot).
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the medium rejects the write.
    fn replace_log(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Atomically replaces the snapshot area.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the medium rejects the write.
    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Reads the snapshot area (`None` if no snapshot was ever written).
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the medium cannot be read.
    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError>;

    /// Models the volatile-state loss of a power failure at the instant the
    /// hosting process crashed — called once by a recovering owner *before*
    /// it replays. Durable backends lose nothing and do nothing (the
    /// default); fault-injecting wrappers
    /// ([`FaultyStorage`](crate::FaultyStorage)) apply their configured
    /// damage here.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if applying the modelled damage itself fails.
    fn powerloss(&mut self) -> Result<(), StorageError> {
        Ok(())
    }
}

/// Deterministic in-memory backend: the simulator's default.
///
/// "Durability" is the lifetime of the owning value — exactly right for a
/// simulated process whose crash is modelled as dropping its in-memory
/// protocol state while keeping the (notionally on-disk) log value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStorage {
    log: Vec<u8>,
    snapshot: Option<Vec<u8>>,
}

impl MemStorage {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Raw log bytes (test/bench observability).
    pub fn log_bytes(&self) -> &[u8] {
        &self.log
    }

    /// Raw snapshot bytes (test/bench observability).
    pub fn snapshot_bytes(&self) -> Option<&[u8]> {
        self.snapshot.as_deref()
    }

    /// Truncates the log to its first `len` bytes — the test hook that
    /// simulates a torn (partially persisted) final record.
    pub fn truncate_log(&mut self, len: usize) {
        self.log.truncate(len);
    }

    /// Flips one byte of the log — the test hook that simulates bit rot.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of bounds.
    pub fn corrupt_log_byte(&mut self, offset: usize) {
        self.log[offset] ^= 0xFF;
    }
}

impl Storage for MemStorage {
    fn append_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.log.extend_from_slice(bytes);
        Ok(())
    }

    fn read_log(&self) -> Result<Vec<u8>, StorageError> {
        Ok(self.log.clone())
    }

    fn replace_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.log = bytes.to_vec();
        Ok(())
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.snapshot = Some(bytes.to_vec());
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.snapshot.clone())
    }
}

/// File-backed backend: `wal.log` (append-only) and `snapshot.bin`
/// (written to a temp file, then renamed) inside one directory.
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    /// Kept open so appends do not reopen the file per record.
    log: File,
}

impl FileStorage {
    /// Opens (creating if needed) a file store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the directory or log file cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let log = OpenOptions::new().create(true).append(true).open(dir.join("wal.log"))?;
        Ok(FileStorage { dir, log })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }
}

impl Clone for FileStorage {
    /// Clones share the underlying files (a fresh append handle is opened).
    /// Two live clones appending concurrently would interleave records;
    /// clone only to hand the store to a restarted process.
    fn clone(&self) -> Self {
        FileStorage::open(&self.dir).expect("reopening an existing file store")
    }
}

impl Storage for FileStorage {
    fn append_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        self.log.write_all(bytes)?;
        self.log.sync_data()?;
        Ok(())
    }

    fn read_log(&self) -> Result<Vec<u8>, StorageError> {
        let mut bytes = Vec::new();
        File::open(self.log_path())?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn replace_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = self.dir.join("wal.log.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.log_path())?;
        self.log = OpenOptions::new().create(true).append(true).open(self.log_path())?;
        Ok(())
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        let tmp = self.dir.join("snapshot.bin.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.snapshot_path())?;
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError> {
        match File::open(self.snapshot_path()) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// One concrete type over both backends, so protocol state machines can own
/// "some storage" without a generic parameter.
#[derive(Clone, Debug)]
pub enum StorageBackend {
    /// Deterministic in-memory storage (the simulator default).
    Mem(MemStorage),
    /// File-backed storage.
    File(FileStorage),
    /// Powerloss-injecting wrapper around either backend.
    Faulty(Box<crate::FaultyStorage<StorageBackend>>),
}

impl StorageBackend {
    /// A fresh in-memory backend.
    pub fn in_memory() -> Self {
        StorageBackend::Mem(MemStorage::new())
    }

    /// A file backend rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the directory or log file cannot be created.
    pub fn file(dir: impl AsRef<Path>) -> Result<Self, StorageError> {
        Ok(StorageBackend::File(FileStorage::open(dir)?))
    }

    /// Wraps this backend in a [`FaultyStorage`](crate::FaultyStorage):
    /// the next [`Storage::powerloss`] applies `plan`'s damage.
    #[must_use]
    pub fn with_powerloss(self, plan: crate::PowerlossPlan) -> Self {
        StorageBackend::Faulty(Box::new(crate::FaultyStorage::new(self, plan)))
    }
}

impl Storage for StorageBackend {
    fn append_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        match self {
            StorageBackend::Mem(s) => s.append_log(bytes),
            StorageBackend::File(s) => s.append_log(bytes),
            StorageBackend::Faulty(s) => s.append_log(bytes),
        }
    }

    fn read_log(&self) -> Result<Vec<u8>, StorageError> {
        match self {
            StorageBackend::Mem(s) => s.read_log(),
            StorageBackend::File(s) => s.read_log(),
            StorageBackend::Faulty(s) => s.read_log(),
        }
    }

    fn replace_log(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        match self {
            StorageBackend::Mem(s) => s.replace_log(bytes),
            StorageBackend::File(s) => s.replace_log(bytes),
            StorageBackend::Faulty(s) => s.replace_log(bytes),
        }
    }

    fn write_snapshot(&mut self, bytes: &[u8]) -> Result<(), StorageError> {
        match self {
            StorageBackend::Mem(s) => s.write_snapshot(bytes),
            StorageBackend::File(s) => s.write_snapshot(bytes),
            StorageBackend::Faulty(s) => s.write_snapshot(bytes),
        }
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError> {
        match self {
            StorageBackend::Mem(s) => s.read_snapshot(),
            StorageBackend::File(s) => s.read_snapshot(),
            StorageBackend::Faulty(s) => s.read_snapshot(),
        }
    }

    fn powerloss(&mut self) -> Result<(), StorageError> {
        match self {
            StorageBackend::Mem(_) | StorageBackend::File(_) => Ok(()),
            StorageBackend::Faulty(s) => s.powerloss(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("asym-storage-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn mem_storage_round_trips() {
        let mut s = MemStorage::new();
        s.append_log(b"ab").unwrap();
        s.append_log(b"cd").unwrap();
        assert_eq!(s.read_log().unwrap(), b"abcd");
        assert_eq!(s.read_snapshot().unwrap(), None);
        s.write_snapshot(b"snap").unwrap();
        assert_eq!(s.read_snapshot().unwrap().unwrap(), b"snap");
        s.replace_log(b"").unwrap();
        assert!(s.read_log().unwrap().is_empty());
    }

    #[test]
    fn file_storage_round_trips_and_survives_reopen() {
        let dir = temp_dir("roundtrip");
        {
            let mut s = FileStorage::open(&dir).unwrap();
            s.append_log(b"hello ").unwrap();
            s.append_log(b"world").unwrap();
            s.write_snapshot(b"snap-v1").unwrap();
        }
        // A "restarted process": a fresh handle over the same directory.
        let s = FileStorage::open(&dir).unwrap();
        assert_eq!(s.read_log().unwrap(), b"hello world");
        assert_eq!(s.read_snapshot().unwrap().unwrap(), b"snap-v1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_storage_replace_log_truncates() {
        let dir = temp_dir("truncate");
        let mut s = FileStorage::open(&dir).unwrap();
        s.append_log(b"old-old-old").unwrap();
        s.replace_log(b"new").unwrap();
        assert_eq!(s.read_log().unwrap(), b"new");
        // The fresh append handle continues after the replacement.
        s.append_log(b"+tail").unwrap();
        assert_eq!(s.read_log().unwrap(), b"new+tail");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backend_enum_delegates() {
        let mut b = StorageBackend::in_memory();
        b.append_log(b"x").unwrap();
        assert_eq!(b.read_log().unwrap(), b"x");
        assert!(b.read_snapshot().unwrap().is_none());
    }
}
