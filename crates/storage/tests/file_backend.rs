//! Real-filesystem ports of the torn-tail / corrupt-record coverage that
//! previously existed only for `MemStorage` byte-tearing: the same crash
//! shapes are inflicted on an actual `FileStorage` directory (truncating
//! `wal.log`, flipping bytes on disk, shortening `snapshot.bin`) and must
//! produce the same recovery semantics — torn tails dropped, corrupt
//! complete records hard errors, reopened stores byte-identical.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use asym_dag::{Vertex, VertexId};
use asym_quorum::{ProcessId, ProcessSet};
use asym_storage::{DagEvent, EventLog, FileStorage, StorageError, Wal, RECORD_HEADER_BYTES};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A unique scratch directory per test, wiped before use.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asym-file-backend-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_log_path(dir: &PathBuf) -> PathBuf {
    dir.join("wal.log")
}

/// Truncates the on-disk log file to `len` bytes — the torn-write shape.
fn truncate_file(path: &PathBuf, len: u64) {
    let f = OpenOptions::new().write(true).open(path).unwrap();
    f.set_len(len).unwrap();
    f.sync_all().unwrap();
}

/// Flips one byte of a file in place — bit rot / foreign writer.
fn corrupt_file_byte(path: &PathBuf, offset: u64) {
    let mut f = OpenOptions::new().read(true).write(true).open(path).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&[b[0] ^ 0xFF]).unwrap();
    f.sync_all().unwrap();
}

#[test]
fn file_torn_tail_is_dropped_at_every_cut_point() {
    let dir = temp_dir("torn-tail");
    let mut wal = Wal::new(FileStorage::open(&dir).unwrap());
    wal.append(b"keep-me").unwrap();
    let keep = wal.backend().read_log_len();
    wal.append(b"torn-me").unwrap();
    let total = wal.backend().read_log_len();

    for cut in 1..=(total - keep) {
        truncate_file(&wal_log_path(&dir), (total - cut) as u64);
        // A restarted process: a fresh handle over the damaged directory.
        let reopened = Wal::new(FileStorage::open(&dir).unwrap());
        let contents = reopened.read().unwrap();
        assert_eq!(contents.log, vec![b"keep-me".to_vec()], "cut={cut}");
        assert_eq!(contents.torn_tail_bytes, total - keep - cut, "cut={cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_corrupt_complete_record_is_a_hard_error() {
    let dir = temp_dir("corrupt-record");
    let mut wal = Wal::new(FileStorage::open(&dir).unwrap());
    wal.append(b"good").unwrap();
    wal.append(b"tail").unwrap();
    // Flip a payload byte of the *first* record: complete, wrong checksum.
    corrupt_file_byte(&wal_log_path(&dir), RECORD_HEADER_BYTES as u64);
    let reopened = Wal::new(FileStorage::open(&dir).unwrap());
    match reopened.read() {
        Err(StorageError::Corrupt { offset: 0, detail }) => {
            assert!(detail.contains("checksum"), "{detail}");
        }
        other => panic!("expected corruption error, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_corrupt_checksum_field_is_a_hard_error() {
    let dir = temp_dir("corrupt-sum");
    let mut wal = Wal::new(FileStorage::open(&dir).unwrap());
    wal.append(b"payload").unwrap();
    wal.append(b"tail").unwrap();
    corrupt_file_byte(&wal_log_path(&dir), 4); // first checksum byte
    let reopened = Wal::new(FileStorage::open(&dir).unwrap());
    assert!(matches!(reopened.read(), Err(StorageError::Corrupt { offset: 0, .. })));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_shortened_snapshot_is_corruption_not_a_torn_tail() {
    let dir = temp_dir("short-snapshot");
    let mut wal = Wal::new(FileStorage::open(&dir).unwrap());
    wal.install_snapshot(&[b"state-record"]).unwrap();
    let snap = dir.join("snapshot.bin");
    let len = std::fs::metadata(&snap).unwrap().len();
    truncate_file(&snap, len - 2);
    let reopened = Wal::new(FileStorage::open(&dir).unwrap());
    assert!(
        matches!(reopened.read(), Err(StorageError::Corrupt { .. })),
        "snapshots are written atomically; a short one is real corruption"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn file_event_log_replays_identically_after_reopen_and_tear() {
    // End-to-end over typed events: populate, tear mid-final-record on
    // disk, reopen, replay — the surviving prefix must fold exactly like
    // the same prefix in memory.
    let dir = temp_dir("event-replay");
    let mut log: EventLog<Vec<u8>, FileStorage> =
        EventLog::new(FileStorage::open(&dir).unwrap()).with_snapshot_every(0);
    for r in 1..=3u64 {
        for i in 0..3 {
            log.append(&DagEvent::VertexInserted(Vertex::new(
                pid(i),
                r,
                vec![r as u8, i as u8],
                ProcessSet::full(3),
                vec![],
            )))
            .unwrap();
        }
    }
    log.append(&DagEvent::WaveConfirmed { wave: 1 }).unwrap();
    log.append(&DagEvent::BlockDelivered { id: VertexId::new(1, pid(0)), wave: 1 }).unwrap();
    let full_len = std::fs::metadata(wal_log_path(&dir)).unwrap().len();
    // Tear 3 bytes off the final record (the BlockDelivered).
    truncate_file(&wal_log_path(&dir), full_len - 3);

    let reopened: EventLog<Vec<u8>, FileStorage> = EventLog::new(FileStorage::open(&dir).unwrap());
    let state = reopened.replay(3, pid(0), Vec::new()).unwrap();
    assert_eq!(state.dag.len(), 3 + 9, "genesis + all 9 logged vertices survive");
    assert!(state.confirmed_waves.contains(&1));
    assert!(state.delivered.is_empty(), "the torn delivery never happened durably");
    assert!(state.torn_tail_bytes > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Test-only helper: current on-disk log length.
trait LogLen {
    fn read_log_len(&self) -> usize;
}

impl LogLen for FileStorage {
    fn read_log_len(&self) -> usize {
        use asym_storage::Storage as _;
        self.read_log().unwrap().len()
    }
}
