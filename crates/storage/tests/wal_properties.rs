//! Property-based coverage of the WAL: encode/decode round-trips for
//! arbitrary events, recovery from a torn tail at *every* cut point (the
//! torn final record is dropped, all prior records replay), and
//! corrupted-checksum records being hard errors rather than silent skips.

use proptest::prelude::*;

use asym_dag::{Vertex, VertexId};
use asym_quorum::{ProcessId, ProcessSet};
use asym_storage::{DagEvent, EventLog, MemStorage, StorageError, Wal, RECORD_HEADER_BYTES};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// Deterministically expands a `u64` draw into one event (covering every
/// variant and a range of shapes).
fn event_from_seed(seed: u64) -> DagEvent<Vec<u8>> {
    let k = seed % 4;
    let a = (seed / 4) % 7;
    let b = (seed / 28) % 5;
    match k {
        0 => {
            let round = 2 + a; // ≥2 so weak edges to round 0 are legal
            let strong = ProcessSet::from_indices((0..=(b as usize % 4)).collect::<Vec<_>>());
            let weak =
                if b % 2 == 0 { vec![VertexId::new(0, pid(a as usize % 4))] } else { vec![] };
            let block: Vec<u8> = (0..(seed % 17) as u8).collect();
            DagEvent::VertexInserted(Vertex::new(pid(b as usize), round, block, strong, weak))
        }
        1 => DagEvent::WaveConfirmed { wave: 1 + a },
        2 => {
            DagEvent::WaveDecided { wave: 1 + a, leader: VertexId::new(1 + b, pid(a as usize % 4)) }
        }
        _ => DagEvent::BlockDelivered { id: VertexId::new(a, pid(b as usize % 4)), wave: b },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary event sequences round-trip bit-exactly through the framed
    /// WAL.
    #[test]
    fn encode_decode_round_trip(seeds in proptest::collection::vec(0u64..1_000_000, 0..30)) {
        let events: Vec<DagEvent<Vec<u8>>> = seeds.iter().copied().map(event_from_seed).collect();
        let mut log: EventLog<Vec<u8>, MemStorage> =
            EventLog::new(MemStorage::new()).with_snapshot_every(0);
        for ev in &events {
            log.append(ev).unwrap();
        }
        let read = log.events().unwrap();
        prop_assert_eq!(read.events, events);
        prop_assert_eq!(read.torn_tail_bytes, 0);
        prop_assert_eq!(read.from_snapshot, 0);
    }

    /// Tearing the log at an arbitrary byte boundary drops *only* the torn
    /// final record: every complete record before the cut still replays.
    #[test]
    fn torn_tail_drops_only_the_final_record(
        seeds in proptest::collection::vec(0u64..1_000_000, 1..20),
        cut_seed in 1u64..10_000,
    ) {
        let events: Vec<DagEvent<Vec<u8>>> = seeds.iter().copied().map(event_from_seed).collect();
        let mut wal = Wal::new(MemStorage::new());
        // Track each record's end offset so we know which prefix survives.
        let mut ends = Vec::new();
        for ev in &events {
            wal.append(&ev.encode()).unwrap();
            ends.push(wal.backend().log_bytes().len());
        }
        let total = *ends.last().unwrap();
        let cut = 1 + (cut_seed as usize % (total - 1).max(1)); // 1..total
        wal.backend_mut().truncate_log(total - cut);
        let contents = wal.read().unwrap();
        // The survivors are exactly the records wholly before the cut.
        let expected: Vec<Vec<u8>> = events
            .iter()
            .zip(&ends)
            .filter(|(_, end)| **end <= total - cut)
            .map(|(ev, _)| ev.encode())
            .collect();
        prop_assert_eq!(contents.log.len(), expected.len());
        prop_assert_eq!(&contents.log, &expected);
        // Torn bytes are exactly what lies between the last whole record
        // and the cut (zero when the cut falls on a record boundary).
        let survived_bytes =
            ends.iter().copied().filter(|end| *end <= total - cut).max().unwrap_or(0);
        prop_assert_eq!(contents.torn_tail_bytes, total - cut - survived_bytes);
        // And the surviving prefix still decodes as events.
        for record in &contents.log {
            prop_assert!(DagEvent::<Vec<u8>>::decode(record).is_some());
        }
    }

    /// Flipping any single byte of a *complete* record makes reading the
    /// log a hard `Corrupt` error — never a silent skip. (Length-prefix
    /// corruption may instead surface as a torn tail, which is also not a
    /// silent skip: bytes are dropped only at the very end of the log.)
    #[test]
    fn corrupted_byte_never_silently_skips(
        seeds in proptest::collection::vec(0u64..1_000_000, 2..10),
        victim_seed in 0u64..10_000,
    ) {
        let events: Vec<DagEvent<Vec<u8>>> = seeds.iter().copied().map(event_from_seed).collect();
        let mut wal = Wal::new(MemStorage::new());
        for ev in &events {
            wal.append(&ev.encode()).unwrap();
        }
        let total = wal.backend().log_bytes().len();
        let victim = victim_seed as usize % total;
        wal.backend_mut().corrupt_log_byte(victim);
        match wal.read() {
            // The expected outcome: corruption detected.
            Err(StorageError::Corrupt { .. }) => {}
            // A flipped *length* byte can reframe the rest of the log as a
            // torn tail; records must then only be lost from the flip
            // onward, never skipped in the middle.
            Ok(contents) => {
                prop_assert!(
                    contents.torn_tail_bytes > 0,
                    "corruption at byte {victim} vanished without a trace"
                );
                let intact_before_flip = victim / (RECORD_HEADER_BYTES + 1);
                prop_assert!(contents.log.len() <= events.len());
                let _ = intact_before_flip;
            }
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }

    /// Snapshot compaction preserves replay equivalence for arbitrary
    /// logged prefixes: (snapshot of state) + tail ≡ full log.
    #[test]
    fn snapshot_preserves_replay(seeds in proptest::collection::vec(0u64..1_000_000, 1..24)) {
        // Build a *replayable* log: vertices must respect insert order, so
        // use rounds over a fixed 3-process full DAG plus bookkeeping.
        let mut log: EventLog<Vec<u8>, MemStorage> =
            EventLog::new(MemStorage::new()).with_snapshot_every(0);
        let rounds = 1 + seeds.len() as u64 / 4;
        for r in 1..=rounds {
            for i in 0..3 {
                log.append(&DagEvent::VertexInserted(Vertex::new(
                    pid(i),
                    r,
                    vec![r as u8, i as u8],
                    ProcessSet::full(3),
                    vec![],
                )))
                .unwrap();
            }
        }
        for (k, s) in seeds.iter().enumerate() {
            match s % 3 {
                0 => log.append(&DagEvent::WaveConfirmed { wave: 1 + s % 9 }).unwrap(),
                1 => log
                    .append(&DagEvent::BlockDelivered {
                        id: VertexId::new(1 + s % rounds, pid((s % 3) as usize)),
                        wave: 1,
                    })
                    .unwrap(),
                _ => {
                    let wave = 1 + k as u64;
                    log.append(&DagEvent::WaveDecided {
                        wave,
                        leader: VertexId::new(1, pid((s % 3) as usize)),
                    })
                    .unwrap()
                }
            }
        }
        let direct = log.replay(3, pid(0), Vec::new()).unwrap();

        let mut compacted: EventLog<Vec<u8>, MemStorage> = EventLog::new(MemStorage::new());
        compacted.install_snapshot(&direct.to_snapshot_events()).unwrap();
        let via_snapshot = compacted.replay(3, pid(0), Vec::new()).unwrap();
        prop_assert_eq!(via_snapshot.dag.len(), direct.dag.len());
        prop_assert_eq!(via_snapshot.own_round, direct.own_round);
        prop_assert_eq!(via_snapshot.delivered, direct.delivered);
        prop_assert_eq!(via_snapshot.commit_log, direct.commit_log);
        prop_assert_eq!(via_snapshot.decided_wave, direct.decided_wave);
        prop_assert_eq!(via_snapshot.confirmed_waves, direct.confirmed_waves);
    }
}

/// Exhaustive (non-property) torn-tail sweep at every byte of the final
/// record, pinning the exact boundary semantics.
#[test]
fn torn_tail_every_cut_of_final_record() {
    let mut wal = Wal::new(MemStorage::new());
    wal.append(&DagEvent::<Vec<u8>>::WaveConfirmed { wave: 1 }.encode()).unwrap();
    let keep = wal.backend().log_bytes().len();
    wal.append(&DagEvent::<Vec<u8>>::WaveConfirmed { wave: 2 }.encode()).unwrap();
    let total = wal.backend().log_bytes().len();
    for cut in 1..=(total - keep) {
        let mut torn = wal.clone();
        torn.backend_mut().truncate_log(total - cut);
        let contents = torn.read().unwrap();
        assert_eq!(contents.log.len(), 1, "cut={cut}");
        assert_eq!(contents.torn_tail_bytes, total - keep - cut, "cut={cut}");
    }
}

/// A corrupted checksum *field* (not payload) is also a hard error.
#[test]
fn corrupted_checksum_field_is_hard_error() {
    let mut wal = Wal::new(MemStorage::new());
    wal.append(b"payload").unwrap();
    wal.append(b"tail").unwrap();
    wal.backend_mut().corrupt_log_byte(4); // first checksum byte of record 0
    assert!(matches!(wal.read(), Err(StorageError::Corrupt { offset: 0, .. })));
}
