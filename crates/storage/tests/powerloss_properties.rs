//! Property coverage of the powerloss fault injector: for arbitrary event
//! sequences, snapshot points and damage seeds, replay of a
//! powerloss-damaged store — in-memory **and** file-backed — either
//! recovers a consistent *prefix* of the pre-damage history or hard-errors.
//! It never silently diverges: no reordering, no mid-log gaps, no events
//! that were never appended.

use proptest::prelude::*;

use asym_dag::Vertex;
use asym_quorum::{ProcessId, ProcessSet};
use asym_storage::{
    DagEvent, EventLog, FaultyStorage, FileStorage, MemStorage, PowerlossPlan, Storage,
    StorageBackend, StorageError,
};

fn pid(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// A replayable event stream: full rounds of a 3-process DAG with
/// bookkeeping interleaved at wave boundaries (insert order respects
/// parents, which is what makes any *prefix* of it replayable too).
fn workload(rounds: u64) -> Vec<DagEvent<Vec<u8>>> {
    let mut events = Vec::new();
    for r in 1..=rounds {
        for i in 0..3 {
            events.push(DagEvent::VertexInserted(Vertex::new(
                pid(i),
                r,
                vec![r as u8, i as u8],
                ProcessSet::full(3),
                vec![],
            )));
        }
        if r.is_multiple_of(4) {
            events.push(DagEvent::WaveConfirmed { wave: r / 4 });
        }
    }
    events
}

/// Applies the scenario under test to any backend: append everything,
/// optionally snapshot at `snapshot_at` (then keep appending), powerloss,
/// and return the damaged store's replay result.
fn damage_and_replay<S: Storage + Clone>(
    backend: S,
    events: &[DagEvent<Vec<u8>>],
    snapshot_at: Option<usize>,
    plan: PowerlossPlan,
) -> Result<usize, StorageError> {
    let mut log: EventLog<Vec<u8>, FaultyStorage<S>> =
        EventLog::new(FaultyStorage::new(backend, plan)).with_snapshot_every(0);
    for (k, ev) in events.iter().enumerate() {
        log.append(ev).unwrap();
        if snapshot_at == Some(k) {
            let state = log.replay(3, pid(0), Vec::new()).unwrap();
            log.install_snapshot(&state.to_snapshot_events()).unwrap();
        }
    }
    log.powerloss().unwrap();
    let state = log.replay(3, pid(0), Vec::new())?;
    Ok(state.dag.len())
}

/// The consistency oracle: the damaged replay must equal the replay of
/// some prefix of the original event sequence (idempotent duplicates from
/// snapshot overlap collapse, so "prefix" is measured in surviving DAG
/// height/content, which grows monotonically with the prefix).
fn assert_prefix_or_error<S: Storage + Clone>(
    backend: S,
    events: &[DagEvent<Vec<u8>>],
    snapshot_at: Option<usize>,
    seed: u64,
) -> Result<(), TestCaseError> {
    let result = damage_and_replay(backend, events, snapshot_at, PowerlossPlan::all_volatile(seed));
    match result {
        // A hard error (corruption, I/O) is a legal outcome — the process
        // fail-stops instead of diverging.
        Err(_) => Ok(()),
        Ok(dag_len) => {
            // Enumerate the DAG sizes every prefix replays to; the damaged
            // replay must land on one of them.
            let mut valid = std::collections::HashSet::new();
            for cut in 0..=events.len() {
                let mut log: EventLog<Vec<u8>, MemStorage> =
                    EventLog::new(MemStorage::new()).with_snapshot_every(0);
                for ev in &events[..cut] {
                    log.append(ev).unwrap();
                }
                valid.insert(log.replay(3, pid(0), Vec::new()).unwrap().dag.len());
            }
            prop_assert!(
                valid.contains(&dag_len),
                "damaged replay reached {dag_len} vertices, not any prefix state {valid:?}"
            );
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In-memory backend: damaged replay is a prefix or a hard error.
    #[test]
    fn mem_powerloss_recovers_a_prefix_or_errors(
        rounds in 1u64..8,
        snapshot_seed in 0usize..40,
        seed in 0u64..10_000,
    ) {
        let events = workload(rounds);
        let snapshot_at =
            (snapshot_seed < events.len()).then_some(snapshot_seed);
        assert_prefix_or_error(MemStorage::new(), &events, snapshot_at, seed)?;
    }

    /// File backend: the same property against real `std::fs` files.
    #[test]
    fn file_powerloss_recovers_a_prefix_or_errors(
        rounds in 1u64..6,
        snapshot_seed in 0usize..30,
        seed in 0u64..10_000,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "asym-powerloss-prop-{}-{seed}-{rounds}-{snapshot_seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let events = workload(rounds);
        let snapshot_at = (snapshot_seed < events.len()).then_some(snapshot_seed);
        let result = assert_prefix_or_error(
            FileStorage::open(&dir).unwrap(),
            &events,
            snapshot_at,
            seed,
        );
        let _ = std::fs::remove_dir_all(&dir);
        result?;
    }
}

#[test]
fn powerloss_through_the_backend_enum_fires_once() {
    // The StorageBackend::Faulty plumbing end-to-end: wrap, damage, reopen.
    let backend = StorageBackend::in_memory().with_powerloss(PowerlossPlan::all_volatile(11));
    let mut log: EventLog<Vec<u8>, StorageBackend> = EventLog::new(backend).with_snapshot_every(0);
    for ev in workload(4) {
        log.append(&ev).unwrap();
    }
    let before = log.replay(3, pid(0), Vec::new()).unwrap().dag.len();
    log.powerloss().unwrap();
    let after = log.replay(3, pid(0), Vec::new()).unwrap().dag.len();
    assert!(after <= before);
    // Idempotent: a second powerloss (e.g. a second crash of the same
    // incarnation) changes nothing.
    log.powerloss().unwrap();
    assert_eq!(log.replay(3, pid(0), Vec::new()).unwrap().dag.len(), after);
}
