//! Pure dataflow evaluation of round-based quorum gathering — the executable
//! form of the paper's **Listing 1** and the generator of **Figures 2–4**.
//!
//! The Appendix-A counterexample executes Algorithm 2 under the schedule
//! "every process hears exactly one of its quorums per round, then advances".
//! Under that schedule the protocol reduces to three rounds of set unions:
//!
//! ```text
//! S_i = Q_i                      (round 1: initial values from my quorum)
//! T_i = ⋃_{j ∈ Q_i} S_j          (round 2)
//! U_i = ⋃_{j ∈ Q_i} T_j          (round 3)
//! ```
//!
//! where values are identified with their originating process. This module
//! computes those fixpoints for *any* per-process quorum choice, checks for a
//! common core exactly as the paper's Python script does, and generalizes to
//! `r` rounds (the paper's log-round remark).

use asym_quorum::{counterexample, ProcessId, ProcessSet};

/// One round of the quorum-union dataflow: `next_i = ⋃_{j ∈ Q_i} prev_j`.
pub fn union_round(quorums: &[ProcessSet], prev: &[ProcessSet]) -> Vec<ProcessSet> {
    quorums
        .iter()
        .map(|q| {
            let mut acc = ProcessSet::new();
            for j in q {
                acc.union_with(&prev[j.index()]);
            }
            acc
        })
        .collect()
}

/// The S/T/U sets of the three-round execution (Figures 2, 3, 4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundSets {
    /// Round-1 sets: `S_i = Q_i` (Figure 2).
    pub s: Vec<ProcessSet>,
    /// Round-2 sets: `T_i` (Figure 3).
    pub t: Vec<ProcessSet>,
    /// Round-3 sets: `U_i` (Figure 4) — the delivered outputs.
    pub u: Vec<ProcessSet>,
}

/// Runs the three-round dataflow of Listing 1 for one chosen quorum per
/// process.
pub fn three_rounds(quorums: &[ProcessSet]) -> RoundSets {
    let s: Vec<ProcessSet> = quorums.to_vec();
    let t = union_round(quorums, &s);
    let u = union_round(quorums, &t);
    RoundSets { s, t, u }
}

/// Runs `rounds ≥ 1` rounds of the dataflow and returns the final sets
/// (round 1 = the quorums themselves).
pub fn n_rounds(quorums: &[ProcessSet], rounds: usize) -> Vec<ProcessSet> {
    assert!(rounds >= 1, "at least the initial round is required");
    let mut cur: Vec<ProcessSet> = quorums.to_vec();
    for _ in 1..rounds {
        cur = union_round(quorums, &cur);
    }
    cur
}

/// The paper's final check (`all_candidates`): which processes' S-sets are
/// contained in **every** final set? Non-empty ⟺ a common core exists.
pub fn common_core_candidates(s_sets: &[ProcessSet], finals: &[ProcessSet]) -> ProcessSet {
    (0..s_sets.len())
        .map(ProcessId::new)
        .filter(|j| finals.iter().all(|u| s_sets[j.index()].is_subset(u)))
        .collect()
}

/// Convenience: `true` if the three-round dataflow reaches a common core.
pub fn has_common_core(quorums: &[ProcessSet]) -> bool {
    let rs = three_rounds(quorums);
    !common_core_candidates(&rs.s, &rs.u).is_empty()
}

/// The Figure-1 quorum choice (one quorum per process) as a plain vector,
/// ready for the dataflow functions.
pub fn fig1_quorum_choice() -> Vec<ProcessSet> {
    (0..counterexample::FIG1_N).map(|i| counterexample::fig1_quorum_of(ProcessId::new(i))).collect()
}

/// Number of dataflow rounds after which a common core appears for the given
/// quorum choice, probing up to `max_rounds`. Returns `None` if none appears
/// within the probe budget.
///
/// The paper remarks that quorum consistency forces a common core within
/// `log n` rounds; this function measures the actual requirement.
pub fn rounds_to_common_core(quorums: &[ProcessSet], max_rounds: usize) -> Option<usize> {
    let s_sets: Vec<ProcessSet> = quorums.to_vec();
    let mut cur = s_sets.clone();
    for round in 1..=max_rounds {
        if !common_core_candidates(&s_sets, &cur).is_empty() {
            return Some(round);
        }
        cur = union_round(quorums, &cur);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::combinatorics::combinations;
    use proptest::prelude::*;

    #[test]
    fn fig1_reproduces_lemma_3_2() {
        // Lemma 3.2 / Listing 1: the 30-process system reaches NO common core
        // after the three rounds of Algorithm 2.
        let quorums = fig1_quorum_choice();
        let rs = three_rounds(&quorums);
        let candidates = common_core_candidates(&rs.s, &rs.u);
        assert!(
            candidates.is_empty(),
            "paper's counterexample must yield an empty candidate set, got {candidates}"
        );
        assert!(!has_common_core(&quorums));
    }

    #[test]
    fn fig1_u_sets_all_miss_some_tail_process() {
        // Appendix A's explanation: every U set misses at least one process
        // in the (one-based) range [16, 30].
        let rs = three_rounds(&fig1_quorum_choice());
        let tail = ProcessSet::from_paper_labels(16..=30);
        for (i, u) in rs.u.iter().enumerate() {
            assert!(!tail.is_subset(u), "U set of process {} contains the whole tail range", i + 1);
        }
    }

    #[test]
    fn rounds_grow_when_quorums_are_reflexive() {
        // If every process belongs to its own quorum, the per-round sets are
        // monotone: S_i ⊆ T_i ⊆ U_i. (Figure 1 is NOT reflexive — e.g.
        // process 5's quorum omits process 5 — so this holds only here.)
        let n = 9;
        let quorums: Vec<ProcessSet> =
            (0..n).map(|i| (0..5).map(|k| (i + k) % n).collect()).collect();
        for (i, q) in quorums.iter().enumerate() {
            assert!(q.contains(ProcessId::new(i)));
        }
        let rs = three_rounds(&quorums);
        for i in 0..n {
            assert!(rs.s[i].is_subset(&rs.t[i]), "S_{i} ⊄ T_{i}");
            assert!(rs.t[i].is_subset(&rs.u[i]), "T_{i} ⊄ U_{i}");
        }
    }

    #[test]
    fn fig1_has_non_reflexive_quorums() {
        // The counterexample exploits processes outside their own quorums.
        let quorums = fig1_quorum_choice();
        let non_reflexive: Vec<usize> =
            (0..quorums.len()).filter(|i| !quorums[*i].contains(ProcessId::new(*i))).collect();
        assert!(!non_reflexive.is_empty());
        assert!(non_reflexive.contains(&4), "process 5 (paper label) omits itself");
    }

    #[test]
    fn fig1_eventually_reaches_common_core_with_more_rounds() {
        // The paper: consistency forces a common core in O(log n) rounds.
        let quorums = fig1_quorum_choice();
        let rounds = rounds_to_common_core(&quorums, 16).expect("must converge within log n");
        assert!(rounds > 3, "counterexample defeats exactly the 3-round protocol");
        assert!(rounds <= 6, "log2(30) ≈ 5 rounds should suffice, got {rounds}");
    }

    #[test]
    fn threshold_quorums_reach_common_core_in_three_rounds() {
        // Classic n=3f+1 with (n−f)-quorums: the symmetric gather argument.
        for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
            // Process i's quorum: the n−f processes starting at i (wrapping).
            let quorums: Vec<ProcessSet> =
                (0..n).map(|i| (0..n - f).map(|k| (i + k) % n).collect()).collect();
            assert!(has_common_core(&quorums), "n={n}, f={f}");
        }
    }

    #[test]
    fn small_systems_always_have_common_core() {
        // §3.2: "any system having less than 16 processes will always satisfy
        // the common core property" (given pairwise-intersecting quorums).
        // Exhaustive-ish check for n ≤ 6 over all single-quorum choices with
        // quorums of size ≥ ⌈(n+1)/2⌉ (pairwise intersection guaranteed).
        for n in 3..=6usize {
            let q = n / 2 + 1;
            let all_quorums: Vec<ProcessSet> = combinations(&ProcessSet::full(n), q).collect();
            // Sample systematically: assign quorum (i * 7 + s) mod |all| to
            // process i for a spread of seeds s.
            for s in 0..all_quorums.len() {
                let choice: Vec<ProcessSet> =
                    (0..n).map(|i| all_quorums[(i * 7 + s) % all_quorums.len()].clone()).collect();
                assert!(has_common_core(&choice), "n={n} seed={s}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_majority_quorums_below_16_processes_have_common_core(
            n in 3usize..12,
            seed in 0u64..5000,
        ) {
            // Random single-quorum-per-process systems with pairwise
            // intersecting quorums (majority size) on < 16 processes: the
            // paper says 3 rounds always suffice.
            use rand::rngs::SmallRng;
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = SmallRng::seed_from_u64(seed);
            let q = n / 2 + 1;
            let quorums: Vec<ProcessSet> = (0..n)
                .map(|_| {
                    let mut ids: Vec<usize> = (0..n).collect();
                    ids.shuffle(&mut rng);
                    ids.into_iter().take(q).collect()
                })
                .collect();
            prop_assert!(has_common_core(&quorums), "n={} quorums={:?}", n, quorums);
        }

        #[test]
        fn prop_final_sets_monotone_for_reflexive_quorums(
            n in 3usize..10,
            seed in 0u64..1000,
        ) {
            use rand::rngs::SmallRng;
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let mut rng = SmallRng::seed_from_u64(seed);
            let q = n / 2 + 1;
            // Reflexive random quorums: i always belongs to its own quorum.
            let quorums: Vec<ProcessSet> = (0..n)
                .map(|i| {
                    let mut ids: Vec<usize> = (0..n).filter(|j| *j != i).collect();
                    ids.shuffle(&mut rng);
                    let mut s: ProcessSet = ids.into_iter().take(q - 1).collect();
                    s.insert(ProcessId::new(i));
                    s
                })
                .collect();
            let r2 = n_rounds(&quorums, 2);
            let r3 = n_rounds(&quorums, 3);
            for i in 0..n {
                prop_assert!(r2[i].is_subset(&r3[i]));
            }
        }
    }
}
