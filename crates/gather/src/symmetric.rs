//! **Algorithm 1** — the classic three-round symmetric gather
//! (Canetti–Rabin / Abraham et al.), reproduced as the paper presents it.
//!
//! Each process reliably broadcasts its input; after hearing `n − f` inputs
//! it distributes its set `S`; after `n − f` `DISTRIBUTE_S` messages it
//! distributes the union `T`; after `n − f` `DISTRIBUTE_T` messages it
//! delivers the union `U`. The combinatorial counting argument guarantees a
//! common core of size `n − f` — the argument that (per the paper's §3.2)
//! does **not** survive the replacement of thresholds by asymmetric quorums.

use asym_broadcast::{BcastMsg, BroadcastHub};
use asym_quorum::{ProcessId, ProcessSet};
use asym_sim::{Context, Protocol};

use crate::common::{merge_pairs, to_wire, ValueSet};

/// Wire messages of the symmetric gather.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymGatherMsg<V> {
    /// Reliable-broadcast layer (Bracha) for the initial values.
    Rb(BcastMsg<V>),
    /// Round-2 set distribution.
    DistS(Vec<(ProcessId, V)>),
    /// Round-3 set distribution.
    DistT(Vec<(ProcessId, V)>),
}

/// One process of the symmetric gather protocol (Algorithm 1).
///
/// *Input*: the value to `g-propose`. *Output*: the `g-delivered` set.
#[derive(Clone, Debug)]
pub struct SymGather<V> {
    me: ProcessId,
    n: usize,
    f: usize,
    hub: BroadcastHub<V>,
    s: ValueSet<V>,
    t: ValueSet<V>,
    u: ValueSet<V>,
    dist_s_from: ProcessSet,
    dist_t_from: ProcessSet,
    sent_s: bool,
    sent_t: bool,
    delivered: bool,
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> SymGather<V> {
    /// Creates a gather process for the `f`-of-`n` threshold setting.
    ///
    /// # Panics
    ///
    /// Panics if `n <= 3f` (the threshold Q³ bound).
    pub fn new(me: ProcessId, n: usize, f: usize) -> Self {
        assert!(n > 3 * f, "symmetric gather requires n > 3f");
        SymGather {
            me,
            n,
            f,
            hub: BroadcastHub::symmetric(me, n, f),
            s: ValueSet::new(),
            t: ValueSet::new(),
            u: ValueSet::new(),
            dist_s_from: ProcessSet::new(),
            dist_t_from: ProcessSet::new(),
            sent_s: false,
            sent_t: false,
            delivered: false,
        }
    }

    /// This process's identity.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// The current `S` set (observer inspection).
    pub fn s_set(&self) -> &ValueSet<V> {
        &self.s
    }

    /// `true` once `g-deliver` fired.
    pub fn has_delivered(&self) -> bool {
        self.delivered
    }

    fn quota(&self) -> usize {
        self.n - self.f
    }

    fn advance(&mut self, ctx: &mut Context<'_, SymGatherMsg<V>, ValueSet<V>>) {
        if !self.sent_s && self.s.len() >= self.quota() {
            self.sent_s = true;
            ctx.broadcast(SymGatherMsg::DistS(to_wire(&self.s)));
        }
        if !self.sent_t && self.dist_s_from.len() >= self.quota() {
            self.sent_t = true;
            ctx.broadcast(SymGatherMsg::DistT(to_wire(&self.t)));
        }
        if !self.delivered && self.dist_t_from.len() >= self.quota() {
            self.delivered = true;
            ctx.output(self.u.clone());
        }
    }
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> Protocol for SymGather<V> {
    type Msg = SymGatherMsg<V>;
    type Input = V;
    type Output = ValueSet<V>;

    fn on_input(&mut self, value: V, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        for m in self.hub.broadcast(0, value) {
            ctx.broadcast(SymGatherMsg::Rb(m));
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match msg {
            SymGatherMsg::Rb(inner) => {
                let (out, deliveries) = self.hub.on_message(from, inner);
                for m in out {
                    ctx.broadcast(SymGatherMsg::Rb(m));
                }
                for d in deliveries {
                    merge_pairs(&mut self.s, &[(d.origin, d.value)]);
                }
            }
            SymGatherMsg::DistS(pairs) => {
                if self.dist_s_from.insert(from) {
                    merge_pairs(&mut self.t, &pairs);
                }
            }
            SymGatherMsg::DistT(pairs) => {
                if self.dist_t_from.insert(from) {
                    merge_pairs(&mut self.u, &pairs);
                }
            }
        }
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{check_pairwise_agreement, find_common_core};
    use asym_quorum::topology;
    use asym_sim::{scheduler, FaultMode, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn run_cluster(
        n: usize,
        f: usize,
        seed: u64,
        crashed: &[usize],
    ) -> Simulation<SymGather<u64>, scheduler::Random> {
        let procs: Vec<SymGather<u64>> = (0..n).map(|i| SymGather::new(pid(i), n, f)).collect();
        let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
        for c in crashed {
            sim = sim.with_fault(pid(*c), FaultMode::CrashedFromStart);
        }
        for i in 0..n {
            if !crashed.contains(&i) {
                sim.input(pid(i), 1000 + i as u64);
            }
        }
        let report = sim.run(10_000_000);
        assert!(report.quiescent, "gather must terminate");
        sim
    }

    #[test]
    fn failure_free_run_has_common_core_of_size_n_minus_f() {
        for seed in 0..8 {
            let n = 4;
            let sim = run_cluster(n, 1, seed, &[]);
            let outs: Vec<ValueSet<u64>> = (0..n).map(|i| sim.outputs(pid(i))[0].clone()).collect();
            let refs: Vec<(ProcessId, &ValueSet<u64>)> =
                outs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
            check_pairwise_agreement(&refs).expect("agreement");
            // Common core = some 3-quorum in every output (threshold view).
            let t = topology::uniform_threshold(n, 1);
            let core = find_common_core(&t.quorums, &ProcessSet::full(n), &refs);
            assert!(core.is_some(), "seed {seed}: no common core");
        }
    }

    #[test]
    fn tolerates_f_crashes() {
        for seed in 0..5 {
            let n = 7;
            let sim = run_cluster(n, 2, seed, &[5, 6]);
            for i in 0..5 {
                let out = sim.outputs(pid(i));
                assert_eq!(out.len(), 1, "seed {seed} process {i} must deliver");
                assert!(out[0].len() >= 5, "output holds ≥ n−f values");
            }
        }
    }

    #[test]
    fn validity_outputs_only_real_inputs() {
        let n = 4;
        let sim = run_cluster(n, 1, 3, &[]);
        for i in 0..n {
            for (p, v) in sim.outputs(pid(i))[0].iter() {
                assert_eq!(*v, 1000 + p.index() as u64, "value attributed to wrong origin");
            }
        }
    }

    #[test]
    fn no_delivery_below_quota() {
        // With 2 of 4 processes crashed (> f = 1), nobody can finish.
        let n = 4;
        let procs: Vec<SymGather<u64>> = (0..n).map(|i| SymGather::new(pid(i), n, 1)).collect();
        let mut sim = Simulation::new(procs, scheduler::Fifo)
            .with_fault(pid(2), FaultMode::CrashedFromStart)
            .with_fault(pid(3), FaultMode::CrashedFromStart);
        sim.input(pid(0), 1);
        sim.input(pid(1), 2);
        assert!(sim.run(1_000_000).quiescent);
        assert!(sim.outputs(pid(0)).is_empty());
        assert!(sim.outputs(pid(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn rejects_unsound_threshold() {
        let _ = SymGather::<u64>::new(pid(0), 6, 2);
    }
}
