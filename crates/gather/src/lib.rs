//! Gather (common-core) protocols — §2.4 and §3 of *"DAG-based Consensus
//! with Asymmetric Trust"* (PODC 2025).
//!
//! A *gather* protocol lets every process propose a value and delivers to
//! each process a set of `(process, value)` pairs such that a **common
//! core** — the proposals of a full quorum — is contained in every correct
//! output. This crate contains all three protocols the paper discusses:
//!
//! * [`SymGather`] (Algorithm 1) — the classic three-round threshold gather;
//! * [`NaiveGather`] (Algorithm 2) — the quorum-replacement attempt, **shown
//!   unsound** by Lemma 3.2; [`Lemma32Scheduler`] reproduces the Appendix-A
//!   adversarial execution on the Figure-1 system;
//! * [`AsymGather`] (Algorithm 3) — the paper's novel constant-round
//!   asymmetric gather with the ACK/READY/CONFIRM control layer;
//!
//! plus [`dataflow`], the pure set-union evaluator behind Listing 1 and
//! Figures 2–4, and [`common`], the shared value-set vocabulary and
//! common-core queries used by tests and experiments.
//!
//! # The negative result, in one doctest
//!
//! ```
//! use asym_gather::dataflow;
//!
//! // Three rounds of "hear exactly my quorum" on the Figure-1 system…
//! let quorums = dataflow::fig1_quorum_choice();
//! let sets = dataflow::three_rounds(&quorums);
//! // …leave NO process's S-set inside every U-set: no common core.
//! assert!(dataflow::common_core_candidates(&sets.s, &sets.u).is_empty());
//! // Algorithm 3 exists because of exactly this failure.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asymmetric;
pub mod common;
pub mod dataflow;
mod iterated;
mod naive;
mod symmetric;

pub use asymmetric::{AsymGather, AsymGatherConfig, AsymGatherMsg};
pub use common::{
    check_pairwise_agreement, find_common_core, merge_pairs, pairs_subset, to_wire, ValueSet,
};
pub use iterated::{IteratedGather, IteratedGatherMsg, IteratedLemma32Scheduler};
pub use naive::{Lemma32Scheduler, NaiveGather, NaiveGatherMsg};
pub use symmetric::{SymGather, SymGatherMsg};
