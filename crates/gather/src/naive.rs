//! **Algorithm 2** — the quorum-replacement gather attempt, which the paper
//! proves unsound (Lemma 3.2).
//!
//! This protocol is Algorithm 1 with every `n − f` threshold replaced by
//! "one of my quorums" and the reliable broadcast replaced by its asymmetric
//! version — the standard heuristic that *works* for broadcast and binary
//! consensus but fails here. The module also provides the
//! [`Lemma32Scheduler`], the adversarial delivery schedule of Appendix A
//! under which the Figure-1 system reaches **no common core**: every process
//! hears exactly its own quorum in each round.

use asym_broadcast::{BcastMsg, BroadcastHub};
use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};
use asym_sim::{Context, InFlight, Protocol, Scheduler, Step};

use crate::common::{merge_pairs, to_wire, ValueSet};

/// Wire messages of the naive asymmetric gather.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NaiveGatherMsg<V> {
    /// Asymmetric reliable broadcast layer for the initial values.
    Arb(BcastMsg<V>),
    /// Round-2 set distribution.
    DistS(Vec<(ProcessId, V)>),
    /// Round-3 set distribution.
    DistT(Vec<(ProcessId, V)>),
}

/// One process of the naive (quorum-replacement) asymmetric gather —
/// Algorithm 2, kept for the negative result and the comparison experiments.
#[derive(Clone, Debug)]
pub struct NaiveGather<V> {
    me: ProcessId,
    quorums: AsymQuorumSystem,
    hub: BroadcastHub<V>,
    s: ValueSet<V>,
    t: ValueSet<V>,
    u: ValueSet<V>,
    dist_s_from: ProcessSet,
    dist_t_from: ProcessSet,
    sent_s: bool,
    sent_t: bool,
    delivered: bool,
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> NaiveGather<V> {
    /// Creates a naive-gather process under the given asymmetric quorum
    /// system.
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem) -> Self {
        NaiveGather {
            me,
            hub: BroadcastHub::new(me, quorums.clone()),
            quorums,
            s: ValueSet::new(),
            t: ValueSet::new(),
            u: ValueSet::new(),
            dist_s_from: ProcessSet::new(),
            dist_t_from: ProcessSet::new(),
            sent_s: false,
            sent_t: false,
            delivered: false,
        }
    }

    /// The delivered `U` set, if `ag-deliver` fired.
    pub fn delivered_set(&self) -> Option<&ValueSet<V>> {
        self.delivered.then_some(&self.u)
    }

    /// The current `S` set (observer inspection).
    pub fn s_set(&self) -> &ValueSet<V> {
        &self.s
    }

    fn advance(&mut self, ctx: &mut Context<'_, NaiveGatherMsg<V>, ValueSet<V>>) {
        let support: ProcessSet = self.s.keys().copied().collect();
        if !self.sent_s && self.quorums.contains_quorum_for(self.me, &support) {
            self.sent_s = true;
            ctx.broadcast(NaiveGatherMsg::DistS(to_wire(&self.s)));
        }
        if !self.sent_t && self.quorums.contains_quorum_for(self.me, &self.dist_s_from) {
            self.sent_t = true;
            ctx.broadcast(NaiveGatherMsg::DistT(to_wire(&self.t)));
        }
        if !self.delivered && self.quorums.contains_quorum_for(self.me, &self.dist_t_from) {
            self.delivered = true;
            ctx.output(self.u.clone());
        }
    }
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> Protocol for NaiveGather<V> {
    type Msg = NaiveGatherMsg<V>;
    type Input = V;
    type Output = ValueSet<V>;

    fn on_input(&mut self, value: V, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        for m in self.hub.broadcast(0, value) {
            ctx.broadcast(NaiveGatherMsg::Arb(m));
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match msg {
            NaiveGatherMsg::Arb(inner) => {
                let (out, deliveries) = self.hub.on_message(from, inner);
                for m in out {
                    ctx.broadcast(NaiveGatherMsg::Arb(m));
                }
                for d in deliveries {
                    merge_pairs(&mut self.s, &[(d.origin, d.value)]);
                }
            }
            NaiveGatherMsg::DistS(pairs) => {
                if self.dist_s_from.insert(from) {
                    merge_pairs(&mut self.t, &pairs);
                }
            }
            NaiveGatherMsg::DistT(pairs) => {
                if self.dist_t_from.insert(from) {
                    merge_pairs(&mut self.u, &pairs);
                }
            }
        }
        self.advance(ctx);
    }
}

/// The Appendix-A adversary: a delivery schedule under which every process's
/// round conditions fire on **exactly its designated quorum**.
///
/// Rules (receiver `r`, designated quorum `Q(r)`):
///
/// * arb `SEND`/`ECHO` — always deliverable (the broadcast layer needs global
///   cooperation);
/// * arb `READY` for origin `o` — deliverable at `r` only if `o ∈ Q(r)`, so
///   `r` arb-delivers exactly the values of its quorum;
/// * `DISTRIBUTE_S` / `DISTRIBUTE_T` from `s` — deliverable at `r` only if
///   `s ∈ Q(r)`.
///
/// Starved messages model "arbitrarily delayed"; after the observable run
/// finishes, [`asym_sim::Simulation::flush_starved`] delivers them, which can
/// no longer change the already-delivered `U` sets.
#[derive(Clone, Debug)]
pub struct Lemma32Scheduler {
    /// Designated quorum of each process.
    quorum_of: Vec<ProcessSet>,
}

impl Lemma32Scheduler {
    /// Creates the scheduler from the designated quorum of each process.
    pub fn new(quorum_of: Vec<ProcessSet>) -> Self {
        Lemma32Scheduler { quorum_of }
    }

    fn allows<V>(&self, m: &InFlight<NaiveGatherMsg<V>>) -> bool {
        let q = &self.quorum_of[m.to.index()];
        match &m.msg {
            NaiveGatherMsg::Arb(BcastMsg::Send { .. })
            | NaiveGatherMsg::Arb(BcastMsg::Echo { .. }) => true,
            NaiveGatherMsg::Arb(BcastMsg::Ready { origin, .. }) => q.contains(*origin),
            NaiveGatherMsg::DistS(_) | NaiveGatherMsg::DistT(_) => q.contains(m.from),
        }
    }
}

impl<V> Scheduler<NaiveGatherMsg<V>> for Lemma32Scheduler {
    fn next(&mut self, pending: &[InFlight<NaiveGatherMsg<V>>], _now: Step) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .filter(|(_, m)| self.allows(m))
            .min_by_key(|(_, m)| m.seq)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::find_common_core;
    use crate::dataflow;
    use asym_quorum::counterexample::{fig1_quorum_of, fig1_quorums, FIG1_N};
    use asym_quorum::topology;
    use asym_sim::{scheduler, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn lemma_3_2_no_common_core_on_figure_1() {
        // The headline negative result, as a full message-passing execution:
        // running Algorithm 2 on the Figure-1 system under the Appendix-A
        // schedule delivers U sets with NO common core.
        let qs = fig1_quorums();
        let quorum_of: Vec<ProcessSet> = (0..FIG1_N).map(|i| fig1_quorum_of(pid(i))).collect();
        let procs: Vec<NaiveGather<u64>> =
            (0..FIG1_N).map(|i| NaiveGather::new(pid(i), qs.clone())).collect();
        let mut sim = Simulation::new(procs, Lemma32Scheduler::new(quorum_of.clone()));
        for i in 0..FIG1_N {
            sim.input(pid(i), i as u64);
        }
        let report = sim.run(50_000_000);
        assert!(report.quiescent, "adversarial run must reach quiescence");

        // Every process delivered, and its U set matches Listing 1 exactly.
        let expected = dataflow::three_rounds(&quorum_of);
        let mut outputs: Vec<ValueSet<u64>> = Vec::new();
        for i in 0..FIG1_N {
            let out = sim.outputs(pid(i));
            assert_eq!(out.len(), 1, "process {i} must ag-deliver exactly once");
            let support: ProcessSet = out[0].keys().copied().collect();
            assert_eq!(
                support,
                expected.u[i],
                "U set of process {} diverges from Listing 1",
                i + 1
            );
            outputs.push(out[0].clone());
        }

        // No common core: no process's S set is inside every U set.
        let refs: Vec<(ProcessId, &ValueSet<u64>)> =
            outputs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
        let core = find_common_core(&qs, &ProcessSet::full(FIG1_N), &refs);
        assert!(core.is_none(), "Lemma 3.2 violated: found core {core:?}");
    }

    #[test]
    fn naive_gather_succeeds_on_threshold_systems() {
        // On uniform threshold systems Algorithm 2 degenerates to Algorithm 1
        // and does reach a common core — the failure is specific to genuinely
        // asymmetric systems.
        for seed in 0..5 {
            let n = 7;
            let t = topology::uniform_threshold(n, 2);
            let procs: Vec<NaiveGather<u64>> =
                (0..n).map(|i| NaiveGather::new(pid(i), t.quorums.clone())).collect();
            let mut sim = Simulation::new(procs, scheduler::Random::new(seed));
            for i in 0..n {
                sim.input(pid(i), i as u64);
            }
            assert!(sim.run(10_000_000).quiescent);
            let outputs: Vec<ValueSet<u64>> =
                (0..n).map(|i| sim.outputs(pid(i))[0].clone()).collect();
            let refs: Vec<(ProcessId, &ValueSet<u64>)> =
                outputs.iter().enumerate().map(|(i, u)| (pid(i), u)).collect();
            assert!(
                find_common_core(&t.quorums, &ProcessSet::full(n), &refs).is_some(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn naive_gather_on_fig1_under_fair_schedule_may_find_core() {
        // Under a *fair* (random) schedule the Figure-1 system usually does
        // reach a common core — the negative result needs the adversary.
        // We only assert termination and agreement here.
        let qs = fig1_quorums();
        let procs: Vec<NaiveGather<u64>> =
            (0..FIG1_N).map(|i| NaiveGather::new(pid(i), qs.clone())).collect();
        let mut sim = Simulation::new(procs, scheduler::Random::new(11));
        for i in 0..FIG1_N {
            sim.input(pid(i), i as u64);
        }
        assert!(sim.run(50_000_000).quiescent);
        for i in 0..FIG1_N {
            assert_eq!(sim.outputs(pid(i)).len(), 1, "process {i} delivers");
        }
    }

    #[test]
    fn flushing_starved_messages_after_delivery_changes_nothing() {
        // Outputs are final: late messages merge into local sets but cannot
        // retract or alter what was ag-delivered.
        let qs = fig1_quorums();
        let quorum_of: Vec<ProcessSet> = (0..FIG1_N).map(|i| fig1_quorum_of(pid(i))).collect();
        let procs: Vec<NaiveGather<u64>> =
            (0..FIG1_N).map(|i| NaiveGather::new(pid(i), qs.clone())).collect();
        let mut sim = Simulation::new(procs, Lemma32Scheduler::new(quorum_of));
        for i in 0..FIG1_N {
            sim.input(pid(i), i as u64);
        }
        sim.run(50_000_000);
        let before: Vec<Vec<ValueSet<u64>>> =
            (0..FIG1_N).map(|i| sim.outputs(pid(i)).to_vec()).collect();
        sim.flush_starved(50_000_000);
        for (i, b) in before.iter().enumerate() {
            assert_eq!(sim.outputs(pid(i)), &b[..], "output mutated by flush");
        }
    }
}
