//! Shared vocabulary of the gather protocols: value sets and common-core
//! queries.

use std::collections::BTreeMap;

use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};

/// The sets exchanged by gather protocols: `{(p_j, x_j)}` pairs, at most one
/// value per process, with deterministic (id-ordered) iteration.
pub type ValueSet<V> = BTreeMap<ProcessId, V>;

/// Serializable form of a [`ValueSet`] for wire messages.
pub fn to_wire<V: Clone>(set: &ValueSet<V>) -> Vec<(ProcessId, V)> {
    set.iter().map(|(p, v)| (*p, v.clone())).collect()
}

/// Returns `true` if every `(process, value)` pair of `small` occurs
/// *identically* in `big` — the paper's `S_j ⊆ S_i` test on sets of pairs.
pub fn pairs_subset<V: PartialEq>(small: &[(ProcessId, V)], big: &ValueSet<V>) -> bool {
    small.iter().all(|(p, v)| big.get(p) == Some(v))
}

/// Merges `incoming` into `target`.
///
/// # Panics
///
/// Panics if the merge would associate a *different* value with a process
/// already present — that would be an agreement violation, which the
/// subset-guarded protocols rule out; reaching it indicates a protocol bug.
pub fn merge_pairs<V: Clone + PartialEq + core::fmt::Debug>(
    target: &mut ValueSet<V>,
    incoming: &[(ProcessId, V)],
) {
    for (p, v) in incoming {
        match target.get(p) {
            Some(existing) => {
                assert_eq!(existing, v, "agreement violation: two values for {p} reached a merge")
            }
            None => {
                target.insert(*p, v.clone());
            }
        }
    }
}

/// The processes bound in a value set.
pub fn support<V>(set: &ValueSet<V>) -> ProcessSet {
    set.keys().copied().collect()
}

/// Searches for a **common core** among delivered gather outputs
/// (Definition 3.1): a process `p_i ∈ members` and one of its minimal quorums
/// `Q` such that every listed output contains the `(p, x_p)` pairs of all
/// `p ∈ Q`.
///
/// `outputs` holds the `U` set delivered by each probed process (typically
/// the maximal guild). Returns the first `(owner, quorum)` witness found.
///
/// All outputs must associate identical values with overlapping processes
/// (agreement) — checked by [`check_pairwise_agreement`] separately.
pub fn find_common_core<V: PartialEq>(
    quorums: &AsymQuorumSystem,
    members: &ProcessSet,
    outputs: &[(ProcessId, &ValueSet<V>)],
) -> Option<(ProcessId, ProcessSet)> {
    for owner in members {
        for q in quorums.of(owner).minimal_quorums() {
            let in_all = outputs.iter().all(|(_, u)| q.iter().all(|p| u.contains_key(&p)));
            if in_all {
                return Some((owner, q));
            }
        }
    }
    None
}

/// Verifies the gather **agreement** property over delivered outputs: no two
/// outputs bind different values to the same process. Returns the offending
/// process on violation.
pub fn check_pairwise_agreement<V: PartialEq>(
    outputs: &[(ProcessId, &ValueSet<V>)],
) -> Result<(), ProcessId> {
    for (i, (_, a)) in outputs.iter().enumerate() {
        for (_, b) in &outputs[i + 1..] {
            for (p, v) in a.iter() {
                if let Some(w) = b.get(p) {
                    if v != w {
                        return Err(*p);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asym_quorum::topology;

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn vset(pairs: &[(usize, u32)]) -> ValueSet<u32> {
        pairs.iter().map(|(p, v)| (pid(*p), *v)).collect()
    }

    #[test]
    fn wire_roundtrip_and_subset() {
        let s = vset(&[(0, 10), (2, 20)]);
        let wire = to_wire(&s);
        assert!(pairs_subset(&wire, &s));
        let bigger = vset(&[(0, 10), (1, 15), (2, 20)]);
        assert!(pairs_subset(&wire, &bigger));
        let conflicting = vset(&[(0, 10), (2, 99)]);
        assert!(!pairs_subset(&wire, &conflicting));
        let missing = vset(&[(0, 10)]);
        assert!(!pairs_subset(&wire, &missing));
    }

    #[test]
    fn merge_adds_new_pairs() {
        let mut t = vset(&[(0, 1)]);
        merge_pairs(&mut t, &[(pid(1), 2), (pid(0), 1)]);
        assert_eq!(t, vset(&[(0, 1), (1, 2)]));
        assert_eq!(support(&t), ProcessSet::from_indices([0, 1]));
    }

    #[test]
    #[should_panic(expected = "agreement violation")]
    fn merge_panics_on_conflict() {
        let mut t = vset(&[(0, 1)]);
        merge_pairs(&mut t, &[(pid(0), 2)]);
    }

    #[test]
    fn common_core_found_when_quorum_everywhere() {
        let t = topology::uniform_threshold(4, 1);
        let members = ProcessSet::full(4);
        // Everyone holds values for {0,1,2}: a 3-quorum — common core.
        let u: ValueSet<u32> = vset(&[(0, 0), (1, 1), (2, 2)]);
        let outputs: Vec<(ProcessId, &ValueSet<u32>)> = (0..4).map(|i| (pid(i), &u)).collect();
        let (owner, q) = find_common_core(&t.quorums, &members, &outputs).unwrap();
        assert!(members.contains(owner));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn common_core_absent_on_disjoint_views() {
        let t = topology::uniform_threshold(4, 1);
        let members = ProcessSet::full(4);
        let u1 = vset(&[(0, 0), (1, 1), (2, 2)]);
        let u2 = vset(&[(1, 1), (2, 2), (3, 3)]);
        let outputs = vec![(pid(0), &u1), (pid(1), &u2)];
        // {1,2} shared but quorums need 3 members.
        assert!(find_common_core(&t.quorums, &members, &outputs).is_none());
    }

    #[test]
    fn agreement_check_detects_conflicts() {
        let a = vset(&[(0, 1), (1, 2)]);
        let b = vset(&[(1, 2), (2, 3)]);
        assert!(check_pairwise_agreement(&[(pid(0), &a), (pid(1), &b)]).is_ok());
        let c = vset(&[(1, 99)]);
        assert_eq!(check_pairwise_agreement(&[(pid(0), &a), (pid(2), &c)]), Err(pid(1)));
    }
}
