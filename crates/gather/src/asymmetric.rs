//! **Algorithm 3** — the paper's constant-round asymmetric gather, the first
//! sound common-core primitive for asymmetric quorum systems.
//!
//! The protocol keeps the three-set skeleton of the classic gather (`S`, `T`,
//! `U`) but inserts a control-message layer between the `S` and `T` rounds:
//!
//! 1. arb-broadcast the input; collect arb-deliveries into `S`;
//! 2. once `S` covers one of my quorums, `DISTRIBUTE_S` to all;
//! 3. a receiver **acknowledges** a `DISTRIBUTE_S` only after arb-delivering
//!    everything in it (`S_j ⊆ S_i`) and only while it has not yet sent its
//!    `T` set;
//! 4. on ACKs from a quorum → `READY` to all; on READY from a quorum →
//!    `CONFIRM` to all; on CONFIRM from a **kernel** → `CONFIRM` (Bracha-style
//!    amplification, Lemma 3.4/3.6); on CONFIRM from a quorum →
//!    `DISTRIBUTE_T` and stop acknowledging;
//! 5. accept a `DISTRIBUTE_T` once `T_j ⊆ S_i`, merge into `U`; deliver `U`
//!    after accepting `DISTRIBUTE_T` from a full quorum.
//!
//! The CONFIRM layer guarantees (Lemma 3.5) that some guild member has
//! planted its `S` set in a whole quorum **before** anyone stops
//! acknowledging — that `S` set is the common core.

use asym_broadcast::{BcastMsg, BroadcastHub};
use asym_quorum::{AsymQuorumSystem, ProcessId, ProcessSet};
use asym_sim::{Context, Protocol};

use crate::common::{merge_pairs, pairs_subset, to_wire, ValueSet};

/// Wire messages of the constant-round asymmetric gather.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsymGatherMsg<V> {
    /// Asymmetric reliable broadcast layer for the initial values.
    Arb(BcastMsg<V>),
    /// `DISTRIBUTE_S`: the sender's candidate common-core set.
    DistS(Vec<(ProcessId, V)>),
    /// Acknowledgement of an accepted `DISTRIBUTE_S` (point-to-point).
    Ack,
    /// The sender received ACKs from one of its quorums.
    Ready,
    /// The sender received READYs from a quorum (or CONFIRMs from a kernel).
    Confirm,
    /// `DISTRIBUTE_T`: the sender's accumulated `T` set.
    DistT(Vec<(ProcessId, V)>),
}

/// Tuning knobs for [`AsymGather`]; the defaults implement Algorithm 3
/// exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AsymGatherConfig {
    /// Enable the CONFIRM-from-kernel amplification rule (lines 55–56).
    /// Disabling it is the liveness ablation run by `exp_ablation` (ABL).
    pub kernel_amplification: bool,
}

impl Default for AsymGatherConfig {
    fn default() -> Self {
        AsymGatherConfig { kernel_amplification: true }
    }
}

/// One process of the constant-round asymmetric gather (Algorithm 3).
///
/// *Input*: the value to `ag-propose`. *Output*: the `ag-delivered` set.
///
/// # Examples
///
/// Driving a full four-process cluster to completion:
///
/// ```
/// use asym_gather::AsymGather;
/// use asym_quorum::{topology, ProcessId};
/// use asym_sim::{scheduler, Simulation};
///
/// let t = topology::uniform_threshold(4, 1);
/// let procs: Vec<AsymGather<u64>> = (0..4)
///     .map(|i| AsymGather::new(ProcessId::new(i), t.quorums.clone()))
///     .collect();
/// let mut sim = Simulation::new(procs, scheduler::Random::new(1));
/// for i in 0..4 {
///     sim.input(ProcessId::new(i), 100 + i as u64);
/// }
/// assert!(sim.run(1_000_000).quiescent);
/// assert_eq!(sim.outputs(ProcessId::new(0)).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct AsymGather<V> {
    me: ProcessId,
    quorums: AsymQuorumSystem,
    config: AsymGatherConfig,
    hub: BroadcastHub<V>,
    s: ValueSet<V>,
    t: ValueSet<V>,
    u: ValueSet<V>,
    acks: ProcessSet,
    readys: ProcessSet,
    confirms: ProcessSet,
    accepted_t_from: ProcessSet,
    pending_s: Vec<(ProcessId, Vec<(ProcessId, V)>)>,
    pending_t: Vec<(ProcessId, Vec<(ProcessId, V)>)>,
    sent_s: bool,
    sent_ready: bool,
    sent_confirm: bool,
    sent_t: bool,
    delivered: bool,
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> AsymGather<V> {
    /// Creates a gather process with the default (paper-exact) configuration.
    pub fn new(me: ProcessId, quorums: AsymQuorumSystem) -> Self {
        AsymGather::with_config(me, quorums, AsymGatherConfig::default())
    }

    /// Creates a gather process with an explicit configuration.
    pub fn with_config(me: ProcessId, quorums: AsymQuorumSystem, config: AsymGatherConfig) -> Self {
        AsymGather {
            me,
            hub: BroadcastHub::new(me, quorums.clone()),
            quorums,
            config,
            s: ValueSet::new(),
            t: ValueSet::new(),
            u: ValueSet::new(),
            acks: ProcessSet::new(),
            readys: ProcessSet::new(),
            confirms: ProcessSet::new(),
            accepted_t_from: ProcessSet::new(),
            pending_s: Vec::new(),
            pending_t: Vec::new(),
            sent_s: false,
            sent_ready: false,
            sent_confirm: false,
            sent_t: false,
            delivered: false,
        }
    }

    /// The current `S` set (candidate common core).
    pub fn s_set(&self) -> &ValueSet<V> {
        &self.s
    }

    /// The delivered `U` set, if `ag-deliver` fired.
    pub fn delivered_set(&self) -> Option<&ValueSet<V>> {
        self.delivered.then_some(&self.u)
    }

    /// `true` once this process has sent its `T` set (and therefore stopped
    /// acknowledging `DISTRIBUTE_S` messages).
    pub fn sent_t(&self) -> bool {
        self.sent_t
    }

    /// Number of buffered (not yet acceptable) `DISTRIBUTE_S`/`DISTRIBUTE_T`
    /// messages — a liveness observability hook.
    pub fn buffered(&self) -> usize {
        self.pending_s.len() + self.pending_t.len()
    }

    fn advance(&mut self, ctx: &mut Context<'_, AsymGatherMsg<V>, ValueSet<V>>) {
        // Line 46–47: distribute S once it covers one of my quorums.
        if !self.sent_s {
            let support: ProcessSet = self.s.keys().copied().collect();
            if self.quorums.contains_quorum_for(self.me, &support) {
                self.sent_s = true;
                ctx.broadcast(AsymGatherMsg::DistS(to_wire(&self.s)));
            }
        }

        // Line 48–50: accept buffered DISTRIBUTE_S whose content is now
        // fully arb-delivered; acknowledge unless T was already sent.
        let mut i = 0;
        while i < self.pending_s.len() {
            if pairs_subset(&self.pending_s[i].1, &self.s) {
                let (from, pairs) = self.pending_s.swap_remove(i);
                if !self.sent_t {
                    merge_pairs(&mut self.t, &pairs);
                    ctx.send(from, AsymGatherMsg::Ack);
                }
            } else {
                i += 1;
            }
        }

        // Line 51–52: READY after ACKs from one of my quorums.
        if !self.sent_ready && self.quorums.contains_quorum_for(self.me, &self.acks) {
            self.sent_ready = true;
            ctx.broadcast(AsymGatherMsg::Ready);
        }

        // Line 53–54: CONFIRM after READYs from one of my quorums.
        if !self.sent_confirm && self.quorums.contains_quorum_for(self.me, &self.readys) {
            self.sent_confirm = true;
            ctx.broadcast(AsymGatherMsg::Confirm);
        }

        // Line 55–56: CONFIRM after CONFIRMs from one of my kernels.
        if self.config.kernel_amplification
            && !self.sent_confirm
            && self.quorums.hits_kernel_for(self.me, &self.confirms)
        {
            self.sent_confirm = true;
            ctx.broadcast(AsymGatherMsg::Confirm);
        }

        // Line 57–59: distribute T after CONFIRMs from one of my quorums.
        if !self.sent_t && self.quorums.contains_quorum_for(self.me, &self.confirms) {
            self.sent_t = true;
            ctx.broadcast(AsymGatherMsg::DistT(to_wire(&self.t)));
        }

        // Line 60–61: accept buffered DISTRIBUTE_T once `T_j ⊆ S_i`.
        let mut i = 0;
        while i < self.pending_t.len() {
            if pairs_subset(&self.pending_t[i].1, &self.s) {
                let (from, pairs) = self.pending_t.swap_remove(i);
                merge_pairs(&mut self.u, &pairs);
                self.accepted_t_from.insert(from);
            } else {
                i += 1;
            }
        }

        // Line 62–63: deliver after accepted DISTRIBUTE_T from a quorum.
        if !self.delivered && self.quorums.contains_quorum_for(self.me, &self.accepted_t_from) {
            self.delivered = true;
            ctx.output(self.u.clone());
        }
    }
}

impl<V: Clone + Eq + std::hash::Hash + core::fmt::Debug> Protocol for AsymGather<V> {
    type Msg = AsymGatherMsg<V>;
    type Input = V;
    type Output = ValueSet<V>;

    fn on_input(&mut self, value: V, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        for m in self.hub.broadcast(0, value) {
            ctx.broadcast(AsymGatherMsg::Arb(m));
        }
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
    ) {
        match msg {
            AsymGatherMsg::Arb(inner) => {
                let (out, deliveries) = self.hub.on_message(from, inner);
                for m in out {
                    ctx.broadcast(AsymGatherMsg::Arb(m));
                }
                for d in deliveries {
                    merge_pairs(&mut self.s, &[(d.origin, d.value)]);
                }
            }
            AsymGatherMsg::DistS(pairs) => self.pending_s.push((from, pairs)),
            AsymGatherMsg::Ack => {
                self.acks.insert(from);
            }
            AsymGatherMsg::Ready => {
                self.readys.insert(from);
            }
            AsymGatherMsg::Confirm => {
                self.confirms.insert(from);
            }
            AsymGatherMsg::DistT(pairs) => self.pending_t.push((from, pairs)),
        }
        self.advance(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{check_pairwise_agreement, find_common_core};
    use asym_quorum::counterexample::{fig1_quorums, FIG1_N};
    use asym_quorum::{maximal_guild, topology};
    use asym_sim::{scheduler, FaultMode, Harness, Simulation};

    fn pid(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn cluster(qs: &AsymQuorumSystem) -> Vec<AsymGather<u64>> {
        (0..qs.n()).map(|i| AsymGather::new(pid(i), qs.clone())).collect()
    }

    /// Runs gather on a topology with the given faulty set; asserts the paper
    /// properties relative to the maximal guild; returns delivered U sets.
    fn run_and_check(
        t: &topology::Topology,
        faulty: &[usize],
        seed: u64,
    ) -> Vec<Option<ValueSet<u64>>> {
        let n = t.n();
        let faulty_set: ProcessSet = faulty.iter().copied().collect();
        let guild = maximal_guild(&t.fail_prone, &t.quorums, &faulty_set)
            .expect("test topologies must retain a guild");
        let mut sim = Simulation::new(cluster(&t.quorums), scheduler::Random::new(seed));
        for fidx in faulty {
            sim = sim.with_fault(pid(*fidx), FaultMode::CrashedFromStart);
        }
        for i in 0..n {
            if !faulty.contains(&i) {
                sim.input(pid(i), 500 + i as u64);
            }
        }
        let report = sim.run(100_000_000);
        assert!(report.quiescent, "{}: run must quiesce", t.name);

        let outputs: Vec<Option<ValueSet<u64>>> =
            (0..n).map(|i| sim.outputs(pid(i)).first().cloned()).collect();
        // Liveness: every guild member delivers.
        for g in &guild {
            assert!(
                outputs[g.index()].is_some(),
                "{}: guild member {g} failed to deliver (seed {seed})",
                t.name
            );
        }
        // Agreement + validity over guild outputs.
        let refs: Vec<(ProcessId, &ValueSet<u64>)> =
            guild.iter().filter_map(|g| outputs[g.index()].as_ref().map(|u| (g, u))).collect();
        check_pairwise_agreement(&refs).expect("agreement among guild outputs");
        for (_, u) in &refs {
            for (p, v) in u.iter() {
                assert_eq!(*v, 500 + p.index() as u64, "validity: wrong value for {p}");
            }
        }
        // Common core among guild outputs (Definition 3.1).
        let core = find_common_core(&t.quorums, &guild, &refs);
        assert!(core.is_some(), "{}: no common core (seed {seed})", t.name);
        outputs
    }

    #[test]
    fn threshold_topologies_reach_common_core() {
        for seed in 0..4 {
            run_and_check(&topology::uniform_threshold(4, 1), &[], seed);
            run_and_check(&topology::uniform_threshold(7, 2), &[], seed);
        }
    }

    #[test]
    fn threshold_with_crashes() {
        for seed in 0..4 {
            run_and_check(&topology::uniform_threshold(4, 1), &[3], seed);
            run_and_check(&topology::uniform_threshold(7, 2), &[0, 6], seed);
        }
    }

    #[test]
    fn figure1_system_now_reaches_common_core() {
        // The contrast to Lemma 3.2: on the very system that defeats
        // Algorithm 2, Algorithm 3 delivers a common core.
        let t = topology::Topology {
            name: "figure-1".into(),
            fail_prone: asym_quorum::counterexample::fig1_fail_prone(),
            quorums: fig1_quorums(),
        };
        for seed in 0..3 {
            let outputs = run_and_check(&t, &[], seed);
            assert_eq!(outputs.iter().filter(|o| o.is_some()).count(), FIG1_N);
        }
    }

    #[test]
    fn ripple_topology_with_crash() {
        let t = topology::ripple_unl(10, 8, 1);
        for seed in 0..3 {
            run_and_check(&t, &[2], seed);
        }
    }

    #[test]
    fn stellar_topology_with_core_crash() {
        let t = topology::stellar_tiers(12, 4, 1);
        for seed in 0..3 {
            run_and_check(&t, &[0], seed);
        }
    }

    #[test]
    fn targeted_delay_does_not_break_liveness() {
        let t = topology::uniform_threshold(7, 2);
        let mut sim = Simulation::new(
            cluster(&t.quorums),
            scheduler::TargetedDelay::new(ProcessSet::from_indices([0, 1])),
        );
        for i in 0..7 {
            sim.input(pid(i), i as u64);
        }
        assert!(sim.run(100_000_000).quiescent);
        for i in 0..7 {
            assert_eq!(sim.outputs(pid(i)).len(), 1, "process {i} delivers");
        }
    }

    #[test]
    fn byzantine_dist_s_with_fabricated_pairs_is_never_accepted() {
        // A forged DISTRIBUTE_S containing a value that was never
        // arb-broadcast must stay buffered forever: no ACK, no merge.
        let t = topology::uniform_threshold(4, 1);
        let mut h = Harness::new(AsymGather::<u64>::new(pid(0), t.quorums.clone()), pid(0), 4);
        h.deliver(pid(3), AsymGatherMsg::DistS(vec![(pid(2), 666)]));
        assert_eq!(h.protocol.buffered(), 1);
        assert!(h.protocol.t.is_empty());
        assert!(h.sends.iter().all(|(_, m)| !matches!(m, AsymGatherMsg::Ack)));
    }

    #[test]
    fn ack_flow_until_ready() {
        // Drive one process manually through the ACK → READY transition.
        let t = topology::uniform_threshold(4, 1);
        let mut h = Harness::new(AsymGather::<u64>::new(pid(0), t.quorums.clone()), pid(0), 4);
        for i in [1usize, 2, 3] {
            h.deliver(pid(i), AsymGatherMsg::Ack);
        }
        assert!(
            h.sends.iter().any(|(_, m)| matches!(m, AsymGatherMsg::Ready)),
            "READY after a quorum (3) of ACKs"
        );
    }

    #[test]
    fn confirm_amplification_from_kernel() {
        // Kernel size for threshold(4, q=3) is 2: two CONFIRMs amplify.
        let t = topology::uniform_threshold(4, 1);
        let mut h = Harness::new(AsymGather::<u64>::new(pid(0), t.quorums.clone()), pid(0), 4);
        h.deliver(pid(1), AsymGatherMsg::Confirm);
        assert!(h.sends.iter().all(|(_, m)| !matches!(m, AsymGatherMsg::Confirm)));
        h.deliver(pid(2), AsymGatherMsg::Confirm);
        assert!(
            h.sends.iter().any(|(_, m)| matches!(m, AsymGatherMsg::Confirm)),
            "kernel of CONFIRMs must amplify"
        );
    }

    #[test]
    fn no_amplification_when_disabled() {
        let t = topology::uniform_threshold(4, 1);
        let cfg = AsymGatherConfig { kernel_amplification: false };
        let mut h =
            Harness::new(AsymGather::<u64>::with_config(pid(0), t.quorums.clone(), cfg), pid(0), 4);
        h.deliver(pid(1), AsymGatherMsg::Confirm);
        h.deliver(pid(2), AsymGatherMsg::Confirm);
        assert!(
            h.sends.iter().all(|(_, m)| !matches!(m, AsymGatherMsg::Confirm)),
            "disabled amplification must not CONFIRM from a kernel"
        );
    }

    #[test]
    fn stops_acking_after_sending_t() {
        let t = topology::uniform_threshold(4, 1);
        let mut h = Harness::new(AsymGather::<u64>::new(pid(0), t.quorums.clone()), pid(0), 4);
        // Feed arb deliveries directly: simulate by feeding Confirms to force
        // sentT, after S covers a quorum via the arb layer.
        // Simpler: drive the hub through real arb messages for 3 origins.
        for origin in [0usize, 1, 2] {
            for sender in 0..4 {
                h.deliver(
                    pid(sender),
                    AsymGatherMsg::Arb(BcastMsg::Echo {
                        origin: pid(origin),
                        tag: 0,
                        value: origin as u64,
                    }),
                );
            }
            for sender in 0..4 {
                h.deliver(
                    pid(sender),
                    AsymGatherMsg::Arb(BcastMsg::Ready {
                        origin: pid(origin),
                        tag: 0,
                        value: origin as u64,
                    }),
                );
            }
        }
        assert_eq!(h.protocol.s.len(), 3, "arb layer delivered 3 values");
        assert!(h.protocol.sent_s);
        // Force DISTRIBUTE_T via a quorum of CONFIRMs.
        for i in [1usize, 2, 3] {
            h.deliver(pid(i), AsymGatherMsg::Confirm);
        }
        assert!(h.protocol.sent_t());
        h.take_sends();
        // An acceptable DISTRIBUTE_S now arrives: no ACK anymore.
        h.deliver(pid(2), AsymGatherMsg::DistS(vec![(pid(1), 1)]));
        assert!(h.sends.iter().all(|(_, m)| !matches!(m, AsymGatherMsg::Ack)));
    }
}
